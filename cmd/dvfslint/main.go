// Command dvfslint runs the scheduler's domain static-analysis suite
// (internal/lint) over the module: floatcmp, nondeterminism,
// mutexblock and errcheck-hot, plus directive hygiene. It is wired
// into `make lint` and `make check`; CI consumes -json.
//
// Usage:
//
//	dvfslint [-json] [-list] [packages...]
//
// With no package arguments (or "./...") the whole module is checked.
// Arguments select packages by module-relative directory, e.g.
// "internal/model" or "./internal/server". Exit status is 0 when
// clean, 1 when findings remain, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dvfsched/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("dvfslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := lint.DefaultSuite()
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "dvfslint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "dvfslint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "dvfslint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "dvfslint:", err)
		return 2
	}
	pkgs = selectPackages(pkgs, fs.Args())
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "dvfslint: no packages matched")
		return 2
	}

	diags := suite.Run(pkgs)
	if *jsonOut {
		err = lint.WriteJSON(stdout, root, diags)
	} else {
		err = lint.WriteText(stdout, root, diags)
	}
	if err != nil {
		fmt.Fprintln(stderr, "dvfslint:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectPackages filters loaded packages by the command-line patterns:
// "./..." (or no patterns) keeps everything, otherwise a pattern keeps
// packages whose module-relative path equals it or lives under it.
func selectPackages(pkgs []*lint.Package, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	keepAll := false
	var prefixes []string
	for _, p := range patterns {
		p = filepath.ToSlash(p)
		p = strings.TrimPrefix(p, "./")
		if p == "..." || p == "" {
			keepAll = true
			continue
		}
		recursive := strings.HasSuffix(p, "/...")
		p = strings.TrimSuffix(p, "/...")
		prefixes = append(prefixes, p)
		_ = recursive // a bare path already matches its whole subtree
	}
	if keepAll {
		return pkgs
	}
	var out []*lint.Package
	for _, pkg := range pkgs {
		for _, pre := range prefixes {
			if pkg.Rel == pre || strings.HasPrefix(pkg.Rel, pre+"/") {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}
