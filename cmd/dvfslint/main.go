// Command dvfslint runs the scheduler's domain static-analysis suite
// (internal/lint) over the module: floatcmp, nondeterminism,
// mutexblock, errcheck-hot, poolcheck, goroleak, atomicmix and
// lockorder, plus directive hygiene. It is wired into `make lint` and
// `make check`; CI consumes -json.
//
// Usage:
//
//	dvfslint [-json] [-list] [-only=a,b] [-count] [packages...]
//
// With no package arguments (or "./...") the whole module is checked.
// Arguments select packages by module-relative directory, e.g.
// "internal/model" or "./internal/server". -only restricts the run to
// a comma-separated subset of analyzers (other analyzers' allow
// directives are left alone); -count appends a per-analyzer findings
// summary to the text report and is incompatible with -json, whose
// schema is pinned. Exit status is 0 when clean, 1 when findings
// remain, 2 on load or usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dvfsched/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dvfslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	count := fs.Bool("count", false, "append a per-analyzer findings summary (text mode)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *count && *jsonOut {
		fmt.Fprintln(stderr, "dvfslint: -count is incompatible with -json (the JSON schema already carries a count)")
		return 2
	}

	suite := lint.DefaultSuite()
	if *only != "" {
		var names []string
		for _, n := range strings.Split(*only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if err := suite.Restrict(names...); err != nil {
			fmt.Fprintln(stderr, "dvfslint:", err)
			return 2
		}
	}
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "dvfslint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "dvfslint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "dvfslint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "dvfslint:", err)
		return 2
	}
	pkgs = selectPackages(pkgs, fs.Args())
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "dvfslint: no packages matched")
		return 2
	}

	diags := suite.Run(pkgs)
	if *jsonOut {
		err = lint.WriteJSON(stdout, root, diags)
	} else {
		err = lint.WriteText(stdout, root, diags)
		if err == nil && *count {
			err = writeCounts(stdout, suite, diags)
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "dvfslint:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeCounts prints a per-analyzer findings tally in roster order,
// with the directive pseudo-analyzer last and a total line. Analyzers
// skipped by -only are omitted: a zero must mean "ran and found
// nothing", never "did not run".
func writeCounts(w io.Writer, suite *lint.Suite, diags []lint.Diagnostic) error {
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	for _, a := range suite.Analyzers {
		if !suite.Active(a.Name) {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-16s %d\n", a.Name, counts[a.Name]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-16s %d\n", "directive", counts["directive"]); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%-16s %d\n", "total", len(diags))
	return err
}

// selectPackages filters loaded packages by the command-line patterns:
// "./..." (or no patterns) keeps everything, otherwise a pattern keeps
// packages whose module-relative path equals it or lives under it.
func selectPackages(pkgs []*lint.Package, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	keepAll := false
	var prefixes []string
	for _, p := range patterns {
		p = filepath.ToSlash(p)
		p = strings.TrimPrefix(p, "./")
		if p == "..." || p == "" {
			keepAll = true
			continue
		}
		recursive := strings.HasSuffix(p, "/...")
		p = strings.TrimSuffix(p, "/...")
		prefixes = append(prefixes, p)
		_ = recursive // a bare path already matches its whole subtree
	}
	if keepAll {
		return pkgs
	}
	var out []*lint.Package
	for _, pkg := range pkgs {
		for _, pre := range prefixes {
			if pkg.Rel == pre || strings.HasPrefix(pkg.Rel, pre+"/") {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}
