package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlagValidation: malformed invocations must fail with exit
// status 2 and a message naming the problem, before any package is
// loaded — a linter that silently runs nothing (typoed -only) or an
// unexpected subset would let findings through CI.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
		{"unknown analyzer", []string{"-only", "poolchek"}, "unknown analyzer"},
		{"empty only list", []string{"-only", " , "}, "no analyzers selected"},
		{"count with json", []string{"-count", "-json"}, "-count is incompatible with -json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("run(%v) = %d, want 2\nstderr: %s", tc.args, code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr = %q, want it to mention %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestRunList pins -list output: every analyzer appears with its doc
// line, and -only restricts the roster the same way it restricts a
// run.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{
		"floatcmp", "nondeterminism", "mutexblock", "errcheck-hot",
		"poolcheck", "goroleak", "atomicmix", "lockorder",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output is missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}
