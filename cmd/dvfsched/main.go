// Command dvfsched computes an optimal batch schedule (Workload Based
// Greedy) for a task trace and prints the per-core execution plan with
// its predicted energy, time, and monetary cost.
//
// Usage:
//
//	dvfsched [-trace tasks.jsonl] [-cores 4] [-platform table2|i7|exynos]
//	         [-re 0.1] [-rt 0.4] [-spec]
//	         [-trace-out events.jsonl] [-metrics-out metrics.json]
//
// With -spec the paper's 24 SPEC CPU2006 workloads are scheduled
// instead of reading a trace (default when no trace is given). The
// trace format is JSON Lines; see internal/trace.
//
// -trace-out and -metrics-out execute the computed plan on the
// simulator and dump the run's event stream (JSONL) and metrics
// snapshot (JSON); the report package replays the event stream into
// Gantt/CSV artifacts.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dvfsched/internal/batch"
	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvfsched: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dvfsched", flag.ContinueOnError)
	var (
		traceFile = fs.String("trace", "", "JSONL task trace to schedule (default: the paper's SPEC workloads)")
		cores     = fs.Int("cores", 4, "number of cores")
		platName  = fs.String("platform", "table2", "rate table: table2, i7, or exynos")
		re        = fs.Float64("re", 0.1, "Re, cents per joule")
		rt        = fs.Float64("rt", 0.4, "Rt, cents per second of waiting")
		spec      = fs.Bool("spec", false, "schedule the paper's SPEC workloads")
		asJSON    = fs.Bool("json", false, "emit the plan as self-contained JSON instead of text")
		ranges    = fs.Bool("ranges", false, "print the platform's dominating position ranges and exit")

		traceOut   = fs.String("trace-out", "", "simulate the plan and write its event stream as JSONL")
		metricsOut = fs.String("metrics-out", "", "simulate the plan and write its metrics snapshot as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rates, err := rateTable(*platName)
	if err != nil {
		return err
	}
	params := model.CostParams{Re: *re, Rt: *rt}
	if err := params.Validate(); err != nil {
		return err
	}
	if *ranges {
		env, err := envelope.Compute(params, rates)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "dominating position ranges for %s at Re=%v, Rt=%v:\n  %s\n",
			*platName, *re, *rt, env)
		return nil
	}
	if *cores <= 0 {
		return fmt.Errorf("need at least one core, got %d", *cores)
	}

	var tasks model.TaskSet
	switch {
	case *traceFile != "" && *spec:
		return fmt.Errorf("choose either -trace or -spec, not both")
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		tasks, err = trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
	default:
		tasks = workload.SPECTasks()
	}
	for _, t := range tasks {
		if t.Interactive || t.Arrival != 0 {
			return fmt.Errorf("task %d is not a batch task (use onlinesim for online traces)", t.ID)
		}
	}

	plan, err := batch.WBG(params, batch.HomogeneousCores(*cores, rates), tasks)
	if err != nil {
		return err
	}
	if *traceOut != "" || *metricsOut != "" {
		if err := simulatePlan(plan, rates, *cores, tasks, params, *traceOut, *metricsOut); err != nil {
			return err
		}
	}
	if *asJSON {
		return plan.WriteJSON(w)
	}
	printPlan(w, plan)
	return nil
}

// simulatePlan executes the WBG plan on the ideal simulator and dumps
// the observability artifacts the flags requested.
func simulatePlan(plan *batch.Plan, rates *model.RateTable, cores int, tasks model.TaskSet, params model.CostParams, traceOut, metricsOut string) error {
	fp, err := sim.NewFixedPlan(plan)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	var sink obs.Sink = obs.NewMetricsSink(reg)
	var jsonl *obs.JSONLWriter
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl = obs.NewJSONLWriter(f)
		sink = obs.Multi(jsonl, sink)
	}
	plat := platform.Homogeneous(cores, rates, platform.Ideal{})
	if _, err := sim.Run(sim.Config{Platform: plat, Policy: fp, Sink: sink}, tasks, params); err != nil {
		return err
	}
	if jsonl != nil {
		if err := jsonl.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", traceOut, err)
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		werr := reg.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing %s: %w", metricsOut, werr)
		}
	}
	return nil
}

func rateTable(name string) (*model.RateTable, error) {
	switch name {
	case "table2":
		return platform.TableII(), nil
	case "i7":
		return platform.IntelI7950(), nil
	case "exynos":
		return platform.ExynosT4412(), nil
	default:
		return nil, fmt.Errorf("unknown platform %q (want table2, i7, or exynos)", name)
	}
}

func printPlan(w io.Writer, plan *batch.Plan) {
	for _, cp := range plan.Cores {
		fmt.Fprintf(w, "core %d (%d tasks):\n", cp.Core, len(cp.Sequence))
		elapsed := 0.0
		for i, a := range cp.Sequence {
			dur := model.TaskTime(a.Task.Cycles, a.Level)
			name := a.Task.Name
			if name == "" {
				name = fmt.Sprintf("task-%d", a.Task.ID)
			}
			fmt.Fprintf(w, "  %2d. %-18s %10.2f Gcyc @ %.2f GHz  start %9.1fs  end %9.1fs  %8.1f J\n",
				i+1, name, a.Task.Cycles, a.Level.Rate, elapsed, elapsed+dur,
				model.TaskEnergy(a.Task.Cycles, a.Level))
			elapsed += dur
		}
	}
	eCost, tCost, total := plan.Cost()
	joules, makespan, turnaround := plan.EnergyTime()
	fmt.Fprintf(w, "\npredicted: energy %.1f J, makespan %.1f s, turnaround sum %.1f s\n", joules, makespan, turnaround)
	fmt.Fprintf(w, "cost: energy %.2f + time %.2f = %.2f cents\n", eCost, tCost, total)
}
