package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvfsched/internal/batch"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/report"
	"dvfsched/internal/trace"
)

func TestRunSpecDefault(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"core 0", "core 3", "h264ref/ref", "predicted:", "cost:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWithTraceFile(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Name: "x", Cycles: 5, Deadline: model.NoDeadline},
		{ID: 2, Name: "y", Cycles: 50, Deadline: model.NoDeadline},
	}
	path := filepath.Join(t.TempDir(), "batch.jsonl")
	var buf bytes.Buffer
	if err := trace.Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-cores", "2", "-platform", "i7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "x") || !strings.Contains(out.String(), "y") {
		t.Errorf("trace task names missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-platform", "nope"},
		{"-re", "0"},
		{"-cores", "0"},
		{"-trace", "/does/not/exist.jsonl"},
		{"-trace", "x", "-spec"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunRejectsOnlineTrace(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 5, Arrival: 2, Deadline: model.NoDeadline}}
	path := filepath.Join(t.TempDir(), "online.jsonl")
	var buf bytes.Buffer
	if err := trace.Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", path}, &bytes.Buffer{}); err == nil {
		t.Error("online trace accepted by the batch scheduler")
	}
}

func TestRateTable(t *testing.T) {
	for _, name := range []string{"table2", "i7", "exynos"} {
		rt, err := rateTable(name)
		if err != nil || rt.Len() == 0 {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json", "-cores", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	plan, err := batch.ReadPlanJSON(&out)
	if err != nil {
		t.Fatalf("output is not a valid plan: %v", err)
	}
	if plan.NumTasks() != 24 {
		t.Errorf("plan tasks = %d, want the 24 SPEC workloads", plan.NumTasks())
	}
}

func TestRunRangesFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-ranges", "-platform", "i7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dominating position ranges") ||
		!strings.Contains(out.String(), "GHz") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestTraceAndMetricsOut(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "events.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")
	var out bytes.Buffer
	if err := run([]string{"-cores", "2", "-trace-out", eventsPath, "-metrics-out", metricsPath}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	events, rerr := obs.ReadJSONL(f)
	f.Close()
	if rerr != nil {
		t.Fatal(rerr)
	}
	timeline, err := report.TimelineFromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(timeline) == 0 {
		t.Fatal("empty replayed timeline")
	}
	var gantt bytes.Buffer
	if err := report.Gantt(&gantt, timeline); err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatal(err)
	}
	// The default workload is the paper's 24 SPEC programs; the plan
	// execution must complete all of them.
	if got := snap.Counters["sim.tasks.completed"]; got != 24 {
		t.Errorf("sim.tasks.completed = %v, want 24", got)
	}
	if snap.Counters["sim.energy_j"] <= 0 {
		t.Error("sim.energy_j missing from metrics snapshot")
	}
}
