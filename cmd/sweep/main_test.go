package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickSweeps(t *testing.T) {
	wants := map[string]string{
		"price":       "rt_over_re",
		"granularity": "levels",
		"estimator":   "sigma",
		"idle":        "wbg_vs_race",
	}
	for kind, want := range wants {
		var out bytes.Buffer
		if err := run([]string{"-kind", kind, "-quick"}, &out); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("%s: missing %q:\n%s", kind, want, out.String())
		}
		if len(strings.Split(strings.TrimSpace(out.String()), "\n")) < 3 {
			t.Errorf("%s: too few rows", kind)
		}
	}
}

func TestRunCoresQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "cores", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "olb_vs_lmc") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunCSVFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "granularity", "-quick", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "levels,energy_vs_allmax,total_vs_allmax") {
		t.Errorf("bad CSV header:\n%s", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 5 {
		t.Errorf("want header + 4 rows:\n%s", s)
	}
}

func TestRunBadFormat(t *testing.T) {
	if err := run([]string{"-format", "xml"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run([]string{"-kind", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown kind accepted")
	}
}
