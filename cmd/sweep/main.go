// Command sweep runs the sensitivity studies that extend the paper's
// evaluation: the Rt/Re price sweep, the frequency-granularity sweep,
// the length-estimator sweep, the core-count sweep, and the idle-power
// (race-to-idle crossover) study. Each prints one series, as an
// aligned table or as CSV for plotting. Grid points are independent
// and are evaluated on a GOMAXPROCS-sized worker pool; the output
// order is deterministic regardless of completion order.
//
// Usage:
//
//	sweep -kind price|granularity|estimator|cores|idle
//	      [-seed N] [-quick] [-format table|csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dvfsched/internal/experiments"
	"dvfsched/internal/model"
	"dvfsched/internal/report"
	"dvfsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		kind   = fs.String("kind", "price", "sweep kind: price, granularity, estimator, cores, idle")
		seed   = fs.Int64("seed", 1, "seed for trace-driven sweeps")
		quick  = fs.Bool("quick", false, "smaller workloads and fewer points, for smoke tests")
		format = fs.String("format", "table", "output format: table or csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", *format)
	}

	// The batch sweeps accept a task override; quick mode shrinks the
	// SPEC workloads 20x.
	var batchTasks model.TaskSet
	if *quick {
		batchTasks = workload.SPECTasks()
		for i := range batchTasks {
			batchTasks[i].Cycles /= 20
		}
	}

	header, rows, err := series(*kind, *seed, *quick, batchTasks)
	if err != nil {
		return err
	}
	if *format == "csv" {
		return report.CSVFloats(w, header, rows)
	}
	for _, h := range header {
		fmt.Fprintf(w, "%16s", h)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		for _, v := range row {
			fmt.Fprintf(w, "%16.3f", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// series produces the selected sweep as a header plus numeric rows.
func series(kind string, seed int64, quick bool, batchTasks model.TaskSet) ([]string, [][]float64, error) {
	switch kind {
	case "price":
		ratios := []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32}
		if quick {
			ratios = []float64{0.5, 4, 32}
		}
		rows, err := experiments.PriceSweep(ratios, batchTasks)
		if err != nil {
			return nil, nil, err
		}
		out := make([][]float64, len(rows))
		for i, r := range rows {
			out[i] = []float64{r.RtOverRe, r.OLBvsWBG, r.PSvsWBG, r.WBGEnergyShare, r.WBGMinRateShare}
		}
		return []string{"rt_over_re", "olb_vs_wbg", "ps_vs_wbg", "energy_share", "min_rate_share"}, out, nil
	case "granularity":
		rows, err := experiments.GranularitySweep(batchTasks)
		if err != nil {
			return nil, nil, err
		}
		out := make([][]float64, len(rows))
		for i, r := range rows {
			out[i] = []float64{float64(r.Levels), r.EnergyVsAllMax, r.TotalVsAllMax}
		}
		return []string{"levels", "energy_vs_allmax", "total_vs_allmax"}, out, nil
	case "estimator":
		sigmas := []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2}
		if quick {
			sigmas = []float64{0.2, 1.0}
		}
		rows, err := experiments.EstimatorSweep(sigmas, seed)
		if err != nil {
			return nil, nil, err
		}
		out := make([][]float64, len(rows))
		for i, r := range rows {
			out[i] = []float64{r.Sigma, r.EstimatedVsOracle}
		}
		return []string{"sigma", "estimated_vs_oracle"}, out, nil
	case "cores":
		coreCounts := []int{2, 4, 8, 16}
		if quick {
			coreCounts = []int{2, 4}
		}
		rows, err := experiments.CoreSweep(coreCounts, seed)
		if err != nil {
			return nil, nil, err
		}
		out := make([][]float64, len(rows))
		for i, r := range rows {
			out[i] = []float64{float64(r.Cores), r.OLBvsLMC, r.ODvsLMC}
		}
		return []string{"cores", "olb_vs_lmc", "od_vs_lmc"}, out, nil
	case "idle":
		watts := []float64{0, 1, 2, 5, 10, 20, 50}
		if quick {
			watts = []float64{0, 10, 50}
		}
		rows, err := experiments.IdlePowerStudy(watts, batchTasks)
		if err != nil {
			return nil, nil, err
		}
		out := make([][]float64, len(rows))
		for i, r := range rows {
			out[i] = []float64{r.IdleWatts, r.WBGEnergyJ, r.RaceEnergyJ, r.WBGvsRace}
		}
		return []string{"idle_watts", "wbg_joules", "race_joules", "wbg_vs_race"}, out, nil
	default:
		return nil, nil, fmt.Errorf("unknown sweep kind %q", kind)
	}
}
