// Command dvfschedd serves the scheduler over HTTP: a stateless
// planning plane (POST /v1/plan, Workload Based Greedy behind a worker
// pool and an LRU cache) and a stateful session plane (online-mode
// Least Marginal Cost shards that accept task arrivals and stream
// their event trace). See internal/server for the API contract.
//
// Usage:
//
//	dvfschedd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	          [-max-sessions N] [-request-timeout 30s] [-drain-timeout 30s]
//	          [-trace-format jsonl|binary]
//
// The daemon prints "listening on http://HOST:PORT" once the socket is
// bound (use -addr 127.0.0.1:0 for an ephemeral port and parse that
// line). On SIGINT or SIGTERM it stops accepting requests, finishes
// in-flight handlers, drains every live session to completion in
// virtual time — no accepted task is ever dropped — and prints one
// summary line per drained session before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvfsched/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvfschedd: ")
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sigs); err != nil {
		log.Fatal(err)
	}
}

// run binds the listener, serves until a signal arrives, then drains.
// It is main minus process concerns, so tests can drive it.
func run(args []string, w io.Writer, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("dvfschedd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
		workers      = fs.Int("workers", 0, "planning worker pool size (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "planning queue depth (0 = 4x workers)")
		cache        = fs.Int("cache", 0, "plan LRU cache entries (0 = 256, negative disables)")
		maxSessions  = fs.Int("max-sessions", 0, "concurrent session cap (0 = 1024)")
		sessParallel = fs.Int("session-parallelism", 0, "per-session candidate-evaluation pool width (<2 = sequential)")
		reqTimeout   = fs.Duration("request-timeout", 0, "per-request deadline (0 = 30s)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		traceFormat  = fs.String("trace-format", "jsonl", "default session events encoding: jsonl or binary (?format= overrides)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceFormat != "jsonl" && *traceFormat != "binary" {
		return fmt.Errorf("unknown -trace-format %q (want jsonl or binary)", *traceFormat)
	}

	s := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheSize:          *cache,
		MaxSessions:        *maxSessions,
		SessionParallelism: *sessParallel,
		RequestTimeout:     *reqTimeout,
		TraceFormat:        *traceFormat,
	})
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Fprintf(w, "caught %v; draining\n", sig)
	}

	// Refuse new work with 503 before the listener closes, so a load
	// balancer probing this replica fails over instead of retrying 429s.
	s.BeginDrain()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// In-flight handlers overran the budget; sessions still drain
		// below so no accepted work is lost.
		fmt.Fprintf(w, "http shutdown: %v\n", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	for _, sum := range s.DrainAll(ctx) {
		if sum.Err != nil {
			fmt.Fprintf(w, "drained session %s: error: %v\n", sum.ID, sum.Err)
			continue
		}
		fmt.Fprintf(w, "drained session %s: %d tasks, cost %.4f cents\n", sum.ID, sum.Tasks, sum.Cost)
	}
	fmt.Fprintln(w, "shutdown complete")
	return nil
}
