// Command dvfschedd serves the scheduler over HTTP: a stateless
// planning plane (POST /v1/plan, Workload Based Greedy behind a worker
// pool and an LRU cache) and a stateful session plane (online-mode
// Least Marginal Cost shards that accept task arrivals and stream
// their event trace). See internal/server for the API contract.
//
// Usage:
//
//	dvfschedd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	          [-max-sessions N] [-request-timeout 30s] [-drain-timeout 30s]
//	          [-trace-format jsonl|binary] [-pprof-addr 127.0.0.1:6060]
//	          [-node-id ID -peers "id1=http://h1:p1,id2=http://h2:p2,..."]
//	          [-node-id ID -advertise http://h:p -join http://seed:p]
//	          [-ship-window N] [-ship-flush-interval D]
//
// With -node-id and -peers the daemon seeds a cluster
// (internal/cluster): a consistent-hash ring places each session on an
// owner node, any node fronts any session by forwarding, and owners
// replicate their sessions by log shipping so a killed node's sessions
// fail over to the next ring candidate without losing accepted tasks.
// The node's own ID must appear in the peer list, pointing at the
// address other nodes reach this daemon on. The -peers list only seeds
// epoch 1 — membership is dynamic afterwards, via the cluster admin API
// (POST/DELETE /v1/cluster/nodes/{id}).
//
// With -node-id, -advertise and -join instead, the daemon boots as a
// solo node reachable at the -advertise URL and, once listening, asks
// the member at the -join URL to admit it: the seed pushes the grown
// view, rebalances the bounded set of sessions the new ring assigns to
// this node, and flips the epoch cluster-wide. A failed join is fatal
// at startup. -join and -peers are mutually exclusive.
//
// The daemon prints "listening on http://HOST:PORT" once the socket is
// bound (use -addr 127.0.0.1:0 for an ephemeral port and parse that
// line). On SIGINT or SIGTERM it stops accepting requests, finishes
// in-flight handlers, drains every live session to completion in
// virtual time — no accepted task is ever dropped — and prints one
// summary line per drained session before exiting.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dvfsched/internal/cluster"
	"dvfsched/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvfschedd: ")
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sigs); err != nil {
		log.Fatal(err)
	}
}

// run binds the listener, serves until a signal arrives, then drains.
// It is main minus process concerns, so tests can drive it.
func run(args []string, w io.Writer, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("dvfschedd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
		workers      = fs.Int("workers", 0, "planning worker pool size (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "planning queue depth (0 = 4x workers)")
		cache        = fs.Int("cache", 0, "plan LRU cache entries (0 = 256, negative disables)")
		maxSessions  = fs.Int("max-sessions", 0, "concurrent session cap (0 = 1024)")
		sessParallel = fs.Int("session-parallelism", 0, "per-session candidate-evaluation pool width (<2 = sequential)")
		reqTimeout   = fs.Duration("request-timeout", 0, "per-request deadline (0 = 30s)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		traceFormat  = fs.String("trace-format", "jsonl", "default session events encoding: jsonl or binary (?format= overrides)")
		nodeID       = fs.String("node-id", "", "this node's cluster ID (requires -peers or -join)")
		peersFlag    = fs.String("peers", "", `seed cluster membership as "id=http://host:port,..." including this node`)
		joinURL      = fs.String("join", "", "base URL of an existing member to join at startup (requires -node-id and -advertise)")
		advertise    = fs.String("advertise", "", "base URL other nodes reach this daemon on (required with -join)")
		probeEvery   = fs.Duration("probe-interval", 2*time.Second, "cluster peer health-probe interval")
		shipWindow   = fs.Int("ship-window", 0, "in-flight replication frames per peer stream (0 = default 4, negative = synchronous per-mutation ships)")
		shipFlush    = fs.Duration("ship-flush-interval", 0, "how long a replication shipper lingers to coalesce mutations into one frame (0 = ship immediately)")
		pprofAddr    = fs.String("pprof-addr", "", "expose net/http/pprof on this side listener (empty = off; keep it loopback-only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Enum and cluster flags are validated before any socket binds: a
	// misconfigured daemon must die at startup with a usage error, not
	// serve with a silently wrong setting.
	if *traceFormat != "jsonl" && *traceFormat != "binary" {
		return fmt.Errorf("unknown -trace-format %q (want jsonl or binary)", *traceFormat)
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	if *joinURL != "" {
		if peers != nil {
			return fmt.Errorf("-join and -peers are mutually exclusive")
		}
		if *nodeID == "" || *advertise == "" {
			return fmt.Errorf("-join requires -node-id and -advertise")
		}
		for flagName, v := range map[string]*string{"-join": joinURL, "-advertise": advertise} {
			u, err := url.Parse(*v)
			if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				return fmt.Errorf("%s %q: want an absolute http(s) URL", flagName, *v)
			}
			*v = strings.TrimRight(*v, "/")
		}
		// Boot solo; the join below grows the seed's view to include us.
		peers = map[string]string{*nodeID: *advertise}
	} else {
		if *advertise != "" {
			return fmt.Errorf("-advertise requires -join")
		}
		if (*nodeID == "") != (peers == nil) {
			return fmt.Errorf("-node-id and -peers must be set together")
		}
		if peers != nil {
			if _, ok := peers[*nodeID]; !ok {
				return fmt.Errorf("-node-id %q is not in -peers", *nodeID)
			}
		}
	}
	if *probeEvery <= 0 {
		return fmt.Errorf("-probe-interval must be positive, got %v", *probeEvery)
	}
	if *shipFlush < 0 {
		return fmt.Errorf("-ship-flush-interval must not be negative, got %v", *shipFlush)
	}

	s := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheSize:          *cache,
		MaxSessions:        *maxSessions,
		SessionParallelism: *sessParallel,
		RequestTimeout:     *reqTimeout,
		TraceFormat:        *traceFormat,
	})
	defer s.Close()

	handler := http.Handler(s)
	if peers != nil {
		node, err := cluster.NewNode(cluster.Config{
			ID:                *nodeID,
			Peers:             peers,
			ShipWindow:        *shipWindow,
			ShipFlushInterval: *shipFlush,
		}, s)
		if err != nil {
			return err
		}
		handler = node.Handler()
		stopProber := node.StartProber(*probeEvery)
		defer stopProber()
		// Stop the replication streams only after the HTTP server below
		// has stopped serving mutations (defers run LIFO).
		defer node.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The listening line stays first on stdout — harnesses parse it.
	fmt.Fprintf(w, "listening on http://%s\n", ln.Addr())
	if peers != nil {
		fmt.Fprintf(w, "cluster node %s, %d peers\n", *nodeID, len(peers))
	}

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof-addr %q: %w", *pprofAddr, err)
		}
		defer pln.Close()
		fmt.Fprintf(w, "pprof listening on http://%s/debug/pprof/\n", pln.Addr())
		//dvfslint:allow goroleak Serve returns when the deferred listener close runs at shutdown
		go func() { _ = http.Serve(pln, pprofMux()) }()
	}

	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	//dvfslint:allow goroleak Serve returns when the listener closes (shutdown path below), unblocking this send
	go func() { serveErr <- httpSrv.Serve(ln) }()

	if *joinURL != "" {
		// The daemon must be serving before it joins: the seed pushes the
		// grown membership view (and possibly rebalanced sessions) back at
		// this node as part of admitting it.
		if err := joinCluster(*joinURL, *nodeID, *advertise); err != nil {
			ln.Close()
			<-serveErr
			return fmt.Errorf("join %s: %w", *joinURL, err)
		}
		fmt.Fprintf(w, "joined cluster via %s\n", *joinURL)
	}

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Fprintf(w, "caught %v; draining\n", sig)
	}

	// Refuse new work with 503 before the listener closes, so a load
	// balancer probing this replica fails over instead of retrying 429s.
	s.BeginDrain()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// In-flight handlers overran the budget; sessions still drain
		// below so no accepted work is lost.
		fmt.Fprintf(w, "http shutdown: %v\n", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	for _, sum := range s.DrainAll(ctx) {
		if sum.Err != nil {
			fmt.Fprintf(w, "drained session %s: error: %v\n", sum.ID, sum.Err)
			continue
		}
		fmt.Fprintf(w, "drained session %s: %d tasks, cost %.4f cents\n", sum.ID, sum.Tasks, sum.Cost)
	}
	fmt.Fprintln(w, "shutdown complete")
	return nil
}

// pprofMux exposes net/http/pprof on its own mux, so the profiling
// surface lives only on the -pprof-addr side listener — importing the
// package for side effects would bolt it onto http.DefaultServeMux,
// which the main listener must never serve.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// joinCluster asks the member at joinURL to admit this node (POST
// /v1/cluster/nodes/{id} with this node's advertise address). The call
// returns once the seed has pushed the grown view, rebalanced, and
// flipped the epoch — or with the admission error.
func joinCluster(joinURL, nodeID, advertise string) error {
	body, err := json.Marshal(struct {
		Addr string `json:"addr"`
	}{Addr: advertise})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		joinURL+"/v1/cluster/nodes/"+nodeID, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	reply, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(reply)))
	}
	return nil
}

// parsePeers decodes the -peers flag: comma-separated id=URL pairs.
// Empty input means no cluster (nil map). Every ID must be unique and
// every address an absolute http(s) URL — catching a typo here beats
// debugging a node that silently ships its replicas nowhere.
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	peers := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf(`-peers entry %q: want "id=http://host:port"`, part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("-peers: duplicate node ID %q", id)
		}
		u, err := url.Parse(addr)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("-peers entry %q: address must be an absolute http(s) URL", part)
		}
		peers[id] = strings.TrimRight(addr, "/")
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers: no entries in %q", s)
	}
	return peers, nil
}
