package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dvfsched/internal/obs"
)

// lineWriter captures the daemon's stdout and hands the "listening on"
// line to the test as soon as it appears.
type lineWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	ready chan string
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.buf.Write(p)
	for {
		line, err := lw.buf.ReadString('\n')
		if err != nil {
			lw.buf.WriteString(line) // partial line: put it back
			break
		}
		if addr, ok := strings.CutPrefix(line, "listening on "); ok {
			select {
			case lw.ready <- strings.TrimSpace(addr):
			default:
			}
		}
	}
	return len(p), nil
}

func TestRunBadTraceFormat(t *testing.T) {
	sigs := make(chan os.Signal)
	if err := run([]string{"-trace-format", "gob"}, io.Discard, sigs); err == nil {
		t.Fatal("-trace-format gob accepted")
	}
}

// TestDaemonBinaryTraceDefault boots the daemon with
// -trace-format=binary and checks the events endpoint defaults to the
// binary encoding while ?format=jsonl still overrides.
func TestDaemonBinaryTraceDefault(t *testing.T) {
	lw := &lineWriter{ready: make(chan string, 1)}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-trace-format", "binary"}, lw, sigs)
	}()
	var base string
	select {
	case base = <-lw.ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never reported its address")
	}

	var info struct {
		ID string `json:"id"`
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body := `{"tasks":[{"id":1,"cycles":5},{"id":2,"cycles":3,"arrival":0.5}]}`
	resp, err = http.Post(base+"/v1/sessions/"+info.ID+"/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	get := func(url string) []byte {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		return b
	}
	plain := get(base + "/v1/sessions/" + info.ID + "/events")
	if !obs.DetectBinary(plain) {
		t.Error("default events encoding is not binary despite -trace-format=binary")
	}
	jsonl := get(base + "/v1/sessions/" + info.ID + "/events?format=jsonl")
	if obs.DetectBinary(jsonl) || (len(jsonl) > 0 && jsonl[0] != '{') {
		t.Errorf("?format=jsonl did not override the daemon default: %.40q", jsonl)
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down")
	}
}
