package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dvfsched/internal/obs"
)

// lineWriter captures the daemon's stdout and hands the "listening on"
// (and, when watched, "pprof listening on") lines to the test as soon
// as they appear.
type lineWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	ready chan string
	pprof chan string
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.buf.Write(p)
	for {
		line, err := lw.buf.ReadString('\n')
		if err != nil {
			lw.buf.WriteString(line) // partial line: put it back
			break
		}
		if url, ok := strings.CutPrefix(line, "pprof listening on "); ok {
			if lw.pprof != nil {
				select {
				case lw.pprof <- strings.TrimSpace(url):
				default:
				}
			}
			continue
		}
		if addr, ok := strings.CutPrefix(line, "listening on "); ok {
			select {
			case lw.ready <- strings.TrimSpace(addr):
			default:
			}
		}
	}
	return len(p), nil
}

func TestRunBadTraceFormat(t *testing.T) {
	sigs := make(chan os.Signal)
	if err := run([]string{"-trace-format", "gob"}, io.Discard, sigs); err == nil {
		t.Fatal("-trace-format gob accepted")
	}
}

// TestRunRejectsBadClusterFlags: every malformed cluster flag combo
// must fail at startup with a usage error naming the flag — a daemon
// that binds its socket first would look healthy to an operator while
// misrouting every session.
func TestRunRejectsBadClusterFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"node-id without peers", []string{"-node-id", "a"}, "-node-id and -peers"},
		{"peers without node-id", []string{"-peers", "a=http://h:1"}, "-node-id and -peers"},
		{"node-id not a peer", []string{"-node-id", "c", "-peers", "a=http://h:1,b=http://h:2"}, "not in -peers"},
		{"malformed entry", []string{"-node-id", "a", "-peers", "a:http://h:1"}, "-peers entry"},
		{"missing address", []string{"-node-id", "a", "-peers", "a="}, "-peers entry"},
		{"duplicate peer ID", []string{"-node-id", "a", "-peers", "a=http://h:1,a=http://h:2"}, "duplicate node ID"},
		{"relative address", []string{"-node-id", "a", "-peers", "a=h:1"}, "http(s) URL"},
		{"empty peer list", []string{"-node-id", "a", "-peers", ","}, "no entries"},
		{"bad probe interval", []string{"-probe-interval", "-1s"}, "-probe-interval"},
		{"negative ship flush", []string{"-ship-flush-interval", "-1ms"}, "-ship-flush-interval"},
		{"join with peers", []string{"-node-id", "a", "-peers", "a=http://h:1", "-join", "http://h:2"}, "mutually exclusive"},
		{"join without node-id", []string{"-join", "http://h:2", "-advertise", "http://h:1"}, "-join requires"},
		{"join without advertise", []string{"-node-id", "a", "-join", "http://h:2"}, "-join requires"},
		{"advertise without join", []string{"-node-id", "a", "-peers", "a=http://h:1", "-advertise", "http://h:1"}, "-advertise requires -join"},
		{"relative join URL", []string{"-node-id", "a", "-join", "h:2", "-advertise", "http://h:1"}, "http(s) URL"},
		{"relative advertise URL", []string{"-node-id", "a", "-join", "http://h:2", "-advertise", "h:1"}, "http(s) URL"},
	}
	sigs := make(chan os.Signal)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard, sigs)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not name the problem (want %q)", tc.args, err, tc.want)
			}
		})
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("a=http://h:1, b=https://h:2/")
	if err != nil {
		t.Fatal(err)
	}
	if peers["a"] != "http://h:1" || peers["b"] != "https://h:2" {
		t.Fatalf("parsed peers %v", peers)
	}
	if p, err := parsePeers(""); p != nil || err != nil {
		t.Fatalf("empty -peers: %v, %v", p, err)
	}
}

// TestDaemonBinaryTraceDefault boots the daemon with
// -trace-format=binary and checks the events endpoint defaults to the
// binary encoding while ?format=jsonl still overrides.
func TestDaemonBinaryTraceDefault(t *testing.T) {
	lw := &lineWriter{ready: make(chan string, 1)}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-trace-format", "binary"}, lw, sigs)
	}()
	var base string
	select {
	case base = <-lw.ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never reported its address")
	}

	var info struct {
		ID string `json:"id"`
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body := `{"tasks":[{"id":1,"cycles":5},{"id":2,"cycles":3,"arrival":0.5}]}`
	resp, err = http.Post(base+"/v1/sessions/"+info.ID+"/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	get := func(url string) []byte {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		return b
	}
	plain := get(base + "/v1/sessions/" + info.ID + "/events")
	if !obs.DetectBinary(plain) {
		t.Error("default events encoding is not binary despite -trace-format=binary")
	}
	jsonl := get(base + "/v1/sessions/" + info.ID + "/events?format=jsonl")
	if obs.DetectBinary(jsonl) || (len(jsonl) > 0 && jsonl[0] != '{') {
		t.Errorf("?format=jsonl did not override the daemon default: %.40q", jsonl)
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down")
	}
}

// TestDaemonPprofSideListener boots the daemon with -pprof-addr and
// checks the profiling surface comes up on its own socket — reachable
// there, absent from the API listener (operators point tooling at a
// loopback side port without exposing pprof to API clients).
func TestDaemonPprofSideListener(t *testing.T) {
	lw := &lineWriter{ready: make(chan string, 1), pprof: make(chan string, 1)}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-pprof-addr", "127.0.0.1:0"}, lw, sigs)
	}()
	var base, pprofURL string
	for base == "" || pprofURL == "" {
		select {
		case base = <-lw.ready:
		case pprofURL = <-lw.pprof:
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon never reported its addresses (api %q, pprof %q)", base, pprofURL)
		}
	}

	resp, err := http.Get(pprofURL)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte("goroutine")) {
		t.Fatalf("pprof index at %s: status %d, body %.80q", pprofURL, resp.StatusCode, b)
	}

	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("API listener serves /debug/pprof/ — the profiling surface must stay on the side listener")
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down")
	}
}
