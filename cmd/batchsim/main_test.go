package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

// smallTraceFile writes a scaled-down SPEC trace for quick runs.
func smallTraceFile(t *testing.T) string {
	t.Helper()
	tasks := workload.SPECTasks()
	for i := range tasks {
		tasks[i].Cycles /= 30
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBothFigures(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-trace", smallTraceFile(t)}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fig. 1", "Exp/Sim", "Fig. 2", "wbg", "olb", "power-saving"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunGantt(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gantt", "-trace", smallTraceFile(t)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "core  0") || !strings.Contains(out.String(), "timeline") {
		t.Errorf("gantt missing:\n%s", out.String())
	}
}

func TestRunIdealFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig1", "-ideal", "-trace", smallTraceFile(t)}, &out); err != nil {
		t.Fatal(err)
	}
	// Under the ideal model, Exp/Sim must be exactly 1.
	if !strings.Contains(out.String(), "total 1.000") {
		t.Errorf("ideal model not neutral:\n%s", out.String())
	}
}

func TestRunMissingTrace(t *testing.T) {
	if err := run([]string{"-trace", "/no/such/file"}, &bytes.Buffer{}); err == nil {
		t.Error("missing trace accepted")
	}
}
