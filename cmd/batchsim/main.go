// Command batchsim runs the batch-mode experiments: the Fig. 1 model
// verification and the Fig. 2 scheduler comparison, on the paper's
// SPEC workloads or on a user trace. -gantt additionally renders the
// WBG plan's execution timeline.
//
// Usage:
//
//	batchsim -fig1 [-cores 4]
//	batchsim -fig2 [-cores 4] [-trace tasks.jsonl] [-ideal]
//	batchsim -gantt [-trace tasks.jsonl]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dvfsched/internal/batch"
	"dvfsched/internal/experiments"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/report"
	"dvfsched/internal/sim"
	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("batchsim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("batchsim", flag.ContinueOnError)
	var (
		fig1      = fs.Bool("fig1", false, "run the Fig. 1 model verification")
		fig2      = fs.Bool("fig2", false, "run the Fig. 2 scheduler comparison")
		gantt     = fs.Bool("gantt", false, "render the WBG plan's execution timeline")
		cores     = fs.Int("cores", 4, "number of cores")
		traceFile = fs.String("trace", "", "JSONL batch trace (default: SPEC workloads)")
		ideal     = fs.Bool("ideal", false, "use the ideal execution model instead of the contended one")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*fig1 && !*fig2 && !*gantt {
		*fig1, *fig2 = true, true
	}

	var tasks model.TaskSet
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		var rerr error
		tasks, rerr = trace.Read(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
	}
	var exec platform.ExecutionModel
	if *ideal {
		exec = platform.Ideal{}
	}

	if *fig1 {
		res, err := experiments.Fig1(experiments.Fig1Config{Tasks: tasks, Cores: *cores, Exec: exec})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Fig. 1 — model verification (Sim = analytic, Exp = executed):")
		printOutcome(w, res.Sim)
		printOutcome(w, res.Exp)
		fmt.Fprintf(w, "Exp/Sim: time %.3f  energy %.3f  total %.3f\n", res.TimeRatio, res.EnergyRatio, res.TotalRatio)
		fmt.Fprintf(w, "power meter: %.1f J sampled vs %.1f J exact\n\n", res.MeterEnergyJ, res.Exp.EnergyJ)
	}
	if *fig2 {
		res, err := experiments.Fig2(experiments.Fig2Config{Tasks: tasks, Cores: *cores, Exec: exec})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Fig. 2 — batch-mode scheduler comparison:")
		printOutcome(w, res.WBG)
		printOutcome(w, res.OLB)
		printOutcome(w, res.PS)
		fmt.Fprintf(w, "OLB/WBG: time %.3f  energy %.3f  total %.3f\n", res.OLBvsWBG[0], res.OLBvsWBG[1], res.OLBvsWBG[2])
		fmt.Fprintf(w, "PS /WBG: time %.3f  energy %.3f  total %.3f\n", res.PSvsWBG[0], res.PSvsWBG[1], res.PSvsWBG[2])
	}
	if *gantt {
		return renderGantt(w, tasks, *cores, exec)
	}
	return nil
}

// renderGantt executes the WBG plan with timeline recording and draws
// it.
func renderGantt(w io.Writer, tasks model.TaskSet, cores int, exec platform.ExecutionModel) error {
	if tasks == nil {
		tasks = workload.SPECTasks()
	}
	if exec == nil {
		exec = platform.Ideal{}
	}
	params := experiments.BatchParams
	plan, err := batch.WBG(params, batch.HomogeneousCores(cores, platform.TableII()), tasks)
	if err != nil {
		return err
	}
	fp, err := sim.NewFixedPlan(plan)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{
		Platform:       platform.Homogeneous(cores, platform.TableII(), exec),
		Policy:         fp,
		RecordTimeline: true,
	}, tasks, params)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "WBG execution timeline (%d tasks, makespan %.1f s):\n", len(tasks), res.Makespan)
	return report.Gantt(w, res.Timeline)
}

func printOutcome(w io.Writer, o experiments.Outcome) {
	fmt.Fprintf(w, "  %-14s energy %12.1f J | makespan %9.1f s | turnaround %11.1f s | cost %10.1f cents\n",
		o.Policy, o.EnergyJ, o.MakespanS, o.TurnaroundS, o.TotalCost)
}
