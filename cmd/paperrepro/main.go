// Command paperrepro regenerates every table and figure of the paper's
// evaluation section, printing paper-vs-measured comparisons and the
// normalized-cost bar charts the figures show.
//
// Usage:
//
//	paperrepro [-table1] [-table2] [-fig1] [-fig2] [-fig3] [-seed N] [-scale F]
//
// With no flags, everything is reproduced. -scale shrinks the Fig. 3
// trace (1 = the paper's 50525+768 tasks) for quick runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dvfsched/internal/experiments"
	"dvfsched/internal/report"
	"dvfsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperrepro: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	var (
		t1    = fs.Bool("table1", false, "print Table I (SPEC workload characterization)")
		t2    = fs.Bool("table2", false, "print Table II (rate parameters)")
		f1    = fs.Bool("fig1", false, "run Fig. 1 (model verification)")
		f2    = fs.Bool("fig2", false, "run Fig. 2 (batch-mode comparison)")
		f3    = fs.Bool("fig3", false, "run Fig. 3 (online-mode comparison)")
		seed  = fs.Int64("seed", 0, "trace seed for Fig. 3 (0 = default)")
		scale = fs.Float64("scale", 1, "Fig. 3 trace scale factor (0 < scale <= 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("scale must be in (0, 1], got %v", *scale)
	}
	all := !*t1 && !*t2 && !*f1 && !*f2 && !*f3

	if *t1 || all {
		fmt.Fprintln(w, "== Table I: average execution times of the SPEC2006int workloads ==")
		fmt.Fprint(w, experiments.Table1String())
		fmt.Fprintln(w)
	}
	if *t2 || all {
		fmt.Fprintln(w, "== Table II: parameters in batch mode ==")
		fmt.Fprint(w, experiments.Table2String())
		fmt.Fprintln(w)
	}
	if *f1 || all {
		if err := runFig1(w); err != nil {
			return err
		}
	}
	if *f2 || all {
		if err := runFig2(w); err != nil {
			return err
		}
	}
	if *f3 || all {
		if err := runFig3(w, *seed, *scale); err != nil {
			return err
		}
	}
	return nil
}

func runFig1(w io.Writer) error {
	res, err := experiments.Fig1(experiments.Fig1Config{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fig. 1: comparison of the simulation and experimental results ==")
	printOutcome(w, res.Sim)
	printOutcome(w, res.Exp)
	norm := map[string][3]float64{
		"Sim": {1, 1, 1},
		"Exp": {res.TimeRatio, res.EnergyRatio, res.TotalRatio},
	}
	if err := chart(w, "normalized to Sim", []string{"Sim", "Exp"}, norm); err != nil {
		return err
	}
	fmt.Fprintf(w, "Exp/Sim total %.3f (paper: ~1.08); meter %.1f J vs exact %.1f J\n\n",
		res.TotalRatio, res.MeterEnergyJ, res.Exp.EnergyJ)
	return nil
}

func runFig2(w io.Writer) error {
	res, err := experiments.Fig2(experiments.Fig2Config{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fig. 2: cost comparison of batch scheduling methods ==")
	printOutcome(w, res.WBG)
	printOutcome(w, res.OLB)
	printOutcome(w, res.PS)
	norm := map[string][3]float64{
		"WBG": {1, 1, 1},
		"OLB": {res.OLBvsWBG[0], res.OLBvsWBG[1], res.OLBvsWBG[2]},
		"PS":  {res.PSvsWBG[0], res.PSvsWBG[1], res.PSvsWBG[2]},
	}
	if err := chart(w, "normalized to WBG", []string{"WBG", "OLB", "PS"}, norm); err != nil {
		return err
	}
	fmt.Fprintf(w, "OLB/WBG total %.3f (paper 1.37); PS/WBG total %.3f (paper ~1.3)\n\n",
		res.OLBvsWBG[2], res.PSvsWBG[2])
	return nil
}

func runFig3(w io.Writer, seed int64, scale float64) error {
	cfg := experiments.Fig3Config{Seed: seed}
	if scale < 1 {
		judge := workload.DefaultJudgeConfig()
		judge.Interactive = int(float64(judge.Interactive) * scale)
		judge.NonInteractive = int(float64(judge.NonInteractive) * scale)
		judge.Duration *= scale
		cfg.Judge = judge
	}
	res, err := experiments.Fig3(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fig. 3: cost comparison of online scheduling methods ==")
	printOutcome(w, res.LMC)
	printOutcome(w, res.OLB)
	printOutcome(w, res.OD)
	norm := map[string][3]float64{
		"LMC": {1, 1, 1},
		"OLB": {res.OLBvsLMC[0], res.OLBvsLMC[1], res.OLBvsLMC[2]},
		"OD":  {res.ODvsLMC[0], res.ODvsLMC[1], res.ODvsLMC[2]},
	}
	if err := chart(w, "normalized to LMC", []string{"LMC", "OLB", "OD"}, norm); err != nil {
		return err
	}
	fmt.Fprintf(w, "OLB/LMC: time %.3f energy %.3f total %.3f (paper 1.45 / 1.12 / 1.20)\n",
		res.OLBvsLMC[0], res.OLBvsLMC[1], res.OLBvsLMC[2])
	fmt.Fprintf(w, "OD /LMC: time %.3f energy %.3f total %.3f (paper 1.85 / 1.12 / 1.32)\n",
		res.ODvsLMC[0], res.ODvsLMC[1], res.ODvsLMC[2])
	return nil
}

// chart prints the three-panel normalized bar chart of one figure.
func chart(w io.Writer, title string, policies []string, norm map[string][3]float64) error {
	metrics := []string{"time cost", "energy cost", "total cost"}
	return report.Grouped(w, title, policies, metrics, func(m, p string) float64 {
		v := norm[p]
		switch m {
		case "time cost":
			return v[0]
		case "energy cost":
			return v[1]
		default:
			return v[2]
		}
	})
}

func printOutcome(w io.Writer, o experiments.Outcome) {
	fmt.Fprintf(w, "%-14s energy %12.1f J | makespan %10.1f s | turnaround %12.1f s | cost: energy %10.1f + time %10.1f = %10.1f cents | switches %d, preemptions %d\n",
		o.Policy, o.EnergyJ, o.MakespanS, o.TurnaroundS, o.EnergyCost, o.TimeCost, o.TotalCost, o.Switches, o.Preemptions)
}
