package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table1", "-table2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table I", "Table II", "perlbench", "3.375", "0.330"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(s, "Fig. 1") {
		t.Error("figures ran without being requested")
	}
}

func TestRunFig1And2(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig1", "-fig2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fig. 1", "Exp/Sim", "Fig. 2", "normalized to WBG", "[total cost]", "#"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunFig3Scaled(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig3", "-scale", "0.15"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fig. 3", "lmc", "olb", "ondemand-rr", "normalized to LMC"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunBadScale(t *testing.T) {
	for _, scale := range []string{"0", "-1", "2"} {
		if err := run([]string{"-fig3", "-scale", scale}, &bytes.Buffer{}); err == nil {
			t.Errorf("scale %s accepted", scale)
		}
	}
}
