package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dvfsched/internal/obs"
	"dvfsched/internal/server"
)

// loadOptions carries the latency-harness flags (-mode closed|open).
type loadOptions struct {
	mode     string
	duration time.Duration
	rate     float64
	sessions int
	out      string
}

// loadReport is the harness's machine-readable result.
type loadReport struct {
	Mode      string  `json:"mode"`
	Clients   int     `json:"clients"`
	Sessions  int     `json:"sessions"`
	DurationS float64 `json:"duration_s"`
	// OfferedRate is the open-loop target in requests/second (0 in
	// closed loop, where clients submit as fast as replies return).
	OfferedRate float64 `json:"offered_rate,omitempty"`
	// Shed counts open-loop arrivals dropped because the dispatch
	// queue was full — offered load the harness could not even enqueue.
	Shed       int64   `json:"shed,omitempty"`
	Requests   int64   `json:"requests"`
	Rejected   int64   `json:"rejected"`
	Errors     int64   `json:"errors"`
	Throughput float64 `json:"throughput_rps"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// MeanBatch is the server-observed mean group-commit batch size
	// over the run (server.sessions.batch_size mass / count).
	MeanBatch float64 `json:"mean_batch,omitempty"`
}

// latencyBuckets spans ~50µs loopback submits through multi-second
// stalls; 48 exponential buckets keep the p99 interpolation tight.
var latencyBuckets = obs.ExpBuckets(5e-5, 1.3, 48)

// runLoadHarness drives the session plane's submit path and reports
// throughput and latency quantiles. Closed loop: each client keeps one
// request in flight, so the measured rate is the service's saturation
// throughput at that concurrency. Open loop: a dispatcher offers
// requests at a fixed rate regardless of completions, so queueing
// delay shows up in the quantiles instead of hiding in a slowed-down
// generator (the coordinated-omission trap).
func runLoadHarness(opts options, lo loadOptions, w io.Writer) error {
	if lo.sessions <= 0 {
		lo.sessions = 1
	}
	paths := make([]string, lo.sessions)
	for i := range paths {
		var info server.SessionInfo
		if err := postJSON(opts.addr+"/v1/sessions", opts.spec, &info); err != nil {
			return fmt.Errorf("create session %d: %w", i, err)
		}
		paths[i] = opts.addr + "/v1/sessions/" + info.ID + "/tasks"
	}

	lat := obs.NewRegistry().Histogram("load.latency_s", latencyBuckets)
	var requests, rejected, errs, shed atomic.Int64
	var seq atomic.Int64

	// submitOne posts a single clamped task and observes its latency
	// from t0 (dispatch intent, not send time) to reply.
	submitOne := func(buf []byte, target int, t0 time.Time) []byte {
		n := seq.Add(1)
		buf = append(buf[:0], `{"clamp":true,"tasks":[{"id":`...)
		buf = strconv.AppendInt(buf, n, 10)
		buf = append(buf, `,"cycles":2,"arrival":`...)
		buf = strconv.AppendInt(buf, n/int64(lo.sessions), 10)
		buf = append(buf, `}]}`...)
		resp, err := http.Post(paths[target], "application/json", bytes.NewReader(buf))
		if err != nil {
			errs.Add(1)
			return buf
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			requests.Add(1)
			lat.Observe(time.Since(t0).Seconds())
		case resp.StatusCode == http.StatusTooManyRequests:
			rejected.Add(1)
		default:
			errs.Add(1)
		}
		return buf
	}

	start := time.Now()
	deadline := start.Add(lo.duration)
	var wg sync.WaitGroup
	switch lo.mode {
	case "closed":
		for c := 0; c < opts.clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				buf := make([]byte, 0, 128)
				for time.Now().Before(deadline) {
					buf = submitOne(buf, c%lo.sessions, time.Now())
				}
			}(c)
		}
	case "open":
		if lo.rate <= 0 {
			return fmt.Errorf("open loop needs -rate > 0, got %v", lo.rate)
		}
		tokens := make(chan time.Time, 4096)
		for c := 0; c < opts.clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				buf := make([]byte, 0, 128)
				for t0 := range tokens {
					buf = submitOne(buf, c%lo.sessions, t0)
				}
			}(c)
		}
		tick := time.NewTicker(time.Duration(float64(time.Second) / lo.rate))
		for now := range tick.C {
			if now.After(deadline) {
				break
			}
			select {
			case tokens <- now:
			default:
				shed.Add(1)
			}
		}
		tick.Stop()
		close(tokens)
	default:
		return fmt.Errorf("unknown -mode %q (want oracle, closed, or open)", lo.mode)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	// Drain the sessions so the server ends the run clean; drains are
	// bookkeeping, not measurement.
	for _, p := range paths {
		base := p[:len(p)-len("/tasks")]
		if err := doJSON("DELETE", base, nil, nil, http.StatusOK); err != nil {
			fmt.Fprintf(w, "drain: %v\n", err)
		}
	}

	snap := lat.Snapshot()
	rep := loadReport{
		Mode:       lo.mode,
		Clients:    opts.clients,
		Sessions:   lo.sessions,
		DurationS:  elapsed,
		Shed:       shed.Load(),
		Requests:   requests.Load(),
		Rejected:   rejected.Load(),
		Errors:     errs.Load(),
		Throughput: float64(requests.Load()) / elapsed,
		P50Ms:      snap.Quantile(0.50) * 1000,
		P95Ms:      snap.Quantile(0.95) * 1000,
		P99Ms:      snap.Quantile(0.99) * 1000,
	}
	if lo.mode == "open" {
		rep.OfferedRate = lo.rate
	}
	if m, err := fetchMetrics(opts.addr); err == nil {
		if bs, ok := m.Histograms[obs.ServerSessionBatchSize]; ok && bs.Count > 0 {
			rep.MeanBatch = bs.Sum / float64(bs.Count)
		}
	}

	fmt.Fprintf(w, "%s loop: %d clients over %d sessions for %.2fs\n", rep.Mode, rep.Clients, rep.Sessions, rep.DurationS)
	fmt.Fprintf(w, "throughput %.0f req/s (%d ok, %d rejected, %d errors", rep.Throughput, rep.Requests, rep.Rejected, rep.Errors)
	if rep.Shed > 0 {
		fmt.Fprintf(w, ", %d shed", rep.Shed)
	}
	fmt.Fprintf(w, ")\nlatency p50 %.3fms  p95 %.3fms  p99 %.3fms", rep.P50Ms, rep.P95Ms, rep.P99Ms)
	if rep.MeanBatch > 0 {
		fmt.Fprintf(w, "  mean batch %.2f", rep.MeanBatch)
	}
	fmt.Fprintln(w)
	if rep.Errors > 0 {
		return fmt.Errorf("%d requests failed", rep.Errors)
	}
	if lo.out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(lo.out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", lo.out)
	}
	return nil
}
