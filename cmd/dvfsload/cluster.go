package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dvfsched/internal/cluster"
	"dvfsched/internal/obs"
	"dvfsched/internal/server"
	"dvfsched/internal/trace"
)

// clusterNode is one member of the in-process cluster the harness
// boots: a full dvfschedd stack (server + cluster node + HTTP server)
// on a real loopback socket, so killing it produces the refused
// connections a crashed process would.
type clusterNode struct {
	id   string
	srv  *server.Server
	node *cluster.Node
	http *http.Server
	addr string
}

// runClusterHarness is -mode cluster: boot a 3-node cluster in
// process, drive -clients concurrent sessions through it with the
// cluster client protocol (retry on transport/5xx, duplicate-ID 400 on
// a retry means the lost ack was real), kill one session's owner node
// mid-run, and then hold the survivors to the single-node standard:
// every acknowledged task must appear exactly once in a gapless event
// trace, and a serial in-process rebuild of each trace must regenerate
// it byte-identically and reproduce the drain cost. Any mismatch is a
// non-zero exit.
func runClusterHarness(opts options, w io.Writer) error {
	const nNodes = 3
	nodes, ids, err := bootCluster(nNodes)
	if err != nil {
		return err
	}
	defer func() {
		for _, n := range nodes {
			_ = n.http.Close()
			n.srv.Close()
		}
	}()
	fmt.Fprintf(w, "cluster: %d in-process nodes (%s), %d clients, %d tasks/session\n",
		nNodes, strings.Join(ids, " "), opts.clients, opts.sessionTasks)

	// One session per client, created round-robin through every front.
	sessions := make([]server.SessionInfo, opts.clients)
	for i := range sessions {
		front := nodes[ids[i%len(ids)]]
		if err := postJSON(front.addr+"/v1/sessions", opts.spec, &sessions[i]); err != nil {
			return fmt.Errorf("create session %d: %w", i, err)
		}
	}

	// The victim is session 0's owner; clients front through the
	// survivors so their entry point never dies with it — forwarding
	// and failover are what is under test, not client reconnect logic.
	victim := nodes[ids[0]].node.Route(sessions[0].ID)[0]
	fronts := make([]string, 0, nNodes-1)
	for _, id := range ids {
		if id != victim {
			fronts = append(fronts, nodes[id].addr)
		}
	}

	lat := obs.NewRegistry().Histogram("cluster.submit_latency_s", latencyBuckets)
	var ackedBatches atomic.Int64
	totalBatches := 0
	for range sessions {
		totalBatches += (opts.sessionTasks + opts.batch - 1) / opts.batch
	}
	var killOnce sync.Once
	killedAt := atomic.Int64{}
	kill := func() {
		killOnce.Do(func() {
			_ = nodes[victim].http.Close()
			killedAt.Store(ackedBatches.Load())
		})
	}

	type sessionAudit struct {
		acked map[int]bool
		err   error
	}
	audits := make([]sessionAudit, len(sessions))
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			audits[i] = sessionAudit{acked: map[int]bool{}}
			rng := rand.New(rand.NewSource(opts.seed + int64(i)))
			recs := make([]trace.Record, opts.sessionTasks)
			clock := 0.0
			for j := range recs {
				clock += rng.Float64() * 2
				recs[j] = trace.Record{ID: j + 1, Cycles: 0.5 + rng.Float64()*40, Arrival: clock}
			}
			path := "/v1/sessions/" + sessions[i].ID + "/tasks"
			for lo := 0; lo < len(recs); lo += opts.batch {
				hi := min(lo+opts.batch, len(recs))
				ok, err := clusterSubmit(fronts, path, server.SubmitRequest{Tasks: recs[lo:hi], Clamp: true}, lat)
				if err != nil {
					audits[i].err = err
					return
				}
				if ok {
					for _, r := range recs[lo:hi] {
						audits[i].acked[r.ID] = true
					}
				}
				if ackedBatches.Add(1) == int64(totalBatches/2) {
					kill() // the owner dies with every client mid-flight
				}
			}
		}(i)
	}
	wg.Wait()
	kill()
	for i := range audits {
		if audits[i].err != nil {
			return fmt.Errorf("session %d (%s): %w", i, sessions[i].ID, audits[i].err)
		}
	}

	// Drain and audit every session through the survivors.
	totalTasks, totalEvents, failovers := 0, 0, 0
	for i, info := range sessions {
		drain, events, err := clusterDrainAndFetch(fronts, "/v1/sessions/"+info.ID)
		if err != nil {
			return fmt.Errorf("session %d (%s): %w", i, info.ID, err)
		}
		if err := auditClusterTrace(opts.spec, events, drain, audits[i].acked); err != nil {
			return fmt.Errorf("session %d (%s): %w", i, info.ID, err)
		}
		totalEvents += len(events)
		if drain != nil {
			totalTasks += drain.Tasks
		}
	}

	// Per-node scorecard, read straight off the in-process registries.
	for _, id := range ids {
		reg := nodes[id].srv.Registry().Snapshot()
		mark := ""
		if id == victim {
			mark = "  (killed mid-run)"
		}
		promotions := reg.Counters[obs.ClusterPromotions]
		if promotions > 0 {
			failovers += int(promotions)
		}
		fmt.Fprintf(w, "node %s: %.0f requests, %.0f forwards, %.0f ships, %.0f promotions%s\n",
			id, reg.Counters[obs.ServerRequests], reg.Counters[obs.ClusterForwards],
			reg.Counters[obs.ClusterShips], promotions, mark)
	}
	snap := lat.Snapshot()
	fmt.Fprintf(w, "killed %s after %d/%d acked batches; %d sessions failed over\n",
		victim, killedAt.Load(), totalBatches, failovers)
	fmt.Fprintf(w, "submit latency p50 %.3fms  p99 %.3fms over %d acked submits\n",
		snap.Quantile(0.50)*1000, snap.Quantile(0.99)*1000, int(snap.Count))
	fmt.Fprintf(w, "oracle parity: %d sessions, %d tasks, %d events — all byte-identical\n",
		len(sessions), totalTasks, totalEvents)
	if failovers == 0 {
		return fmt.Errorf("owner was killed but no session promoted — failover never exercised")
	}
	fmt.Fprintln(w, "all checks passed")
	return nil
}

// bootCluster starts n cluster nodes on ephemeral loopback ports.
func bootCluster(n int) (map[string]*clusterNode, []string, error) {
	lns := make([]net.Listener, n)
	ids := make([]string, n)
	peers := make(map[string]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		lns[i] = ln
		ids[i] = fmt.Sprintf("n%d", i+1)
		peers[ids[i]] = "http://" + ln.Addr().String()
	}
	nodes := make(map[string]*clusterNode, n)
	for i, id := range ids {
		srv := server.New(server.Config{})
		node, err := cluster.NewNode(cluster.Config{ID: id, Peers: peers}, srv)
		if err != nil {
			return nil, nil, err
		}
		hs := &http.Server{Handler: node.Handler()}
		nodes[id] = &clusterNode{id: id, srv: srv, node: node, http: hs, addr: peers[id]}
		//dvfslint:allow goroleak Serve returns when the harness closes the node's server at teardown
		go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(hs, lns[i])
	}
	return nodes, ids, nil
}

// clusterSubmit pushes one batch with the cluster retry protocol and
// reports whether it is known accepted. Transport errors, 5xx and 429
// rotate fronts and retry; a duplicate-task 400 on a retry means an
// earlier attempt was accepted but its ack was lost in the kill.
func clusterSubmit(fronts []string, path string, body server.SubmitRequest, lat *obs.Histogram) (bool, error) {
	raw, err := jsonBody(body)
	if err != nil {
		return false, err
	}
	for attempt := 0; attempt < 50; attempt++ {
		front := fronts[attempt%len(fronts)]
		t0 := time.Now()
		code, respBody, err := rawDo(http.MethodPost, front+path, raw)
		switch {
		case err != nil, code >= 500, code == http.StatusTooManyRequests:
			time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
		case code == http.StatusOK:
			lat.Observe(time.Since(t0).Seconds())
			return true, nil
		case code == http.StatusBadRequest && attempt > 0 && bytes.Contains(respBody, []byte("duplicate")):
			return true, nil
		default:
			return false, fmt.Errorf("submit: status %d: %s", code, respBody)
		}
	}
	return false, fmt.Errorf("submit: retries exhausted")
}

// clusterDrainAndFetch drains a session through any surviving front
// and fetches its final trace. A 204 on a drain retry means an earlier
// attempt drained but the ack was lost; the trace is still served.
func clusterDrainAndFetch(fronts []string, path string) (*server.DrainResponse, []obs.Event, error) {
	var drain *server.DrainResponse
	drained := false
	for attempt := 0; attempt < 50 && !drained; attempt++ {
		front := fronts[attempt%len(fronts)]
		code, body, err := rawDo(http.MethodDelete, front+path, nil)
		switch {
		case err != nil || code >= 500 || code == http.StatusTooManyRequests:
			time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
		case code == http.StatusOK:
			var dr server.DrainResponse
			if err := jsonDecode(body, &dr); err != nil {
				return nil, nil, err
			}
			drain, drained = &dr, true
		case code == http.StatusNoContent:
			drained = true
		default:
			return nil, nil, fmt.Errorf("drain: status %d: %s", code, body)
		}
	}
	if !drained {
		return nil, nil, fmt.Errorf("drain: retries exhausted")
	}
	var events []obs.Event
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		front := fronts[attempt%len(fronts)]
		code, body, err := rawDo(http.MethodGet, front+path+"/events", nil)
		if err != nil || code != http.StatusOK {
			lastErr = fmt.Errorf("events: status %d, err %v", code, err)
			time.Sleep(20 * time.Millisecond)
			continue
		}
		events, err = obs.ReadJSONL(bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		return drain, events, nil
	}
	return nil, nil, lastErr
}

// jsonBody marshals a request body once so retries reuse the bytes.
func jsonBody(v any) ([]byte, error) { return json.Marshal(v) }

func jsonDecode(b []byte, v any) error { return json.Unmarshal(b, v) }

// rawDo issues one HTTP request and returns status + body; transport
// errors come back for the caller's retry loop, never fatal.
func rawDo(method, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// formatCost renders a cost for exact comparison: the shortest decimal
// that round-trips the float64, so equal bits compare equal and
// nothing else does.
func formatCost(c float64) string { return strconv.FormatFloat(c, 'g', -1, 64) }

// auditClusterTrace holds one surviving trace to the durability
// contract: gapless sequence numbers, every acknowledged task exactly
// once, and a serial oracle rebuild (server.ReplaySession over the
// trace alone, then drain) that regenerates the trace byte-for-byte
// and reproduces the acked drain cost.
func auditClusterTrace(spec server.PlatformSpec, events []obs.Event, drain *server.DrainResponse, acked map[int]bool) error {
	arrivals := map[int]int{}
	completes := map[int]int{}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			return fmt.Errorf("event %d has seq %d: trace gap or reorder", i, ev.Seq)
		}
		switch ev.Kind {
		case obs.KindArrival:
			arrivals[ev.Task]++
		case obs.KindComplete:
			completes[ev.Task]++
		}
	}
	ids := make([]int, 0, len(acked))
	for id := range acked {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if arrivals[id] != 1 || completes[id] != 1 {
			return fmt.Errorf("acked task %d: %d arrivals, %d completions in the surviving trace",
				id, arrivals[id], completes[id])
		}
	}
	if drain != nil && drain.Tasks != len(arrivals) {
		return fmt.Errorf("drain acked %d tasks, trace holds %d", drain.Tasks, len(arrivals))
	}

	rb, err := server.ReplaySession(context.Background(), spec, 0, nil, events)
	if err != nil {
		return fmt.Errorf("oracle rebuild: %w", err)
	}
	res, err := rb.Sess.Drain(context.Background())
	if err != nil {
		return fmt.Errorf("oracle drain: %w", err)
	}
	got := obs.AppendBinary(nil, rb.Rec.Events())
	want := obs.AppendBinary(nil, events)
	if !bytes.Equal(got, want) {
		return fmt.Errorf("oracle rebuild diverges from surviving trace (%d vs %d encoded bytes)", len(got), len(want))
	}
	if drain != nil {
		if g, w := formatCost(res.TotalCost), formatCost(drain.TotalCost); g != w {
			return fmt.Errorf("oracle cost %s != acked drain cost %s", g, w)
		}
	}
	return nil
}
