package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dvfsched/internal/cluster"
	"dvfsched/internal/obs"
	"dvfsched/internal/server"
	"dvfsched/internal/trace"
)

// clusterNode is one member of the in-process cluster the harness
// boots: a full dvfschedd stack (server + cluster node + HTTP server)
// on a real loopback socket, so killing it produces the refused
// connections a crashed process would.
type clusterNode struct {
	id   string
	srv  *server.Server
	node *cluster.Node
	http *http.Server
	addr string
}

// churnReport is what the churn orchestrator learned, for the final
// scorecard and the post-run invariant checks.
type churnReport struct {
	join        cluster.MembershipChange
	wantMoved   int
	mig         cluster.MigrateInfo
	leave       cluster.MembershipChange
	evacuated   int
	victim      string
	victimOwned int
	killedAt    int64
}

// runClusterHarness is -mode cluster: a full membership-churn smoke.
// It boots a 3-node cluster in process plus a solo 4th node, drives
// -clients concurrent sessions through it with the cluster client
// protocol (retry on transport/5xx, duplicate-ID 400 on a retry means
// the lost ack was real), and while submits are in flight walks the
// whole admin surface: join the 4th node (asserting the rebalance
// moved exactly the sessions the consistent-hash ring diff predicts),
// migrate one session to an explicit pinned target, drain a node out
// of the ring (it must evacuate everything it owns yet keep serving as
// the clients' forwarding front), and finally kill a member outright.
// The survivors are then held to the single-node standard: every
// acknowledged task appears exactly once in a gapless event trace, and
// a serial in-process rebuild of each trace regenerates it
// byte-identically and reproduces the drain cost. Any accepted-task
// loss or oracle mismatch is a non-zero exit.
func runClusterHarness(opts options, w io.Writer) error {
	const nSeed = 3
	nodes, seedIDs, err := bootCluster(nSeed)
	if err != nil {
		return err
	}
	defer func() {
		for _, n := range nodes {
			_ = n.http.Close()
			n.node.Close()
			n.srv.Close()
		}
	}()
	// The joiner boots solo before traffic starts; it enters the ring
	// mid-run via the admin API, not via its boot config.
	joiner, err := bootNode("n4")
	if err != nil {
		return err
	}
	nodes["n4"] = joiner
	allIDs := append(append([]string(nil), seedIDs...), "n4")
	fmt.Fprintf(w, "cluster: %d in-process nodes (%s) + joiner n4, %d clients, %d tasks/session\n",
		nSeed, strings.Join(seedIDs, " "), opts.clients, opts.sessionTasks)

	// One session per client, created round-robin through the seed
	// members.
	sessions := make([]server.SessionInfo, opts.clients)
	for i := range sessions {
		front := nodes[seedIDs[i%len(seedIDs)]]
		if err := postJSON(front.addr+"/v1/sessions", opts.spec, &sessions[i]); err != nil {
			return fmt.Errorf("create session %d: %w", i, err)
		}
	}

	// All clients front through n3: it is the node the churn later
	// drains out of the ring, and a departed node keeping its fronts
	// alive — forwarding into a ring it no longer belongs to — is
	// exactly the contract worth smoking. The kill victim is chosen
	// among n1/n2, so n3 is guaranteed alive end to end.
	fronts := []string{nodes["n3"].addr}

	lat := obs.NewRegistry().Histogram("cluster.submit_latency_s", latencyBuckets)
	var ackedBatches atomic.Int64
	totalBatches := 0
	for range sessions {
		totalBatches += (opts.sessionTasks + opts.batch - 1) / opts.batch
	}
	trafficDone := make(chan struct{})
	rep := &churnReport{}
	churnErr := make(chan error, 1)
	//dvfslint:allow goroleak the churn goroutine is joined via churnErr below
	go func() { churnErr <- runChurn(nodes, seedIDs, allIDs, sessions, rep, &ackedBatches, totalBatches, trafficDone) }()

	type sessionAudit struct {
		acked map[int]bool
		err   error
	}
	audits := make([]sessionAudit, len(sessions))
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			audits[i] = sessionAudit{acked: map[int]bool{}}
			rng := rand.New(rand.NewSource(opts.seed + int64(i)))
			recs := make([]trace.Record, opts.sessionTasks)
			clock := 0.0
			for j := range recs {
				clock += rng.Float64() * 2
				recs[j] = trace.Record{ID: j + 1, Cycles: 0.5 + rng.Float64()*40, Arrival: clock}
			}
			path := "/v1/sessions/" + sessions[i].ID + "/tasks"
			for lo := 0; lo < len(recs); lo += opts.batch {
				hi := min(lo+opts.batch, len(recs))
				ok, err := clusterSubmit(fronts, path, server.SubmitRequest{Tasks: recs[lo:hi], Clamp: true}, lat)
				if err != nil {
					audits[i].err = err
					return
				}
				if ok {
					for _, r := range recs[lo:hi] {
						audits[i].acked[r.ID] = true
					}
				}
				ackedBatches.Add(1)
				// A small gap per batch keeps traffic in flight across
				// the churn steps instead of finishing before them.
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	close(trafficDone)
	if err := <-churnErr; err != nil {
		return err
	}
	for i := range audits {
		if audits[i].err != nil {
			return fmt.Errorf("session %d (%s): %w", i, sessions[i].ID, audits[i].err)
		}
	}

	// Every survivor must hold the post-leave epoch-3 three-member view;
	// the departed n3 must no longer count itself a member.
	for _, id := range allIDs {
		if id == rep.victim {
			continue
		}
		var info cluster.NodeInfo
		if err := adminJSON(http.MethodGet, nodes[id].addr+"/v1/cluster/info", nil, &info); err != nil {
			return fmt.Errorf("final view of %s: %w", id, err)
		}
		if id == "n3" {
			if info.Member {
				return fmt.Errorf("departed n3 still lists itself as a member: %+v", info)
			}
		} else if info.Epoch != 3 || !info.Member || len(info.Peers) != 3 {
			return fmt.Errorf("node %s final view: %+v (want epoch 3, member, 3 peers)", id, info)
		}
	}

	// Drain and audit every session through the departed front.
	totalTasks, totalEvents, failovers := 0, 0, 0
	for i, info := range sessions {
		drain, events, err := clusterDrainAndFetch(fronts, "/v1/sessions/"+info.ID)
		if err != nil {
			return fmt.Errorf("session %d (%s): %w", i, info.ID, err)
		}
		if err := auditClusterTrace(opts.spec, events, drain, audits[i].acked); err != nil {
			return fmt.Errorf("session %d (%s): %w", i, info.ID, err)
		}
		totalEvents += len(events)
		if drain != nil {
			totalTasks += drain.Tasks
		}
	}

	// Per-node scorecard, read straight off the in-process registries.
	for _, id := range allIDs {
		reg := nodes[id].srv.Registry().Snapshot()
		mark := ""
		switch id {
		case rep.victim:
			mark = "  (killed mid-run)"
		case "n3":
			mark = "  (left the ring, kept forwarding)"
		case "n4":
			mark = "  (joined mid-run)"
		}
		promotions := reg.Counters[obs.ClusterPromotions]
		failovers += int(promotions)
		fmt.Fprintf(w, "node %s: %.0f requests, %.0f forwards, %.0f ships, %.0f migrations, %.0f promotions%s\n",
			id, reg.Counters[obs.ServerRequests], reg.Counters[obs.ClusterForwards],
			reg.Counters[obs.ClusterShips], reg.Counters[obs.ClusterMigrations], promotions, mark)
	}
	snap := lat.Snapshot()
	fmt.Fprintf(w, "join n4: epoch %d, moved %d sessions (ring diff predicted %d)\n",
		rep.join.Epoch, rep.join.Moved, rep.wantMoved)
	fmt.Fprintf(w, "migrate %s -> %s (pinned)\n", rep.mig.Session, rep.mig.To)
	fmt.Fprintf(w, "leave n3: epoch %d, evacuated %d sessions\n", rep.leave.Epoch, rep.evacuated)
	fmt.Fprintf(w, "killed %s (owning %d sessions) after %d/%d acked batches; %d promotions\n",
		rep.victim, rep.victimOwned, rep.killedAt, totalBatches, failovers)
	fmt.Fprintf(w, "submit latency p50 %.3fms  p99 %.3fms over %d acked submits\n",
		snap.Quantile(0.50)*1000, snap.Quantile(0.99)*1000, int(snap.Count))
	fmt.Fprintf(w, "oracle parity: %d sessions, %d tasks, %d events — all byte-identical\n",
		len(sessions), totalTasks, totalEvents)
	if rep.victimOwned > 0 && failovers == 0 {
		return fmt.Errorf("a session owner was killed but nothing promoted — failover never exercised")
	}
	fmt.Fprintln(w, "all checks passed")
	return nil
}

// runChurn is the admin-plane side of the smoke, sequenced against the
// client traffic by acked-batch thresholds: join at 1/4 of the run,
// migrate at 1/2, leave at 5/8, kill at 3/4. If traffic outruns a
// threshold the step still executes — the churn sequence always
// completes, it just loses its concurrency.
func runChurn(nodes map[string]*clusterNode, seedIDs, allIDs []string, sessions []server.SessionInfo,
	rep *churnReport, ackedBatches *atomic.Int64, totalBatches int, trafficDone <-chan struct{}) error {
	waitBatches := func(frac float64) {
		goal := int64(frac * float64(totalBatches))
		for ackedBatches.Load() < goal {
			select {
			case <-trafficDone:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	admin := nodes["n1"].addr

	// Join n4. The ring's bounded-movement property is checkable from
	// outside: the only sessions allowed to move are exactly those whose
	// owner differs between the 3-node and 4-node rings.
	waitBatches(0.25)
	oldRing, err := cluster.NewRing(seedIDs, 0)
	if err != nil {
		return err
	}
	newRing, err := cluster.NewRing(allIDs, 0)
	if err != nil {
		return err
	}
	for _, s := range sessions {
		if oldRing.Owner(s.ID) != newRing.Owner(s.ID) {
			rep.wantMoved++
		}
	}
	err = adminJSON(http.MethodPost, admin+"/v1/cluster/nodes/n4",
		map[string]string{"addr": nodes["n4"].addr}, &rep.join)
	if err != nil {
		return fmt.Errorf("join n4: %w", err)
	}
	if rep.join.Failed != 0 || rep.join.Epoch != 2 || len(rep.join.Nodes) != 4 {
		return fmt.Errorf("join n4: %+v (want epoch 2, 4 nodes, 0 failed)", rep.join)
	}
	if rep.join.Moved != rep.wantMoved {
		return fmt.Errorf("join n4 moved %d sessions, ring diff predicts %d", rep.join.Moved, rep.wantMoved)
	}
	for _, s := range sessions {
		if o := newRing.Owner(s.ID); !nodes[o].srv.HasSession(s.ID) {
			return fmt.Errorf("after join: session %s is not on its ring owner %s", s.ID, o)
		}
	}

	// Migrate session 0 to an explicit off-ring target; the placement
	// must pin it there.
	waitBatches(0.5)
	mover := sessions[0].ID
	target := "n4"
	if newRing.Owner(mover) == "n4" {
		target = "n1"
	}
	err = adminJSON(http.MethodPost, admin+"/v1/cluster/sessions/"+mover+"/migrate",
		map[string]string{"target": target}, &rep.mig)
	if err != nil {
		return fmt.Errorf("migrate %s to %s: %w", mover, target, err)
	}
	if rep.mig.To != target || !rep.mig.Pinned {
		return fmt.Errorf("migrate %s: %+v (want pinned move to %s)", mover, rep.mig, target)
	}
	if !nodes[target].srv.HasSession(mover) {
		return fmt.Errorf("migrate %s: target %s has no live shard", mover, target)
	}

	// Drain n3 out of the ring: it must evacuate every session it owns
	// to that session's post-leave ring owner, then keep forwarding.
	waitBatches(0.625)
	ring3, err := cluster.NewRing([]string{"n1", "n2", "n4"}, 0)
	if err != nil {
		return err
	}
	var evacuated []string
	for _, s := range sessions {
		if nodes["n3"].srv.HasSession(s.ID) {
			evacuated = append(evacuated, s.ID)
		}
	}
	rep.evacuated = len(evacuated)
	if err := adminJSON(http.MethodDelete, admin+"/v1/cluster/nodes/n3", nil, &rep.leave); err != nil {
		return fmt.Errorf("leave n3: %w", err)
	}
	if rep.leave.Failed != 0 || rep.leave.Epoch != 3 || len(rep.leave.Nodes) != 3 || rep.leave.Moved != len(evacuated) {
		return fmt.Errorf("leave n3: %+v (want epoch 3, 3 nodes, 0 failed, %d moved)", rep.leave, len(evacuated))
	}
	for _, id := range evacuated {
		if nodes["n3"].srv.HasSession(id) {
			return fmt.Errorf("after leave: departed n3 still holds %s", id)
		}
		if o := ring3.Owner(id); !nodes[o].srv.HasSession(id) {
			return fmt.Errorf("after leave: evacuated session %s is not on its ring owner %s", id, o)
		}
	}

	// Kill the remaining member owning the most sessions — never the
	// migrate target, whose pinned shard the final checks reference.
	waitBatches(0.75)
	for _, cand := range []string{"n1", "n2"} {
		if cand == rep.mig.To {
			continue
		}
		owned := 0
		for _, s := range sessions {
			if nodes[cand].srv.HasSession(s.ID) {
				owned++
			}
		}
		if rep.victim == "" || owned > rep.victimOwned {
			rep.victim, rep.victimOwned = cand, owned
		}
	}
	_ = nodes[rep.victim].http.Close()
	rep.killedAt = ackedBatches.Load()
	return nil
}

// bootCluster starts n cluster nodes on ephemeral loopback ports.
func bootCluster(n int) (map[string]*clusterNode, []string, error) {
	lns := make([]net.Listener, n)
	ids := make([]string, n)
	peers := make(map[string]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		lns[i] = ln
		ids[i] = fmt.Sprintf("n%d", i+1)
		peers[ids[i]] = "http://" + ln.Addr().String()
	}
	nodes := make(map[string]*clusterNode, n)
	for i, id := range ids {
		srv := server.New(server.Config{})
		node, err := cluster.NewNode(cluster.Config{ID: id, Peers: peers}, srv)
		if err != nil {
			return nil, nil, err
		}
		hs := &http.Server{Handler: node.Handler()}
		nodes[id] = &clusterNode{id: id, srv: srv, node: node, http: hs, addr: peers[id]}
		//dvfslint:allow goroleak Serve returns when the harness closes the node's server at teardown
		go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(hs, lns[i])
	}
	return nodes, ids, nil
}

// bootNode starts one solo node on an ephemeral loopback port; it
// becomes a member only when the admin API joins it to the ring.
func bootNode(id string) (*clusterNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := "http://" + ln.Addr().String()
	srv := server.New(server.Config{})
	node, err := cluster.NewNode(cluster.Config{ID: id, Peers: map[string]string{id: addr}}, srv)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: node.Handler()}
	//dvfslint:allow goroleak Serve returns when the harness closes the node's server at teardown
	go func() { _ = hs.Serve(ln) }()
	return &clusterNode{id: id, srv: srv, node: node, http: hs, addr: addr}, nil
}

// adminJSON issues one cluster-admin call and decodes the response.
// The admin plane is expected to answer first time — any transport
// error or non-200 is a smoke failure, not a retry.
func adminJSON(method, url string, body, out any) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return err
		}
	}
	code, respBody, err := rawDo(method, url, raw)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("%s %s: status %d: %s", method, url, code, respBody)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(respBody, out)
}

// clusterSubmit pushes one batch with the cluster retry protocol and
// reports whether it is known accepted. Transport errors, 5xx and 429
// rotate fronts and retry; a duplicate-task 400 on a retry means an
// earlier attempt was accepted but its ack was lost in the kill.
func clusterSubmit(fronts []string, path string, body server.SubmitRequest, lat *obs.Histogram) (bool, error) {
	raw, err := jsonBody(body)
	if err != nil {
		return false, err
	}
	for attempt := 0; attempt < 50; attempt++ {
		front := fronts[attempt%len(fronts)]
		t0 := time.Now()
		code, respBody, err := rawDo(http.MethodPost, front+path, raw)
		switch {
		case err != nil, code >= 500, code == http.StatusTooManyRequests:
			time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
		case code == http.StatusOK:
			lat.Observe(time.Since(t0).Seconds())
			return true, nil
		case code == http.StatusBadRequest && attempt > 0 && bytes.Contains(respBody, []byte("duplicate")):
			return true, nil
		default:
			return false, fmt.Errorf("submit: status %d: %s", code, respBody)
		}
	}
	return false, fmt.Errorf("submit: retries exhausted")
}

// clusterDrainAndFetch drains a session through any surviving front
// and fetches its final trace. A 204 on a drain retry means an earlier
// attempt drained but the ack was lost; the trace is still served.
func clusterDrainAndFetch(fronts []string, path string) (*server.DrainResponse, []obs.Event, error) {
	var drain *server.DrainResponse
	drained := false
	for attempt := 0; attempt < 50 && !drained; attempt++ {
		front := fronts[attempt%len(fronts)]
		code, body, err := rawDo(http.MethodDelete, front+path, nil)
		switch {
		case err != nil || code >= 500 || code == http.StatusTooManyRequests:
			time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
		case code == http.StatusOK:
			var dr server.DrainResponse
			if err := jsonDecode(body, &dr); err != nil {
				return nil, nil, err
			}
			drain, drained = &dr, true
		case code == http.StatusNoContent:
			drained = true
		default:
			return nil, nil, fmt.Errorf("drain: status %d: %s", code, body)
		}
	}
	if !drained {
		return nil, nil, fmt.Errorf("drain: retries exhausted")
	}
	var events []obs.Event
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		front := fronts[attempt%len(fronts)]
		code, body, err := rawDo(http.MethodGet, front+path+"/events", nil)
		if err != nil || code != http.StatusOK {
			lastErr = fmt.Errorf("events: status %d, err %v", code, err)
			time.Sleep(20 * time.Millisecond)
			continue
		}
		events, err = obs.ReadJSONL(bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		return drain, events, nil
	}
	return nil, nil, lastErr
}

// jsonBody marshals a request body once so retries reuse the bytes.
func jsonBody(v any) ([]byte, error) { return json.Marshal(v) }

func jsonDecode(b []byte, v any) error { return json.Unmarshal(b, v) }

// rawDo issues one HTTP request and returns status + body; transport
// errors come back for the caller's retry loop, never fatal.
func rawDo(method, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// formatCost renders a cost for exact comparison: the shortest decimal
// that round-trips the float64, so equal bits compare equal and
// nothing else does.
func formatCost(c float64) string { return strconv.FormatFloat(c, 'g', -1, 64) }

// auditClusterTrace holds one surviving trace to the durability
// contract: gapless sequence numbers, every acknowledged task exactly
// once, and a serial oracle rebuild (server.ReplaySession over the
// trace alone, then drain) that regenerates the trace byte-for-byte
// and reproduces the acked drain cost.
func auditClusterTrace(spec server.PlatformSpec, events []obs.Event, drain *server.DrainResponse, acked map[int]bool) error {
	arrivals := map[int]int{}
	completes := map[int]int{}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			return fmt.Errorf("event %d has seq %d: trace gap or reorder", i, ev.Seq)
		}
		switch ev.Kind {
		case obs.KindArrival:
			arrivals[ev.Task]++
		case obs.KindComplete:
			completes[ev.Task]++
		}
	}
	ids := make([]int, 0, len(acked))
	for id := range acked {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if arrivals[id] != 1 || completes[id] != 1 {
			return fmt.Errorf("acked task %d: %d arrivals, %d completions in the surviving trace",
				id, arrivals[id], completes[id])
		}
	}
	if drain != nil && drain.Tasks != len(arrivals) {
		return fmt.Errorf("drain acked %d tasks, trace holds %d", drain.Tasks, len(arrivals))
	}

	rb, err := server.ReplaySession(context.Background(), spec, 0, nil, events)
	if err != nil {
		return fmt.Errorf("oracle rebuild: %w", err)
	}
	res, err := rb.Sess.Drain(context.Background())
	if err != nil {
		return fmt.Errorf("oracle drain: %w", err)
	}
	got := obs.AppendBinary(nil, rb.Rec.Events())
	want := obs.AppendBinary(nil, events)
	if !bytes.Equal(got, want) {
		return fmt.Errorf("oracle rebuild diverges from surviving trace (%d vs %d encoded bytes)", len(got), len(want))
	}
	if drain != nil {
		if g, w := formatCost(res.TotalCost), formatCost(drain.TotalCost); g != w {
			return fmt.Errorf("oracle cost %s != acked drain cost %s", g, w)
		}
	}
	return nil
}
