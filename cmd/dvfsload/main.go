// Command dvfsload is the smoke client and load generator for
// dvfschedd. It fires N concurrent clients at both API planes and
// cross-checks the service against the in-process scheduler:
//
//   - planning plane: each client posts a seeded random batch workload
//     to /v1/plan and requires the returned total cost to be
//     byte-identical to a direct core.Scheduler PlanBatch run of the
//     same workload, then reposts it and requires a cache hit;
//   - session plane: each client opens an online session, submits
//     arrivals in batches, drains it with DELETE, fetches the event
//     trace, replays it through report.TimelineFromEvents, and
//     requires the replayed energy/turnaround cost to match the
//     drain report.
//
// Beyond the default oracle mode, -mode closed and -mode open turn it
// into a latency harness for the session submit path: closed keeps
// -clients requests in flight back to back (saturation throughput);
// open offers a fixed -rate regardless of completions, so queueing
// delay appears in the reported quantiles instead of slowing the
// generator (coordinated omission). Both report throughput and
// p50/p95/p99 and can write the result as JSON with -out.
//
// Usage:
//
//	dvfsload -addr http://127.0.0.1:8080 [-clients 8] [-plan-tasks 24]
//	         [-session-tasks 40] [-batch 10] [-seed 1]
//	         [-cores 4] [-platform table2] [-re 0.1] [-rt 0.4]
//	         [-mode oracle|closed|open|cluster] [-duration 10s] [-rate 200]
//	         [-sessions 1] [-out load.json]
//
// -mode cluster needs no daemon: it boots a 3-node cluster in process
// (internal/cluster), drives concurrent sessions through it, kills one
// session's owner node mid-run, and verifies the failover contract —
// every acknowledged task survives in a gapless trace that a serial
// oracle rebuild reproduces byte-identically.
//
// Exit status is non-zero if any check fails.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
	"dvfsched/internal/report"
	"dvfsched/internal/server"
	"dvfsched/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dvfsload: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// options carries the parsed flags to the client goroutines.
type options struct {
	addr         string
	clients      int
	planTasks    int
	sessionTasks int
	batch        int
	seed         int64
	spec         server.PlatformSpec
}

// clientStats is one client's scorecard.
type clientStats struct {
	plans     int
	cacheHits int
	sessions  int
	tasks     int
	events    int
	err       error
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dvfsload", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "http://127.0.0.1:8080", "base URL of dvfschedd")
		clients      = fs.Int("clients", 8, "concurrent clients")
		planTasks    = fs.Int("plan-tasks", 24, "tasks per batch plan request")
		sessionTasks = fs.Int("session-tasks", 40, "tasks per online session")
		batch        = fs.Int("batch", 10, "tasks per session submit")
		seed         = fs.Int64("seed", 1, "workload seed (client i uses seed+i)")
		cores        = fs.Int("cores", 4, "cores per requested platform")
		platName     = fs.String("platform", "table2", "rate table: table2, i7, or exynos")
		re           = fs.Float64("re", 0.1, "Re, cents per joule")
		rt           = fs.Float64("rt", 0.4, "Rt, cents per second of waiting")
		mode         = fs.String("mode", "oracle", "oracle (correctness cross-check), closed/open (latency harness), or cluster (in-process failover harness)")
		duration     = fs.Duration("duration", 10*time.Second, "measurement window for closed/open loop")
		rate         = fs.Float64("rate", 200, "offered requests/second in open loop")
		sessions     = fs.Int("sessions", 1, "session shards to spread closed/open-loop load over")
		out          = fs.String("out", "", "write the closed/open-loop report as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := options{
		addr:         *addr,
		clients:      *clients,
		planTasks:    *planTasks,
		sessionTasks: *sessionTasks,
		batch:        *batch,
		seed:         *seed,
		spec:         server.PlatformSpec{Cores: *cores, Platform: *platName, Re: *re, Rt: *rt},
	}
	if opts.clients <= 0 {
		return fmt.Errorf("need at least one client")
	}
	if *mode == "cluster" {
		// The cluster harness boots its own 3-node in-process cluster;
		// -addr is ignored.
		return runClusterHarness(opts, w)
	}
	if *mode != "oracle" {
		return runLoadHarness(opts, loadOptions{
			mode:     *mode,
			duration: *duration,
			rate:     *rate,
			sessions: *sessions,
			out:      *out,
		}, w)
	}

	start := time.Now()
	stats := make([]clientStats, opts.clients)
	var wg sync.WaitGroup
	for i := 0; i < opts.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i] = runClient(opts, i)
		}(i)
	}
	wg.Wait()

	var total clientStats
	failed := 0
	for i, st := range stats {
		total.plans += st.plans
		total.cacheHits += st.cacheHits
		total.sessions += st.sessions
		total.tasks += st.tasks
		total.events += st.events
		if st.err != nil {
			failed++
			fmt.Fprintf(w, "client %d: FAIL: %v\n", i, st.err)
		}
	}
	fmt.Fprintf(w, "%d clients in %.2fs: %d plans (%d cached), %d sessions drained, %d tasks, %d events replayed\n",
		opts.clients, time.Since(start).Seconds(), total.plans, total.cacheHits, total.sessions, total.tasks, total.events)
	if snap, err := fetchMetrics(opts.addr); err == nil {
		fmt.Fprintf(w, "server: %.0f requests, %.0f rejected, cache %.0f/%.0f hit/miss\n",
			snap.Counters[obs.ServerRequests], snap.Counters[obs.ServerRejected],
			snap.Counters[obs.ServerPlanCacheHits], snap.Counters[obs.ServerPlanCacheMisses])
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d clients failed", failed, opts.clients)
	}
	fmt.Fprintln(w, "all checks passed")
	return nil
}

// runClient exercises both planes once and verifies every answer.
func runClient(opts options, id int) clientStats {
	var st clientStats
	st.err = func() error {
		rng := rand.New(rand.NewSource(opts.seed + int64(id)))
		if err := checkPlanPlane(opts, rng, &st); err != nil {
			return fmt.Errorf("plan plane: %w", err)
		}
		if err := checkSessionPlane(opts, rng, &st); err != nil {
			return fmt.Errorf("session plane: %w", err)
		}
		return nil
	}()
	return st
}

// checkPlanPlane posts one batch workload and cross-checks the cost
// against a direct in-process run, then reposts it for a cache hit.
func checkPlanPlane(opts options, rng *rand.Rand, st *clientStats) error {
	recs := make([]trace.Record, opts.planTasks)
	for i := range recs {
		recs[i] = trace.Record{ID: i, Cycles: 1 + rng.Float64()*120}
	}
	req := server.PlanRequest{PlatformSpec: opts.spec, Tasks: recs}

	var first server.PlanResponse
	if err := postJSON(opts.addr+"/v1/plan", req, &first); err != nil {
		return err
	}
	st.plans++

	want, err := directPlanCost(opts.spec, recs)
	if err != nil {
		return err
	}
	got := strconv.FormatFloat(first.TotalCost, 'g', -1, 64)
	if got != want {
		return fmt.Errorf("service cost %s != direct scheduler cost %s", got, want)
	}

	var second server.PlanResponse
	if err := postJSON(opts.addr+"/v1/plan", req, &second); err != nil {
		return err
	}
	st.plans++
	if !second.Cached {
		return fmt.Errorf("identical repost was not served from cache")
	}
	if !model.ApproxEq(second.TotalCost, first.TotalCost, model.DefaultEps) {
		return fmt.Errorf("cache changed the answer: %v vs %v", second.TotalCost, first.TotalCost)
	}
	st.cacheHits++
	return nil
}

// directPlanCost runs the same workload through the in-process
// facade and formats the total cost for byte comparison.
func directPlanCost(spec server.PlatformSpec, recs []trace.Record) (string, error) {
	rates, err := rateTable(spec.Platform)
	if err != nil {
		return "", err
	}
	tasks := make(model.TaskSet, len(recs))
	for i, r := range recs {
		tasks[i] = r.Task()
	}
	sched, err := core.New(model.CostParams{Re: spec.Re, Rt: spec.Rt},
		platform.Homogeneous(spec.Cores, rates, platform.Ideal{}))
	if err != nil {
		return "", err
	}
	plan, err := sched.PlanBatch(context.Background(), tasks)
	if err != nil {
		return "", err
	}
	_, _, total := plan.Cost()
	return strconv.FormatFloat(total, 'g', -1, 64), nil
}

// checkSessionPlane drives one full session life cycle and replays the
// streamed trace against the drain report.
func checkSessionPlane(opts options, rng *rand.Rand, st *clientStats) error {
	var info server.SessionInfo
	if err := postJSON(opts.addr+"/v1/sessions", opts.spec, &info); err != nil {
		return err
	}
	base := opts.addr + "/v1/sessions/" + info.ID

	// Monotone arrivals, mixed sizes — an online stream in miniature.
	recs := make([]trace.Record, opts.sessionTasks)
	clock := 0.0
	for i := range recs {
		clock += rng.Float64() * 2
		recs[i] = trace.Record{ID: i, Cycles: 0.5 + rng.Float64()*40, Arrival: clock}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Arrival < recs[j].Arrival })
	for startIdx := 0; startIdx < len(recs); startIdx += opts.batch {
		end := startIdx + opts.batch
		if end > len(recs) {
			end = len(recs)
		}
		var sub server.SubmitResponse
		if err := postJSON(base+"/tasks", server.SubmitRequest{Tasks: recs[startIdx:end]}, &sub); err != nil {
			return err
		}
		if sub.Accepted != end-startIdx {
			return fmt.Errorf("submit accepted %d of %d", sub.Accepted, end-startIdx)
		}
	}

	var drain server.DrainResponse
	if err := doJSON("DELETE", base, nil, &drain, http.StatusOK); err != nil {
		return err
	}
	if drain.Tasks != len(recs) {
		return fmt.Errorf("drained %d tasks, submitted %d", drain.Tasks, len(recs))
	}
	st.sessions++
	st.tasks += drain.Tasks

	events, err := fetchEvents(base + "/events")
	if err != nil {
		return err
	}
	st.events += len(events)
	if err := replayMatchesDrain(opts.spec, events, drain); err != nil {
		return err
	}
	return doJSON("DELETE", base, nil, nil, http.StatusNoContent)
}

// replayMatchesDrain re-derives the session's cost from its streamed
// event trace and compares it with the drain report.
func replayMatchesDrain(spec server.PlatformSpec, events []obs.Event, drain server.DrainResponse) error {
	if _, err := report.TimelineFromEvents(events); err != nil {
		return fmt.Errorf("trace does not replay: %w", err)
	}
	reg := obs.NewRegistry()
	sink := obs.NewMetricsSink(reg)
	for _, ev := range events {
		sink.Emit(ev)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sim.tasks.completed"]; !model.ApproxEq(got, float64(drain.Tasks), model.DefaultEps) {
		return fmt.Errorf("trace completes %v tasks, drain reports %d", got, drain.Tasks)
	}
	cost := spec.Re*snap.Counters["sim.energy_j"] + spec.Rt*snap.Histograms["sim.turnaround_s"].Sum
	if math.Abs(cost-drain.TotalCost) > 1e-6*math.Max(1, math.Abs(drain.TotalCost)) {
		return fmt.Errorf("replayed cost %v != drain cost %v", cost, drain.TotalCost)
	}
	return nil
}

// postJSON posts a body and decodes a 2xx JSON reply, retrying briefly
// on backpressure (429) so load spikes don't abort the run.
func postJSON(url string, body, out any) error {
	return doJSON("POST", url, body, out, 0)
}

func doJSON(method, url string, body, out any, wantStatus int) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, url, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= 20 {
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	ok := resp.StatusCode >= 200 && resp.StatusCode < 300
	if wantStatus != 0 {
		ok = resp.StatusCode == wantStatus
	}
	if !ok {
		return fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out != nil && len(data) > 0 {
		return json.Unmarshal(data, out)
	}
	return nil
}

// fetchEvents streams and parses a session's JSONL event trace.
func fetchEvents(url string) ([]obs.Event, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return obs.ReadJSONL(resp.Body)
}

// fetchMetrics grabs the server's registry snapshot.
func fetchMetrics(addr string) (*obs.Snapshot, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func rateTable(name string) (*model.RateTable, error) {
	switch name {
	case "table2":
		return platform.TableII(), nil
	case "i7":
		return platform.IntelI7950(), nil
	case "exynos":
		return platform.ExynosT4412(), nil
	default:
		return nil, fmt.Errorf("unknown platform %q", name)
	}
}
