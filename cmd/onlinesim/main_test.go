package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dvfsched/internal/experiments"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/report"
	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

func TestRunScaledSynthetic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-cores", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fig. 3", "lmc", "olb", "ondemand-rr", "OLB/LMC", "OD /LMC"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunWithTraceFile(t *testing.T) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 200, 30, 60
	tasks, err := judge.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "judge.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lmc") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunBadArgs(t *testing.T) {
	cases := [][]string{
		{"-scale", "0"},
		{"-scale", "1.5"},
		{"-trace", "/no/such/file"},
		{"-re", "0", "-scale", "0.05"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestTraceOutReplayMatchesDirect(t *testing.T) {
	// The PR's acceptance path: the JSONL dump written by -trace-out
	// must replay into the exact Gantt/CSV the simulator's own
	// timeline recording produces.
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 100, 20, 40
	tasks, err := judge.Generate(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "judge.jsonl")
	if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	eventsPath := filepath.Join(dir, "events.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")

	var out bytes.Buffer
	if err := run([]string{"-trace", tracePath, "-cores", "2",
		"-trace-out", eventsPath, "-metrics-out", metricsPath}, &out); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	events, rerr := obs.ReadJSONL(f)
	f.Close()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	replayed, err := report.TimelineFromEvents(events)
	if err != nil {
		t.Fatal(err)
	}

	// Re-run the same configuration with the engine's own recording.
	res, err := experiments.Fig3(experiments.Fig3Config{
		Tasks:          tasks,
		Cores:          2,
		Params:         model.CostParams{Re: 0.4, Rt: 0.1},
		RecordTimeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	direct := report.MergeTimeline(res.LMCTimeline)
	if !reflect.DeepEqual(replayed, direct) {
		t.Fatalf("replayed timeline differs from direct recording (%d vs %d segments)",
			len(replayed), len(direct))
	}
	var gDirect, gTrace, cDirect, cTrace bytes.Buffer
	if err := report.Gantt(&gDirect, direct); err != nil {
		t.Fatal(err)
	}
	if err := report.TraceGantt(&gTrace, events); err != nil {
		t.Fatal(err)
	}
	if gDirect.String() != gTrace.String() {
		t.Error("gantt via trace differs from direct gantt")
	}
	if err := report.TimelineCSV(&cDirect, direct); err != nil {
		t.Fatal(err)
	}
	if err := report.TraceCSV(&cTrace, events); err != nil {
		t.Fatal(err)
	}
	if cDirect.String() != cTrace.String() {
		t.Error("csv via trace differs from direct csv")
	}

	// The metrics snapshot must parse and carry the headline counters.
	mb, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["sim.tasks.completed"]; got != float64(len(tasks)) {
		t.Errorf("sim.tasks.completed = %v, want %d", got, len(tasks))
	}
	if snap.Counters["lmc.marginal_evals"] == 0 {
		t.Error("lmc.marginal_evals missing from metrics snapshot")
	}
	if snap.Counters["sim.energy_j"] <= 0 {
		t.Error("sim.energy_j missing from metrics snapshot")
	}
}

func TestTraceOutBinaryMatchesJSONL(t *testing.T) {
	// The same deterministic run dumped in both encodings: the binary
	// file must decode to the identical event stream (proven through
	// the canonical JSON rendering) and be substantially smaller.
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "events.jsonl")
	binPath := filepath.Join(dir, "events.bintrace")
	common := []string{"-scale", "0.1", "-cores", "2", "-seed", "3"}

	var out bytes.Buffer
	if err := run(append([]string{"-trace-out", jsonlPath}, common...), &out); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-trace-out", binPath, "-trace-format", "binary"}, common...), &out); err != nil {
		t.Fatal(err)
	}

	jsonlBytes, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	binBytes, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.DetectBinary(binBytes) {
		t.Fatal("binary dump does not start with the trace magic")
	}
	events, err := obs.ReadBinary(bytes.NewReader(binBytes))
	if err != nil {
		t.Fatal(err)
	}
	var rejson []byte
	for _, ev := range events {
		rejson = ev.AppendJSON(rejson)
		rejson = append(rejson, '\n')
	}
	if !bytes.Equal(rejson, jsonlBytes) {
		t.Fatalf("binary dump decodes to different events (%d vs %d bytes of JSON)",
			len(rejson), len(jsonlBytes))
	}
	if len(binBytes)*3 > len(jsonlBytes) {
		t.Errorf("binary dump %d bytes, jsonl %d bytes: expected at least 3x smaller",
			len(binBytes), len(jsonlBytes))
	}

	if err := run([]string{"-trace-format", "gob"}, &bytes.Buffer{}); err == nil {
		t.Error("-trace-format gob accepted")
	}
}
