package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

func TestRunScaledSynthetic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-cores", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Fig. 3", "lmc", "olb", "ondemand-rr", "OLB/LMC", "OD /LMC"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunWithTraceFile(t *testing.T) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 200, 30, 60
	tasks, err := judge.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "judge.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lmc") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunBadArgs(t *testing.T) {
	cases := [][]string{
		{"-scale", "0"},
		{"-scale", "1.5"},
		{"-trace", "/no/such/file"},
		{"-re", "0", "-scale", "0.05"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
