// Command onlinesim runs the online-mode experiment of Fig. 3: Least
// Marginal Cost against Opportunistic Load Balancing and On-demand on
// a Judgegirl-like trace (synthesized or loaded from JSONL).
//
// Usage:
//
//	onlinesim [-cores 4] [-seed N] [-trace trace.jsonl]
//	          [-re 0.4] [-rt 0.1] [-scale 1]
//	          [-trace-out events.jsonl] [-trace-format jsonl|binary]
//	          [-metrics-out metrics.json]
//
// -trace-out dumps the LMC run's event stream, as JSONL by default or
// in the compact framed binary encoding with -trace-format=binary
// (cmd/traceinfo and the report replayer auto-detect either). The
// report package replays such a dump into the same Gantt/CSV artifacts
// the simulator produces directly. -metrics-out writes the run's
// counter, gauge and histogram snapshot as JSON.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"dvfsched/internal/experiments"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("onlinesim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("onlinesim", flag.ContinueOnError)
	var (
		cores      = fs.Int("cores", 4, "number of cores")
		seed       = fs.Int64("seed", 0, "trace seed (0 = default)")
		traceFile  = fs.String("trace", "", "JSONL online trace (default: synthesized Judgegirl-like)")
		re         = fs.Float64("re", 0.4, "Re, cents per joule")
		rt         = fs.Float64("rt", 0.1, "Rt, cents per second")
		scale      = fs.Float64("scale", 1, "synthesized-trace scale factor (0 < scale <= 1)")
		traceOut    = fs.String("trace-out", "", "write the LMC run's event stream")
		traceFormat = fs.String("trace-format", "jsonl", "event stream encoding for -trace-out: jsonl or binary")
		metricsOut  = fs.String("metrics-out", "", "write the LMC run's metrics snapshot as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("scale must be in (0, 1], got %v", *scale)
	}
	if *traceFormat != "jsonl" && *traceFormat != "binary" {
		return fmt.Errorf("unknown -trace-format %q (want jsonl or binary)", *traceFormat)
	}

	cfg := experiments.Fig3Config{
		Cores:  *cores,
		Seed:   *seed,
		Params: model.CostParams{Re: *re, Rt: *rt},
	}
	var reg *obs.Registry
	if *traceOut != "" || *metricsOut != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
		cfg.Sink = obs.NewMetricsSink(reg)
	}
	// traceWriter is either encoding's sink: both seal buffered frames
	// on Close and retain the first write error.
	type traceWriter interface {
		obs.Sink
		Close() error
	}
	var tw traceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if *traceFormat == "binary" {
			tw = obs.NewBinaryWriter(f)
		} else {
			tw = obs.NewJSONLWriter(f)
		}
		cfg.Sink = obs.Multi(tw, cfg.Sink)
	}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		tasks, rerr := trace.Read(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
		cfg.Tasks = tasks
	} else if *scale < 1 {
		judge := workload.DefaultJudgeConfig()
		judge.Interactive = int(float64(judge.Interactive) * *scale)
		judge.NonInteractive = int(float64(judge.NonInteractive) * *scale)
		judge.Duration *= *scale
		cfg.Judge = judge
	}

	res, err := experiments.Fig3(cfg)
	if err != nil {
		return err
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", *traceOut, err)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		werr := reg.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing %s: %w", *metricsOut, werr)
		}
	}
	fmt.Fprintln(w, "Fig. 3 — online-mode scheduler comparison:")
	for _, o := range []experiments.Outcome{res.LMC, res.OLB, res.OD} {
		fmt.Fprintf(w, "  %-12s energy %12.1f J | makespan %9.1f s | turnaround %12.1f s | cost: energy %10.1f + time %10.1f = %10.1f cents | preemptions %d\n",
			o.Policy, o.EnergyJ, o.MakespanS, o.TurnaroundS, o.EnergyCost, o.TimeCost, o.TotalCost, o.Preemptions)
	}
	fmt.Fprintf(w, "OLB/LMC: time %.3f  energy %.3f  total %.3f\n", res.OLBvsLMC[0], res.OLBvsLMC[1], res.OLBvsLMC[2])
	fmt.Fprintf(w, "OD /LMC: time %.3f  energy %.3f  total %.3f\n", res.ODvsLMC[0], res.ODvsLMC[1], res.ODvsLMC[2])

	// Where LMC spends its time: the frequency-residency histogram.
	rates := make([]float64, 0, len(res.LMCResidency))
	var busy float64
	for r, s := range res.LMCResidency {
		rates = append(rates, r)
		busy += s
	}
	sort.Float64s(rates)
	fmt.Fprintf(w, "LMC frequency residency (%.1f busy core-seconds):\n", busy)
	for _, r := range rates {
		fmt.Fprintf(w, "  %4.1f GHz: %6.1f s (%4.1f%%)\n", r, res.LMCResidency[r], 100*res.LMCResidency[r]/busy)
	}
	fmt.Fprintf(w, "interactive p99 response: LMC %.4f s, OLB %.4f s, OD %.4f s\n",
		res.LMC.InteractiveP99S, res.OLB.InteractiveP99S, res.OD.InteractiveP99S)
	return nil
}
