// Command traceinfo summarizes a task trace: counts, demand
// distribution, arrival span, and offered load — the quantities that
// determine which scheduling regime (under-loaded vs saturated) an
// experiment will exercise.
//
// It accepts either a JSONL task trace (tracegen's output) or a binary
// event trace (onlinesim -trace-format=binary, or the daemon's
// events?format=binary endpoint), auto-detected by the leading magic
// bytes. For an event trace the task set is reconstructed from the
// arrival events.
//
// Usage:
//
//	traceinfo trace.jsonl
//	traceinfo events.bintrace
//	tracegen -kind judge | traceinfo
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceinfo: ")
	flag.Parse()
	if err := run(flag.Args(), os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdin io.Reader, w io.Writer) error {
	var r io.Reader
	switch len(args) {
	case 0:
		r = stdin
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	default:
		return fmt.Errorf("expected at most one trace file, got %d arguments", len(args))
	}
	tasks, err := readTasks(r)
	if err != nil {
		return err
	}
	summary, err := workload.Describe(tasks)
	if err != nil {
		return err
	}
	fmt.Fprint(w, summary)
	return nil
}

// readTasks sniffs the stream's leading bytes: the binary event-trace
// magic selects event decoding (tasks rebuilt from arrivals), anything
// else parses as a JSONL task trace.
func readTasks(r io.Reader) (model.TaskSet, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(len(obs.BinaryMagic()))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if !obs.DetectBinary(prefix) {
		return trace.Read(br)
	}
	events, err := obs.ReadBinary(br)
	if err != nil {
		return nil, err
	}
	return tasksFromEvents(events)
}

// tasksFromEvents reconstructs the submitted task set from a session's
// arrival events. Deadlines are not recorded in the event stream, so
// reconstructed tasks carry none.
func tasksFromEvents(events []obs.Event) (model.TaskSet, error) {
	var tasks model.TaskSet
	for _, ev := range events {
		if ev.Kind != obs.KindArrival {
			continue
		}
		tasks = append(tasks, model.Task{
			ID:          ev.Task,
			Cycles:      ev.Cycles,
			Arrival:     ev.T,
			Deadline:    model.NoDeadline,
			Interactive: ev.Interactive,
		})
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("binary event trace contains no arrival events")
	}
	return tasks, nil
}
