// Command traceinfo summarizes a JSONL task trace: counts, demand
// distribution, arrival span, and offered load — the quantities that
// determine which scheduling regime (under-loaded vs saturated) an
// experiment will exercise.
//
// Usage:
//
//	traceinfo trace.jsonl
//	tracegen -kind judge | traceinfo
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceinfo: ")
	flag.Parse()
	if err := run(flag.Args(), os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdin io.Reader, w io.Writer) error {
	var r io.Reader
	switch len(args) {
	case 0:
		r = stdin
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	default:
		return fmt.Errorf("expected at most one trace file, got %d arguments", len(args))
	}
	tasks, err := trace.Read(r)
	if err != nil {
		return err
	}
	summary, err := workload.Describe(tasks)
	if err != nil {
		return err
	}
	fmt.Fprint(w, summary)
	return nil
}
