package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

func sampleTrace(t *testing.T) []byte {
	t.Helper()
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 100, 20, 60
	tasks, err := judge.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, bytes.NewReader(sampleTrace(t)), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"tasks:", "100 interactive", "20 non-interactive", "offered load", "cores needed"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.jsonl")
	if err := os.WriteFile(path, sampleTrace(t), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "demand:") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"a", "b"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("two files accepted")
	}
	if err := run([]string{"/no/such/file"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(nil, strings.NewReader("garbage"), &bytes.Buffer{}); err == nil {
		t.Error("garbage trace accepted")
	}
}
