package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

func sampleTrace(t *testing.T) []byte {
	t.Helper()
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 100, 20, 60
	tasks, err := judge.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, bytes.NewReader(sampleTrace(t)), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"tasks:", "100 interactive", "20 non-interactive", "offered load", "cores needed"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.jsonl")
	if err := os.WriteFile(path, sampleTrace(t), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "demand:") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"a", "b"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("two files accepted")
	}
	if err := run([]string{"/no/such/file"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(nil, strings.NewReader("garbage"), &bytes.Buffer{}); err == nil {
		t.Error("garbage trace accepted")
	}
}

// binaryEventTrace encodes the sample task set as a binary event trace
// the way a session would emit it: one arrival event per task.
func binaryEventTrace(t *testing.T) ([]byte, model.TaskSet) {
	t.Helper()
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 100, 20, 60
	tasks, err := judge.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	events := make([]obs.Event, len(tasks))
	for i, task := range tasks {
		events[i] = obs.Event{
			Seq: uint64(i + 1), T: task.Arrival, Kind: obs.KindArrival,
			Core: -1, Task: task.ID, Cycles: task.Cycles, Interactive: task.Interactive,
		}
	}
	return obs.AppendBinary(nil, events), tasks
}

func TestRunBinaryEventTrace(t *testing.T) {
	bin, tasks := binaryEventTrace(t)
	var out bytes.Buffer
	if err := run(nil, bytes.NewReader(bin), &out); err != nil {
		t.Fatal(err)
	}

	// The summary must match Describe over the reconstructed set: same
	// tasks, but deadlines are not recorded in the event stream.
	stripped := tasks.Clone()
	for i := range stripped {
		stripped[i].Name = ""
		stripped[i].Deadline = model.NoDeadline
	}
	want, err := workload.Describe(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != want.String() {
		t.Errorf("binary summary:\n%swant:\n%s", out.String(), want.String())
	}

	// Same detection from a file argument.
	path := filepath.Join(t.TempDir(), "events.bintrace")
	if err := os.WriteFile(path, bin, 0o644); err != nil {
		t.Fatal(err)
	}
	var fromFile bytes.Buffer
	if err := run([]string{path}, nil, &fromFile); err != nil {
		t.Fatal(err)
	}
	if fromFile.String() != out.String() {
		t.Error("file and stdin summaries differ")
	}
}

func TestRunBinaryTraceErrors(t *testing.T) {
	// A valid stream with no arrivals reconstructs nothing.
	onlyIdle := obs.AppendBinary(nil, []obs.Event{
		{Seq: 1, T: 0, Kind: obs.KindCoreIdle, Core: 0, Task: -1},
	})
	if err := run(nil, bytes.NewReader(onlyIdle), &bytes.Buffer{}); err == nil {
		t.Error("arrival-free event trace accepted")
	}
	// A truncated binary stream must fail, not silently summarize.
	bin, _ := binaryEventTrace(t)
	if err := run(nil, bytes.NewReader(bin[:len(bin)-3]), &bytes.Buffer{}); err == nil {
		t.Error("truncated binary trace accepted")
	}
}
