// Command tracegen synthesizes task traces in the JSONL format used by
// the other tools: Judgegirl-like online-judge traces (the paper's
// Fig. 3 workload) or synthetic batch sets.
//
// Usage:
//
//	tracegen -kind judge [-interactive 50525] [-noninteractive 768]
//	         [-duration 1800] [-seed 1] > trace.jsonl
//	tracegen -kind uniform|exp|bimodal|pareto [-n 100] [-seed 1] > batch.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"dvfsched/internal/model"
	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "judge", "trace kind: judge, uniform, exp, bimodal, pareto")
		seed     = fs.Int64("seed", 1, "random seed")
		n        = fs.Int("n", 100, "number of batch tasks (non-judge kinds)")
		inter    = fs.Int("interactive", 50525, "judge: interactive tasks")
		nonInter = fs.Int("noninteractive", 768, "judge: code submissions")
		duration = fs.Float64("duration", 1800, "judge: trace length in seconds")
		mean     = fs.Float64("mean", 10, "exp: mean Gcycles")
		lo       = fs.Float64("lo", 1, "uniform: lower bound Gcycles")
		hi       = fs.Float64("hi", 100, "uniform: upper bound Gcycles")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var tasks model.TaskSet
	var err error
	switch *kind {
	case "judge":
		cfg := workload.DefaultJudgeConfig()
		cfg.Interactive = *inter
		cfg.NonInteractive = *nonInter
		cfg.Duration = *duration
		tasks, err = cfg.Generate(rng)
	case "uniform":
		tasks, err = workload.Uniform(rng, *n, *lo, *hi)
	case "exp":
		tasks, err = workload.Exponential(rng, *n, *mean)
	case "bimodal":
		tasks, err = workload.Bimodal(rng, *n, *mean, *mean*20, 0.2)
	case "pareto":
		tasks, err = workload.Pareto(rng, *n, *lo, 1.5)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	return trace.Write(w, tasks)
}
