package main

import (
	"bytes"
	"testing"

	"dvfsched/internal/trace"
)

func TestRunAllKinds(t *testing.T) {
	kinds := map[string][]string{
		"judge":   {"-kind", "judge", "-interactive", "30", "-noninteractive", "5", "-duration", "60"},
		"uniform": {"-kind", "uniform", "-n", "20"},
		"exp":     {"-kind", "exp", "-n", "20", "-mean", "4"},
		"bimodal": {"-kind", "bimodal", "-n", "20", "-mean", "2"},
		"pareto":  {"-kind", "pareto", "-n", "20", "-lo", "1"},
	}
	for name, args := range kinds {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tasks, err := trace.Read(&out)
		if err != nil {
			t.Fatalf("%s: output is not a valid trace: %v", name, err)
		}
		if len(tasks) == 0 {
			t.Errorf("%s: empty trace", name)
		}
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	gen := func() string {
		var out bytes.Buffer
		if err := run([]string{"-kind", "exp", "-n", "10", "-seed", "42"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Error("same seed produced different traces")
	}
}

func TestRunBadInputs(t *testing.T) {
	cases := [][]string{
		{"-kind", "unknown"},
		{"-kind", "uniform", "-n", "0"},
		{"-kind", "exp", "-mean", "-3"},
		{"-kind", "judge", "-duration", "0"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
