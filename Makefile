GO ?= go

.PHONY: check vet lint build test race bench-smoke fuzz-smoke bench benchdiff serve-smoke golden

check: vet lint build race bench-smoke benchdiff fuzz-smoke

vet:
	$(GO) vet ./...

# Repo-specific invariants: float equality, nondeterminism in the
# engine packages, blocking under locks, dropped hot-path write errors.
lint:
	$(GO) run ./cmd/dvfslint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: catches bit-rot without timing anything.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Short fuzz sessions for the dynamic structures; cheap enough to run
# in every `make check`.
fuzz-smoke:
	$(GO) test -fuzz=FuzzInsertDelete -fuzztime=5s ./internal/rangetree
	$(GO) test -fuzz=FuzzDynamicCost -fuzztime=5s ./internal/dynsched

# Benchmark the hot packages and write the machine-readable baseline
# for this PR (diff against the previous PR's with `make benchdiff`).
bench:
	scripts/bench.sh BENCH_PR5.json

# Compare this PR's baseline against the previous one; fails on >20%
# ns/op regressions in benchmarks both files share.
benchdiff:
	scripts/benchdiff.sh BENCH_PR4.json BENCH_PR5.json

# Boot dvfschedd on an ephemeral port, hit /healthz and /v1/plan once,
# and shut it down cleanly.
serve-smoke:
	scripts/serve_smoke.sh

# Regenerate the report package's golden files.
golden:
	$(GO) test ./internal/report -update
