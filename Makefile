GO ?= go

.PHONY: check vet build test race bench-smoke fuzz-smoke golden

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: catches bit-rot without timing anything.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Short fuzz sessions for the dynamic structures.
fuzz-smoke:
	$(GO) test -fuzz=FuzzInsertDelete -fuzztime=10s ./internal/rangetree
	$(GO) test -fuzz=FuzzDynamicCost -fuzztime=10s ./internal/dynsched

# Regenerate the report package's golden files.
golden:
	$(GO) test ./internal/report -update
