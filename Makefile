GO ?= go

.PHONY: check vet lint build test race bench-smoke fuzz-smoke bench benchdiff benchdiff-test cover serve-smoke cluster-smoke golden

check: vet lint build race bench-smoke benchdiff benchdiff-test cover fuzz-smoke cluster-smoke

vet:
	$(GO) vet ./...

# Repo-specific invariants: float equality, nondeterminism in the
# engine packages, blocking under locks, dropped hot-path write errors,
# sync.Pool ownership, goroutine stop signals, atomic/plain access
# mixing, and mutex acquisition order. Fails on findings AND on
# malformed or unused //dvfslint:allow directives, so stale exceptions
# cannot accumulate; -count prints the per-analyzer tally.
lint:
	$(GO) run ./cmd/dvfslint -count ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: catches bit-rot without timing anything.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Short fuzz sessions for the dynamic structures and the binary trace
# codec; cheap enough to run in every `make check`.
fuzz-smoke:
	$(GO) test -fuzz=FuzzInsertDelete -fuzztime=5s ./internal/rangetree
	$(GO) test -fuzz=FuzzDynamicCost -fuzztime=5s ./internal/dynsched
	$(GO) test -fuzz=FuzzBinaryRoundTrip -fuzztime=5s ./internal/obs

# Benchmark the hot packages and write the machine-readable baseline
# for this PR (diff against the previous PR's with `make benchdiff`).
bench:
	scripts/bench.sh BENCH_PR10.json

# Compare the two newest BENCH_PR<N>.json baselines (numeric order);
# fails on >20% ns/op regressions in benchmarks both files share and
# reports benchmarks new in this PR.
benchdiff:
	scripts/benchdiff.sh

# Shell test for the benchdiff gate itself: missing/empty baselines
# must fail, regressions must fail, new benchmarks must be reported.
benchdiff-test:
	scripts/benchdiff_test.sh

# Race-enabled per-package coverage floors for the engine-critical
# packages.
cover:
	scripts/cover.sh

# Boot dvfschedd on an ephemeral port, hit /healthz and /v1/plan once,
# and shut it down cleanly.
serve-smoke:
	scripts/serve_smoke.sh

# Membership-churn smoke: boot a 3-node in-process cluster and, while
# client traffic is in flight, join a 4th node (asserting the rebalance
# matches the ring diff), migrate a session to a pinned target, drain a
# node out of the ring, then kill a member — verifying zero
# accepted-task loss plus byte-identical oracle parity on every
# surviving trace. Well under 30s.
cluster-smoke:
	$(GO) run ./cmd/dvfsload -mode cluster -clients 6 -session-tasks 30 -batch 6

# Regenerate the report package's golden files.
golden:
	$(GO) test ./internal/report -update
