package dvfsched_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"dvfsched/internal/obs"
	"dvfsched/internal/server"
)

// reservePorts grabs n distinct loopback ports by binding and
// releasing them; static cluster membership needs every peer address
// before any daemon starts.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// clusterDo sends one request, rotating fronts and retrying on
// transport errors and 5xx until the deadline — the client protocol a
// cluster deployment requires during a failover window.
func clusterDo(t *testing.T, fronts []string, method, path string, body []byte) (int, []byte) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for attempt := 0; ; attempt++ {
		if time.Now().After(deadline) {
			t.Fatalf("%s %s: retries exhausted", method, path)
		}
		front := fronts[attempt%len(fronts)]
		req, err := http.NewRequest(method, front+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if len(body) > 0 {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		return resp.StatusCode, data
	}
}

// TestClusterProcessKillFailover is the whole-system drill: three real
// dvfschedd processes form a cluster via -node-id/-peers, a session's
// owner process is killed with SIGKILL mid-stream, and the survivors
// must keep serving it — accepting the remaining submissions, draining
// it, and returning a gapless trace containing every acknowledged
// task. Skipped with -short (compiles the daemon binary).
func TestClusterProcessKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e skipped in short mode")
	}
	daemon, _ := buildServiceBinaries(t)
	addrs := reservePorts(t, 3)
	ids := []string{"n1", "n2", "n3"}
	var peerParts []string
	for i, id := range ids {
		peerParts = append(peerParts, fmt.Sprintf("%s=http://%s", id, addrs[i]))
	}
	peers := strings.Join(peerParts, ",")

	cmds := make(map[string]*daemonProc, len(ids))
	for i, id := range ids {
		cmds[id] = startClusterDaemon(t, daemon, addrs[i], id, peers)
	}

	allFronts := make(map[string]string, len(ids))
	for i, id := range ids {
		allFronts[id] = "http://" + addrs[i]
	}

	// Create one session; learn its owner from the route endpoint.
	code, body := clusterDo(t, []string{allFronts["n1"]}, http.MethodPost, "/v1/sessions", []byte(`{"cores":2}`))
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	var info server.SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	code, body = clusterDo(t, []string{allFronts["n1"]}, http.MethodGet, "/v1/cluster/route?session="+info.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("route: %d %s", code, body)
	}
	var route struct {
		Owner string `json:"owner"`
	}
	if err := json.Unmarshal(body, &route); err != nil {
		t.Fatal(err)
	}
	if _, ok := cmds[route.Owner]; !ok {
		t.Fatalf("route owner %q is not a cluster member", route.Owner)
	}
	var fronts []string
	for _, id := range ids {
		if id != route.Owner {
			fronts = append(fronts, allFronts[id])
		}
	}
	path := "/v1/sessions/" + info.ID

	submit := func(lo, hi int) {
		t.Helper()
		var recs []string
		for id := lo; id <= hi; id++ {
			recs = append(recs, fmt.Sprintf(`{"id":%d,"cycles":1.5,"arrival":%g}`, id, float64(id)*0.1))
		}
		batch := []byte(`{"clamp":true,"tasks":[` + strings.Join(recs, ",") + `]}`)
		code, body := clusterDo(t, fronts, http.MethodPost, path+"/tasks", batch)
		// A duplicate-ID 400 means a pre-kill attempt was accepted but
		// its ack was lost in the crash; both outcomes are "accepted".
		if code != http.StatusOK && !(code == http.StatusBadRequest && bytes.Contains(body, []byte("duplicate"))) {
			t.Fatalf("submit %d-%d: %d %s", lo, hi, code, body)
		}
	}
	submit(1, 10)

	// Kill the owner process outright: no drain, no goodbye.
	if err := cmds[route.Owner].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmds[route.Owner].cmd.Wait()

	submit(11, 20)

	code, body = clusterDo(t, fronts, http.MethodDelete, path, nil)
	if code != http.StatusOK && code != http.StatusNoContent {
		t.Fatalf("drain after kill: %d %s", code, body)
	}
	if code == http.StatusOK {
		var dr server.DrainResponse
		if err := json.Unmarshal(body, &dr); err != nil {
			t.Fatal(err)
		}
		if dr.Tasks != 20 {
			t.Fatalf("drained %d tasks, accepted 20", dr.Tasks)
		}
	}

	code, body = clusterDo(t, fronts, http.MethodGet, path+"/events", nil)
	if code != http.StatusOK {
		t.Fatalf("events after kill: %d %s", code, body)
	}
	arrivals := map[int]int{}
	var lastSeq uint64
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("trace gap: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Kind == obs.KindArrival {
			arrivals[ev.Task]++
		}
	}
	for id := 1; id <= 20; id++ {
		if arrivals[id] != 1 {
			t.Errorf("accepted task %d: %d arrivals in the surviving trace, want 1", id, arrivals[id])
		}
	}

	// Survivors shut down clean.
	for _, id := range ids {
		if id == route.Owner {
			continue
		}
		if err := cmds[id].cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		if id == route.Owner {
			continue
		}
		if err := cmds[id].cmd.Wait(); err != nil {
			t.Errorf("node %s shutdown: %v\n%s", id, err, cmds[id].stderr.String())
		}
	}
}

// daemonProc is one cluster daemon child process.
type daemonProc struct {
	cmd    *exec.Cmd
	stderr *bytes.Buffer
}

// startClusterDaemon launches one cluster member on a fixed address.
func startClusterDaemon(t *testing.T, daemon, addr, id, peers string) *daemonProc {
	t.Helper()
	cmd := exec.Command(daemon,
		"-addr", addr, "-node-id", id, "-peers", peers, "-probe-interval", "250ms")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "listening on ") {
				close(ready)
				break
			}
		}
		// Drain the rest so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("cluster node %s never reported its address\n%s", id, stderr.String())
	}
	return &daemonProc{cmd: cmd, stderr: &stderr}
}
