#!/bin/sh
# Compare two bench.sh baselines and fail on ns/op regressions.
#
# Usage: scripts/benchdiff.sh [old.json new.json]
#
# With no arguments the two most recent BENCH_PR<N>.json baselines in
# the repo root (override with BENCH_DIR) are compared, newest as NEW.
# "Most recent" is by the PR number N compared numerically — a
# lexicographic glob would sort BENCH_PR10.json before BENCH_PR9.json
# and silently diff against the wrong PR once numbers reach two digits.
#
# Benchmarks present in both files are compared by ns_per_op and, when
# both sides carry it, allocs_per_op; any shared benchmark that slowed
# — or grew its allocations — by more than THRESHOLD percent (default
# 20) fails the script. A benchmark that was allocation-free in the old
# baseline and allocates at all in the new one fails too: 0 -> N has no
# finite percentage and is exactly the hot-path regression the gate
# exists to catch. Benchmarks present only in the new file are
# reported as "new benchmark" — not a regression, but visible, so a
# rename that silently drops a benchmark from comparison is noticed.
# Retired benchmarks carry no signal and are ignored. Both files must
# exist and contain benchmarks: a missing or empty baseline means
# `make bench` has not been run for that PR, which should fail loudly
# rather than vacuously pass.
set -eu
cd "$(dirname "$0")/.."

BENCH_DIR=${BENCH_DIR:-.}
THRESHOLD=${THRESHOLD:-20}

if [ "$#" -ge 2 ]; then
    OLD=$1
    NEW=$2
else
    nums=$(find "$BENCH_DIR" -maxdepth 1 -name 'BENCH_PR*.json' 2>/dev/null \
        | sed -n 's/.*BENCH_PR\([0-9][0-9]*\)\.json$/\1/p' | sort -n | tail -2)
    if [ "$(printf '%s\n' "$nums" | grep -c '[0-9]')" -lt 2 ]; then
        echo "benchdiff: need at least two BENCH_PR<N>.json baselines in $BENCH_DIR (run scripts/bench.sh BENCH_PR<N>.json)" >&2
        exit 1
    fi
    OLD="$BENCH_DIR/BENCH_PR$(printf '%s\n' "$nums" | head -1).json"
    NEW="$BENCH_DIR/BENCH_PR$(printf '%s\n' "$nums" | tail -1).json"
fi

for f in "$OLD" "$NEW"; do
    if [ ! -f "$f" ]; then
        echo "benchdiff: missing $f (run scripts/bench.sh $f first)" >&2
        exit 1
    fi
done

awk -v threshold="$THRESHOLD" -v oldfile="$OLD" -v newfile="$NEW" '
# parse extracts package/name/ns_per_op (and allocs_per_op when the
# line carries one — benchmarks run without -benchmem do not) from one
# bench.sh JSON line into K, NS, APO/HASA; bench.sh writes one object
# per line, so a line-wise scan is exact for these files.
function parse(line) {
    if (line !~ /"name": "Benchmark/) return 0
    match(line, /"package": "[^"]*"/)
    pkg = substr(line, RSTART + 12, RLENGTH - 13)
    match(line, /"name": "[^"]*"/)
    nm = substr(line, RSTART + 9, RLENGTH - 10)
    if (match(line, /"ns_per_op": [0-9.eE+-]+/) == 0) return 0
    NS = substr(line, RSTART + 13, RLENGTH - 13) + 0
    HASA = 0
    APO = 0
    if (match(line, /"allocs_per_op": [0-9.eE+-]+/)) {
        APO = substr(line, RSTART + 17, RLENGTH - 17) + 0
        HASA = 1
    }
    K = pkg "/" nm
    return 1
}
NR == FNR {
    if (parse($0)) {
        base[K] = NS
        if (HASA) { basea[K] = APO; baseha[K] = 1 }
    }
    next
}
{
    if (!parse($0)) next
    if (!(K in base)) {
        printf("%-66s %26s %11.1f ns/op  new benchmark\n", K, "", NS)
        fresh++
        next
    }
    shared++
    delta = (NS - base[K]) / base[K] * 100
    printf("%-66s %11.1f -> %11.1f ns/op  %+7.1f%%", K, base[K], NS, delta)
    if (baseha[K] && HASA) printf("  %6d -> %6d allocs/op", basea[K], APO)
    printf("\n")
    if (delta > threshold) {
        printf("REGRESSION: %s slowed %.1f%% (limit %d%%)\n", K, delta, threshold)
        bad++
    }
    # The allocation gate only engages when both baselines measured
    # allocs: a baseline recorded before -benchmem coverage carries no
    # signal to regress against.
    if (baseha[K] && HASA) {
        if (basea[K] == 0) {
            if (APO > 0) {
                printf("REGRESSION: %s was allocation-free, now %d allocs/op\n", K, APO)
                bad++
            }
        } else {
            adelta = (APO - basea[K]) / basea[K] * 100
            if (adelta > threshold) {
                printf("REGRESSION: %s allocs/op grew %.1f%% (%d -> %d, limit %d%%)\n", K, adelta, basea[K], APO, threshold)
                bad++
            }
        }
    }
}
END {
    if (shared == 0) {
        print "benchdiff: no shared benchmarks between " oldfile " and " newfile > "/dev/stderr"
        exit 1
    }
    if (bad > 0) exit 1
    msg = "benchdiff: " shared " shared benchmarks within " threshold "% of " oldfile
    if (fresh > 0) msg = msg ", " fresh " new in " newfile
    print msg
}
' "$OLD" "$NEW"
