#!/bin/sh
# Full local gate: vet, dvfslint, build, race-enabled tests, benchmark
# smoke.
# Equivalent to `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
# All eight analyzers; exit 1 covers findings and malformed/unused
# allow directives alike.
echo "== dvfslint =="
go run ./cmd/dvfslint -count ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...
echo "== benchmark smoke (1 iteration each) =="
go test -run='^$' -bench=. -benchtime=1x ./...
echo "== benchdiff (vs previous PR baseline) =="
scripts/benchdiff.sh
echo "== benchdiff self-test =="
scripts/benchdiff_test.sh
echo "== coverage floors (race-enabled) =="
scripts/cover.sh
echo "== fuzz smoke (5s each) =="
go test -fuzz=FuzzInsertDelete -fuzztime=5s ./internal/rangetree
go test -fuzz=FuzzDynamicCost -fuzztime=5s ./internal/dynsched
go test -fuzz=FuzzBinaryRoundTrip -fuzztime=5s ./internal/obs
echo "== cluster smoke (kill-failover, zero accepted-task loss) =="
go run ./cmd/dvfsload -mode cluster -clients 6 -session-tasks 30 -batch 6
echo "OK"
