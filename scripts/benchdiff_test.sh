#!/bin/sh
# Shell test for scripts/benchdiff.sh: the failure modes that must not
# pass vacuously (missing or empty baselines), the regression gate, and
# the "new benchmark" report.
#
# Usage: scripts/benchdiff_test.sh
set -eu
cd "$(dirname "$0")/.."

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

line() {
    printf '  {"package": "%s", "name": "%s", "iterations": 100, "ns_per_op": %s}' "$1" "$2" "$3"
}

# linea is line with bytes/allocs fields, as bench.sh emits under -benchmem.
linea() {
    printf '  {"package": "%s", "name": "%s", "iterations": 100, "ns_per_op": %s, "bytes_per_op": 64, "allocs_per_op": %s}' "$1" "$2" "$3" "$4"
}

fails=0
fail() {
    echo "FAIL: $1" >&2
    fails=$((fails + 1))
}

# expect <status> <needle> <label> [args...]: run benchdiff.sh with the
# given baselines, require the exit status and an output substring.
expect() {
    want=$1; needle=$2; label=$3; shift 3
    got=0
    out=$(scripts/benchdiff.sh "$@" 2>&1) || got=$?
    if [ "$got" != "$want" ]; then
        fail "$label: exit $got, want $want
$out"
        return
    fi
    case $out in
    *"$needle"*) ;;
    *) fail "$label: output missing \"$needle\"
$out" ;;
    esac
}

# Two healthy baselines sharing one benchmark; the new file also adds
# one and speeds the shared one up slightly.
{
    echo '['
    line pkg/a BenchmarkShared 100.0
    echo ''
    echo ']'
} > "$DIR/old.json"
{
    echo '['
    line pkg/a BenchmarkShared 90.0
    echo ','
    line pkg/a BenchmarkAdded 42.0
    echo ''
    echo ']'
} > "$DIR/new.json"

expect 0 "new benchmark" "new benchmark reported" "$DIR/old.json" "$DIR/new.json"
expect 0 "1 shared benchmarks" "shared count reported" "$DIR/old.json" "$DIR/new.json"

# A >20% slowdown on the shared benchmark must fail.
{
    echo '['
    line pkg/a BenchmarkShared 130.0
    echo ''
    echo ']'
} > "$DIR/slow.json"
expect 1 "REGRESSION" "regression gate" "$DIR/old.json" "$DIR/slow.json"

# The allocation gate: >20% allocs/op growth fails even with ns/op
# flat, growth within the threshold passes, an allocation-free
# benchmark that starts allocating fails, and a pairing where only one
# side measured allocs is not gated.
{
    echo '['
    linea pkg/a BenchmarkAlloc 100.0 100
    echo ','
    linea pkg/a BenchmarkZero 100.0 0
    echo ''
    echo ']'
} > "$DIR/alloc_old.json"
{
    echo '['
    linea pkg/a BenchmarkAlloc 100.0 130
    echo ','
    linea pkg/a BenchmarkZero 100.0 0
    echo ''
    echo ']'
} > "$DIR/alloc_grew.json"
expect 1 "allocs/op grew" "allocs regression gate" "$DIR/alloc_old.json" "$DIR/alloc_grew.json"
{
    echo '['
    linea pkg/a BenchmarkAlloc 100.0 110
    echo ','
    linea pkg/a BenchmarkZero 100.0 0
    echo ''
    echo ']'
} > "$DIR/alloc_ok.json"
expect 0 "2 shared benchmarks" "allocs within threshold" "$DIR/alloc_old.json" "$DIR/alloc_ok.json"
{
    echo '['
    linea pkg/a BenchmarkAlloc 100.0 100
    echo ','
    linea pkg/a BenchmarkZero 100.0 3
    echo ''
    echo ']'
} > "$DIR/alloc_zero_broken.json"
expect 1 "allocation-free" "zero-to-nonzero allocs gate" "$DIR/alloc_old.json" "$DIR/alloc_zero_broken.json"
{
    echo '['
    line pkg/a BenchmarkAlloc 100.0
    echo ','
    line pkg/a BenchmarkZero 100.0
    echo ''
    echo ']'
} > "$DIR/alloc_none.json"
expect 0 "2 shared benchmarks" "old baseline without allocs is not gated" "$DIR/alloc_none.json" "$DIR/alloc_grew.json"

# Missing baselines must fail loudly, not vacuously pass.
expect 1 "missing" "missing old baseline" "$DIR/absent.json" "$DIR/new.json"
expect 1 "missing" "missing new baseline" "$DIR/old.json" "$DIR/absent.json"

# Baselines with no benchmarks at all (empty array, or garbage) share
# nothing; that is a setup error, not a pass.
printf '[\n]\n' > "$DIR/empty.json"
expect 1 "no shared benchmarks" "empty old baseline" "$DIR/empty.json" "$DIR/new.json"
expect 1 "no shared benchmarks" "empty new baseline" "$DIR/old.json" "$DIR/empty.json"
: > "$DIR/blank.json"
expect 1 "no shared benchmarks" "zero-byte baseline" "$DIR/blank.json" "$DIR/new.json"

# Argument-less discovery must order PR numbers numerically: with PR2,
# PR9 and PR10 baselines present, the diff is 9 -> 10 — a lexicographic
# glob would pick 10 -> 9 (or drag PR2 in) and gate against the wrong
# PR. The PR9 baseline regresses vs PR2 but PR10 matches PR9, so the
# outcome also proves which pair was compared.
DISC="$DIR/disc"
mkdir -p "$DISC"
{
    echo '['
    line pkg/a BenchmarkShared 50.0
    echo ''
    echo ']'
} > "$DISC/BENCH_PR2.json"
cp "$DIR/old.json" "$DISC/BENCH_PR9.json"
cp "$DIR/old.json" "$DISC/BENCH_PR10.json"
got=0
out=$(BENCH_DIR="$DISC" scripts/benchdiff.sh 2>&1) || got=$?
if [ "$got" != 0 ]; then
    fail "numeric discovery: exit $got
$out"
fi
case $out in
*BENCH_PR9.json*) ;;
*) fail "numeric discovery: did not pick BENCH_PR9.json as the old baseline
$out" ;;
esac

# One lone baseline is not a diffable pair.
rm -f "$DISC/BENCH_PR2.json" "$DISC/BENCH_PR9.json"
got=0
out=$(BENCH_DIR="$DISC" scripts/benchdiff.sh 2>&1) || got=$?
if [ "$got" = 0 ]; then
    fail "single-baseline discovery passed vacuously
$out"
fi
case $out in
*"at least two"*) ;;
*) fail "single-baseline discovery: unhelpful error
$out" ;;
esac

if [ "$fails" -gt 0 ]; then
    echo "benchdiff_test: $fails failures" >&2
    exit 1
fi
echo "benchdiff_test: ok"
