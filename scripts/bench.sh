#!/bin/sh
# Benchmark the hot packages and write a machine-readable baseline.
#
# Usage: scripts/bench.sh [output.json]
#
# Runs `go test -bench` over the performance-sensitive packages
# (envelope construction, the order-statistic tree, the dynamic
# single-core scheduler, the LMC online policy, the trace codecs, the
# HTTP service, and the cluster replication planes)
# and converts the results into a JSON array so successive PRs can
# diff ns/op and allocs/op mechanically. BENCHTIME overrides the
# per-benchmark budget (default 0.3s; use e.g. BENCHTIME=2s for a
# lower-variance baseline).
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR6.json}
BENCHTIME=${BENCHTIME:-0.3s}
PKGS="./internal/envelope ./internal/rangetree ./internal/dynsched ./internal/online ./internal/obs ./internal/server ./internal/cluster"

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" $PKGS | tee "$TMP"

awk '
BEGIN { print "["; first = 1 }
/^pkg: / { pkg = $2 }
/^Benchmark/ {
    ns = ""; bpo = ""; apo = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "B/op") bpo = $(i-1)
        if ($i == "allocs/op") apo = $(i-1)
    }
    if (ns == "") next
    if (!first) printf(",\n")
    first = 0
    printf("  {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", pkg, $1, $2, ns)
    if (bpo != "") printf(", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bpo, apo)
    printf("}")
}
END { print "\n]" }
' "$TMP" > "$OUT"

echo "wrote $OUT"
