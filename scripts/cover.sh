#!/bin/sh
# Per-package coverage gate for the engine-critical packages.
#
# Usage: scripts/cover.sh
#
# Runs the gated packages' tests with -race and -cover and fails if any
# package's statement coverage falls below its floor. Floors are set a
# few points under the level each package actually sustains, so they
# trip on real coverage collapses (a deleted test file, a build-tagged
# test going dark) without flaking on single-line refactors. Raise a
# floor when a package's coverage durably improves; never lower one to
# make a PR pass.
set -eu
cd "$(dirname "$0")/.."

# "<package> <floor-percent>" pairs; package is module-relative.
FLOORS='
internal/model 88
internal/trace 90
internal/obs 90
internal/rangetree 90
internal/dynsched 80
internal/sim 85
internal/online 72
internal/core 78
internal/server 82
'

PKGS=$(printf '%s\n' "$FLOORS" | awk 'NF { printf("./%s ", $1) }')
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

# shellcheck disable=SC2086 # PKGS is a deliberate word list
go test -race -cover $PKGS | tee "$TMP"

printf '%s\n' "$FLOORS" | awk -v resultfile="$TMP" '
NF { floor["dvfsched/" $1] = $2 + 0 }
END {
    bad = 0
    seen = 0
    while ((getline line < resultfile) > 0) {
        if (line !~ /^ok/ || line !~ /coverage:/) continue
        split(line, f)
        pkg = f[2]
        if (!(pkg in floor)) continue
        pct = f[5] + 0  # "94.4%" -> 94.4
        seen++
        if (pct < floor[pkg]) {
            printf("COVERAGE: %s at %.1f%%, floor %d%%\n", pkg, pct, floor[pkg])
            bad++
        }
    }
    n = 0
    for (pkg in floor) n++
    if (seen != n) {
        printf("cover: expected %d gated packages, saw %d coverage lines\n", n, seen) > "/dev/stderr"
        exit 1
    }
    if (bad > 0) exit 1
    printf("cover: %d packages at or above their floors\n", seen)
}
'
