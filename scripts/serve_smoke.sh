#!/bin/sh
# Smoke-test the service daemon: boot dvfschedd on an ephemeral port,
# check /healthz, run one /v1/plan request, and verify a clean SIGTERM
# shutdown. Exits non-zero on any failure.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/dvfschedd" ./cmd/dvfschedd
"$TMP/dvfschedd" -addr 127.0.0.1:0 > "$TMP/out" 2>&1 &
PID=$!

# The first stdout line is "listening on http://HOST:PORT".
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$TMP/out" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve-smoke: daemon never reported its address"; cat "$TMP/out"; exit 1; }
echo "serve-smoke: daemon at $ADDR"

curl -fsS "$ADDR/healthz" | grep -q '"status": "ok"' || {
    echo "serve-smoke: /healthz failed"; exit 1; }

curl -fsS "$ADDR/v1/plan" -d '{
  "cores": 4,
  "tasks": [{"id": 0, "cycles": 120}, {"id": 1, "cycles": 40}, {"id": 2, "cycles": 7}]
}' | grep -q '"total_cost"' || { echo "serve-smoke: /v1/plan failed"; exit 1; }

kill -TERM "$PID"
wait "$PID" || { echo "serve-smoke: daemon exited non-zero"; cat "$TMP/out"; exit 1; }
grep -q '^shutdown complete$' "$TMP/out" || {
    echo "serve-smoke: no clean shutdown"; cat "$TMP/out"; exit 1; }
echo "serve-smoke: OK"
