module dvfsched

go 1.22
