package dvfsched_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildServiceBinaries compiles dvfschedd and dvfsload into a temp dir.
func buildServiceBinaries(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	daemon := filepath.Join(dir, "dvfschedd")
	load := filepath.Join(dir, "dvfsload")
	for _, b := range []struct{ out, pkg string }{
		{daemon, "./cmd/dvfschedd"},
		{load, "./cmd/dvfsload"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", b.pkg, err, out)
		}
	}
	return daemon, load
}

// startDaemon launches dvfschedd on an ephemeral port and returns its
// base URL plus a line channel fed from its stdout.
func startDaemon(t *testing.T, daemon string, args ...string) (*exec.Cmd, string, <-chan string) {
	t.Helper()
	cmd := exec.Command(daemon, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() && stderr.Len() > 0 {
			t.Logf("dvfschedd stderr:\n%s", stderr.String())
		}
	})
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line := <-lines:
		const prefix = "listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected first line %q", line)
		}
		return cmd, strings.TrimPrefix(line, prefix), lines
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never reported its address")
	}
	panic("unreachable")
}

// TestServiceEndToEnd boots the real daemon binary on an ephemeral
// port and drives it with the real load-generator binary: 8 concurrent
// clients exercise both planes, asserting plan costs byte-identical to
// a direct in-process scheduler run and session traces that replay to
// the drained cost (the load generator exits non-zero on any
// mismatch).
func TestServiceEndToEnd(t *testing.T) {
	daemon, load := buildServiceBinaries(t)
	cmd, addr, _ := startDaemon(t, daemon)

	out, err := exec.Command(load, "-addr", addr, "-clients", "8").CombinedOutput()
	if err != nil {
		t.Fatalf("dvfsload: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("all checks passed")) {
		t.Fatalf("dvfsload did not pass:\n%s", out)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
}

// TestServiceGracefulDrain checks criterion (d): SIGTERM with pending
// session work drains every accepted task before exit.
func TestServiceGracefulDrain(t *testing.T) {
	daemon, _ := buildServiceBinaries(t)
	cmd, addr, lines := startDaemon(t, daemon)

	var info struct {
		ID string `json:"id"`
	}
	postJSON(t, addr+"/v1/sessions", `{"cores":2}`, &info)
	// Far-apart arrivals: after submit the virtual clock sits at the
	// last arrival with most work still pending.
	var sub struct {
		Accepted int `json:"accepted"`
		Pending  int `json:"pending"`
	}
	postJSON(t, addr+"/v1/sessions/"+info.ID+"/tasks",
		`{"tasks":[{"id":0,"cycles":400,"arrival":0},{"id":1,"cycles":400,"arrival":50},{"id":2,"cycles":400,"arrival":500}]}`,
		&sub)
	if sub.Accepted != 3 || sub.Pending == 0 {
		t.Fatalf("submit: %+v, want 3 accepted with pending work", sub)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
	var drained, complete bool
	for line := range lines {
		if strings.Contains(line, "drained session "+info.ID) {
			if !strings.Contains(line, "3 tasks") {
				t.Fatalf("drain dropped tasks: %q", line)
			}
			drained = true
		}
		if line == "shutdown complete" {
			complete = true
		}
	}
	if !drained || !complete {
		t.Fatalf("missing drain evidence: drained=%v complete=%v", drained, complete)
	}
}

// postJSON is a minimal test client for the daemon's API.
func postJSON(t *testing.T, url, body string, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}
