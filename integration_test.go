package dvfsched_test

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dvfsched/internal/core"
	"dvfsched/internal/experiments"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

// TestEndToEndPipeline exercises the full user path: synthesize a
// trace, persist it as JSONL, load it back, schedule it through the
// high-level facade, and check conservation properties of the result.
func TestEndToEndPipeline(t *testing.T) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 300, 40, 90
	tasks, err := judge.Generate(rand.New(rand.NewSource(123)))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var buf bytes.Buffer
	if err := trace.Write(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(tasks) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(loaded), len(tasks))
	}

	sched, err := core.New(experiments.OnlineParams,
		platform.Homogeneous(4, platform.TableII(), platform.Ideal{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.RunOnline(context.Background(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	// Conservation: every task done, energy bounded by the extremes.
	var minJ, maxJ float64
	for _, ts := range res.Tasks {
		if !ts.Done {
			t.Fatalf("task %d unfinished", ts.Task.ID)
		}
		minJ += ts.Task.Cycles * platform.TableII().Min().Energy
		maxJ += ts.Task.Cycles * platform.TableII().Max().Energy
	}
	if res.ActiveEnergy < minJ-1e-6 || res.ActiveEnergy > maxJ+1e-6 {
		t.Errorf("energy %v outside physical bounds [%v, %v]", res.ActiveEnergy, minJ, maxJ)
	}
	if res.TotalCost <= 0 || math.IsNaN(res.TotalCost) {
		t.Errorf("bad total cost %v", res.TotalCost)
	}
}

// TestBatchPipelineAgainstAnalyticBound verifies that executing the
// facade's batch plan on an ideal platform reproduces the analytic
// cost, and that a contended platform can only cost more.
func TestBatchPipelineAgainstAnalyticBound(t *testing.T) {
	tasks := workload.SPECTasks()
	for i := range tasks {
		tasks[i].Cycles /= 50 // keep the test fast
	}
	ideal, err := core.New(experiments.BatchParams,
		platform.Homogeneous(4, platform.TableII(), platform.Ideal{}))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ideal.PlanBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	_, _, analytic := plan.Cost()
	res, err := ideal.ExecuteBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalCost-analytic) > 1e-6*analytic {
		t.Errorf("ideal execution %v != analytic %v", res.TotalCost, analytic)
	}

	contended, err := core.New(experiments.BatchParams,
		platform.Homogeneous(4, platform.TableII(), platform.DefaultRealistic()))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := contended.ExecuteBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalCost <= res.TotalCost {
		t.Errorf("contention did not raise cost: %v <= %v", res2.TotalCost, res.TotalCost)
	}
}

// TestTraceReaderHostileInputs feeds the JSONL reader a corpus of
// malformed documents; it must reject them all without panicking.
func TestTraceReaderHostileInputs(t *testing.T) {
	corpus := []string{
		"{",
		`{"id":1}`,
		`{"id":1,"cycles":0,"arrival":0}`,
		`{"id":1,"cycles":1e999,"arrival":0}`,
		`{"id":1,"cycles":5,"arrival":-2}`,
		`{"id":1,"cycles":5,"arrival":0,"deadline":-1}`,
		`{"id":1,"cycles":5,"arrival":3,"deadline":2}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"id":1,"cycles":5,"arrival":0}` + "\n" + `{"id":1,"cycles":5,"arrival":0}`, // dup ID
		"\x00\x01\x02",
	}
	for i, doc := range corpus {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("input %d panicked: %v", i, r)
				}
			}()
			if _, err := trace.Read(bytes.NewReader([]byte(doc))); err == nil {
				t.Errorf("input %d accepted: %q", i, doc)
			}
		}()
	}
}

// TestTraceRoundTripRandom is a randomized round-trip property at the
// module boundary.
func TestTraceRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(50)
		tasks := make(model.TaskSet, n)
		for i := range tasks {
			tasks[i] = model.Task{
				ID:          i,
				Name:        "t",
				Cycles:      rng.Float64()*100 + 0.001,
				Arrival:     rng.Float64() * 10,
				Deadline:    model.NoDeadline,
				Interactive: rng.Intn(2) == 0,
			}
			if rng.Intn(3) == 0 {
				tasks[i].Deadline = tasks[i].Arrival + 1 + rng.Float64()
			}
		}
		var buf bytes.Buffer
		if err := trace.Write(&buf, tasks); err != nil {
			t.Fatal(err)
		}
		back, err := trace.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tasks {
			if tasks[i] != back[i] {
				t.Fatalf("trial %d: task %d mutated", trial, i)
			}
		}
	}
}
