// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Custom metrics report the headline ratios so `go test
// -bench=.` doubles as a reproduction run:
//
//	Table I  -> BenchmarkTable1SPECWorkloads
//	Table II -> BenchmarkTable2RateParameters
//	Fig. 1   -> BenchmarkFig1ModelVerification   (exp_over_sim metric)
//	Fig. 2   -> BenchmarkFig2BatchComparison     (olb/ps_total_vs_wbg)
//	Fig. 3   -> BenchmarkFig3OnlineComparison    (olb/od_total_vs_lmc)
//	A1       -> BenchmarkAblationEnvelopeVsNaive
//	A2       -> BenchmarkAblationDynamicCost
//	A3       -> BenchmarkAblationWBGOptimality
//	A4       -> BenchmarkAblationLMCvsReplan
package dvfsched_test

import (
	"math/rand"
	"testing"

	"dvfsched/internal/batch"
	"dvfsched/internal/dynsched"
	"dvfsched/internal/envelope"
	"dvfsched/internal/exact"
	"dvfsched/internal/experiments"
	"dvfsched/internal/model"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/rt"
	"dvfsched/internal/sched"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

var batchParams = experiments.BatchParams

// BenchmarkTable1SPECWorkloads regenerates Table I.
func BenchmarkTable1SPECWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Table1String()
		if len(s) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(float64(len(workload.SPEC2006Int())), "workloads")
}

// BenchmarkTable2RateParameters regenerates Table II and its
// dominating-range envelope.
func BenchmarkTable2RateParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Table2String(); len(s) == 0 {
			b.Fatal("empty table")
		}
		env := envelope.MustCompute(batchParams, platform.TableII())
		if env.NumRanges() == 0 {
			b.Fatal("empty envelope")
		}
	}
}

// BenchmarkFig1ModelVerification reruns the Fig. 1 experiment; the
// exp_over_sim metric is the paper's ~1.08 model gap.
func BenchmarkFig1ModelVerification(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(experiments.Fig1Config{})
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.TotalRatio
	}
	b.ReportMetric(ratio, "exp_over_sim")
}

// BenchmarkFig2BatchComparison reruns the Fig. 2 experiment; the
// metrics are OLB's and Power Saving's total cost normalized to WBG
// (paper: ~1.37 and ~1.3).
func BenchmarkFig2BatchComparison(b *testing.B) {
	var olb, ps float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(experiments.Fig2Config{})
		if err != nil {
			b.Fatal(err)
		}
		olb, ps = res.OLBvsWBG[2], res.PSvsWBG[2]
	}
	b.ReportMetric(olb, "olb_total_vs_wbg")
	b.ReportMetric(ps, "ps_total_vs_wbg")
}

// fig3BenchTrace is a 1/6-scale Judgegirl trace with the full trace's
// burst structure, so the benchmark iterates in fractions of a second.
func fig3BenchTrace(b *testing.B) model.TaskSet {
	b.Helper()
	judge := workload.DefaultJudgeConfig()
	judge.Interactive = 8400
	judge.NonInteractive = 550
	judge.Duration = 1100
	tasks, err := judge.Generate(rand.New(rand.NewSource(20140901)))
	if err != nil {
		b.Fatal(err)
	}
	return tasks
}

// BenchmarkFig3OnlineComparison reruns the Fig. 3 experiment; the
// metrics are OLB's and On-demand's total cost normalized to LMC
// (paper: ~1.20 and ~1.32).
func BenchmarkFig3OnlineComparison(b *testing.B) {
	tasks := fig3BenchTrace(b)
	var olb, od float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(experiments.Fig3Config{Tasks: tasks})
		if err != nil {
			b.Fatal(err)
		}
		olb, od = res.OLBvsLMC[2], res.ODvsLMC[2]
	}
	b.ReportMetric(olb, "olb_total_vs_lmc")
	b.ReportMetric(od, "od_total_vs_lmc")
}

// BenchmarkAblationEnvelopeVsNaive (A1) compares Algorithm 1's Θ(|P|)
// dominating-range construction plus binary-search lookups against the
// naive Θ(|P|) scan per position, over 4096 positions.
func BenchmarkAblationEnvelopeVsNaive(b *testing.B) {
	const positions = 4096
	for _, size := range []int{4, 64, 1024} {
		rates := make([]float64, size)
		for i := range rates {
			rates[i] = 0.5 + float64(i)*0.01
		}
		rt, err := model.UniformRateTable(1.0, rates...)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(named("envelope", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env := envelope.MustCompute(batchParams, rt)
				for k := 1; k <= positions; k++ {
					_ = env.LevelFor(k)
				}
			}
		})
		b.Run(named("naive", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for k := 1; k <= positions; k++ {
					_, _ = batchParams.BestBackwardLevel(k, rt)
				}
			}
		})
	}
}

// BenchmarkAblationDynamicCost (A2) compares the three cost engines of
// Section IV-A under a mixed insert/delete/cost workload: the paper's
// maintained aggregates (Θ(1) cost reads), direct range-tree queries
// (O(|P̂| log N)), and the naive O(N) walk.
func BenchmarkAblationDynamicCost(b *testing.B) {
	const n = 8192
	build := func(b *testing.B) (*dynsched.Scheduler, []*dynsched.Handle) {
		b.Helper()
		s, err := dynsched.New(batchParams, platform.TableII())
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		handles := make([]*dynsched.Handle, n)
		for i := range handles {
			h, err := s.Insert(0.1 + rng.Float64()*100)
			if err != nil {
				b.Fatal(err)
			}
			handles[i] = h
		}
		return s, handles
	}
	bench := func(cost func(*dynsched.Scheduler) float64) func(*testing.B) {
		return func(b *testing.B) {
			s, _ := build(b)
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := s.Insert(0.1 + rng.Float64()*100)
				if err != nil {
					b.Fatal(err)
				}
				if c := cost(s); c <= 0 {
					b.Fatal("non-positive cost")
				}
				if err := s.Delete(h); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("maintained", bench(func(s *dynsched.Scheduler) float64 { return s.Cost() }))
	b.Run("rangetree-queries", bench(func(s *dynsched.Scheduler) float64 { return s.CostByQueries() }))
	b.Run("naive-walk", bench(func(s *dynsched.Scheduler) float64 { return s.CostNaive() }))

	// Read-heavy regime: the cost is consulted far more often than
	// the queue changes (e.g. pricing many candidate placements per
	// arrival). Here the Θ(1) maintained read separates from the
	// O(|P-hat| log N) query path.
	readHeavy := func(cost func(*dynsched.Scheduler) float64) func(*testing.B) {
		return func(b *testing.B) {
			s, _ := build(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c := cost(s); c <= 0 {
					b.Fatal("non-positive cost")
				}
			}
		}
	}
	b.Run("read-only/maintained", readHeavy(func(s *dynsched.Scheduler) float64 { return s.Cost() }))
	b.Run("read-only/rangetree-queries", readHeavy(func(s *dynsched.Scheduler) float64 { return s.CostByQueries() }))
}

// BenchmarkAblationWBGOptimality (A3) runs the polynomial Workload
// Based Greedy against the exhaustive optimum on 8-task instances; the
// cost_ratio metric stays at 1.0 (Theorem 5).
func BenchmarkAblationWBGOptimality(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tasks := make(model.TaskSet, 8)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 0.5 + rng.Float64()*20, Deadline: model.NoDeadline}
	}
	tables := []*model.RateTable{platform.TableII(), platform.TableII()}
	var ratio float64
	for i := 0; i < b.N; i++ {
		plan, err := batch.WBG(batchParams, batch.HomogeneousCores(2, platform.TableII()), tasks)
		if err != nil {
			b.Fatal(err)
		}
		_, _, algo := plan.Cost()
		opt, err := exact.OptimalMultiCoreCost(batchParams, tables, tasks)
		if err != nil {
			b.Fatal(err)
		}
		ratio = algo / opt
	}
	b.ReportMetric(ratio, "cost_ratio")
}

// BenchmarkAblationLMCvsReplan (A4) compares migration-free LMC with
// full WBG replanning on every arrival (with a migration penalty), the
// trade-off Section IV motivates.
func BenchmarkAblationLMCvsReplan(b *testing.B) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 1000, 200, 300
	tasks, err := judge.Generate(rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	plat := platform.Homogeneous(4, platform.TableII(), platform.Ideal{})
	var lmcCost, replanCost float64
	b.Run("lmc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := online.NewLMC(experiments.OnlineParams)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(sim.Config{Platform: plat, Policy: p}, tasks, experiments.OnlineParams)
			if err != nil {
				b.Fatal(err)
			}
			lmcCost = res.TotalCost
		}
		b.ReportMetric(lmcCost, "total_cost")
	})
	b.Run("wbg-replan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Config{
				Platform: plat,
				Policy:   &online.Replan{Params: experiments.OnlineParams, MigrationCycles: 0.5},
			}, tasks, experiments.OnlineParams)
			if err != nil {
				b.Fatal(err)
			}
			replanCost = res.TotalCost
		}
		b.ReportMetric(replanCost, "total_cost")
	})
}

// BenchmarkAblationSJFvsDVFS (A5) decomposes LMC's online advantage:
// against FIFO-at-max OLB, how much does SJF ordering alone recover
// (olb-sjf at max frequency), and how much does DVFS add on top (full
// LMC)? Total costs are reported per policy.
func BenchmarkAblationSJFvsDVFS(b *testing.B) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 2000, 300, 500
	tasks, err := judge.Generate(rand.New(rand.NewSource(14)))
	if err != nil {
		b.Fatal(err)
	}
	plat := platform.Homogeneous(4, platform.TableII(), platform.Ideal{})
	policies := map[string]func() sim.Policy{
		"olb-fifo-max": func() sim.Policy { return &sched.OLB{MaxFrequency: true} },
		"olb-sjf-max":  func() sim.Policy { return &sched.OLB{MaxFrequency: true, ShortestFirst: true} },
		"lmc": func() sim.Policy {
			p, err := online.NewLMC(experiments.OnlineParams)
			if err != nil {
				b.Fatal(err)
			}
			return p
		},
	}
	for _, name := range []string{"olb-fifo-max", "olb-sjf-max", "lmc"} {
		mk := policies[name]
		b.Run(name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{Platform: plat, Policy: mk()}, tasks, experiments.OnlineParams)
				if err != nil {
					b.Fatal(err)
				}
				cost = res.TotalCost
			}
			b.ReportMetric(cost, "total_cost")
		})
	}
}

// BenchmarkRTDVSComparison (extension) compares the cited real-time
// DVS baselines — race-to-idle, static EDF-DVS, and cycle-conserving
// EDF-DVS — over a hyperperiod, reporting each mode's energy.
func BenchmarkRTDVSComparison(b *testing.B) {
	rates := model.MustRateTable([]model.RateLevel{
		{Rate: 50, Energy: 1, Time: 0.02},
		{Rate: 100, Energy: 4, Time: 0.01},
		{Rate: 150, Energy: 9, Time: 1.0 / 150},
		{Rate: 200, Energy: 16, Time: 0.005},
	})
	tasks := rt.TaskSet{
		{ID: 1, WCET: 0.3, Period: 0.005, BCETFraction: 0.4},
		{ID: 2, WCET: 0.6, Period: 0.02, BCETFraction: 0.5},
		{ID: 3, WCET: 1.0, Period: 0.05, BCETFraction: 0.3},
		{ID: 4, WCET: 2.0, Period: 0.2, BCETFraction: 0.5},
	}
	for _, mode := range []rt.SpeedMode{rt.RaceToIdle, rt.StaticDVS, rt.CycleConservingDVS} {
		b.Run(mode.String(), func(b *testing.B) {
			var energy float64
			for i := 0; i < b.N; i++ {
				res, err := rt.RunEDF(tasks, rates, 1.0, rand.New(rand.NewSource(9)), mode)
				if err != nil {
					b.Fatal(err)
				}
				if res.Misses != 0 {
					b.Fatalf("%d misses", res.Misses)
				}
				energy = res.EnergyJ
			}
			b.ReportMetric(energy, "joules")
		})
	}
}

// BenchmarkWBGThroughput measures planning throughput on large
// batches: tasks scheduled per second across a 16-core box.
func BenchmarkWBGThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tasks := make(model.TaskSet, 10000)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 0.1 + rng.Float64()*100, Deadline: model.NoDeadline}
	}
	cores := batch.HomogeneousCores(16, platform.IntelI7950())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batch.WBG(batchParams, cores, tasks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tasks)), "tasks/op")
}

// BenchmarkDynschedChurn measures the paper's dynamic structure under
// sustained insert/delete churn at 64k resident tasks.
func BenchmarkDynschedChurn(b *testing.B) {
	s, err := dynsched.New(batchParams, platform.TableII())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	const resident = 65536
	handles := make([]*dynsched.Handle, resident)
	for i := range handles {
		h, err := s.Insert(0.1 + rng.Float64()*100)
		if err != nil {
			b.Fatal(err)
		}
		handles[i] = h
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(resident)
		if err := s.Delete(handles[j]); err != nil {
			b.Fatal(err)
		}
		h, err := s.Insert(0.1 + rng.Float64()*100)
		if err != nil {
			b.Fatal(err)
		}
		handles[j] = h
	}
}

// BenchmarkSimulatorEventRate measures raw engine throughput:
// simulated task completions per benchmark op on a contended
// platform.
func BenchmarkSimulatorEventRate(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tasks := make(model.TaskSet, 2000)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 0.1 + rng.Float64(), Arrival: rng.Float64() * 10, Deadline: model.NoDeadline}
	}
	plat := platform.Homogeneous(8, platform.TableII(), platform.DefaultRealistic())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := online.NewLMC(experiments.OnlineParams)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(sim.Config{Platform: plat, Policy: p}, tasks, experiments.OnlineParams); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tasks)), "tasks/op")
}

func named(kind string, n int) string {
	switch n {
	case 4:
		return kind + "/P=4"
	case 64:
		return kind + "/P=64"
	default:
		return kind + "/P=1024"
	}
}
