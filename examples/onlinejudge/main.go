// Online judge: simulate the paper's motivating scenario — an online
// judging server during a programming exam. Students' score queries
// (interactive, need instant responses) and code submissions
// (non-interactive, heavy) arrive concurrently; Least Marginal Cost
// keeps responses fast while saving energy.
//
// Run with:
//
//	go run ./examples/onlinejudge
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dvfsched/internal/model"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sched"
	"dvfsched/internal/sim"
	"dvfsched/internal/stats"
	"dvfsched/internal/workload"
)

func main() {
	params := model.CostParams{Re: 0.4, Rt: 0.1}

	// A 10-minute exam window: 6000 score queries, 250 submissions,
	// arrivals bunching toward the deadline.
	judge := workload.DefaultJudgeConfig()
	judge.Interactive = 6000
	judge.NonInteractive = 250
	judge.Duration = 600
	tasks, err := judge.Generate(rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}
	plat := platform.Homogeneous(4, platform.TableII(), platform.Ideal{})

	lmc, err := online.NewLMC(params)
	if err != nil {
		log.Fatal(err)
	}
	runs := []struct {
		policy sim.Policy
		tick   float64
	}{
		{lmc, 0},
		{&sched.OLB{MaxFrequency: true}, 0},
	}
	fmt.Printf("%d queries + %d submissions over %.0f s on 4 cores\n\n",
		judge.Interactive, judge.NonInteractive, judge.Duration)
	fmt.Printf("%-8s %12s %12s %14s %16s %16s\n",
		"policy", "energy (J)", "cost (¢)", "makespan (s)", "query p99 (s)", "submit mean (s)")
	for _, r := range runs {
		res, err := sim.Run(sim.Config{Platform: plat, Policy: r.policy, TickInterval: r.tick}, tasks, params)
		if err != nil {
			log.Fatal(err)
		}
		var queryTurn, submitTurn []float64
		for _, ts := range res.Tasks {
			if ts.Task.Interactive {
				queryTurn = append(queryTurn, ts.Turnaround())
			} else {
				submitTurn = append(submitTurn, ts.Turnaround())
			}
		}
		fmt.Printf("%-8s %12.0f %12.0f %14.1f %16.4f %16.1f\n",
			res.Policy, res.TotalEnergy, res.TotalCost, res.Makespan,
			stats.Percentile(queryTurn, 99), stats.Mean(submitTurn))
	}
	fmt.Println("\nLMC preempts submissions for queries and runs each submission at the")
	fmt.Println("frequency its queue position warrants, so responses stay fast and the")
	fmt.Println("energy bill stays low; OLB pins every core at maximum frequency.")
}
