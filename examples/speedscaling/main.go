// Speed scaling: the continuous-speed foundations the paper builds
// on. Jobs with release times and deadlines run on a processor with
// power s^alpha; compare the offline optimum (YDS), the online
// Average Rate and Optimal Available heuristics, and the
// discretization of the optimum onto the paper's hardware levels.
//
// Run with:
//
//	go run ./examples/speedscaling
package main

import (
	"fmt"
	"log"

	"dvfsched/internal/platform"
	"dvfsched/internal/speedscale"
)

func main() {
	const alpha = 3.0
	// A bursty evening of encode jobs (work in Gcycles).
	jobs := []speedscale.Job{
		{ID: 1, Work: 9, Release: 0, Deadline: 12},
		{ID: 2, Work: 4, Release: 2, Deadline: 4},
		{ID: 3, Work: 3, Release: 3, Deadline: 6},
		{ID: 4, Work: 6, Release: 8, Deadline: 18},
		{ID: 5, Work: 2, Release: 15, Deadline: 16},
	}

	plan, err := speedscale.YDS(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("YDS critical intervals (densest first):")
	for _, ci := range plan {
		fmt.Printf("  speed %.2f Gcyc/s, jobs %v, %.2f s over %d segment(s)\n",
			ci.Speed, ci.Jobs, ci.Duration(), len(ci.Segments))
	}

	opt := speedscale.Energy(plan, alpha)
	avr, err := speedscale.AVREnergy(jobs, alpha)
	if err != nil {
		log.Fatal(err)
	}
	oa, err := speedscale.OAEnergy(jobs, alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenergy (power = s^%.0f):\n", alpha)
	fmt.Printf("  %-18s %8.1f (1.00x)\n", "YDS (optimal)", opt)
	fmt.Printf("  %-18s %8.1f (%.2fx)\n", "Optimal Available", oa, oa/opt)
	fmt.Printf("  %-18s %8.1f (%.2fx)\n", "Average Rate", avr, avr/opt)

	levels, joules, err := speedscale.DiscretizeYDS(jobs, plan, platform.TableII())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrounded onto the paper's Table II hardware levels:")
	for id := 1; id <= 5; id++ {
		fmt.Printf("  job %d: %.2f Gcyc/s -> %.1f GHz\n", id, speedscale.SpeedOf(plan, id), levels[id].Rate)
	}
	fmt.Printf("discrete energy with Table II's measured E(p): %.1f J\n", joules)
	fmt.Println("\nThe paper swaps this continuous, single-job-window world for discrete")
	fmt.Println("per-core rates and queue-position costs; package batch and online take")
	fmt.Println("over from here.")
}
