// Mobile: run a phone's background work queue on an Exynos-4412 under
// three strategies — race-to-idle (max frequency), the Power Saving
// mode (frequencies capped to the lower half), and the paper's optimal
// batch schedule — and compare battery drain against responsiveness.
//
// Run with:
//
//	go run ./examples/mobile
package main

import (
	"fmt"
	"log"

	"dvfsched/internal/batch"
	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sched"
	"dvfsched/internal/sim"
)

func main() {
	// On a phone, waiting is cheap and energy is precious.
	params := model.CostParams{Re: 2.0, Rt: 0.05}
	rates := platform.ExynosT4412()

	// Background work: sync, photo backup, ML inference, indexing.
	tasks := model.TaskSet{
		{ID: 1, Name: "mail-sync", Cycles: 2, Deadline: model.NoDeadline},
		{ID: 2, Name: "photo-backup", Cycles: 120, Deadline: model.NoDeadline},
		{ID: 3, Name: "asr-model", Cycles: 45, Deadline: model.NoDeadline},
		{ID: 4, Name: "app-update", Cycles: 80, Deadline: model.NoDeadline},
		{ID: 5, Name: "index", Cycles: 12, Deadline: model.NoDeadline},
		{ID: 6, Name: "thumbnails", Cycles: 25, Deadline: model.NoDeadline},
	}

	env := envelope.MustCompute(params, rates)
	fmt.Println("Exynos-4412 dominating ranges under battery-heavy pricing:")
	fmt.Println(" ", env)

	// Optimal plan on the four A9 cores.
	plan, err := batch.WBG(params, batch.HomogeneousCores(4, rates), tasks)
	if err != nil {
		log.Fatal(err)
	}
	wj, wm, _ := plan.EnergyTime()
	_, _, wcost := plan.Cost()

	// Race-to-idle: all cores pinned at 1.7 GHz.
	plat := platform.Homogeneous(4, rates, platform.Ideal{})
	race, err := sim.Run(sim.Config{Platform: plat, Policy: &sched.OLB{MaxFrequency: true}}, tasks, params)
	if err != nil {
		log.Fatal(err)
	}

	// Power Saving: lower half of the ladder, on-demand-style cap.
	psPlat, err := sched.PowerSavePlatform(plat)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := sim.Run(sim.Config{Platform: psPlat, Policy: &sched.OLB{MaxFrequency: true}}, tasks, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %10s %12s %12s\n", "strategy", "energy (J)", "makespan (s)", "cost (¢)")
	fmt.Printf("%-14s %10.1f %12.1f %12.1f\n", "WBG (optimal)", wj, wm, wcost)
	fmt.Printf("%-14s %10.1f %12.1f %12.1f\n", "race-to-idle", race.TotalEnergy, race.Makespan, race.TotalCost)
	fmt.Printf("%-14s %10.1f %12.1f %12.1f\n", "power-saving", ps.TotalEnergy, ps.Makespan, ps.TotalCost)
	fmt.Printf("\nWBG uses %.0f%% less battery than race-to-idle and %.0f%% less than the\n",
		100*(1-wj/race.TotalEnergy), 100*(1-wj/ps.TotalEnergy))
	fmt.Println("blanket power-saving cap: with waiting priced low, the dominating ranges")
	fmt.Println("push background work onto the lowest frequency steps, position by position,")
	fmt.Println("instead of applying one static cap to everything.")
}
