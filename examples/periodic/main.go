// Periodic: the classic real-time DVS setting the paper's related
// work builds on — periodic tasks with implicit deadlines under
// preemptive EDF — comparing race-to-idle, static EDF-DVS, and
// cycle-conserving EDF-DVS (Pillai & Shin) over a second of a flight
// controller's schedule.
//
// Run with:
//
//	go run ./examples/periodic
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dvfsched/internal/model"
	"dvfsched/internal/rt"
)

func main() {
	// A 200 Gcyc/s core with four steps and quadratic energy.
	rates := model.MustRateTable([]model.RateLevel{
		{Rate: 50, Energy: 1, Time: 0.02},
		{Rate: 100, Energy: 4, Time: 0.01},
		{Rate: 150, Energy: 9, Time: 1.0 / 150},
		{Rate: 200, Energy: 16, Time: 0.005},
	})

	// Flight-control periodic tasks; jobs typically finish well under
	// their WCET (BCETFraction).
	tasks := rt.TaskSet{
		{ID: 1, Name: "attitude", WCET: 0.3, Period: 0.005, BCETFraction: 0.4},
		{ID: 2, Name: "navigation", WCET: 0.6, Period: 0.02, BCETFraction: 0.5},
		{ID: 3, Name: "telemetry", WCET: 1.0, Period: 0.05, BCETFraction: 0.3},
		{ID: 4, Name: "housekeeping", WCET: 2.0, Period: 0.2, BCETFraction: 0.5},
	}
	static, err := rt.StaticOptimalLevel(tasks, rates)
	if err != nil {
		log.Fatal(err)
	}
	h, err := rt.Hyperperiod(tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("utilization %.1f Gcyc/s, hyperperiod %.3f s, static level %.0f Gcyc/s\n\n",
		tasks.CycleUtilization(), h, static.Rate)

	fmt.Printf("%-18s %10s %8s %10s\n", "policy", "energy (J)", "misses", "switches")
	for _, mode := range []rt.SpeedMode{rt.RaceToIdle, rt.StaticDVS, rt.CycleConservingDVS} {
		res, err := rt.RunEDF(tasks, rates, 1.0, rand.New(rand.NewSource(99)), mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %10.1f %8d %10d\n", mode, res.EnergyJ, res.Misses, res.Switches)
	}
	fmt.Println("\nEvery mode meets every deadline (the EDF bound U·T(p) ≤ 1 holds);")
	fmt.Println("cycle-conserving reclaims the slack of early completions, job by job.")
	fmt.Println("The paper generalizes away from this periodic setting to arbitrary")
	fmt.Println("batch and online tasks — see examples/quickstart and examples/onlinejudge.")
}
