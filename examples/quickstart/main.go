// Quickstart: schedule a small batch of tasks on a quad-core CPU with
// per-core DVFS and compare the optimal Workload Based Greedy schedule
// against running everything at maximum frequency.
//
// This example uses the high-level core facade: construct a Scheduler
// with functional options, then plan under a context.Context. The
// lower-level packages (batch, envelope, sim) remain available when
// you need their knobs directly.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

func main() {
	ctx := context.Background()

	// The cost model: Re cents per joule of energy, Rt cents per
	// second a user waits.
	params := model.CostParams{Re: 0.1, Rt: 0.4}

	// The CPU: four identical cores on the paper's Table II
	// frequency/energy ladder.
	rates := platform.TableII()
	plat := platform.Homogeneous(4, rates, platform.Ideal{})

	// Some work: a mix of short and long jobs (lengths in Gcycles).
	tasks := model.TaskSet{
		{ID: 1, Name: "thumbnail", Cycles: 4, Deadline: model.NoDeadline},
		{ID: 2, Name: "transcode", Cycles: 900, Deadline: model.NoDeadline},
		{ID: 3, Name: "lint", Cycles: 30, Deadline: model.NoDeadline},
		{ID: 4, Name: "compile", Cycles: 260, Deadline: model.NoDeadline},
		{ID: 5, Name: "test-suite", Cycles: 420, Deadline: model.NoDeadline},
		{ID: 6, Name: "backup", Cycles: 1500, Deadline: model.NoDeadline},
		{ID: 7, Name: "index", Cycles: 120, Deadline: model.NoDeadline},
		{ID: 8, Name: "report", Cycles: 60, Deadline: model.NoDeadline},
	}

	// A scheduler with the default options: shared envelope cache,
	// sequential candidate evaluation. Add core.WithParallelism(4) to
	// probe candidate cores concurrently — the schedule is identical.
	sched, err := core.New(params, plat)
	if err != nil {
		log.Fatal(err)
	}

	// Which frequency is best for which queue position? (Algorithm 1)
	env, err := sched.DominatingRanges(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dominating position ranges (backward position -> rate):")
	fmt.Println(" ", env)

	// The optimal schedule across 4 cores (Algorithm 3).
	plan, err := sched.PlanBatch(ctx, tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimal plan:")
	for _, cp := range plan.Cores {
		if len(cp.Sequence) == 0 {
			continue
		}
		fmt.Printf("  core %d:", cp.Core)
		for _, a := range cp.Sequence {
			fmt.Printf("  %s@%.1fGHz", a.Task.Name, a.Level.Rate)
		}
		fmt.Println()
	}

	eCost, tCost, total := plan.Cost()
	joules, makespan, _ := plan.EnergyTime()
	fmt.Printf("\nWBG:      %8.1f J, makespan %6.1f s, cost %.1f cents (energy %.1f + time %.1f)\n",
		joules, makespan, total, eCost, tCost)

	// Compare: everything at maximum frequency, same placement rule —
	// a second scheduler on a rate table restricted to the top level.
	maxOnly, err := rates.Restrict(func(l model.RateLevel) bool {
		return model.ApproxEq(l.Rate, rates.Max().Rate, model.DefaultEps)
	})
	if err != nil {
		log.Fatal(err)
	}
	fastSched, err := core.New(params, platform.Homogeneous(4, maxOnly, platform.Ideal{}))
	if err != nil {
		log.Fatal(err)
	}
	fast, err := fastSched.PlanBatch(ctx, tasks)
	if err != nil {
		log.Fatal(err)
	}
	fe, ft, ftotal := fast.Cost()
	fj, fm, _ := fast.EnergyTime()
	fmt.Printf("all-max:  %8.1f J, makespan %6.1f s, cost %.1f cents (energy %.1f + time %.1f)\n",
		fj, fm, ftotal, fe, ft)
	fmt.Printf("\nWBG saves %.0f%% energy and %.0f%% total cost.\n",
		100*(1-joules/fj), 100*(1-total/ftotal))
}
