// Realtime: schedule a deadline-constrained batch — the NP-complete
// Deadline-SingleCore setting of Theorem 1 — with the exact
// pseudo-polynomial dynamic program and the fast slack-reclamation
// heuristic, and compare both against racing at maximum frequency.
//
// Run with:
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"

	"dvfsched/internal/deadline"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

func main() {
	rates := platform.TableII()

	// A control loop's periodic jobs, flattened into one hyperperiod:
	// every job must finish by its deadline (seconds).
	tasks := model.TaskSet{
		{ID: 1, Name: "sensor-fuse", Cycles: 20, Deadline: 12},
		{ID: 2, Name: "plan", Cycles: 45, Deadline: 40},
		{ID: 3, Name: "actuate", Cycles: 10, Deadline: 48},
		{ID: 4, Name: "log-flush", Cycles: 60, Deadline: 110},
		{ID: 5, Name: "telemetry", Cycles: 35, Deadline: 150},
		{ID: 6, Name: "model-update", Cycles: 90, Deadline: 260},
	}

	// Exact minimum-energy schedule on a 50 ms grid.
	dp, err := deadline.MinEnergyDP(tasks, rates, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	// Fast heuristic.
	greedy, err := deadline.SlackReclaim(tasks, rates)
	if err != nil {
		log.Fatal(err)
	}
	// Race-to-idle reference.
	var raceJ, raceEnd float64
	for _, a := range deadline.EDFOrder(tasks) {
		raceJ += model.TaskEnergy(a.Cycles, rates.Max())
		raceEnd += model.TaskTime(a.Cycles, rates.Max())
	}

	fmt.Println("deadline-feasible schedules (EDF order):")
	fmt.Printf("  %-14s %10s %10s\n", "method", "energy (J)", "end (s)")
	fmt.Printf("  %-14s %10.1f %10.1f\n", "DP (exact)", dp.EnergyJ, dp.MakespanS)
	fmt.Printf("  %-14s %10.1f %10.1f\n", "slack-reclaim", greedy.EnergyJ, greedy.MakespanS)
	fmt.Printf("  %-14s %10.1f %10.1f\n", "race-to-idle", raceJ, raceEnd)

	fmt.Println("\nexact DP's per-task rates:")
	for _, a := range dp.Order {
		fmt.Printf("  %-14s %6.0f Gcyc @ %.1f GHz, deadline %5.0fs\n",
			a.Task.Name, a.Task.Cycles, a.Level.Rate, a.Task.Deadline)
	}
	fmt.Printf("\nDP saves %.0f%% energy vs racing; the heuristic gets within %.1f%% of the DP\n",
		100*(1-dp.EnergyJ/raceJ), 100*(greedy.EnergyJ/dp.EnergyJ-1))
	fmt.Println("while running in O(n² |P|) instead of pseudo-polynomial time —")
	fmt.Println("the practical answer to Theorem 1's NP-completeness.")

	// Theorem 1 is a bi-criteria problem (time bound AND energy
	// budget); the full trade-off is the Pareto frontier.
	points, err := deadline.Pareto(tasks, rates, 8, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nenergy/time Pareto frontier (deadlines respected everywhere):")
	for _, p := range points {
		fmt.Printf("  %8.1f J -> finishes at %6.1f s\n", p.EnergyJ, p.MakespanS)
	}
}
