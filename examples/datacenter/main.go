// Datacenter: schedule a batch of analytics jobs across a
// heterogeneous node — fast desktop-class cores next to efficient
// mobile-class cores — and watch Workload Based Greedy (Theorem 5)
// split the work by each core's cost curve rather than evenly.
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dvfsched/internal/batch"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/workload"
)

func main() {
	params := model.CostParams{Re: 0.2, Rt: 0.1}

	// Two big cores (i7-950 ladder) plus four little cores
	// (Exynos-4412 ladder): a big.LITTLE-style node.
	cores := []batch.CoreSpec{
		{Rates: platform.IntelI7950()},
		{Rates: platform.IntelI7950()},
		{Rates: platform.ExynosT4412()},
		{Rates: platform.ExynosT4412()},
		{Rates: platform.ExynosT4412()},
		{Rates: platform.ExynosT4412()},
	}

	// 60 analytics jobs with heavy-tailed sizes.
	rng := rand.New(rand.NewSource(7))
	tasks, err := workload.Pareto(rng, 60, 5, 1.6)
	if err != nil {
		log.Fatal(err)
	}

	plan, err := batch.WBG(params, cores, tasks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Workload Based Greedy on a heterogeneous node (2x i7 + 4x Exynos):")
	var bigCycles, littleCycles float64
	for _, cp := range plan.Cores {
		var cyc float64
		for _, a := range cp.Sequence {
			cyc += a.Task.Cycles
		}
		kind := "i7    "
		if cp.Core >= 2 {
			kind = "exynos"
			littleCycles += cyc
		} else {
			bigCycles += cyc
		}
		fmt.Printf("  core %d (%s): %2d tasks, %8.1f Gcyc\n", cp.Core, kind, len(cp.Sequence), cyc)
	}
	eCost, tCost, total := plan.Cost()
	joules, makespan, _ := plan.EnergyTime()
	fmt.Printf("\nheterogeneous plan: %.1f J, makespan %.1f s, cost %.1f cents (energy %.1f + time %.1f)\n",
		joules, makespan, total, eCost, tCost)
	fmt.Printf("work split: %.0f%% on big cores, %.0f%% on little cores\n",
		100*bigCycles/(bigCycles+littleCycles), 100*littleCycles/(bigCycles+littleCycles))

	// Contrast with pretending the node is homogeneous i7s.
	naive, err := batch.WBG(params, batch.HomogeneousCores(6, platform.IntelI7950()), tasks)
	if err != nil {
		log.Fatal(err)
	}
	_, _, naiveTotal := naive.Cost()
	naiveJ, _, _ := naive.EnergyTime()
	fmt.Printf("\nif all six cores were i7s: %.1f J, cost %.1f cents\n", naiveJ, naiveTotal)
	fmt.Println("WBG prices each (core, position) slot with its own C_j(k) and the heap")
	fmt.Println("assigns the heaviest jobs to the cheapest slots, wherever they are.")
}
