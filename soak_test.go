package dvfsched_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dvfsched/internal/experiments"
	"dvfsched/internal/obs"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/server"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

// TestSoakOnlineScheduling runs many randomized online traces across
// every policy and checks conservation invariants on each: all tasks
// complete, energy stays within physical bounds, turnarounds are
// non-negative, and the maintained LMC queue costs drain to zero.
// Skipped with -short.
func TestSoakOnlineScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	for trial := 0; trial < 12; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		judge := workload.DefaultJudgeConfig()
		judge.Interactive = 200 + rng.Intn(1200)
		judge.NonInteractive = 30 + rng.Intn(250)
		judge.Duration = 60 + rng.Float64()*240
		judge.SubmitSigma = 0.3 + rng.Float64()
		judge.EndRamp = rng.Float64() * 10
		tasks, err := judge.Generate(rng)
		if err != nil {
			t.Fatal(err)
		}
		cores := 1 + rng.Intn(8)
		plat := platform.Homogeneous(cores, platform.TableII(), platform.Ideal{})

		lmc, err := online.NewLMC(experiments.OnlineParams)
		if err != nil {
			t.Fatal(err)
		}
		lmcEst, err := online.NewLMCEstimated(experiments.OnlineParams)
		if err != nil {
			t.Fatal(err)
		}
		policies := []sim.Policy{lmc, lmcEst, &online.Replan{Params: experiments.OnlineParams, MigrationCycles: 0.1}}
		for _, p := range policies {
			res, err := sim.Run(sim.Config{Platform: plat, Policy: p}, tasks, experiments.OnlineParams)
			if err != nil {
				t.Fatalf("seed %d cores %d policy %s: %v", seed, cores, p.Name(), err)
			}
			var minJ, maxJ float64
			for _, ts := range res.Tasks {
				if !ts.Done {
					t.Fatalf("seed %d policy %s: task %d unfinished", seed, p.Name(), ts.Task.ID)
				}
				if ts.Turnaround() < -1e-9 {
					t.Fatalf("seed %d policy %s: negative turnaround", seed, p.Name())
				}
				minJ += ts.Task.Cycles * platform.TableII().Min().Energy
				maxJ += ts.Task.Cycles * platform.TableII().Max().Energy
			}
			if res.ActiveEnergy < minJ-1e-6 || res.ActiveEnergy > maxJ+1e-6 {
				t.Fatalf("seed %d policy %s: energy %v outside [%v, %v]", seed, p.Name(), res.ActiveEnergy, minJ, maxJ)
			}
			if math.IsNaN(res.TotalCost) || res.TotalCost <= 0 {
				t.Fatalf("seed %d policy %s: bad cost %v", seed, p.Name(), res.TotalCost)
			}
		}
		// LMC's internal queues fully drained.
		for j := 0; j < cores; j++ {
			if c := lmc.QueuedCost(j); math.Abs(c) > 1e-4 {
				t.Fatalf("seed %d: residual LMC queue cost %v on core %d", seed, c, j)
			}
		}
	}
}

// TestSoakConcurrentSessionDrain races submitters against a drain and
// a server-wide BeginDrain on one session shard, then audits the event
// trace: every accepted submission appears as exactly one arrival and
// one completion, rejected submissions leave no trace, and sequence
// numbers never go backwards — no event is lost or reordered across
// the drain. Meaningful under -race (scripts/check.sh runs it so).
// Skipped with -short.
func TestSoakConcurrentSessionDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	s := server.New(server.Config{})
	defer s.Close()
	do := func(method, path string, body []byte) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(method, path, bytes.NewReader(body)))
		return w
	}

	w := do(http.MethodPost, "/v1/sessions", []byte(`{"cores":4}`))
	if w.Code != http.StatusCreated {
		t.Fatalf("create session: %d %s", w.Code, w.Body)
	}
	var info server.SessionInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	taskPath := "/v1/sessions/" + info.ID + "/tasks"

	const goroutines, perG = 6, 40
	accepted := make([][]bool, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	// mid is closed once the first submitter is halfway through, so the
	// drain and BeginDrain land mid-flight: enough submissions admitted
	// beforehand that the audit is non-vacuous, enough still in flight
	// that they race the tombstone.
	mid := make(chan struct{})
	var midOnce sync.Once
	for g := 0; g < goroutines; g++ {
		accepted[g] = make([]bool, perG)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == 0 {
				// Whatever happens, the drainers must not block forever.
				defer midOnce.Do(func() { close(mid) })
			}
			<-start
			for i := 0; i < perG; i++ {
				if g == 0 && i == perG/2 {
					midOnce.Do(func() { close(mid) })
				}
				id := g*perG + i + 1
				body := fmt.Sprintf(`{"clamp":true,"tasks":[{"id":%d,"cycles":0.5,"arrival":%g}]}`, id, float64(i)*0.1)
				w := do(http.MethodPost, taskPath, []byte(body))
				switch w.Code {
				case http.StatusOK:
					accepted[g][i] = true
				case http.StatusConflict, http.StatusServiceUnavailable, http.StatusTooManyRequests:
					// Lost the race against the drain (409), BeginDrain
					// (503), or backpressure (429): the submission must
					// leave no trace.
				default:
					t.Errorf("submit %d: unexpected status %d: %s", id, w.Code, w.Body)
				}
			}
		}(g)
	}
	// One goroutine drains the session mid-flight; another flips the
	// whole server into draining mode.
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-mid
		w := do(http.MethodDelete, "/v1/sessions/"+info.ID, nil)
		if w.Code != http.StatusOK && w.Code != http.StatusConflict {
			t.Errorf("drain: unexpected status %d: %s", w.Code, w.Body)
		}
	}()
	go func() {
		defer wg.Done()
		<-mid
		s.BeginDrain()
	}()
	close(start)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	w = do(http.MethodGet, "/v1/sessions/"+info.ID+"/events", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("events: %d %s", w.Code, w.Body)
	}
	arrivals := map[int]int{}
	completes := map[int]int{}
	var lastSeq uint64
	n := 0
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %d: %v", n, err)
		}
		if n > 0 && ev.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d after %d — reordered or duplicated", n, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		n++
		switch ev.Kind {
		case obs.KindArrival:
			arrivals[ev.Task]++
		case obs.KindComplete:
			completes[ev.Task]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	nAccepted := 0
	for g := range accepted {
		for i, ok := range accepted[g] {
			id := g*perG + i + 1
			if ok {
				nAccepted++
				if arrivals[id] != 1 || completes[id] != 1 {
					t.Errorf("accepted task %d: %d arrivals, %d completions, want 1 and 1", id, arrivals[id], completes[id])
				}
			} else if arrivals[id] != 0 {
				t.Errorf("rejected task %d has %d arrival events", id, arrivals[id])
			}
		}
	}
	if len(arrivals) != nAccepted {
		t.Errorf("trace has %d arrivals, want %d (accepted submissions)", len(arrivals), nAccepted)
	}
	if nAccepted == 0 {
		t.Error("no submission was accepted; the race never exercised admission")
	}
}
