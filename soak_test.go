package dvfsched_test

import (
	"math"
	"math/rand"
	"testing"

	"dvfsched/internal/experiments"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

// TestSoakOnlineScheduling runs many randomized online traces across
// every policy and checks conservation invariants on each: all tasks
// complete, energy stays within physical bounds, turnarounds are
// non-negative, and the maintained LMC queue costs drain to zero.
// Skipped with -short.
func TestSoakOnlineScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	for trial := 0; trial < 12; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		judge := workload.DefaultJudgeConfig()
		judge.Interactive = 200 + rng.Intn(1200)
		judge.NonInteractive = 30 + rng.Intn(250)
		judge.Duration = 60 + rng.Float64()*240
		judge.SubmitSigma = 0.3 + rng.Float64()
		judge.EndRamp = rng.Float64() * 10
		tasks, err := judge.Generate(rng)
		if err != nil {
			t.Fatal(err)
		}
		cores := 1 + rng.Intn(8)
		plat := platform.Homogeneous(cores, platform.TableII(), platform.Ideal{})

		lmc, err := online.NewLMC(experiments.OnlineParams)
		if err != nil {
			t.Fatal(err)
		}
		lmcEst, err := online.NewLMCEstimated(experiments.OnlineParams)
		if err != nil {
			t.Fatal(err)
		}
		policies := []sim.Policy{lmc, lmcEst, &online.Replan{Params: experiments.OnlineParams, MigrationCycles: 0.1}}
		for _, p := range policies {
			res, err := sim.Run(sim.Config{Platform: plat, Policy: p}, tasks, experiments.OnlineParams)
			if err != nil {
				t.Fatalf("seed %d cores %d policy %s: %v", seed, cores, p.Name(), err)
			}
			var minJ, maxJ float64
			for _, ts := range res.Tasks {
				if !ts.Done {
					t.Fatalf("seed %d policy %s: task %d unfinished", seed, p.Name(), ts.Task.ID)
				}
				if ts.Turnaround() < -1e-9 {
					t.Fatalf("seed %d policy %s: negative turnaround", seed, p.Name())
				}
				minJ += ts.Task.Cycles * platform.TableII().Min().Energy
				maxJ += ts.Task.Cycles * platform.TableII().Max().Energy
			}
			if res.ActiveEnergy < minJ-1e-6 || res.ActiveEnergy > maxJ+1e-6 {
				t.Fatalf("seed %d policy %s: energy %v outside [%v, %v]", seed, p.Name(), res.ActiveEnergy, minJ, maxJ)
			}
			if math.IsNaN(res.TotalCost) || res.TotalCost <= 0 {
				t.Fatalf("seed %d policy %s: bad cost %v", seed, p.Name(), res.TotalCost)
			}
		}
		// LMC's internal queues fully drained.
		for j := 0; j < cores; j++ {
			if c := lmc.QueuedCost(j); math.Abs(c) > 1e-4 {
				t.Fatalf("seed %d: residual LMC queue cost %v on core %d", seed, c, j)
			}
		}
	}
}
