package rangetree

import (
	"sort"
	"testing"
)

// shadowTask mirrors one stored length in the naive reference model.
type shadowTask struct {
	cycles float64
	seq    int // insertion order breaks ties, like Node.seq
}

// shadowSort orders the reference model the way the tree does:
// descending length, ties by insertion order.
func shadowSort(s []shadowTask) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].cycles != s[j].cycles {
			return s[i].cycles > s[j].cycles
		}
		return s[i].seq < s[j].seq
	})
}

// FuzzInsertDelete drives a Tree and a naive shadow slice through the
// same byte-derived insert/delete sequence and cross-checks every
// aggregate the scheduler relies on (Eqs. 28-34) by brute-force
// recomputation, plus the structural invariants. Lengths are small
// integers so all float64 arithmetic is exact and comparisons need no
// tolerance; repeated values exercise the tie-breaking.
func FuzzInsertDelete(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x11, 0x25, 0x33, 0x80, 0x42})
	f.Add([]byte{1, 1, 1, 1, 129, 130, 131, 132})
	f.Add([]byte{9, 18, 27, 36, 45, 135, 144, 153, 54, 63, 162})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New()
		var handles []*Node
		var shadow []shadowTask
		seq := 0
		for _, b := range data {
			if b < 128 || len(handles) == 0 {
				cycles := float64(1 + b%16)
				handles = append(handles, tr.Insert(cycles))
				seq++
				shadow = append(shadow, shadowTask{cycles: cycles, seq: seq})
			} else {
				i := int(b-128) % len(handles)
				victim := handles[i]
				tr.Delete(victim)
				handles = append(handles[:i], handles[i+1:]...)
				shadow = removeShadow(shadow, victim)
			}
			shadowSort(shadow)
			checkAgainstShadow(t, tr, handles, shadow, int(b))
		}
	})
}

// removeShadow deletes the shadow entry matching the victim node. Both
// sides assign insertion sequence numbers in lockstep (the test counter
// mirrors Tree.seq), so the victim is the entry with the node's seq.
func removeShadow(shadow []shadowTask, victim *Node) []shadowTask {
	for j, s := range shadow {
		if uint64(s.seq) == victim.seq {
			return append(shadow[:j:j], shadow[j+1:]...)
		}
	}
	panic("rangetree fuzz: victim not in shadow")
}

func checkAgainstShadow(t *testing.T, tr *Tree, handles []*Node, shadow []shadowTask, salt int) {
	t.Helper()
	n := len(shadow)
	if tr.Len() != n {
		t.Fatalf("Len = %d, shadow has %d", tr.Len(), n)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}

	var totalXi, totalGamma float64
	for k, s := range shadow {
		totalXi += s.cycles
		totalGamma += float64(k+1) * s.cycles
	}
	if tr.TotalXi() != totalXi {
		t.Fatalf("TotalXi = %v, naive %v", tr.TotalXi(), totalXi)
	}
	if tr.TotalGamma() != totalGamma {
		t.Fatalf("TotalGamma = %v, naive %v", tr.TotalGamma(), totalGamma)
	}

	// Rank/Select must agree with the sorted shadow at every position.
	for k := 1; k <= n; k++ {
		node := tr.Select(k)
		if node == nil || node.Cycles() != shadow[k-1].cycles {
			t.Fatalf("Select(%d) = %v, shadow %v", k, node, shadow[k-1].cycles)
		}
		if got := tr.Rank(node); got != k {
			t.Fatalf("Rank(Select(%d)) = %d", k, got)
		}
	}
	if tr.Select(0) != nil || tr.Select(n+1) != nil {
		t.Fatal("Select out of range returned a node")
	}

	// Range queries against brute-force sums over a salt-derived and a
	// few fixed windows.
	windows := [][2]int{{1, n}, {1, (n + 1) / 2}, {n/2 + 1, n}, {1 + salt%(n+1), n - salt%3}}
	for _, w := range windows {
		a, b := w[0], w[1]
		var xiSum, gammaSum, deltaSum float64
		for k := a; k <= b && k <= n; k++ {
			if k < 1 {
				continue
			}
			c := shadow[k-1].cycles
			xiSum += c
			gammaSum += float64(k) * c
			deltaSum += float64(k-a+1) * c
		}
		if got := tr.RangeXi(a, b); got != xiSum {
			t.Fatalf("RangeXi(%d,%d) = %v, naive %v (n=%d)", a, b, got, xiSum, n)
		}
		if got := tr.RangeGamma(a, b); got != gammaSum {
			t.Fatalf("RangeGamma(%d,%d) = %v, naive %v (n=%d)", a, b, got, gammaSum, n)
		}
		if got := tr.RangeDelta(a, b); got != deltaSum {
			t.Fatalf("RangeDelta(%d,%d) = %v, naive %v (n=%d)", a, b, got, deltaSum, n)
		}
	}

	// The threaded list walks the same order.
	k := 0
	for cur := tr.First(); cur != nil; cur = cur.Next() {
		if cur.Cycles() != shadow[k].cycles {
			t.Fatalf("threading order diverges at %d", k)
		}
		k++
	}
	if k != n {
		t.Fatalf("threading visited %d of %d", k, n)
	}
}
