package rangetree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// oracle is a plain-slice reference implementation kept in descending
// order with FIFO ties.
type oracle struct {
	vals []float64 // rank order: vals[0] has rank 1
}

func (o *oracle) insert(v float64) int {
	// Insert after all existing values >= v (FIFO among equals).
	i := sort.Search(len(o.vals), func(i int) bool { return o.vals[i] < v })
	o.vals = append(o.vals, 0)
	copy(o.vals[i+1:], o.vals[i:])
	o.vals[i] = v
	return i + 1
}

func (o *oracle) remove(rank int) {
	o.vals = append(o.vals[:rank-1], o.vals[rank:]...)
}

func (o *oracle) xi(a, b int) float64 {
	if a < 1 {
		a = 1
	}
	if b > len(o.vals) {
		b = len(o.vals)
	}
	var s float64
	for k := a; k <= b; k++ {
		s += o.vals[k-1]
	}
	return s
}

func (o *oracle) gamma(a, b int) float64 {
	if a < 1 {
		a = 1
	}
	if b > len(o.vals) {
		b = len(o.vals)
	}
	var s float64
	for k := a; k <= b; k++ {
		s += float64(k) * o.vals[k-1]
	}
	return s
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.TotalXi() != 0 || tr.TotalGamma() != 0 {
		t.Error("empty tree has non-zero aggregates")
	}
	if tr.First() != nil || tr.Last() != nil || tr.Select(1) != nil {
		t.Error("empty tree returned nodes")
	}
	if tr.PrefixXi(5) != 0 || tr.RangeXi(1, 10) != 0 || tr.RangeDelta(2, 3) != 0 {
		t.Error("empty tree range queries non-zero")
	}
}

func TestInsertDescendingOrder(t *testing.T) {
	tr := New()
	for _, v := range []float64{5, 1, 9, 3, 7} {
		tr.Insert(v)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 7, 5, 3, 1}
	for k, w := range want {
		n := tr.Select(k + 1)
		if n == nil || n.Cycles() != w {
			t.Fatalf("Select(%d) = %v, want %v", k+1, n, w)
		}
		if tr.Rank(n) != k+1 {
			t.Fatalf("Rank(Select(%d)) = %d", k+1, tr.Rank(n))
		}
	}
	if tr.First().Cycles() != 9 || tr.Last().Cycles() != 1 {
		t.Error("First/Last wrong")
	}
}

func TestTiesAreFIFO(t *testing.T) {
	tr := New()
	a := tr.Insert(5)
	b := tr.Insert(5)
	c := tr.Insert(5)
	if tr.Rank(a) != 1 || tr.Rank(b) != 2 || tr.Rank(c) != 3 {
		t.Errorf("ranks = %d,%d,%d; equal keys must keep insertion order",
			tr.Rank(a), tr.Rank(b), tr.Rank(c))
	}
}

func TestThreading(t *testing.T) {
	tr := New()
	for _, v := range []float64{2, 8, 4, 6} {
		tr.Insert(v)
	}
	var got []float64
	for n := tr.First(); n != nil; n = n.Next() {
		got = append(got, n.Cycles())
	}
	want := []float64{8, 6, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in-order = %v, want %v", got, want)
		}
	}
	// Backwards.
	var rev []float64
	for n := tr.Last(); n != nil; n = n.Prev() {
		rev = append(rev, n.Cycles())
	}
	for i := range want {
		if rev[i] != want[len(want)-1-i] {
			t.Fatalf("reverse order = %v", rev)
		}
	}
}

func TestDeleteRoot(t *testing.T) {
	tr := New()
	n := tr.Insert(1)
	tr.Delete(n)
	if tr.Len() != 0 || tr.First() != nil {
		t.Error("tree not empty after deleting sole node")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAggregatesSmall(t *testing.T) {
	tr := New()
	for _, v := range []float64{10, 20, 30} { // ranks: 30->1, 20->2, 10->3
		tr.Insert(v)
	}
	if !approxEq(tr.TotalXi(), 60) {
		t.Errorf("TotalXi = %v", tr.TotalXi())
	}
	// γ = 1*30 + 2*20 + 3*10 = 100.
	if !approxEq(tr.TotalGamma(), 100) {
		t.Errorf("TotalGamma = %v", tr.TotalGamma())
	}
	// ξ([2,3]) = 20+10 = 30; Δ([2,3]) = 1*20+2*10 = 40.
	if !approxEq(tr.RangeXi(2, 3), 30) {
		t.Errorf("RangeXi(2,3) = %v", tr.RangeXi(2, 3))
	}
	if !approxEq(tr.RangeDelta(2, 3), 40) {
		t.Errorf("RangeDelta(2,3) = %v", tr.RangeDelta(2, 3))
	}
	// γ([2,3]) = Δ + (a-1)ξ = 40 + 30 = 70.
	if !approxEq(tr.RangeGamma(2, 3), 70) {
		t.Errorf("RangeGamma(2,3) = %v", tr.RangeGamma(2, 3))
	}
}

func TestRangeQueryClamping(t *testing.T) {
	tr := New()
	tr.Insert(1)
	tr.Insert(2)
	if tr.RangeXi(0, 99) != tr.TotalXi() {
		t.Error("clamped full range != total")
	}
	if tr.RangeXi(2, 1) != 0 {
		t.Error("inverted range != 0")
	}
	if tr.RangeGamma(5, 9) != 0 {
		t.Error("out-of-range gamma != 0")
	}
}

func TestRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := NewSeeded(7)
	var o oracle
	handles := make([]*Node, 0, 512)
	for step := 0; step < 4000; step++ {
		if len(handles) == 0 || rng.Float64() < 0.6 {
			v := math.Floor(rng.Float64()*1000) / 4
			h := tr.Insert(v)
			wantRank := o.insert(v)
			if got := tr.Rank(h); got != wantRank {
				t.Fatalf("step %d: insert rank %d, oracle %d", step, got, wantRank)
			}
			handles = append(handles, h)
		} else {
			i := rng.Intn(len(handles))
			h := handles[i]
			o.remove(tr.Rank(h))
			tr.Delete(h)
			handles[i] = handles[len(handles)-1]
			handles = handles[:len(handles)-1]
		}
		if tr.Len() != len(o.vals) {
			t.Fatalf("step %d: Len %d vs oracle %d", step, tr.Len(), len(o.vals))
		}
		if step%137 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			a := 1 + rng.Intn(len(o.vals)+1)
			b := a + rng.Intn(len(o.vals)+1)
			if !approxEq(tr.RangeXi(a, b), o.xi(a, b)) {
				t.Fatalf("step %d: RangeXi(%d,%d) = %v, oracle %v", step, a, b, tr.RangeXi(a, b), o.xi(a, b))
			}
			if !approxEq(tr.RangeGamma(a, b), o.gamma(a, b)) {
				t.Fatalf("step %d: RangeGamma(%d,%d) = %v, oracle %v", step, a, b, tr.RangeGamma(a, b), o.gamma(a, b))
			}
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectOutOfRange(t *testing.T) {
	tr := New()
	tr.Insert(1)
	if tr.Select(0) != nil || tr.Select(2) != nil || tr.Select(-3) != nil {
		t.Error("out-of-range Select returned node")
	}
}

func TestBalanceDepth(t *testing.T) {
	// Sorted insertion must still produce logarithmic height thanks
	// to treap priorities.
	tr := New()
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.Insert(float64(i))
	}
	var depth func(*Node) int
	depth = func(nd *Node) int {
		if nd == nil {
			return 0
		}
		l, r := depth(nd.left), depth(nd.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	d := depth(tr.root)
	if d > 4*15 { // 4x log2(n) is a generous treap bound
		t.Errorf("depth %d too large for n=%d", d, n)
	}
}

// Property: Δ([a,b]) computed by the tree matches the definition for
// random contents and ranges.
func TestDeltaDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewSeeded(uint64(seed) ^ 0xabc)
		n := 1 + rng.Intn(60)
		vals := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := rng.Float64() * 100
			tr.Insert(v)
			vals = append(vals, v)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		a := 1 + rng.Intn(n)
		b := a + rng.Intn(n-a+1)
		var want float64
		for k := a; k <= b; k++ {
			want += float64(k-a+1) * vals[k-1]
		}
		return approxEq(tr.RangeDelta(a, b), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: merging two adjacent ranges obeys Eq. 34.
func TestMergeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewSeeded(uint64(seed))
		n := 2 + rng.Intn(50)
		for i := 0; i < n; i++ {
			tr.Insert(rng.Float64() * 10)
		}
		l := 1 + rng.Intn(n-1)
		m := l + rng.Intn(n-l)
		r := m + 1 + rng.Intn(n-m)
		if r > n {
			r = n
		}
		if m+1 > r {
			return true
		}
		xiLM, xiMR := tr.RangeXi(l, m), tr.RangeXi(m+1, r)
		dLM, dMR := tr.RangeDelta(l, m), tr.RangeDelta(m+1, r)
		wantXi := xiLM + xiMR
		wantD := dLM + dMR + float64(m+1-l)*xiMR
		return approxEq(tr.RangeXi(l, r), wantXi) && approxEq(tr.RangeDelta(l, r), wantD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
