package rangetree_test

import (
	"fmt"

	"dvfsched/internal/rangetree"
)

// The tree keeps task lengths in descending rank order and answers
// the paper's ξ and Δ range queries in O(log N).
func ExampleTree() {
	tr := rangetree.New()
	tr.Insert(10)
	tr.Insert(30)
	tr.Insert(20)
	// Ranks: 30 -> 1, 20 -> 2, 10 -> 3.
	fmt.Printf("xi([1,3])    = %.0f\n", tr.RangeXi(1, 3))
	fmt.Printf("gamma([1,3]) = %.0f\n", tr.RangeGamma(1, 3)) // 1*30+2*20+3*10
	fmt.Printf("delta([2,3]) = %.0f\n", tr.RangeDelta(2, 3)) // 1*20+2*10
	fmt.Printf("rank-2 value = %.0f\n", tr.Select(2).Cycles())
	// Output:
	// xi([1,3])    = 60
	// gamma([1,3]) = 100
	// delta([2,3]) = 40
	// rank-2 value = 20
}
