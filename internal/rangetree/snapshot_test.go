package rangetree

import (
	"math"
	"math/rand"
	"testing"
)

// sameTree compares two trees node by node: shape, per-node values,
// and bit-exact aggregates. This is the restore contract — not "equal
// within epsilon" but "the same rounding history".
func sameTree(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.seq != b.seq || a.rngState != b.rngState {
		t.Fatalf("generator state differs: seq %d/%d rng %#x/%#x", a.seq, b.seq, a.rngState, b.rngState)
	}
	var walk func(path string, x, y *Node)
	walk = func(path string, x, y *Node) {
		if (x == nil) != (y == nil) {
			t.Fatalf("shape differs at %s", path)
		}
		if x == nil {
			return
		}
		if x.cycles != y.cycles || x.seq != y.seq || x.prio != y.prio {
			t.Fatalf("node values differ at %s", path)
		}
		if x.size != y.size ||
			math.Float64bits(x.xi) != math.Float64bits(y.xi) ||
			math.Float64bits(x.delta) != math.Float64bits(y.delta) {
			t.Fatalf("aggregates differ at %s: size %d/%d xi %v/%v delta %v/%v",
				path, x.size, y.size, x.xi, y.xi, x.delta, y.delta)
		}
		walk(path+"L", x.left, y.left)
		walk(path+"R", x.right, y.right)
	}
	walk("root", a.root, b.root)
}

// churn applies a deterministic insert/delete sequence, returning live
// handles keyed by insertion order.
func churn(t *testing.T, tr *Tree, rng *rand.Rand, ops int, live []*Node) []*Node {
	t.Helper()
	for i := 0; i < ops; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(live))
			tr.Delete(live[j])
			live = append(live[:j], live[j+1:]...)
		} else {
			live = append(live, tr.Insert(rng.Float64()*100+0.001))
		}
	}
	return live
}

func TestSnapshotRestoreExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11)) // deterministic churn, not randomness
	tr := New()
	live := churn(t, tr, rng, 500, nil)
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}

	_ = live
	st := tr.Snapshot()
	restored, handles, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != tr.Len() {
		t.Fatalf("restore returned %d handles, tree has %d nodes", len(handles), tr.Len())
	}
	if err := restored.checkInvariants(); err != nil {
		t.Fatalf("restored tree invalid: %v", err)
	}
	sameTree(t, tr, restored)
	for k, h := range handles {
		if restored.Rank(h) != k+1 {
			t.Fatalf("handle %d has rank %d", k, restored.Rank(h))
		}
	}

	// The decisive property: identical FUTURE behavior. Apply the same
	// operation stream to both trees; shapes, aggregates, and priority
	// draws must stay bit-identical.
	futureA := rand.New(rand.NewSource(12))
	futureB := rand.New(rand.NewSource(12))
	// live is insertion-ordered; walk the original in rank order so
	// both sides delete the same logical task at every step.
	var liveA []*Node
	for n := tr.First(); n != nil; n = n.Next() {
		liveA = append(liveA, n)
	}
	liveB := append([]*Node(nil), handles...)
	churn(t, tr, futureA, 300, liveA)
	churn(t, restored, futureB, 300, liveB)
	sameTree(t, tr, restored)
}

func TestSnapshotEmptyTree(t *testing.T) {
	tr := NewSeeded(42)
	tr.Delete(tr.Insert(5)) // advance the generators past their seed state
	st := tr.Snapshot()
	restored, handles, err := Restore(st)
	if err != nil || handles != nil {
		t.Fatalf("restore empty: %v, %v", err, handles)
	}
	sameTree(t, tr, restored)
	// Both must draw the same next priority.
	a, b := tr.Insert(3), restored.Insert(3)
	if a.prio != b.prio || a.seq != b.seq {
		t.Fatalf("post-restore insert differs: prio %#x/%#x seq %d/%d", a.prio, b.prio, a.seq, b.seq)
	}
}

func TestRestoreRejectsOutOfOrder(t *testing.T) {
	st := TreeState{Nodes: []NodeState{
		{Cycles: 1, Seq: 1, Prio: 10},
		{Cycles: 2, Seq: 2, Prio: 20}, // larger cycles must come first
	}}
	if _, _, err := Restore(st); err == nil {
		t.Fatal("want error for rank-order violation")
	}
	// Equal cycles with decreasing seq is also out of order.
	st = TreeState{Nodes: []NodeState{
		{Cycles: 1, Seq: 5, Prio: 10},
		{Cycles: 1, Seq: 2, Prio: 20},
	}}
	if _, _, err := Restore(st); err == nil {
		t.Fatal("want error for seq tie-break violation")
	}
}
