package rangetree_test

import (
	"math/rand"
	"testing"

	"dvfsched/internal/rangetree"
)

// BenchmarkInsertDeleteChurn measures steady-state queue churn: one
// random insert plus one random delete against a 1024-node tree.
func BenchmarkInsertDeleteChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	t := rangetree.NewSeeded(2)
	nodes := make([]*rangetree.Node, 0, 1024)
	for i := 0; i < 1024; i++ {
		nodes = append(nodes, t.Insert(1+rng.Float64()*100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(nodes))
		t.Delete(nodes[j])
		nodes[j] = t.Insert(1 + rng.Float64()*100)
	}
}

// BenchmarkPrefixQueries measures the order-statistic prefix sums the
// dynamic cost evaluation is built on.
func BenchmarkPrefixQueries(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	t := rangetree.NewSeeded(2)
	for i := 0; i < 1024; i++ {
		t.Insert(1 + rng.Float64()*100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 1 + i%1024
		_ = t.PrefixXi(k)
		_ = t.PrefixGamma(k)
	}
}
