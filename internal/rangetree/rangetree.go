// Package rangetree implements the sorted dynamic structure of Section
// IV-A: a balanced binary search tree over task lengths L^B_k, kept in
// descending order (rank 1 is the longest task, i.e. backward position
// 1, the task that executes last), where every subtree maintains
//
//	size, ξ = Σ L, and Δ = Σ (local rank)·L,
//
// the associative aggregates of Eqs. 28-34. The tree supports
// insertion, deletion, rank/select, predecessor/successor in O(1) via
// threaded list pointers, and the range queries
//
//	ξ([a,b]) = Σ_{k=a..b} L^B_k
//	Δ([a,b]) = Σ_{k=a..b} (k-a+1)·L^B_k
//	γ([a,b]) = Σ_{k=a..b} k·L^B_k = Δ([a,b]) + (a-1)·ξ([a,b])
//
// in O(log N). Balance comes from treap priorities drawn from a
// deterministic SplitMix64 stream, so runs are reproducible.
package rangetree

import "fmt"

// Node is a handle to one stored task length. Handles stay valid until
// the node is deleted.
type Node struct {
	cycles float64
	seq    uint64 // tie-break: equal lengths order by insertion
	prio   uint64

	left, right, parent *Node
	prev, next          *Node // in-order threading

	size  int
	xi    float64 // Σ cycles over subtree
	delta float64 // Σ (local in-order rank)·cycles over subtree
}

// Cycles returns the stored task length.
func (n *Node) Cycles() float64 { return n.cycles }

// Prev returns the in-order predecessor (next-larger task), or nil.
func (n *Node) Prev() *Node { return n.prev }

// Next returns the in-order successor (next-smaller task), or nil.
func (n *Node) Next() *Node { return n.next }

func size(n *Node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func xi(n *Node) float64 {
	if n == nil {
		return 0
	}
	return n.xi
}

func delta(n *Node) float64 {
	if n == nil {
		return 0
	}
	return n.delta
}

// pull recomputes n's aggregates from its children (Eqs. 33-34).
func (n *Node) pull() {
	szL := size(n.left)
	n.size = szL + size(n.right) + 1
	n.xi = xi(n.left) + n.cycles + xi(n.right)
	n.delta = delta(n.left) + float64(szL+1)*n.cycles + delta(n.right) + float64(szL+1)*xi(n.right)
}

// before reports whether a precedes b in the descending-length order.
func before(a, b *Node) bool {
	//dvfslint:allow floatcmp tree ordering needs a strict weak order; epsilon equality is intransitive
	if a.cycles != b.cycles {
		return a.cycles > b.cycles
	}
	return a.seq < b.seq
}

// Tree is the range tree. The zero value is not usable; call New.
type Tree struct {
	root     *Node
	seq      uint64
	rngState uint64
	// free heads the freelist of recycled nodes, linked through their
	// right pointers. Delete pushes, Insert pops, so steady-state
	// insert/delete churn (the LMC marginal-cost probes) allocates
	// nothing. The priority stream is independent of recycling, so tree
	// shapes are identical with or without it.
	free *Node
}

// New returns an empty tree with the default priority seed.
func New() *Tree { return NewSeeded(0x5ca1ab1e) }

// NewSeeded returns an empty tree whose treap priorities derive from
// seed, for reproducible shapes.
func NewSeeded(seed uint64) *Tree { return &Tree{rngState: seed} }

func (t *Tree) nextPrio() uint64 {
	t.rngState += 0x9e3779b97f4a7c15
	z := t.rngState
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Len returns the number of stored tasks.
func (t *Tree) Len() int { return size(t.root) }

// TotalXi returns ξ([1, Len]).
func (t *Tree) TotalXi() float64 { return xi(t.root) }

// TotalGamma returns γ([1, Len]) = Σ k·L^B_k.
func (t *Tree) TotalGamma() float64 { return delta(t.root) }

// rotateUp lifts c above its parent, preserving in-order order and
// fixing aggregates locally.
func (t *Tree) rotateUp(c *Node) {
	p := c.parent
	g := p.parent
	if p.left == c {
		p.left = c.right
		if c.right != nil {
			c.right.parent = p
		}
		c.right = p
	} else {
		p.right = c.left
		if c.left != nil {
			c.left.parent = p
		}
		c.left = p
	}
	p.parent = c
	c.parent = g
	if g == nil {
		t.root = c
	} else if g.left == p {
		g.left = c
	} else {
		g.right = c
	}
	p.pull()
	c.pull()
}

// Insert adds a task length and returns its handle. O(log N).
// Handles returned by Insert are owned by the caller until passed to
// Delete; after that the node may be recycled by a later Insert.
func (t *Tree) Insert(cycles float64) *Node {
	t.seq++
	n := t.free
	if n != nil {
		t.free = n.right
		*n = Node{}
	} else {
		n = &Node{}
	}
	n.cycles, n.seq, n.prio = cycles, t.seq, t.nextPrio()
	n.pull()
	if t.root == nil {
		t.root = n
		return n
	}
	var pred, succ *Node
	cur := t.root
	for {
		if before(n, cur) {
			succ = cur
			if cur.left == nil {
				cur.left = n
				break
			}
			cur = cur.left
		} else {
			pred = cur
			if cur.right == nil {
				cur.right = n
				break
			}
			cur = cur.right
		}
	}
	n.parent = cur
	// Thread the in-order list.
	n.prev, n.next = pred, succ
	if pred != nil {
		pred.next = n
	}
	if succ != nil {
		succ.prev = n
	}
	// Refresh aggregates on the search path, then restore the heap
	// property; rotations keep ancestors' aggregates valid.
	for a := cur; a != nil; a = a.parent {
		a.pull()
	}
	for n.parent != nil && n.parent.prio < n.prio {
		t.rotateUp(n)
	}
	return n
}

// Delete removes a node previously returned by Insert. Deleting a node
// twice, or a node from another tree, corrupts the structure; handles
// are owned by the caller. O(log N).
func (t *Tree) Delete(n *Node) {
	// Rotate n down to a leaf, always lifting the higher-priority
	// child to preserve the heap property.
	for n.left != nil || n.right != nil {
		c := n.left
		if c == nil || (n.right != nil && n.right.prio > c.prio) {
			c = n.right
		}
		t.rotateUp(c)
	}
	p := n.parent
	if p == nil {
		t.root = nil
	} else {
		if p.left == n {
			p.left = nil
		} else {
			p.right = nil
		}
		for a := p; a != nil; a = a.parent {
			a.pull()
		}
	}
	// Unthread.
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	n.left, n.right, n.parent, n.prev, n.next = nil, nil, nil, nil, nil
	n.size, n.xi, n.delta = 0, 0, 0
	// Recycle: the handle is dead to the caller from here on.
	n.right = t.free
	t.free = n
}

// Rank returns the 1-based in-order rank of n (its backward position
// k^B). O(log N).
func (t *Tree) Rank(n *Node) int {
	r := size(n.left) + 1
	for cur := n; cur.parent != nil; cur = cur.parent {
		if cur.parent.right == cur {
			r += size(cur.parent.left) + 1
		}
	}
	return r
}

// Select returns the node of rank k (1-based), or nil if out of range.
// O(log N).
func (t *Tree) Select(k int) *Node {
	if k < 1 || k > t.Len() {
		return nil
	}
	cur := t.root
	for {
		szL := size(cur.left)
		switch {
		case k <= szL:
			cur = cur.left
		case k == szL+1:
			return cur
		default:
			k -= szL + 1
			cur = cur.right
		}
	}
}

// First returns the rank-1 node (longest task), or nil.
func (t *Tree) First() *Node {
	cur := t.root
	if cur == nil {
		return nil
	}
	for cur.left != nil {
		cur = cur.left
	}
	return cur
}

// Last returns the highest-rank node (shortest task), or nil.
func (t *Tree) Last() *Node {
	cur := t.root
	if cur == nil {
		return nil
	}
	for cur.right != nil {
		cur = cur.right
	}
	return cur
}

// PrefixXi returns ξ([1, k]); k is clamped to [0, Len].
func (t *Tree) PrefixXi(k int) float64 {
	if k >= t.Len() {
		return xi(t.root)
	}
	var acc float64
	cur := t.root
	for cur != nil && k > 0 {
		szL := size(cur.left)
		if k <= szL {
			cur = cur.left
			continue
		}
		acc += xi(cur.left) + cur.cycles
		k -= szL + 1
		cur = cur.right
	}
	return acc
}

// PrefixGamma returns γ([1, k]) = Σ_{r<=k} r·L^B_r; k is clamped.
func (t *Tree) PrefixGamma(k int) float64 {
	if k >= t.Len() {
		return delta(t.root)
	}
	var acc float64
	offset := 0
	cur := t.root
	for cur != nil && k > 0 {
		szL := size(cur.left)
		if k <= szL {
			cur = cur.left
			continue
		}
		acc += delta(cur.left) + float64(offset)*xi(cur.left)
		rank := offset + szL + 1
		acc += float64(rank) * cur.cycles
		k -= szL + 1
		offset = rank
		cur = cur.right
	}
	return acc
}

// RangeXi returns ξ([a, b]); empty or inverted ranges yield 0.
func (t *Tree) RangeXi(a, b int) float64 {
	if a < 1 {
		a = 1
	}
	if b > t.Len() {
		b = t.Len()
	}
	if a > b {
		return 0
	}
	return t.PrefixXi(b) - t.PrefixXi(a-1)
}

// RangeGamma returns γ([a, b]) = Σ_{k=a..b} k·L^B_k.
func (t *Tree) RangeGamma(a, b int) float64 {
	if a < 1 {
		a = 1
	}
	if b > t.Len() {
		b = t.Len()
	}
	if a > b {
		return 0
	}
	return t.PrefixGamma(b) - t.PrefixGamma(a-1)
}

// RangeDelta returns Δ([a, b]) = Σ_{k=a..b} (k-a+1)·L^B_k (Eq. 29).
func (t *Tree) RangeDelta(a, b int) float64 {
	return t.RangeGamma(a, b) - float64(a-1)*t.RangeXi(a, b)
}

// checkInvariants verifies BST order, heap order, threading, and
// aggregate consistency. Test helper; O(N).
func (t *Tree) checkInvariants() error {
	var walk func(n *Node) (int, float64, error)
	walk = func(n *Node) (int, float64, error) {
		if n == nil {
			return 0, 0, nil
		}
		if n.left != nil {
			if n.left.parent != n {
				return 0, 0, fmt.Errorf("rangetree: bad parent link (left of %v)", n.cycles)
			}
			if n.prio < n.left.prio {
				return 0, 0, fmt.Errorf("rangetree: heap violation")
			}
			if !before(n.left, n) && before(n, n.left) {
				return 0, 0, fmt.Errorf("rangetree: BST violation left")
			}
		}
		if n.right != nil {
			if n.right.parent != n {
				return 0, 0, fmt.Errorf("rangetree: bad parent link (right of %v)", n.cycles)
			}
			if n.prio < n.right.prio {
				return 0, 0, fmt.Errorf("rangetree: heap violation")
			}
		}
		szL, xiL, err := walk(n.left)
		if err != nil {
			return 0, 0, err
		}
		szR, xiR, err := walk(n.right)
		if err != nil {
			return 0, 0, err
		}
		if n.size != szL+szR+1 {
			return 0, 0, fmt.Errorf("rangetree: size mismatch at %v", n.cycles)
		}
		got := xiL + n.cycles + xiR
		if diff := n.xi - got; diff > 1e-6 || diff < -1e-6 {
			return 0, 0, fmt.Errorf("rangetree: xi mismatch at %v: %v vs %v", n.cycles, n.xi, got)
		}
		return n.size, got, nil
	}
	_, _, err := walk(t.root)
	if err != nil {
		return err
	}
	// Threading matches in-order traversal.
	var prev *Node
	for n := t.First(); n != nil; n = n.Next() {
		if n.Prev() != prev {
			return fmt.Errorf("rangetree: broken threading")
		}
		if prev != nil && before(n, prev) {
			return fmt.Errorf("rangetree: threading out of order")
		}
		prev = n
	}
	if prev != t.Last() {
		return fmt.Errorf("rangetree: Last() disagrees with threading")
	}
	return nil
}
