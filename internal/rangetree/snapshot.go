package rangetree

import "fmt"

// Snapshot/Restore give the tree an exact-state checkpoint. The
// subtlety they exist for: the xi/delta aggregates are floating-point
// sums whose rounding depends on accumulation history, and that
// history is NOT a pure function of the current shape — rotateUp
// re-pulls only the two rotated nodes, so an ancestor's stored
// aggregate keeps the rounding of the pre-rotation partition of its
// subtree (within epsilon of, but not bit-identical to, a fresh
// bottom-up recomputation). A restore that re-derived aggregates
// would therefore drift off the original run one ULP at a time, and
// with it every downstream cost comparison. So Snapshot captures the
// aggregates verbatim alongside the three values the shape is a pure
// function of (cycles, insertion seq, treap priority) plus the
// generator counters; Restore rebuilds the unique treap the
// priorities determine (SplitMix64 is a bijection of the counter, so
// priorities are distinct), recomputes only the integer sizes, and
// installs the recorded aggregate bits untouched.

// NodeState is the persisted form of one stored task length.
type NodeState struct {
	// Cycles is the stored task length.
	Cycles float64 `json:"cycles"`
	// Seq is the node's insertion sequence number (the BST tie-break).
	Seq uint64 `json:"seq"`
	// Prio is the node's treap priority.
	Prio uint64 `json:"prio"`
	// Xi is the node's subtree ξ aggregate, bit-exact as maintained.
	Xi float64 `json:"xi"`
	// Delta is the node's subtree Δ aggregate, bit-exact as maintained.
	Delta float64 `json:"delta"`
}

// TreeState is a complete checkpoint of a Tree.
type TreeState struct {
	// Nodes lists the stored tasks in rank order (descending length).
	Nodes []NodeState `json:"nodes"`
	// Seq is the tree's insertion counter.
	Seq uint64 `json:"seq"`
	// Rng is the SplitMix64 state the next priority derives from.
	Rng uint64 `json:"rng"`
}

// Snapshot captures the tree's complete state. The freelist is not
// part of the state: it only affects allocation, never shape (the
// priority stream is independent of node recycling).
func (t *Tree) Snapshot() TreeState {
	st := TreeState{Seq: t.seq, Rng: t.rngState}
	if n := t.Len(); n > 0 {
		st.Nodes = make([]NodeState, 0, n)
		for cur := t.First(); cur != nil; cur = cur.next {
			st.Nodes = append(st.Nodes, NodeState{
				Cycles: cur.cycles, Seq: cur.seq, Prio: cur.prio,
				Xi: cur.xi, Delta: cur.delta,
			})
		}
	}
	return st
}

// Restore rebuilds the tree a Snapshot captured, returning it together
// with the node handles in rank order (handles[k-1] has rank k) so
// callers can re-link their own references. O(N) via a right-spine
// build. The input must be rank-ordered as Snapshot wrote it; a
// violation returns an error rather than a corrupt tree.
func Restore(st TreeState) (*Tree, []*Node, error) {
	t := &Tree{seq: st.Seq, rngState: st.Rng}
	if len(st.Nodes) == 0 {
		return t, nil, nil
	}
	nodes := make([]*Node, len(st.Nodes))
	backing := make([]Node, len(st.Nodes)) // one allocation for all nodes
	// spine holds the right spine of the partial tree, root first.
	spine := make([]*Node, 0, 64)
	var prev *Node
	// fixSize finalizes a node whose subtrees are complete: sizes are
	// shape-determined integers and safe to recompute; xi/delta were
	// installed verbatim from the snapshot and must not be re-derived.
	fixSize := func(n *Node) { n.size = size(n.left) + size(n.right) + 1 }
	for i, ns := range st.Nodes {
		n := &backing[i]
		n.cycles, n.seq, n.prio = ns.Cycles, ns.Seq, ns.Prio
		n.xi, n.delta = ns.Xi, ns.Delta
		nodes[i] = n
		if prev != nil && !before(prev, n) {
			return nil, nil, fmt.Errorf("rangetree: restore: nodes %d and %d out of rank order", i-1, i)
		}
		// Thread the in-order list as we go.
		n.prev = prev
		if prev != nil {
			prev.next = n
		}
		prev = n
		// Pop spine entries the new node dominates; the last popped
		// subtree becomes its left child. A popped node's subtrees are
		// final, so sizing at pop time sees finalized children.
		var popped *Node
		for len(spine) > 0 && spine[len(spine)-1].prio < n.prio {
			popped = spine[len(spine)-1]
			spine = spine[:len(spine)-1]
			fixSize(popped)
		}
		if popped != nil {
			n.left = popped
			popped.parent = n
		}
		if len(spine) > 0 {
			top := spine[len(spine)-1]
			top.right = n
			n.parent = top
		}
		spine = append(spine, n)
	}
	// The remaining spine is finalized bottom-up.
	for i := len(spine) - 1; i >= 0; i-- {
		fixSize(spine[i])
	}
	t.root = spine[0]
	return t, nodes, nil
}
