package stats

import (
	"math"
	"testing"
)

func TestBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Sum(xs) != 10 || Mean(xs) != 2.5 || Min(xs) != 1 || Max(xs) != 4 {
		t.Errorf("basics wrong: sum=%v mean=%v min=%v max=%v", Sum(xs), Mean(xs), Min(xs), Max(xs))
	}
	if Mean(nil) != 0 {
		t.Error("empty mean != 0")
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty min/max not NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 4 {
		t.Error("endpoints wrong")
	}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) || !math.IsNaN(Percentile(xs, 101)) {
		t.Error("invalid inputs not NaN")
	}
	if Percentile([]float64{7}, 50) != 7 {
		t.Error("singleton percentile")
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Error("singleton stddev != 0")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("stddev = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 {
		t.Errorf("normalize = %v", out)
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Error("zero reference accepted")
	}
	if _, err := Normalize([]float64{1}, math.NaN()); err == nil {
		t.Error("NaN reference accepted")
	}
}

func TestRelChange(t *testing.T) {
	if got := RelChange(100, 54); math.Abs(got+0.46) > 1e-12 {
		t.Errorf("RelChange = %v, want -0.46", got)
	}
	if !math.IsNaN(RelChange(0, 5)) {
		t.Error("zero base not NaN")
	}
}
