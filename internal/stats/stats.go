// Package stats provides the small numeric helpers the experiment
// harness uses: means, percentiles, and normalization against a
// reference (the paper reports every figure as cost normalized to its
// own scheduler).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of the slice.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum; NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum; NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) by linear
// interpolation of the sorted data; NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Stddev returns the sample standard deviation; 0 for fewer than two
// points.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Normalize divides every value by ref, reproducing the paper's
// "normalized cost" presentation. It errors on a zero or non-finite
// reference.
func Normalize(xs []float64, ref float64) ([]float64, error) {
	if ref == 0 || math.IsNaN(ref) || math.IsInf(ref, 0) {
		return nil, fmt.Errorf("stats: bad normalization reference %v", ref)
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / ref
	}
	return out, nil
}

// RelChange returns (b-a)/a: the relative change from a to b (e.g.
// -0.46 means b is 46% below a).
func RelChange(a, b float64) float64 {
	if a == 0 {
		return math.NaN()
	}
	return (b - a) / a
}
