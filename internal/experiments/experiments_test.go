package experiments

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/workload"
)

func TestTable1StringHasAllBenchmarks(t *testing.T) {
	s := Table1String()
	for _, b := range []string{"perlbench", "bzip", "gcc", "mcf", "gobmk", "hmmer",
		"sjeng", "libquantum", "h264ref", "omnetpp", "astar", "xalancbmk"} {
		if !strings.Contains(s, b) {
			t.Errorf("Table1String missing %s", b)
		}
	}
	if !strings.Contains(s, "1549.734") {
		t.Error("Table1String missing h264ref/ref value")
	}
}

func TestTable2StringMatchesTable(t *testing.T) {
	s := Table2String()
	for _, v := range []string{"3.375", "4.220", "5.000", "6.000", "7.100", "0.625", "0.330"} {
		if !strings.Contains(s, v) {
			t.Errorf("Table2String missing %s:\n%s", v, s)
		}
	}
}

func TestOutcomeNormalized(t *testing.T) {
	a := Outcome{TimeCost: 2, EnergyCost: 4, TotalCost: 6}
	ref := Outcome{TimeCost: 1, EnergyCost: 2, TotalCost: 3}
	tt, e, tot := a.Normalized(ref)
	if tt != 2 || e != 2 || tot != 2 {
		t.Errorf("normalized = %v %v %v", tt, e, tot)
	}
}

// smallSPEC trims the workload so the figure tests stay fast while
// preserving the length skew.
func smallSPEC() model.TaskSet {
	tasks := workload.SPECTasks()
	for i := range tasks {
		tasks[i].Cycles /= 20
	}
	return tasks
}

func TestFig1ShapeModelGap(t *testing.T) {
	res, err := Fig1(Fig1Config{Tasks: smallSPEC()})
	if err != nil {
		t.Fatal(err)
	}
	// The executed plan must cost more than the analytic model, by a
	// single-digit-to-low-teens percentage (the paper measures ~8%).
	if res.TotalRatio <= 1.0 {
		t.Errorf("experiment not above simulation: ratio %v", res.TotalRatio)
	}
	if res.TotalRatio > 1.25 {
		t.Errorf("model gap implausibly large: %v", res.TotalRatio)
	}
	// The sampled meter reading approximates the exact energy.
	if rel := (res.MeterEnergyJ - res.Exp.EnergyJ) / res.Exp.EnergyJ; rel > 0.05 || rel < -0.05 {
		t.Errorf("meter off by %v", rel)
	}
	if res.Sim.Policy == res.Exp.Policy {
		t.Error("outcomes not labeled distinctly")
	}
}

func TestFig2ShapeWBGWins(t *testing.T) {
	res, err := Fig2(Fig2Config{Tasks: smallSPEC()})
	if err != nil {
		t.Fatal(err)
	}
	// Headline claims: WBG has the lowest total cost and the lowest
	// energy; OLB is the fastest in makespan.
	if !(res.WBG.TotalCost < res.OLB.TotalCost && res.WBG.TotalCost < res.PS.TotalCost) {
		t.Errorf("WBG total %v not below OLB %v / PS %v", res.WBG.TotalCost, res.OLB.TotalCost, res.PS.TotalCost)
	}
	if !(res.WBG.EnergyJ < res.OLB.EnergyJ && res.WBG.EnergyJ < res.PS.EnergyJ) {
		t.Errorf("WBG energy %v not below OLB %v / PS %v", res.WBG.EnergyJ, res.OLB.EnergyJ, res.PS.EnergyJ)
	}
	if res.OLB.MakespanS >= res.WBG.MakespanS {
		t.Errorf("OLB makespan %v not below WBG %v", res.OLB.MakespanS, res.WBG.MakespanS)
	}
	// WBG beats PS in time too (the paper's 13% speedup).
	if res.WBG.TimeCost >= res.PS.TimeCost {
		t.Errorf("WBG time cost %v not below PS %v", res.WBG.TimeCost, res.PS.TimeCost)
	}
	// Ratio bookkeeping is consistent.
	if res.OLBvsWBG[2] <= 1 || res.PSvsWBG[2] <= 1 {
		t.Errorf("normalized totals: OLB %v PS %v", res.OLBvsWBG[2], res.PSvsWBG[2])
	}
}

func TestFig3ShapeLMCWins(t *testing.T) {
	// A scaled-down trace with the same construction: keep the burst
	// structure but fewer tasks so the test runs in seconds.
	judge := workload.DefaultJudgeConfig()
	judge.Interactive = 8000
	judge.NonInteractive = 550
	judge.Duration = 1100
	tasks, err := judge.Generate(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fig3(Fig3Config{Tasks: tasks})
	if err != nil {
		t.Fatal(err)
	}
	// Headline claims: LMC has the lowest total cost, lowest energy
	// and lowest time cost of the three.
	if !(res.LMC.TotalCost < res.OLB.TotalCost && res.LMC.TotalCost < res.OD.TotalCost) {
		t.Errorf("LMC total %v not below OLB %v / OD %v", res.LMC.TotalCost, res.OLB.TotalCost, res.OD.TotalCost)
	}
	if !(res.LMC.EnergyJ < res.OLB.EnergyJ && res.LMC.EnergyJ < res.OD.EnergyJ) {
		t.Errorf("LMC energy %v not lowest", res.LMC.EnergyJ)
	}
	if !(res.LMC.TimeCost < res.OLB.TimeCost && res.LMC.TimeCost < res.OD.TimeCost) {
		t.Errorf("LMC time cost %v not lowest (OLB %v, OD %v)", res.LMC.TimeCost, res.OLB.TimeCost, res.OD.TimeCost)
	}
	// Only LMC preempts; the baselines are FIFO-within-priority.
	if res.LMC.Preemptions == 0 {
		t.Error("LMC never preempted")
	}
	if res.OLB.Preemptions != 0 || res.OD.Preemptions != 0 {
		t.Error("baselines preempted")
	}
}

func TestFig3Deterministic(t *testing.T) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive = 500
	judge.NonInteractive = 60
	judge.Duration = 300
	cfg := func() Fig3Config {
		return Fig3Config{Judge: judge, Seed: 99}
	}
	a, err := Fig3(cfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.LMC.TotalCost != b.LMC.TotalCost || a.OLB.TotalCost != b.OLB.TotalCost {
		t.Error("Fig3 not deterministic for a fixed seed")
	}
}

func TestFig1RejectsBadConfig(t *testing.T) {
	if _, err := Fig1(Fig1Config{Tasks: model.TaskSet{{ID: 1, Cycles: -1}}}); err == nil {
		t.Error("invalid tasks accepted")
	}
}

func TestFig1SensitivityMonotone(t *testing.T) {
	rows, err := Fig1Sensitivity([]float64{0, 0.06, 0.12, 0.25}, smallSPEC())
	if err != nil {
		t.Fatal(err)
	}
	// Zero memory-bound cycles: the stall-free model still carries
	// the static-power term only on stalls, so the ratio is 1.
	if math.Abs(rows[0].TotalRatio-1) > 1e-6 {
		t.Errorf("zero fraction ratio = %v, want 1", rows[0].TotalRatio)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalRatio <= rows[i-1].TotalRatio {
			t.Errorf("gap not increasing: %v -> %v", rows[i-1].TotalRatio, rows[i].TotalRatio)
		}
	}
	if _, err := Fig1Sensitivity(nil, smallSPEC()); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := Fig1Sensitivity([]float64{1.5}, smallSPEC()); err == nil {
		t.Error("fraction >= 1 accepted")
	}
}

func TestExperimentErrorPaths(t *testing.T) {
	bad := model.TaskSet{{ID: 1, Cycles: -1}}
	if _, err := Fig2(Fig2Config{Tasks: bad}); err == nil {
		t.Error("Fig2 accepted invalid tasks")
	}
	if _, err := Fig3(Fig3Config{Tasks: bad}); err == nil {
		t.Error("Fig3 accepted invalid tasks")
	}
	if _, err := HeteroOnline(HeteroConfig{Seed: 1, Judge: workload.JudgeConfig{Interactive: -1}}); err == nil {
		t.Error("HeteroOnline accepted invalid judge config")
	}
	if _, err := PriceSweep([]float64{1}, bad); err == nil {
		t.Error("PriceSweep accepted invalid tasks")
	}
	if _, err := GranularitySweep(bad); err == nil {
		t.Error("GranularitySweep accepted invalid tasks")
	}
	if _, err := IdlePowerStudy([]float64{1}, bad); err == nil {
		t.Error("IdlePowerStudy accepted invalid tasks")
	}
}
