package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sched"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

// Fig3Config parameterizes the online-mode comparison of Fig. 3: a
// Judgegirl-like trace scheduled by Least Marginal Cost, Opportunistic
// Load Balancing (all cores pinned at maximum frequency) and
// On-demand (round-robin placement, on-demand governor).
type Fig3Config struct {
	// Tasks is the online trace; if nil it is synthesized from Judge
	// with Seed.
	Tasks model.TaskSet
	// Judge configures the trace synthesizer; zero value means
	// workload.DefaultJudgeConfig().
	Judge workload.JudgeConfig
	// Seed drives the synthesizer.
	Seed int64
	// Cores is the core count; defaults to 4.
	Cores int
	// Rates is the frequency menu; defaults to Table II.
	Rates *model.RateTable
	// Params are the cost constants; default OnlineParams
	// (Re = 0.4, Rt = 0.1).
	Params model.CostParams
	// GovernorTick is the on-demand sampling period; defaults to 1 s.
	GovernorTick float64
	// Sink, if non-nil, receives the LMC run's event stream.
	Sink obs.Sink
	// Metrics, if non-nil, collects the LMC run's scheduler metrics
	// (marginal-cost evaluations, queue depths, structure updates).
	Metrics *obs.Registry
	// RecordTimeline captures the LMC run's execution segments into
	// Fig3Result.LMCTimeline.
	RecordTimeline bool
}

func (c *Fig3Config) fillDefaults() error {
	if c.Judge == (workload.JudgeConfig{}) {
		c.Judge = workload.DefaultJudgeConfig()
	}
	if c.Seed == 0 {
		c.Seed = 20140901 // ICPP 2014
	}
	if c.Tasks == nil {
		tasks, err := c.Judge.Generate(rand.New(rand.NewSource(c.Seed)))
		if err != nil {
			return err
		}
		c.Tasks = tasks
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.Rates == nil {
		c.Rates = platform.TableII()
	}
	if c.Params == (model.CostParams{}) {
		c.Params = OnlineParams
	}
	if c.GovernorTick == 0 {
		c.GovernorTick = 1
	}
	return nil
}

// Fig3Result holds the three online strategies' outcomes plus their
// cost ratios against LMC. The paper reports LMC at 11% less energy
// and 31% less time than OLB (17% lower total cost), and 11% less
// energy and 46% less time than On-demand (24% lower total cost).
type Fig3Result struct {
	LMC, OLB, OD Outcome
	// OLBvsLMC and ODvsLMC are (time, energy, total) cost ratios
	// normalized to LMC.
	OLBvsLMC, ODvsLMC [3]float64
	// LMCResidency maps each rate (GHz) to the busy seconds LMC spent
	// at it, summed over cores: where LMC's energy saving comes from.
	LMCResidency map[float64]float64
	// LMCTimeline holds the LMC run's execution segments when
	// Fig3Config.RecordTimeline was set.
	LMCTimeline []sim.TimelineSegment
}

// Fig3 runs the online-mode comparison. The trace-based simulation
// uses the ideal execution model, like the paper's event-driven
// simulator.
func Fig3(cfg Fig3Config) (*Fig3Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	plat := platform.Homogeneous(cfg.Cores, cfg.Rates, platform.Ideal{})

	lmcPolicy, err := online.NewLMC(cfg.Params)
	if err != nil {
		return nil, err
	}
	lmcPolicy.Metrics = cfg.Metrics
	lmcPolicy.Clock = time.Now
	lmcRes, err := sim.Run(sim.Config{
		Platform:       plat,
		Policy:         lmcPolicy,
		Sink:           cfg.Sink,
		RecordTimeline: cfg.RecordTimeline,
	}, cfg.Tasks, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3 LMC: %w", err)
	}
	lmc := FromSimResult(lmcRes)

	olbRes, err := sim.Run(sim.Config{Platform: plat, Policy: &sched.OLB{MaxFrequency: true}}, cfg.Tasks, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3 OLB: %w", err)
	}
	olb := FromSimResult(olbRes)

	odRes, err := sim.Run(sim.Config{
		Platform:     plat,
		Policy:       &sched.OnDemandRR{},
		TickInterval: cfg.GovernorTick,
	}, cfg.Tasks, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3 On-demand: %w", err)
	}
	od := FromSimResult(odRes)

	out := &Fig3Result{LMC: lmc, OLB: olb, OD: od, LMCResidency: map[float64]float64{}, LMCTimeline: lmcRes.Timeline}
	for _, core := range lmcRes.Residency {
		for rate, secs := range core {
			out.LMCResidency[rate] += secs
		}
	}
	t, e, tot := olb.Normalized(lmc)
	out.OLBvsLMC = [3]float64{t, e, tot}
	t, e, tot = od.Normalized(lmc)
	out.ODvsLMC = [3]float64{t, e, tot}
	return out, nil
}
