package experiments

import (
	"fmt"

	"dvfsched/internal/governor"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sched"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

// IdleRow is one point of the idle-power study.
type IdleRow struct {
	// IdleWatts is the per-core idle draw.
	IdleWatts float64
	// WBGEnergyJ and RaceEnergyJ are total energies including idle.
	WBGEnergyJ, RaceEnergyJ float64
	// WBGvsRace is their ratio; above 1 means race-to-idle wins.
	WBGvsRace float64
}

// IdlePowerStudy examines the assumption behind the paper's
// measurements: idle power is subtracted, so throttling always saves
// energy. With idle power charged instead (no deep sleep states), the
// slower WBG schedule keeps the machine on longer, and beyond some
// idle draw the race-to-idle baseline becomes the true energy winner —
// the classic race-to-idle crossover.
func IdlePowerStudy(idleWatts []float64, tasks model.TaskSet) ([]IdleRow, error) {
	if len(idleWatts) == 0 {
		return nil, fmt.Errorf("experiments: empty idle-watts list")
	}
	if tasks == nil {
		tasks = workload.SPECTasks()
	}
	plan, err := planWBG(BatchParams, tasks)
	if err != nil {
		return nil, err
	}
	for _, w := range idleWatts {
		if w < 0 {
			return nil, fmt.Errorf("experiments: negative idle watts %v", w)
		}
	}
	return parMap(idleWatts, func(w float64) (IdleRow, error) {
		plat := platform.Homogeneous(4, platform.TableII(), platform.Ideal{})
		plat.IdleWatts = w

		fp, err := sim.NewFixedPlan(plan)
		if err != nil {
			return IdleRow{}, err
		}
		wbg, err := sim.Run(sim.Config{Platform: plat, Policy: fp}, tasks, BatchParams)
		if err != nil {
			return IdleRow{}, err
		}
		race, err := sim.Run(sim.Config{
			Platform:     plat,
			Policy:       &sched.OLB{Governor: governor.Performance{}},
			TickInterval: 1,
		}, tasks, BatchParams)
		if err != nil {
			return IdleRow{}, err
		}
		return IdleRow{
			IdleWatts:   w,
			WBGEnergyJ:  wbg.TotalEnergy,
			RaceEnergyJ: race.TotalEnergy,
			WBGvsRace:   wbg.TotalEnergy / race.TotalEnergy,
		}, nil
	})
}
