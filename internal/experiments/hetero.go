package experiments

import (
	"fmt"
	"math/rand"

	"dvfsched/internal/model"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sched"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

// HeteroResult compares the online policies on a heterogeneous
// (big.LITTLE-style) platform, where Least Marginal Cost's per-core
// marginal pricing matters most: each core type has its own cost
// curve, so placement is no longer symmetric.
type HeteroResult struct {
	// LMC, OLB and OD are the policy outcomes.
	LMC, OLB, OD Outcome
	// BigShare is the fraction of non-interactive cycles LMC placed
	// on the big (i7) cores.
	BigShare float64
}

// HeteroConfig parameterizes the heterogeneous online experiment.
type HeteroConfig struct {
	// BigCores and LittleCores are the counts of i7-950 and
	// Exynos-4412 cores; defaults 2 and 4.
	BigCores, LittleCores int
	// Seed drives the trace synthesizer.
	Seed int64
	// Judge configures the trace; the zero value scales the default
	// down to a quarter (the little cores are slow).
	Judge workload.JudgeConfig
	// Params are the cost constants; default OnlineParams.
	Params model.CostParams
}

// HeteroOnline runs the heterogeneous online comparison.
func HeteroOnline(cfg HeteroConfig) (*HeteroResult, error) {
	if cfg.BigCores == 0 {
		cfg.BigCores = 2
	}
	if cfg.LittleCores == 0 {
		cfg.LittleCores = 4
	}
	if cfg.BigCores < 0 || cfg.LittleCores < 0 || cfg.BigCores+cfg.LittleCores == 0 {
		return nil, fmt.Errorf("experiments: bad core mix %d+%d", cfg.BigCores, cfg.LittleCores)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Judge == (workload.JudgeConfig{}) {
		cfg.Judge = workload.DefaultJudgeConfig()
		cfg.Judge.Interactive /= 4
		cfg.Judge.NonInteractive /= 4
		cfg.Judge.Duration /= 2
		cfg.Judge.SubmitMedianMin /= 2
		cfg.Judge.SubmitMedianMax /= 2
	}
	if cfg.Params == (model.CostParams{}) {
		cfg.Params = OnlineParams
	}
	tasks, err := cfg.Judge.Generate(rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}

	cores := make([]*model.RateTable, 0, cfg.BigCores+cfg.LittleCores)
	for i := 0; i < cfg.BigCores; i++ {
		cores = append(cores, platform.IntelI7950())
	}
	for i := 0; i < cfg.LittleCores; i++ {
		cores = append(cores, platform.ExynosT4412())
	}
	plat := &platform.Platform{Cores: cores}

	lmcPolicy, err := online.NewLMC(cfg.Params)
	if err != nil {
		return nil, err
	}
	lmcRes, err := sim.Run(sim.Config{Platform: plat, Policy: lmcPolicy, RecordTimeline: true}, tasks, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: hetero LMC: %w", err)
	}
	olbRes, err := sim.Run(sim.Config{Platform: plat, Policy: &sched.OLB{MaxFrequency: true}}, tasks, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: hetero OLB: %w", err)
	}
	odRes, err := sim.Run(sim.Config{Platform: plat, Policy: &sched.OnDemandRR{}, TickInterval: 1}, tasks, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: hetero OD: %w", err)
	}

	out := &HeteroResult{
		LMC: FromSimResult(lmcRes),
		OLB: FromSimResult(olbRes),
		OD:  FromSimResult(odRes),
	}
	// Attribute LMC's executed cycles to core classes via the
	// timeline.
	interactiveIDs := map[int]bool{}
	for _, t := range tasks {
		if t.Interactive {
			interactiveIDs[t.ID] = true
		}
	}
	var big, total float64
	for _, seg := range lmcRes.Timeline {
		if interactiveIDs[seg.TaskID] {
			continue
		}
		gcyc := (seg.End - seg.Start) * seg.Rate
		total += gcyc
		if seg.Core < cfg.BigCores {
			big += gcyc
		}
	}
	if total > 0 {
		out.BigShare = big / total
	}
	return out, nil
}
