package experiments

import (
	"fmt"

	"dvfsched/internal/batch"
	"dvfsched/internal/governor"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sched"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

// Fig2Config parameterizes the batch-mode comparison of Fig. 2: the 24
// SPEC workloads run under Workload Based Greedy, Opportunistic Load
// Balancing (on-demand governor), and Power Saving (on-demand governor
// over the lower half of the frequency range), all on the same
// non-ideal platform.
type Fig2Config struct {
	// Tasks is the batch workload; defaults to the Table I tasks.
	Tasks model.TaskSet
	// Cores is the core count; defaults to 4.
	Cores int
	// Rates is the full frequency menu; defaults to Table II.
	Rates *model.RateTable
	// Params are the cost constants; default BatchParams.
	Params model.CostParams
	// Exec is the execution model; defaults to
	// platform.DefaultRealistic() (the experiments ran on the real
	// machine).
	Exec platform.ExecutionModel
	// GovernorTick is the load sampling period of the on-demand
	// governor; defaults to the paper's 1 s.
	GovernorTick float64
}

func (c *Fig2Config) fillDefaults() {
	if c.Tasks == nil {
		c.Tasks = workload.SPECTasks()
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.Rates == nil {
		c.Rates = platform.TableII()
	}
	if c.Params == (model.CostParams{}) {
		c.Params = BatchParams
	}
	if c.Exec == nil {
		c.Exec = platform.DefaultRealistic()
	}
	if c.GovernorTick == 0 {
		c.GovernorTick = 1
	}
}

// Fig2Result holds the three scheduling strategies' outcomes plus
// their cost ratios against WBG. The paper reports WBG consuming 46%
// less energy than OLB (4% slowdown) and 27% less than Power Saving
// (13% speedup), for ~27% lower total cost.
type Fig2Result struct {
	WBG, OLB, PS Outcome
	// OLBvsWBG and PSvsWBG are (time, energy, total) cost ratios
	// normalized to WBG.
	OLBvsWBG, PSvsWBG [3]float64
}

// Fig2 runs the batch-mode comparison.
func Fig2(cfg Fig2Config) (*Fig2Result, error) {
	cfg.fillDefaults()
	plat := platform.Homogeneous(cfg.Cores, cfg.Rates, cfg.Exec)

	// Workload Based Greedy: plan, then execute the plan.
	plan, err := batch.WBG(cfg.Params, batch.HomogeneousCores(cfg.Cores, cfg.Rates), cfg.Tasks)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 WBG plan: %w", err)
	}
	fp, err := sim.NewFixedPlan(plan)
	if err != nil {
		return nil, err
	}
	wbgRes, err := sim.Run(sim.Config{Platform: plat, Policy: fp}, cfg.Tasks, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 WBG run: %w", err)
	}
	wbg := FromSimResult(wbgRes)
	wbg.Policy = "wbg"

	// Opportunistic Load Balancing with the on-demand governor.
	olbRes, err := sim.Run(sim.Config{
		Platform:     plat,
		Policy:       &sched.OLB{Governor: governor.DefaultOnDemand()},
		TickInterval: cfg.GovernorTick,
	}, cfg.Tasks, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 OLB run: %w", err)
	}
	olb := FromSimResult(olbRes)
	olb.Policy = "olb"

	// Power Saving: frequencies limited to the lower half.
	psPlat, err := sched.PowerSavePlatform(plat)
	if err != nil {
		return nil, err
	}
	psRes, err := sim.Run(sim.Config{
		Platform:     psPlat,
		Policy:       &sched.OLB{Governor: governor.DefaultOnDemand()},
		TickInterval: cfg.GovernorTick,
	}, cfg.Tasks, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 PS run: %w", err)
	}
	ps := FromSimResult(psRes)
	ps.Policy = "power-saving"

	out := &Fig2Result{WBG: wbg, OLB: olb, PS: ps}
	t, e, tot := olb.Normalized(wbg)
	out.OLBvsWBG = [3]float64{t, e, tot}
	t, e, tot = ps.Normalized(wbg)
	out.PSvsWBG = [3]float64{t, e, tot}
	return out, nil
}
