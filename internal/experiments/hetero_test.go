package experiments

import (
	"testing"

	"dvfsched/internal/workload"
)

func heteroTestConfig() HeteroConfig {
	judge := workload.DefaultJudgeConfig()
	// Heavy enough that the little cores saturate and the marginal
	// cost pushes overflow onto the big cores.
	judge.Interactive, judge.NonInteractive, judge.Duration = 2000, 500, 500
	judge.SubmitMedianMin, judge.SubmitMedianMax = 8, 40
	return HeteroConfig{Judge: judge, Seed: 3}
}

func TestHeteroOnlineLMCWinsTotalCost(t *testing.T) {
	res, err := HeteroOnline(heteroTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !(res.LMC.TotalCost < res.OLB.TotalCost && res.LMC.TotalCost < res.OD.TotalCost) {
		t.Errorf("LMC total %v not lowest (OLB %v, OD %v)",
			res.LMC.TotalCost, res.OLB.TotalCost, res.OD.TotalCost)
	}
	// The big-core share must be a meaningful split, not degenerate.
	if res.BigShare <= 0 || res.BigShare >= 1 {
		t.Errorf("big-core share degenerate: %v", res.BigShare)
	}
	// Interactive responses stay fast under LMC (preemption +
	// marginal-cost placement).
	if res.LMC.InteractiveP99S <= 0 {
		t.Error("no interactive latency recorded")
	}
	if res.LMC.InteractiveP99S > res.OD.InteractiveP99S {
		t.Errorf("LMC interactive p99 %v above OD %v", res.LMC.InteractiveP99S, res.OD.InteractiveP99S)
	}
}

func TestHeteroOnlineValidation(t *testing.T) {
	if _, err := HeteroOnline(HeteroConfig{BigCores: -1, LittleCores: 1}); err == nil {
		t.Error("negative cores accepted")
	}
}

func TestOutcomeResponseMetrics(t *testing.T) {
	res, err := Fig3(Fig3Config{Judge: func() (j workload.JudgeConfig) {
		j = workload.DefaultJudgeConfig()
		j.Interactive, j.NonInteractive, j.Duration = 500, 60, 120
		return j
	}(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// LMC preempts for interactive work; the baselines queue it
	// behind running submissions, so LMC's p99 response must be far
	// smaller.
	if res.LMC.InteractiveP99S >= res.OLB.InteractiveP99S {
		t.Errorf("LMC p99 %v not below OLB %v", res.LMC.InteractiveP99S, res.OLB.InteractiveP99S)
	}
	if res.LMC.SubmitMeanS <= 0 {
		t.Error("no submission turnaround recorded")
	}
}
