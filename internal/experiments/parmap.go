package experiments

import (
	"runtime"
	"sync"
)

// parMap evaluates fn over every item on a GOMAXPROCS-sized worker
// pool and returns the results in input order, so parallel sweeps
// print identically to sequential ones. Grid points are independent
// by construction (each builds its own platform, planner, and
// simulator), which is what makes this safe.
//
// All items are evaluated even when some fail; the error reported is
// the lowest-index one, again for determinism.
func parMap[In, Out any](items []In, fn func(In) (Out, error)) ([]Out, error) {
	out := make([]Out, len(items))
	errs := make([]error, len(items))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = fn(items[i])
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
