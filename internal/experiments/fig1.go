package experiments

import (
	"fmt"

	"dvfsched/internal/batch"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/power"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

// Fig1Config parameterizes the model-verification experiment of
// Fig. 1. The paper uses the 24 SPEC workloads, two frequencies
// (1.6 and 3.0 GHz), Re = 0.1, Rt = 0.4, and a quad-core i7-950.
type Fig1Config struct {
	// Tasks is the batch workload; defaults to the Table I tasks.
	Tasks model.TaskSet
	// Cores is the core count; defaults to 4.
	Cores int
	// Rates restricts the frequency choices; defaults to {1.6, 3.0}.
	Rates *model.RateTable
	// Params are the cost constants; default BatchParams.
	Params model.CostParams
	// Exec is the non-ideal execution model standing in for the real
	// machine; defaults to platform.DefaultRealistic().
	Exec platform.ExecutionModel
	// MeterSampleInterval is the simulated power meter's period in
	// seconds (1 Hz default, like the paper's wall meter).
	MeterSampleInterval float64
}

func (c *Fig1Config) fillDefaults() error {
	if c.Tasks == nil {
		c.Tasks = workload.SPECTasks()
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.Rates == nil {
		full := platform.TableII()
		two, err := full.Restrict(func(l model.RateLevel) bool {
			return model.ApproxEq(l.Rate, 1.6, model.DefaultEps) || model.ApproxEq(l.Rate, 3.0, model.DefaultEps)
		})
		if err != nil {
			return err
		}
		c.Rates = two
	}
	if c.Params == (model.CostParams{}) {
		c.Params = BatchParams
	}
	if c.Exec == nil {
		c.Exec = platform.DefaultRealistic()
	}
	if c.MeterSampleInterval == 0 {
		c.MeterSampleInterval = 1
	}
	return nil
}

// Fig1Result compares the analytic cost model ("Sim") against
// executing the same WBG plan on the non-ideal platform ("Exp"), as
// cost components in cents and as Exp/Sim ratios. The paper measures
// the experiment about 8% above the simulation.
type Fig1Result struct {
	Sim, Exp Outcome
	// TimeRatio, EnergyRatio and TotalRatio are Exp normalized to
	// Sim.
	TimeRatio, EnergyRatio, TotalRatio float64
	// MeterEnergyJ is the sampled power-meter reading of the
	// experiment's energy (vs Exp.EnergyJ, the exact integral).
	MeterEnergyJ float64
}

// Fig1 runs the model-verification experiment.
func Fig1(cfg Fig1Config) (*Fig1Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	plan, err := batch.WBG(cfg.Params, batch.HomogeneousCores(cfg.Cores, cfg.Rates), cfg.Tasks)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 plan: %w", err)
	}

	// "Sim": the analytic model's prediction for the plan.
	eCost, tCost, total := plan.Cost()
	joules, makespan, turnaround := plan.EnergyTime()
	simOut := Outcome{
		Policy: "wbg-analytic", EnergyJ: joules, MakespanS: makespan, TurnaroundS: turnaround,
		EnergyCost: eCost, TimeCost: tCost, TotalCost: total,
	}

	// "Exp": the same plan executed on the contended, non-ideally
	// scaling platform, measured by the simulated power meter.
	fp, err := sim.NewFixedPlan(plan)
	if err != nil {
		return nil, err
	}
	meter := power.NewMeter(cfg.MeterSampleInterval, 0)
	plat := platform.Homogeneous(cfg.Cores, cfg.Rates, cfg.Exec)
	res, err := sim.Run(sim.Config{Platform: plat, Policy: fp, Meter: meter}, cfg.Tasks, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 execution: %w", err)
	}
	expOut := FromSimResult(res)
	expOut.Policy = "wbg-executed"

	out := &Fig1Result{Sim: simOut, Exp: expOut, MeterEnergyJ: meter.SampledEnergy()}
	out.TimeRatio, out.EnergyRatio, out.TotalRatio = expOut.Normalized(simOut)
	return out, nil
}
