package experiments

import "testing"

func TestIdlePowerStudyCrossover(t *testing.T) {
	tasks := smallSPEC()
	rows, err := IdlePowerStudy([]float64{0, 5, 50, 500}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// With idle subtracted (0 W), throttling wins decisively.
	if rows[0].WBGvsRace >= 1 {
		t.Errorf("WBG not winning at 0 idle watts: %v", rows[0].WBGvsRace)
	}
	// The ratio rises monotonically with idle draw...
	for i := 1; i < len(rows); i++ {
		if rows[i].WBGvsRace <= rows[i-1].WBGvsRace {
			t.Errorf("ratio not increasing: %v -> %v", rows[i-1].WBGvsRace, rows[i].WBGvsRace)
		}
	}
	// ...and eventually race-to-idle becomes the energy winner.
	if rows[len(rows)-1].WBGvsRace <= 1 {
		t.Errorf("no crossover even at 500 W idle: %v", rows[len(rows)-1].WBGvsRace)
	}
}

func TestIdlePowerStudyValidation(t *testing.T) {
	if _, err := IdlePowerStudy(nil, smallSPEC()); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := IdlePowerStudy([]float64{-1}, smallSPEC()); err == nil {
		t.Error("negative watts accepted")
	}
}
