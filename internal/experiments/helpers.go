package experiments

import (
	"dvfsched/internal/batch"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

// planWBG builds a 4-core WBG plan on the Table II menu.
func planWBG(params model.CostParams, tasks model.TaskSet) (*batch.Plan, error) {
	return planWBGWith(params, platform.TableII(), tasks)
}

// planWBGWith builds a 4-core WBG plan on the given menu.
func planWBGWith(params model.CostParams, rt *model.RateTable, tasks model.TaskSet) (*batch.Plan, error) {
	return batch.WBG(params, batch.HomogeneousCores(4, rt), tasks)
}
