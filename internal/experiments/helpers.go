package experiments

import (
	"context"

	"dvfsched/internal/batch"
	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

// planWBG builds a 4-core WBG plan on the Table II menu.
func planWBG(params model.CostParams, tasks model.TaskSet) (*batch.Plan, error) {
	return planWBGWith(params, platform.TableII(), tasks)
}

// planWBGWith builds a 4-core WBG plan on the given menu. Experiments
// sweep the same platform across many workloads, so they share the
// process-wide envelope cache.
func planWBGWith(params model.CostParams, rt *model.RateTable, tasks model.TaskSet) (*batch.Plan, error) {
	return batch.WBGContext(context.Background(), params, batch.HomogeneousCores(4, rt), tasks,
		batch.Opts{Cache: envelope.Shared()})
}
