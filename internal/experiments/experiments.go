// Package experiments reproduces the paper's evaluation (Section V):
// Table I (workload characterization), Table II (rate parameters),
// Fig. 1 (cost-model verification against a non-ideal platform),
// Fig. 2 (batch-mode comparison of Workload Based Greedy against
// Opportunistic Load Balancing and Power Saving), and Fig. 3
// (online-mode comparison of Least Marginal Cost against OLB and
// On-demand). Each experiment is a pure function from an explicit
// config to a result struct; cmd/paperrepro and the repository
// benchmarks print them.
package experiments

import (
	"fmt"
	"strings"

	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
	"dvfsched/internal/stats"
	"dvfsched/internal/workload"
)

// BatchParams are the paper's batch-mode cost constants: Re = 0.1
// cents/joule, Rt = 0.4 cents/second.
var BatchParams = model.CostParams{Re: 0.1, Rt: 0.4}

// OnlineParams are the paper's online-mode cost constants: Re = 0.4
// cents/joule, Rt = 0.1 cents/second.
var OnlineParams = model.CostParams{Re: 0.4, Rt: 0.1}

// Outcome is one policy's measured result, the quantity behind one bar
// group in the paper's figures.
type Outcome struct {
	// Policy names the scheduling strategy.
	Policy string
	// EnergyJ is total energy in joules.
	EnergyJ float64
	// MakespanS is the last completion time in seconds.
	MakespanS float64
	// TurnaroundS is the summed turnaround time in seconds.
	TurnaroundS float64
	// EnergyCost, TimeCost and TotalCost are in cents.
	EnergyCost, TimeCost, TotalCost float64
	// Switches counts DVFS transitions; Preemptions counts task
	// preemptions.
	Switches, Preemptions int
	// InteractiveP99S is the 99th-percentile interactive response
	// time in seconds (0 if no interactive tasks ran). The paper's
	// response time is the acknowledgment latency of a user request.
	InteractiveP99S float64
	// SubmitMeanS is the mean non-interactive turnaround in seconds.
	SubmitMeanS float64
}

// FromSimResult converts a simulation result into an Outcome.
func FromSimResult(r *sim.Result) Outcome {
	var inter, non []float64
	for _, ts := range r.Tasks {
		if ts.Task.Interactive {
			inter = append(inter, ts.Turnaround())
		} else {
			non = append(non, ts.Turnaround())
		}
	}
	o := Outcome{
		Policy:      r.Policy,
		EnergyJ:     r.TotalEnergy,
		MakespanS:   r.Makespan,
		TurnaroundS: r.TurnaroundSum,
		EnergyCost:  r.EnergyCost,
		TimeCost:    r.TimeCost,
		TotalCost:   r.TotalCost,
		Switches:    r.Switches,
		Preemptions: r.Preemptions,
		SubmitMeanS: stats.Mean(non),
	}
	if len(inter) > 0 {
		o.InteractiveP99S = stats.Percentile(inter, 99)
	}
	return o
}

// Normalized returns this outcome's (time, energy, total) cost ratios
// against a reference outcome, the paper's normalized-cost axes.
func (o Outcome) Normalized(ref Outcome) (time, energy, total float64) {
	return o.TimeCost / ref.TimeCost, o.EnergyCost / ref.EnergyCost, o.TotalCost / ref.TotalCost
}

// Table1String renders Table I: the average execution times of the
// SPEC CPU2006 integer workloads.
func Table1String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "Benchmark", "train (s)", "ref (s)")
	byBench := map[string][2]float64{}
	var order []string
	for _, w := range workload.SPEC2006Int() {
		v, seen := byBench[w.Benchmark]
		if !seen {
			order = append(order, w.Benchmark)
		}
		if w.Input == "train" {
			v[0] = w.Seconds
		} else {
			v[1] = w.Seconds
		}
		byBench[w.Benchmark] = v
	}
	for _, name := range order {
		v := byBench[name]
		fmt.Fprintf(&b, "%-12s %12.3f %12.3f\n", name, v[0], v[1])
	}
	return b.String()
}

// Table2String renders Table II: the batch-mode rate parameters.
func Table2String() string {
	rt := platform.TableII()
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "p_k")
	for i := 0; i < rt.Len(); i++ {
		fmt.Fprintf(&b, " %8.1f", rt.Level(i).Rate)
	}
	fmt.Fprintf(&b, "\n%-8s", "E(p_k)")
	for i := 0; i < rt.Len(); i++ {
		fmt.Fprintf(&b, " %8.3f", rt.Level(i).Energy)
	}
	fmt.Fprintf(&b, "\n%-8s", "T(p_k)")
	for i := 0; i < rt.Len(); i++ {
		fmt.Fprintf(&b, " %8.3f", rt.Level(i).Time)
	}
	b.WriteByte('\n')
	return b.String()
}
