package experiments

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestParMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	rng := rand.New(rand.NewSource(7))
	delays := make([]time.Duration, len(items))
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
	}
	out, err := parMap(items, func(i int) (int, error) {
		time.Sleep(delays[i]) // scramble completion order
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParMapReportsLowestIndexError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4}
	_, err := parMap(items, func(i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "fail 1" {
		t.Fatalf("err = %v, want fail 1", err)
	}
}

func TestParMapEmpty(t *testing.T) {
	out, err := parMap(nil, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// TestSweepsDeterministicUnderParallelism reruns a trace-driven sweep
// twice and requires bit-identical rows: the worker pool must not leak
// scheduling nondeterminism into results.
func TestSweepsDeterministicUnderParallelism(t *testing.T) {
	a, err := EstimatorSweep([]float64{0.2, 0.6, 1.0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimatorSweep([]float64{0.2, 0.6, 1.0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
