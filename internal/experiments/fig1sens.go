package experiments

import (
	"fmt"

	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

// Fig1SensRow is one point of the model-gap sensitivity study.
type Fig1SensRow struct {
	// MemFraction is the memory-bound cycle share of the execution
	// model.
	MemFraction float64
	// TotalRatio is the resulting Exp/Sim total-cost ratio.
	TotalRatio float64
}

// Fig1Sensitivity shows how the Fig. 1 model gap depends on the
// platform's memory-boundedness: with no memory-bound cycles the
// analytic model is exact (ratio 1), and the gap grows with the
// fraction. The paper's ~8% gap corresponds to one point on this
// curve; the calibration in platform.DefaultRealistic picks it.
func Fig1Sensitivity(memFractions []float64, tasks model.TaskSet) ([]Fig1SensRow, error) {
	if len(memFractions) == 0 {
		return nil, fmt.Errorf("experiments: empty fraction list")
	}
	base := platform.DefaultRealistic()
	rows := make([]Fig1SensRow, 0, len(memFractions))
	for _, f := range memFractions {
		if f < 0 || f >= 1 {
			return nil, fmt.Errorf("experiments: mem fraction %v outside [0, 1)", f)
		}
		exec := base
		exec.MemFraction = f
		res, err := Fig1(Fig1Config{Tasks: tasks, Exec: exec})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig1SensRow{MemFraction: f, TotalRatio: res.TotalRatio})
	}
	return rows, nil
}
