package experiments

import (
	"fmt"
	"math/rand"

	"dvfsched/internal/model"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

// PriceSweepRow is one point of the Rt/Re sensitivity sweep.
type PriceSweepRow struct {
	// RtOverRe is the time-to-energy price ratio.
	RtOverRe float64
	// OLBvsWBG and PSvsWBG are total-cost ratios normalized to WBG.
	OLBvsWBG, PSvsWBG float64
	// WBGEnergyShare is energy cost's share of WBG's total cost.
	WBGEnergyShare float64
	// WBGMinRateShare is the fraction of WBG's cycles run at the
	// slowest rate (how aggressively the optimum throttles).
	WBGMinRateShare float64
}

// PriceSweep reruns the Fig. 2 comparison across Rt/Re ratios,
// exposing the crossover the cost model predicts: when waiting is
// cheap (low ratio) the optimum throttles hard and beats the
// race-to-idle baselines by a wide margin; as waiting grows expensive
// the optimum converges to running everything fast and the advantage
// shrinks.
func PriceSweep(ratios []float64, tasks model.TaskSet) ([]PriceSweepRow, error) {
	if len(ratios) == 0 {
		return nil, fmt.Errorf("experiments: empty ratio list")
	}
	if tasks == nil {
		tasks = workload.SPECTasks()
	}
	for _, r := range ratios {
		if r <= 0 {
			return nil, fmt.Errorf("experiments: non-positive ratio %v", r)
		}
	}
	return parMap(ratios, func(r float64) (PriceSweepRow, error) {
		params := model.CostParams{Re: 0.1, Rt: 0.1 * r}
		res, err := Fig2(Fig2Config{Tasks: tasks, Params: params})
		if err != nil {
			return PriceSweepRow{}, fmt.Errorf("experiments: price sweep at ratio %v: %w", r, err)
		}
		return PriceSweepRow{
			RtOverRe:        r,
			OLBvsWBG:        res.OLBvsWBG[2],
			PSvsWBG:         res.PSvsWBG[2],
			WBGEnergyShare:  res.WBG.EnergyCost / res.WBG.TotalCost,
			WBGMinRateShare: minRateShare(params, tasks),
		}, nil
	})
}

// minRateShare computes the fraction of cycles the WBG plan runs at
// the slowest rate.
func minRateShare(params model.CostParams, tasks model.TaskSet) float64 {
	plan, err := planWBG(params, tasks)
	if err != nil {
		return 0
	}
	var min, total float64
	for _, cp := range plan.Cores {
		for _, a := range cp.Sequence {
			total += a.Task.Cycles
			if model.ApproxEq(a.Level.Rate, platform.TableII().Min().Rate, model.DefaultEps) {
				min += a.Task.Cycles
			}
		}
	}
	if total == 0 {
		return 0
	}
	return min / total
}

// GranularityRow is one point of the frequency-granularity sweep.
type GranularityRow struct {
	// Levels is the number of discrete rates available.
	Levels int
	// EnergyVsAllMax is WBG's energy relative to running every task
	// at the top rate.
	EnergyVsAllMax float64
	// TotalVsAllMax is the same for total cost.
	TotalVsAllMax float64
}

// GranularitySweep measures how much of WBG's saving survives as the
// frequency menu coarsens: the 12-step i7 ladder, the paper's 5-step
// Table II, a 3-step subset, and a 2-step subset.
func GranularitySweep(tasks model.TaskSet) ([]GranularityRow, error) {
	if tasks == nil {
		tasks = workload.SPECTasks()
	}
	full := platform.TableII()
	three, err := full.Restrict(func(l model.RateLevel) bool {
		return model.ApproxEq(l.Rate, 1.6, model.DefaultEps) ||
			model.ApproxEq(l.Rate, 2.4, model.DefaultEps) ||
			model.ApproxEq(l.Rate, 3.0, model.DefaultEps)
	})
	if err != nil {
		return nil, err
	}
	two, err := full.Restrict(func(l model.RateLevel) bool {
		return model.ApproxEq(l.Rate, 1.6, model.DefaultEps) || model.ApproxEq(l.Rate, 3.0, model.DefaultEps)
	})
	if err != nil {
		return nil, err
	}
	menus := []*model.RateTable{two, three, full, platform.IntelI7950()}

	return parMap(menus, func(rt *model.RateTable) (GranularityRow, error) {
		plan, err := planWBGWith(BatchParams, rt, tasks)
		if err != nil {
			return GranularityRow{}, err
		}
		joules, _, _ := plan.EnergyTime()
		_, _, total := plan.Cost()

		maxOnly, err := rt.Restrict(func(l model.RateLevel) bool {
			return model.ApproxEq(l.Rate, rt.Max().Rate, model.DefaultEps)
		})
		if err != nil {
			return GranularityRow{}, err
		}
		base, err := planWBGWith(BatchParams, maxOnly, tasks)
		if err != nil {
			return GranularityRow{}, err
		}
		baseJ, _, _ := base.EnergyTime()
		_, _, baseTotal := base.Cost()
		return GranularityRow{
			Levels:         rt.Len(),
			EnergyVsAllMax: joules / baseJ,
			TotalVsAllMax:  total / baseTotal,
		}, nil
	})
}

// EstimatorRow is one point of the length-estimation sweep.
type EstimatorRow struct {
	// Sigma is the lognormal shape of submission lengths (higher =
	// harder to predict from the mean).
	Sigma float64
	// EstimatedVsOracle is the estimated-length LMC's total cost
	// normalized to the oracle-length LMC.
	EstimatedVsOracle float64
}

// EstimatorSweep quantifies the cost of the paper's deployment
// shortcut — predicting each submission's length as the mean of past
// completions — as workload variability grows.
func EstimatorSweep(sigmas []float64, seed int64) ([]EstimatorRow, error) {
	if len(sigmas) == 0 {
		return nil, fmt.Errorf("experiments: empty sigma list")
	}
	return parMap(sigmas, func(sigma float64) (EstimatorRow, error) {
		judge := workload.DefaultJudgeConfig()
		judge.Interactive, judge.NonInteractive, judge.Duration = 2000, 300, 500
		judge.SubmitSigma = sigma
		tasks, err := judge.Generate(rand.New(rand.NewSource(seed)))
		if err != nil {
			return EstimatorRow{}, err
		}
		plat := platform.Homogeneous(4, platform.TableII(), platform.Ideal{})
		run := func(p sim.Policy) (float64, error) {
			res, err := sim.Run(sim.Config{Platform: plat, Policy: p}, tasks, OnlineParams)
			if err != nil {
				return 0, err
			}
			return res.TotalCost, nil
		}
		oracle, err := online.NewLMC(OnlineParams)
		if err != nil {
			return EstimatorRow{}, err
		}
		oc, err := run(oracle)
		if err != nil {
			return EstimatorRow{}, err
		}
		estimated, err := online.NewLMCEstimated(OnlineParams)
		if err != nil {
			return EstimatorRow{}, err
		}
		ec, err := run(estimated)
		if err != nil {
			return EstimatorRow{}, err
		}
		return EstimatorRow{Sigma: sigma, EstimatedVsOracle: ec / oc}, nil
	})
}

// CoreSweepRow is one point of the core-count scaling sweep.
type CoreSweepRow struct {
	// Cores is the platform size.
	Cores int
	// OLBvsLMC and ODvsLMC are total-cost ratios normalized to LMC.
	OLBvsLMC, ODvsLMC float64
}

// CoreSweep reruns the Fig. 3 comparison across platform sizes with a
// load scaled proportionally, showing where LMC's advantage grows or
// shrinks with parallelism.
func CoreSweep(cores []int, seed int64) ([]CoreSweepRow, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("experiments: empty core list")
	}
	for _, n := range cores {
		if n <= 0 {
			return nil, fmt.Errorf("experiments: bad core count %d", n)
		}
	}
	return parMap(cores, func(n int) (CoreSweepRow, error) {
		judge := workload.DefaultJudgeConfig()
		judge.Interactive = 1500 * n
		judge.NonInteractive = 130 * n
		judge.Duration = 600
		tasks, err := judge.Generate(rand.New(rand.NewSource(seed)))
		if err != nil {
			return CoreSweepRow{}, err
		}
		res, err := Fig3(Fig3Config{Tasks: tasks, Cores: n})
		if err != nil {
			return CoreSweepRow{}, fmt.Errorf("experiments: core sweep at %d: %w", n, err)
		}
		return CoreSweepRow{Cores: n, OLBvsLMC: res.OLBvsLMC[2], ODvsLMC: res.ODvsLMC[2]}, nil
	})
}
