package experiments

import (
	"testing"
)

func TestPriceSweepCrossover(t *testing.T) {
	tasks := smallSPEC()
	rows, err := PriceSweep([]float64{0.5, 4, 32}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// When waiting is cheap the optimum throttles hard; as Rt/Re
	// grows it throttles less.
	if rows[0].WBGMinRateShare <= rows[2].WBGMinRateShare {
		t.Errorf("min-rate share did not shrink with Rt/Re: %v -> %v",
			rows[0].WBGMinRateShare, rows[2].WBGMinRateShare)
	}
	// WBG never loses to the baselines at any price point.
	for _, r := range rows {
		if r.OLBvsWBG < 1 || r.PSvsWBG < 1 {
			t.Errorf("ratio below 1 at Rt/Re=%v: OLB %v PS %v", r.RtOverRe, r.OLBvsWBG, r.PSvsWBG)
		}
		if r.WBGEnergyShare <= 0 || r.WBGEnergyShare >= 1 {
			t.Errorf("energy share out of range: %v", r.WBGEnergyShare)
		}
	}
	// Energy's share of the total falls as time gets pricier.
	if rows[0].WBGEnergyShare <= rows[2].WBGEnergyShare {
		t.Errorf("energy share did not fall: %v -> %v", rows[0].WBGEnergyShare, rows[2].WBGEnergyShare)
	}
	if _, err := PriceSweep(nil, tasks); err == nil {
		t.Error("empty ratios accepted")
	}
	if _, err := PriceSweep([]float64{-1}, tasks); err == nil {
		t.Error("negative ratio accepted")
	}
}

func TestGranularitySweepMonotone(t *testing.T) {
	rows, err := GranularitySweep(smallSPEC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.EnergyVsAllMax >= 1 {
			t.Errorf("row %d: no energy saving vs all-max (%v)", i, r.EnergyVsAllMax)
		}
		if r.TotalVsAllMax >= 1 {
			t.Errorf("row %d: no total saving vs all-max (%v)", i, r.TotalVsAllMax)
		}
		if i > 0 && rows[i].Levels <= rows[i-1].Levels {
			t.Error("levels not increasing")
		}
	}
	// A finer menu can only help the optimizer: the 12-step ladder's
	// total must not be worse than the 2-step subset's.
	if rows[len(rows)-1].TotalVsAllMax > rows[0].TotalVsAllMax+0.02 {
		t.Errorf("finer menu did worse: %v vs %v", rows[len(rows)-1].TotalVsAllMax, rows[0].TotalVsAllMax)
	}
}

func TestEstimatorSweep(t *testing.T) {
	rows, err := EstimatorSweep([]float64{0.2, 1.0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Estimation can't beat the oracle by more than noise, and
		// shouldn't blow up.
		if r.EstimatedVsOracle < 0.95 || r.EstimatedVsOracle > 5 {
			t.Errorf("sigma %v: ratio %v out of range", r.Sigma, r.EstimatedVsOracle)
		}
	}
	if _, err := EstimatorSweep(nil, 1); err == nil {
		t.Error("empty sigmas accepted")
	}
}

func TestCoreSweep(t *testing.T) {
	rows, err := CoreSweep([]int{2, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OLBvsLMC <= 1 || r.ODvsLMC <= 1 {
			t.Errorf("%d cores: LMC not winning (OLB %v, OD %v)", r.Cores, r.OLBvsLMC, r.ODvsLMC)
		}
	}
	if _, err := CoreSweep([]int{0}, 1); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := CoreSweep(nil, 1); err == nil {
		t.Error("empty list accepted")
	}
}
