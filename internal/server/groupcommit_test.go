package server

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
)

// newTestShard builds a shard on the default platform with a fresh
// batch-size histogram, returning both.
func newTestShard(t *testing.T, queueDepth int) (*shard, *obs.Histogram) {
	t.Helper()
	spec, params, plat, err := PlatformSpec{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	hist := obs.NewRegistry().Histogram(obs.ServerSessionBatchSize, batchSizeBuckets)
	sh, err := newShard("s-test", spec, params, plat, queueDepth, 0, hist)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.purge)
	return sh, hist
}

// oneTask builds a single-task submission.
func oneTask(id int, cycles, arrival float64) model.TaskSet {
	return model.TaskSet{{ID: id, Cycles: cycles, Arrival: arrival, Deadline: model.NoDeadline}}
}

// TestGroupCommitCoalesces stages five submissions in the intake ring
// before delivering one wakeup, so the leader must admit all five in a
// single flush: every submitter gets its reply, the results are
// identical to five serial submissions, and the batch-size histogram
// records one batch of five.
func TestGroupCommitCoalesces(t *testing.T) {
	sh, hist := newTestShard(t, 64)
	const n = 5
	reqs := make([]*submitReq, n)
	sh.mu.Lock()
	for i := 0; i < n; i++ {
		req := submitReqPool.Get().(*submitReq)
		req.ctx, req.tasks, req.clamp = context.Background(), oneTask(i+1, 1, float64(i)), false
		reqs[i] = req
		sh.intake = append(sh.intake, req)
	}
	sh.mu.Unlock()
	sh.kick <- struct{}{}
	for i, req := range reqs {
		resp := <-req.reply
		if resp.err != nil {
			t.Fatalf("submission %d: %v", i, resp.err)
		}
		if resp.submitted != i+1 {
			t.Fatalf("submission %d: submitted = %d, want %d", i, resp.submitted, i+1)
		}
	}
	snap := hist.Snapshot()
	if snap.Count != 1 || snap.Sum != n {
		t.Fatalf("batch histogram: count %d sum %v, want one batch of %d", snap.Count, snap.Sum, n)
	}
}

// TestGroupCommitFlushBeforeControl stages submissions without any
// wakeup and then issues a status request: the leader must flush the
// intake before answering, so the reply counts every staged task.
func TestGroupCommitFlushBeforeControl(t *testing.T) {
	sh, _ := newTestShard(t, 64)
	const n = 3
	reqs := make([]*submitReq, n)
	sh.mu.Lock()
	for i := 0; i < n; i++ {
		req := submitReqPool.Get().(*submitReq)
		req.ctx, req.tasks, req.clamp = context.Background(), oneTask(100+i, 1, 0), true
		reqs[i] = req
		sh.intake = append(sh.intake, req)
	}
	sh.mu.Unlock()
	resp, err := sh.do(context.Background(), shardReq{op: opStatus})
	if err != nil {
		t.Fatal(err)
	}
	if resp.submitted != n {
		t.Fatalf("status after staged submissions: submitted = %d, want %d", resp.submitted, n)
	}
	for i, req := range reqs {
		if r := <-req.reply; r.err != nil {
			t.Fatalf("submission %d: %v", i, r.err)
		}
	}
}

// TestGroupCommitIntakeOverflow fills the intake ring past capacity
// and checks the overflow submission is shed as ErrBusy.
func TestGroupCommitIntakeOverflow(t *testing.T) {
	sh, _ := newTestShard(t, 2)
	// Stage a fake full intake without waking the leader.
	sh.mu.Lock()
	for i := 0; i < 2; i++ {
		req := submitReqPool.Get().(*submitReq)
		req.ctx, req.tasks, req.clamp = context.Background(), oneTask(200+i, 1, 0), true
		sh.intake = append(sh.intake, req)
	}
	sh.mu.Unlock()
	_, err := sh.submit(context.Background(), oneTask(299, 1, 0), true)
	if err == nil {
		t.Fatal("overflow submission accepted, want ErrBusy")
	}
	// Drain the staged requests so cleanup can purge promptly.
	sh.kick <- struct{}{}
}

// TestGroupCommitParity is the determinism proof for batched
// admission: many goroutines race single-task submissions into one
// shard, and the resulting event trace must be byte-identical to the
// same submissions applied serially — one core session, one Admit per
// submission — in the order the leader admitted them (recovered from
// the arrival events, since every submission carries a distinct ID).
func TestGroupCommitParity(t *testing.T) {
	const goroutines, perG = 8, 25
	sh, hist := newTestShard(t, goroutines*perG)

	// Pre-build every submission and keep a pristine copy: Admit clamps
	// arrivals in place, and the serial replay must start from the
	// original timestamps to face the same clamping decisions.
	type submission struct{ orig, live model.TaskSet }
	subs := make([]submission, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			k := g*perG + i
			arrival := float64(i) * 0.05
			cycles := 0.5 + float64(g)*0.1
			subs[k] = submission{
				orig: oneTask(k+1, cycles, arrival),
				live: oneTask(k+1, cycles, arrival),
			}
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := g*perG + i
				resp, err := sh.submit(context.Background(), subs[k].live, true)
				if err != nil {
					t.Errorf("submit %d: %v", k, err)
					return
				}
				if resp.err != nil {
					t.Errorf("submit %d: session error: %v", k, resp.err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if _, err := sh.do(context.Background(), shardReq{op: opDrain}); err != nil {
		t.Fatal(err)
	}

	got := sh.rec.Events()
	// Recover the admission order: arrival events appear in the exact
	// order the leader applied submissions, and each submission holds
	// one distinct task ID.
	var order []int
	for _, ev := range got {
		if ev.Kind == obs.KindArrival {
			order = append(order, ev.Task-1)
		}
	}
	if len(order) != len(subs) {
		t.Fatalf("recovered %d arrivals, want %d", len(order), len(subs))
	}

	// Serial replay: same platform, same submissions, same order, no
	// concurrency anywhere.
	_, params, plat, err := PlatformSpec{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.Recorder{}
	sched, err := core.New(params, plat, core.WithSink(rec))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sched.OpenOnline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, k := range order {
		if err := sess.Admit(context.Background(), subs[k].orig); err != nil {
			t.Fatalf("replay submission %d: %v", k, err)
		}
	}
	if _, err := sess.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := rec.Events()

	if len(got) != len(want) {
		t.Fatalf("trace length: batched %d events, serial %d", len(got), len(want))
	}
	var gb, wb []byte
	for i := range got {
		gb = got[i].AppendJSON(gb[:0])
		wb = want[i].AppendJSON(wb[:0])
		if !bytes.Equal(gb, wb) {
			t.Fatalf("event %d diverges:\nbatched: %s\nserial:  %s", i, gb, wb)
		}
	}
	snap := hist.Snapshot()
	if snap.Sum != float64(len(subs)) {
		t.Fatalf("batch histogram mass %v, want %d", snap.Sum, len(subs))
	}
	if snap.Count == 0 || snap.Count > uint64(len(subs)) {
		t.Fatalf("batch histogram count %d out of range [1, %d]", snap.Count, len(subs))
	}
}
