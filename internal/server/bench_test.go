package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"dvfsched/internal/trace"
)

func benchPost(b *testing.B, url string, body any) *http.Response {
	b.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		b.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	return resp
}

func drainClose(resp *http.Response) {
	var sink [4096]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	resp.Body.Close()
}

// BenchmarkPlanCacheHit measures the planning plane's fast path: a
// repeated identical workload served from the LRU cache, full HTTP
// round trip included.
func BenchmarkPlanCacheHit(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	req := PlanRequest{Tasks: benchTasks(32)}
	drainClose(benchPost(b, ts.URL+"/v1/plan", req)) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainClose(benchPost(b, ts.URL+"/v1/plan", req))
	}
}

// BenchmarkPlanCompute measures the planning plane with caching
// disabled: queue, worker pool, WBG, and response shaping per request.
func BenchmarkPlanCompute(b *testing.B) {
	s := New(Config{CacheSize: -1})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	req := PlanRequest{Tasks: benchTasks(32)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainClose(benchPost(b, ts.URL+"/v1/plan", req))
	}
}

// newBenchSession opens a session in-process and returns its submit
// path.
func newBenchSession(b *testing.B, s *Server) string {
	b.Helper()
	raw, err := json.Marshal(PlatformSpec{Cores: 4})
	if err != nil {
		b.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/sessions", bytes.NewReader(raw)))
	if w.Code != http.StatusCreated {
		b.Fatalf("create session: %d %s", w.Code, w.Body)
	}
	var info SessionInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		b.Fatal(err)
	}
	return "/v1/sessions/" + info.ID + "/tasks"
}

// BenchmarkSessionSubmit measures the session plane's arrival path
// under parallel load, in-process (ServeHTTP, no sockets): concurrent
// single-task submissions racing into one shard exercise group-commit
// admission and the pooled response encoding. Arrivals advance one
// virtual second per submission so the engine completes work at the
// rate it arrives, as a live session would; clamp admits the
// submissions that lose the race into the shard.
func BenchmarkSessionSubmit(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	path := newBenchSession(b, s)
	var seq atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := newDiscardResponseWriter()
		rd := bytes.NewReader(nil)
		req := httptest.NewRequest(http.MethodPost, path, rd)
		buf := make([]byte, 0, 128)
		for pb.Next() {
			n := seq.Add(1)
			buf = append(buf[:0], `{"clamp":true,"tasks":[{"id":`...)
			buf = strconv.AppendInt(buf, n, 10)
			buf = append(buf, `,"cycles":2,"arrival":`...)
			buf = strconv.AppendInt(buf, n, 10)
			buf = append(buf, `}]}`...)
			rd.Reset(buf)
			s.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Errorf("submit %d: status %d", n, w.status)
				return
			}
		}
	})
}

// BenchmarkSessionSubmitSerial is the same path with one client: no
// coalescing opportunity, so the gap between the two benchmarks is the
// group-commit win.
func BenchmarkSessionSubmitSerial(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	path := newBenchSession(b, s)
	w := newDiscardResponseWriter()
	rd := bytes.NewReader(nil)
	req := httptest.NewRequest(http.MethodPost, path, rd)
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = append(buf[:0], `{"tasks":[{"id":`...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, `,"cycles":2,"arrival":`...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, `}]}`...)
		rd.Reset(buf)
		s.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("submit %d: status %d", i, w.status)
		}
	}
}

func benchTasks(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{ID: i, Cycles: 5 + float64(i%17)}
	}
	return recs
}
