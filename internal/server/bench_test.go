package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"dvfsched/internal/trace"
)

func benchPost(b *testing.B, url string, body any) *http.Response {
	b.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		b.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	return resp
}

func drainClose(resp *http.Response) {
	var sink [4096]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	resp.Body.Close()
}

// BenchmarkPlanCacheHit measures the planning plane's fast path: a
// repeated identical workload served from the LRU cache, full HTTP
// round trip included.
func BenchmarkPlanCacheHit(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	req := PlanRequest{Tasks: benchTasks(32)}
	drainClose(benchPost(b, ts.URL+"/v1/plan", req)) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainClose(benchPost(b, ts.URL+"/v1/plan", req))
	}
}

// BenchmarkPlanCompute measures the planning plane with caching
// disabled: queue, worker pool, WBG, and response shaping per request.
func BenchmarkPlanCompute(b *testing.B) {
	s := New(Config{CacheSize: -1})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	req := PlanRequest{Tasks: benchTasks(32)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainClose(benchPost(b, ts.URL+"/v1/plan", req))
	}
}

// BenchmarkSessionSubmit measures the session plane's arrival path:
// one task submitted per request into a live shard.
func BenchmarkSessionSubmit(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp := benchPost(b, ts.URL+"/v1/sessions", PlatformSpec{Cores: 4})
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	url := fmt.Sprintf("%s/v1/sessions/%s/tasks", ts.URL, info.ID)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainClose(benchPost(b, url, SubmitRequest{Tasks: []trace.Record{
			{ID: i, Cycles: 2, Arrival: float64(i)},
		}}))
	}
}

func benchTasks(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{ID: i, Cycles: 5 + float64(i%17)}
	}
	return recs
}
