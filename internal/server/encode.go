package server

import (
	"net/http"
	"strconv"
	"sync"

	"dvfsched/internal/obs"
)

// This file is the serving plane's zero-allocation encoding layer:
// append-style JSON framing through pooled byte buffers for the two
// hot responses (session submits and plan results) and the session
// event stream. The appenders produce the same bytes encoding/json
// does for the same structs (obs.AppendJSONFloat / AppendJSONString
// carry the format rules), so switching a path between the two is a
// pure performance change — the parity tests in encode_test.go hold
// them to that.
//
// Buffer ownership rule (mirrors DESIGN §9's scratch rules): a pooled
// buffer is held only between Get and Put inside one function; nothing
// retains it after Put, and anything that must outlive the call (a
// cache entry, a response copy) is copied out first.

// eventFlushBytes is the write granularity of the event stream: big
// enough to amortize the ResponseWriter's syscall per chunk, small
// enough that pooled buffers stay cache-friendly.
const eventFlushBytes = 32 << 10

// encBufPool recycles encoding buffers across requests. Entries are
// *[]byte so Put does not allocate a new header box per cycle.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// appendSubmitResponse frames r compactly, byte-identical to
// encoding/json.Marshal(r).
func appendSubmitResponse(b []byte, r SubmitResponse) []byte {
	b = append(b, `{"accepted":`...)
	b = strconv.AppendInt(b, int64(r.Accepted), 10)
	b = append(b, `,"clock":`...)
	b = obs.AppendJSONFloat(b, r.Clock)
	b = append(b, `,"pending":`...)
	b = strconv.AppendInt(b, int64(r.Pending), 10)
	return append(b, '}')
}

// appendPlanResponse frames r compactly. r.Plan is emitted verbatim —
// the planner stores it pre-compacted — which matches Marshal's bytes
// whenever the plan document contains no characters Marshal would
// HTML-escape (task names with <, > or & re-escape under Marshal but
// pass through here; both are valid JSON for the same value).
func appendPlanResponse(b []byte, r PlanResponse) []byte {
	b = append(b, `{"plan":`...)
	if len(r.Plan) == 0 {
		b = append(b, "null"...)
	} else {
		b = append(b, r.Plan...)
	}
	b = append(b, `,"energy_cost":`...)
	b = obs.AppendJSONFloat(b, r.EnergyCost)
	b = append(b, `,"time_cost":`...)
	b = obs.AppendJSONFloat(b, r.TimeCost)
	b = append(b, `,"total_cost":`...)
	b = obs.AppendJSONFloat(b, r.TotalCost)
	b = append(b, `,"joules":`...)
	b = obs.AppendJSONFloat(b, r.Joules)
	b = append(b, `,"makespan_s":`...)
	b = obs.AppendJSONFloat(b, r.MakespanS)
	b = append(b, `,"turnaround_sum_s":`...)
	b = obs.AppendJSONFloat(b, r.TurnaroundSumS)
	b = append(b, `,"cached":`...)
	b = strconv.AppendBool(b, r.Cached)
	return append(b, '}')
}

// writeAppended sends a 200 with body bytes produced by an appender
// through a pooled buffer. The trailing newline matches what the
// json.Encoder-based writeJSON emitted, so line-oriented consumers
// (curl | grep, the smoke script) keep working.
func writeAppended(w http.ResponseWriter, b []byte) {
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	//dvfslint:allow errcheck-hot header already sent; nothing useful to do on error
	_, _ = w.Write(b)
}

// writeSubmitResponse is the submit fast path: pooled buffer, append
// framing, no marshal.
func writeSubmitResponse(w http.ResponseWriter, r SubmitResponse) {
	bp := encBufPool.Get().(*[]byte)
	b := appendSubmitResponse((*bp)[:0], r)
	writeAppended(w, b)
	*bp = b[:0]
	encBufPool.Put(bp)
}

// writePlanResponse is the plan-miss fast path; cache hits skip even
// this and write the entry's pre-encoded bytes (handlePlan).
func writePlanResponse(w http.ResponseWriter, r PlanResponse) {
	bp := encBufPool.Get().(*[]byte)
	b := appendPlanResponse((*bp)[:0], r)
	writeAppended(w, b)
	*bp = b[:0]
	encBufPool.Put(bp)
}
