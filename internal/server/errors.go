package server

import "errors"

// Sentinel errors for the service planes, matchable via errors.Is.
// writeAPIError (wire.go) maps them — together with the core facade's
// sentinels — to HTTP statuses.
var (
	// ErrBusy reports a full bounded queue (plan queue or shard request
	// queue): backpressure. 429 in steady state, 503 once a drain has
	// begun.
	ErrBusy = errors.New("server: queue full; retry later")
	// ErrSessionGone reports a purged session whose goroutine has
	// exited: 404.
	ErrSessionGone = errors.New("server: session is gone")
	// ErrSessionDrained reports a submit against a session that has
	// already been drained to its final result: 409.
	ErrSessionDrained = errors.New("server: session already drained")
	// ErrSessionTableFull reports the registry at MaxSessions: 429 in
	// steady state, 503 once a drain has begun.
	ErrSessionTableFull = errors.New("server: session table full")
	// ErrDraining reports new work refused because graceful shutdown
	// has begun: 503, so load balancers fail over instead of retrying.
	ErrDraining = errors.New("server: draining; not accepting new work")
	// ErrSessionExists reports a create or adopt under an ID that is
	// already registered: 409. Only reachable with caller-chosen IDs
	// (the cluster router's placement header); generated IDs are fresh
	// by construction.
	ErrSessionExists = errors.New("server: session already exists")
	// ErrSessionMigrating reports a request fenced out while the
	// session is frozen for a planned migration: 503, retryable. The
	// freeze window covers ship + ownership flip, typically well under
	// a client retry backoff.
	ErrSessionMigrating = errors.New("server: session migrating; retry")
	// ErrSessionMoved reports a request that raced past an ownership
	// flip and landed on the old owner after handoff: 503, retryable.
	// The retry re-routes through the cluster placement table to the
	// new owner.
	ErrSessionMoved = errors.New("server: session moved to another node; retry")
)
