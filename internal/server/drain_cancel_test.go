package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"dvfsched/internal/obs"
	"dvfsched/internal/trace"
)

// TestPlanCancellationAbortsInFlightPlan is the PR's cancellation
// proof: a request context canceled while its plan is on a worker
// observably aborts the in-flight planning work (the plans_aborted
// counter fires and no plan completes) rather than burning the worker
// to the end.
func TestPlanCancellationAbortsInFlightPlan(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	started := make(chan struct{})
	s.planner.onComputeStart = func(ctx context.Context) {
		close(started)
		// Hold the plan verifiably in flight until the cancellation has
		// propagated into the job's context, then let planning observe it.
		<-ctx.Done()
	}

	body, err := json.Marshal(PlanRequest{Tasks: batchRecords(24, 2)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	<-started
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected a client-side cancellation error")
	}

	aborts := s.reg.Counter(obs.ServerPlansAborted)
	deadline := time.Now().Add(5 * time.Second)
	for aborts.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("plans_aborted = %v, want >= 1", aborts.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.reg.Counter(obs.ServerPlans).Value(); got != 0 {
		t.Fatalf("plans completed = %v, want 0 after cancellation", got)
	}
}

// TestBeginDrainSheds503 checks the shutdown contract: once a drain
// has begun, new work on both planes is refused with 503 (not 429), so
// load balancers fail over instead of retrying, while reads and the
// drain itself still work.
func TestBeginDrainSheds503(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var info SessionInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions", PlatformSpec{Cores: 2}, &info); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	base := ts.URL + "/v1/sessions/" + info.ID
	if code := doJSON(t, "POST", base+"/tasks", SubmitRequest{
		Tasks: []trace.Record{{ID: 1, Cycles: 5, Arrival: 1}},
	}, nil); code != http.StatusOK {
		t.Fatalf("pre-drain submit status %d", code)
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	if code := doJSON(t, "POST", ts.URL+"/v1/plan", PlanRequest{Tasks: batchRecords(4, 1)}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("plan during drain: status %d, want 503", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions", PlatformSpec{}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create during drain: status %d, want 503", code)
	}
	if code := doJSON(t, "POST", base+"/tasks", SubmitRequest{
		Tasks: []trace.Record{{ID: 2, Cycles: 5, Arrival: 2}},
	}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503", code)
	}
	// Reads and the drain itself still work: no accepted task is lost.
	if code := doJSON(t, "GET", base, nil, &info); code != http.StatusOK {
		t.Fatalf("status during drain: %d", code)
	}
	var dr DrainResponse
	if code := doJSON(t, "DELETE", base, nil, &dr); code != http.StatusOK {
		t.Fatalf("drain during drain: status %d", code)
	}
	if dr.Tasks != 1 {
		t.Fatalf("drained %d tasks, want 1", dr.Tasks)
	}
}

// TestDrainAllImpliesBeginDrain pins the graceful-shutdown ordering:
// DrainAll itself flips the refuse-new-work switch, so callers cannot
// forget it.
func TestDrainAllImpliesBeginDrain(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	s.DrainAll(context.Background())
	if !s.Draining() {
		t.Fatal("DrainAll did not begin the drain")
	}
}

// TestSessionParallelismParity is the service-level differential
// check: a session served by a parallel candidate-evaluation pool must
// report exactly the measurements of a sequential one.
func TestSessionParallelismParity(t *testing.T) {
	run := func(cfg Config) DrainResponse {
		t.Helper()
		_, ts := newTestServer(t, cfg)
		var info SessionInfo
		if code := doJSON(t, "POST", ts.URL+"/v1/sessions", PlatformSpec{Cores: 4}, &info); code != http.StatusCreated {
			t.Fatalf("create status %d", code)
		}
		base := ts.URL + "/v1/sessions/" + info.ID
		recs := make([]trace.Record, 60)
		for i := range recs {
			recs[i] = trace.Record{
				ID:          i,
				Cycles:      5 + float64((i*37)%200),
				Arrival:     float64(i) * 0.4,
				Interactive: i%5 == 0,
			}
		}
		for off := 0; off < len(recs); off += 12 {
			if code := doJSON(t, "POST", base+"/tasks", SubmitRequest{Tasks: recs[off : off+12]}, nil); code != http.StatusOK {
				t.Fatalf("submit status %d", code)
			}
		}
		var dr DrainResponse
		if code := doJSON(t, "DELETE", base, nil, &dr); code != http.StatusOK {
			t.Fatalf("drain status %d", code)
		}
		return dr
	}

	seq := run(Config{})
	par := run(Config{SessionParallelism: 4})
	seq.ID, par.ID = "", ""
	if seq != par {
		t.Fatalf("parallel session diverged from sequential:\n  seq %+v\n  par %+v", seq, par)
	}
}
