package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"
	"testing"

	"dvfsched/internal/core"
	"dvfsched/internal/obs"
	"dvfsched/internal/sim"
	"dvfsched/internal/trace"
)

// createSession opens a session over HTTP and returns its ID.
func createSession(t *testing.T, url string) string {
	t.Helper()
	var info SessionInfo
	if code := doJSON(t, "POST", url+"/v1/sessions", PlatformSpec{}, &info); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	return info.ID
}

// submitOver posts one submission batch over HTTP.
func submitOver(t *testing.T, url, id string, recs []trace.Record, clamp bool) {
	t.Helper()
	var resp SubmitResponse
	code := doJSON(t, "POST", url+"/v1/sessions/"+id+"/tasks", SubmitRequest{Tasks: recs, Clamp: clamp}, &resp)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
}

// getRaw fetches a URL and returns status and body.
func getRaw(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestSessionEventsBinaryFormat drives a session over HTTP and fetches
// its trace in both formats: the binary stream must carry the magic,
// decode to events whose JSON re-encoding is byte-identical to the
// jsonl endpoint's output, and be substantially smaller.
func TestSessionEventsBinaryFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL)

	recs := make([]trace.Record, 30)
	for i := range recs {
		recs[i] = trace.Record{ID: i + 1, Cycles: 2 + float64(i%7), Arrival: float64(i) * 0.2, Interactive: i%4 == 0}
	}
	submitOver(t, ts.URL, id, recs, false)
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusOK {
		t.Fatalf("drain: status %d", code)
	}

	codeJ, jsonl, hdrJ := getRaw(t, ts.URL+"/v1/sessions/"+id+"/events")
	codeB, bin, hdrB := getRaw(t, ts.URL+"/v1/sessions/"+id+"/events?format=binary")
	if codeJ != http.StatusOK || codeB != http.StatusOK {
		t.Fatalf("events: status %d / %d", codeJ, codeB)
	}
	if ct := hdrB.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("binary Content-Type = %q", ct)
	}
	if hdrJ.Get("X-Event-Count") != hdrB.Get("X-Event-Count") {
		t.Errorf("event counts differ: %s vs %s", hdrJ.Get("X-Event-Count"), hdrB.Get("X-Event-Count"))
	}
	if !obs.DetectBinary(bin) {
		t.Fatal("binary body does not start with the trace magic")
	}

	events, err := obs.ReadBinary(bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	var rejson []byte
	for _, ev := range events {
		rejson = ev.AppendJSON(rejson)
		rejson = append(rejson, '\n')
	}
	if !bytes.Equal(rejson, jsonl) {
		t.Fatalf("binary trace decodes to different JSON (%d vs %d bytes)", len(rejson), len(jsonl))
	}
	if len(bin)*2 >= len(jsonl) {
		t.Errorf("binary trace %d bytes, jsonl %d: expected at least 2x smaller", len(bin), len(jsonl))
	}

	if code, _, _ := getRaw(t, ts.URL+"/v1/sessions/"+id+"/events?format=yaml"); code != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", code)
	}
}

// TestSessionSnapshotEndpoint snapshots a live session over HTTP,
// restores it in-process, and drains both: final results must agree
// and the restored trace must be the byte-exact suffix of the shard's.
func TestSessionSnapshotEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL)

	recs := make([]trace.Record, 20)
	for i := range recs {
		recs[i] = trace.Record{ID: i + 1, Cycles: 5 + float64(i%5)*3, Arrival: float64(i) * 0.3, Interactive: i%3 == 0}
	}
	submitOver(t, ts.URL, id, recs, false)

	code, blob, hdr := getRaw(t, ts.URL+"/v1/sessions/"+id+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("snapshot: status %d (%s)", code, blob)
	}
	if hdr.Get("X-Checkpoint-Pending") == "0" {
		t.Fatal("snapshot taken with nothing pending; the test would be trivial")
	}
	cp, err := sim.UnmarshalCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}

	// Restore in-process on an identically-specced scheduler.
	_, params, plat, err := PlatformSpec{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.Recorder{}
	sched, err := core.New(params, plat, core.WithSink(rec))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sched.RestoreOnline(context.Background(), blob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Drain the shard and compare.
	var final DrainResponse
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil, &final); code != http.StatusOK {
		t.Fatalf("drain: status %d", code)
	}
	if final.TotalCost != res.TotalCost || final.MakespanS != res.Makespan {
		t.Fatalf("restored drain diverged: cost %v/%v makespan %v/%v",
			res.TotalCost, final.TotalCost, res.Makespan, final.MakespanS)
	}

	sh, ok := srv.sessions.get(id)
	if !ok {
		t.Fatal("shard vanished")
	}
	all := sh.rec.Events()
	var suffix []obs.Event
	for i, ev := range all {
		if ev.Seq > cp.EvSeq {
			suffix = all[i:]
			break
		}
	}
	var want, got []byte
	for _, ev := range suffix {
		want = ev.AppendJSON(want)
		want = append(want, '\n')
	}
	for _, ev := range rec.Events() {
		got = ev.AppendJSON(got)
		got = append(got, '\n')
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("restored trace is not the shard trace's suffix (%d vs %d bytes)", len(want), len(got))
	}

	// A drained session has no live engine to checkpoint.
	if code, _, _ := getRaw(t, ts.URL+"/v1/sessions/"+id+"/snapshot"); code != http.StatusConflict {
		t.Errorf("snapshot of drained session: status %d, want 409", code)
	}
}

// TestSnapshotMidGroupCommit races concurrent submitters against
// repeated snapshots on one shard. Because snapshots travel the
// control channel and the leader flushes the whole intake first, every
// snapshot lands on a group-commit boundary: each one must be
// restorable, agree with its reported clock/pending, and drain cleanly
// with exactly the tasks it had admitted.
func TestSnapshotMidGroupCommit(t *testing.T) {
	const goroutines, perG = 6, 20
	sh, _ := newTestShard(t, goroutines*perG)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := g*perG + i
				resp, err := sh.submit(context.Background(), oneTask(k+1, 1+float64(g)*0.3, float64(i)*0.1), true)
				if err != nil {
					t.Errorf("submit %d: %v", k, err)
					return
				}
				if resp.err != nil {
					t.Errorf("submit %d: session error: %v", k, resp.err)
					return
				}
			}
		}(g)
	}

	_, params, plat, err := PlatformSpec{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	snapshots := 0
	for stop := false; !stop; {
		select {
		case <-done:
			stop = true
		default:
		}
		resp, err := sh.do(context.Background(), shardReq{op: opSnapshot})
		if err != nil {
			t.Fatal(err)
		}
		if resp.err != nil {
			t.Fatalf("snapshot refused mid-run: %v", resp.err)
		}
		cp, err := sim.UnmarshalCheckpoint(resp.snapshot)
		if err != nil {
			t.Fatalf("mid-commit snapshot corrupt: %v", err)
		}
		if cp.Clock != resp.clock {
			t.Fatalf("checkpoint clock %v, reply said %v", cp.Clock, resp.clock)
		}
		sched, err := core.New(params, plat)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := sched.RestoreOnline(context.Background(), resp.snapshot)
		if err != nil {
			t.Fatalf("mid-commit snapshot not restorable: %v", err)
		}
		if sess.Pending() != resp.pending {
			t.Fatalf("restored pending %d, reply said %d", sess.Pending(), resp.pending)
		}
		// A restored mid-commit session must always drain cleanly.
		if resp.pending > 0 {
			if _, err := sess.Drain(context.Background()); err != nil {
				t.Fatalf("restored session failed to drain: %v", err)
			}
		} else {
			sess.Close()
		}
		snapshots++
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if snapshots == 0 {
		t.Fatal("no snapshots taken")
	}

	// Final consistency: the last snapshot (taken after every submitter
	// finished) restores to a session that drains bit-identically to
	// the shard itself.
	resp, err := sh.do(context.Background(), shardReq{op: opSnapshot})
	if err != nil || resp.err != nil {
		t.Fatalf("final snapshot: %v / %v", err, resp.err)
	}
	if resp.submitted != goroutines*perG {
		t.Fatalf("final snapshot saw %d submitted, want %d", resp.submitted, goroutines*perG)
	}
	rec := &obs.Recorder{}
	sched, err := core.New(params, plat, core.WithSink(rec))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sched.RestoreOnline(context.Background(), resp.snapshot)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	shResp, err := sh.do(context.Background(), shardReq{op: opDrain})
	if err != nil {
		t.Fatal(err)
	}
	if shResp.err != nil {
		t.Fatal(shResp.err)
	}
	if res.TotalCost != shResp.result.TotalCost || res.Makespan != shResp.result.Makespan {
		t.Fatalf("final restore diverged: cost %v/%v makespan %v/%v",
			res.TotalCost, shResp.result.TotalCost, res.Makespan, shResp.result.Makespan)
	}
	if len(res.Tasks) != goroutines*perG {
		t.Fatalf("restored session drained %d tasks, want %d", len(res.Tasks), goroutines*perG)
	}
}
