package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"dvfsched/internal/obs"
)

// Mutation classifies a state-changing session operation for
// replication: after serving one locally, the router asks the cluster
// to ship the resulting state to the session's replica before the
// response is released.
type Mutation string

const (
	// MutationCreate: the session was opened (POST /v1/sessions).
	MutationCreate Mutation = "create"
	// MutationSubmit: tasks were accepted (POST .../tasks). The only
	// mutation whose replication failure fails the request — an
	// unreplicated ack would let an owner kill lose an accepted task.
	MutationSubmit Mutation = "submit"
	// MutationDrain: the session was drained to its final result
	// (first DELETE).
	MutationDrain Mutation = "drain"
	// MutationPurge: the tombstone was removed (second DELETE).
	MutationPurge Mutation = "purge"
)

// Cluster is the contract the Router needs from the cluster control
// plane (internal/cluster implements it over a consistent-hash ring
// with log-shipped replication).
type Cluster interface {
	// Self is this node's ID.
	Self() string
	// Route returns the live candidate nodes for a session, owner
	// first, in failover order. Empty means no live node.
	Route(sessionID string) []string
	// Addr resolves a node ID to its base URL.
	Addr(node string) string
	// Observe reports the outcome of talking to a node: a non-nil
	// transport error marks it down, nil marks it up.
	Observe(node string, err error)
	// NewSessionID mints a cluster-unique session ID, used to place a
	// create on the ring before any node has registered the session.
	NewSessionID() string
	// EnsureLocal promotes a locally replicated session into a live
	// shard if this node holds replica state for id but no shard —
	// the failover path, invoked lazily on the first operation routed
	// here after the owner died. No local state is not an error: the
	// operation then sees the server's own 404.
	EnsureLocal(ctx context.Context, id string) error
	// Epoch is the membership epoch of the routing view in use; the
	// router stamps it (EpochHeader) on every forward so a peer with an
	// older view pulls the newer membership.
	Epoch() uint64
	// Replicate ships the session's unshipped log suffix (and
	// periodically a checkpoint) to its replica. Called after a
	// mutation was served locally, before the response is released.
	Replicate(ctx context.Context, id string, m Mutation) error
}

// Router fronts a Server in a cluster: session operations whose ring
// owner is this node are served locally (with replication on the
// mutation path); everything else is forwarded to the owner over HTTP,
// failing over to the next live candidate when the owner's socket is
// refused. Non-session routes (plan plane, healthz, metrics) are
// always local. The typed-error → status mapping is the single-node
// one: forwarded responses pass through byte-for-byte, and transport
// failures surface as 502.
type Router struct {
	srv    *Server
	cl     Cluster
	client *http.Client

	forwards      *obs.Counter
	forwardErrors *obs.Counter
	replErrors    *obs.Counter
}

// NewRouter wires a Router over a server and a cluster control plane.
func NewRouter(srv *Server, cl Cluster) *Router {
	reg := srv.Registry()
	return &Router{
		srv: srv,
		cl:  cl,
		// Twice the per-request budget: a forwarded request pays the
		// remote node's own RequestTimeout plus the hop.
		client:        &http.Client{Timeout: 2 * srv.cfg.RequestTimeout},
		forwards:      reg.Counter(obs.ClusterForwards),
		forwardErrors: reg.Counter(obs.ClusterForwardErrors),
		replErrors:    reg.Counter(obs.ClusterReplicationErrors),
	}
}

// SetTransport replaces the forwarding client's transport. The cluster
// node installs its shared tuned transport here so forwards, ships and
// probes draw from one keep-alive connection pool per peer instead of
// three. Call before serving; the router does not lock the client.
func (rt *Router) SetTransport(t http.RoundTripper) { rt.client.Transport = t }

// forwardedHeaders are the response headers a forward relays.
var forwardedHeaders = []string{
	"Content-Type", "X-Event-Count", "X-Checkpoint-Clock", "X-Checkpoint-Pending",
}

// maxForwardHops bounds router-to-router forwarding chains. Normal
// routing is one hop; a couple more can happen transiently while
// membership views converge after a join/leave. Past the limit the
// request is refused (503, retryable) rather than orbiting the ring.
const maxForwardHops = 8

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id, ok := sessionIDFromPath(r.URL.Path)
	if !ok {
		rt.srv.ServeHTTP(w, r)
		return
	}
	if id == "" {
		if r.Method != http.MethodPost {
			rt.srv.ServeHTTP(w, r) // let the mux 404/405 it
			return
		}
		// A create is placed by the ID it will return: mint one here
		// (unless an upstream router already did) and route by it.
		id = r.Header.Get(SessionIDHeader)
		if id == "" {
			id = rt.cl.NewSessionID()
			r.Header.Set(SessionIDHeader, id)
		}
	}
	rt.route(w, r, id)
}

// sessionIDFromPath extracts {id} from /v1/sessions[/{id}[/...]]. The
// second result is false for non-session paths; a true result with an
// empty ID is the collection route (create).
func sessionIDFromPath(path string) (string, bool) {
	rest, ok := strings.CutPrefix(path, "/v1/sessions")
	if !ok {
		return "", false
	}
	if rest == "" || rest == "/" {
		return "", true
	}
	if rest[0] != '/' {
		return "", false // e.g. /v1/sessionsfoo
	}
	rest = rest[1:]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest, true
}

// route serves the request on the first live candidate: locally when
// that candidate is this node, else by forwarding. A refused
// connection fails over to the next candidate — the node died without
// seeing the request, so retrying it elsewhere is safe for any method.
func (rt *Router) route(w http.ResponseWriter, r *http.Request, id string) {
	hops := 0
	if hv := r.Header.Get(forwardHopsHeader); hv != "" {
		hops, _ = strconv.Atoi(hv)
	}
	if hops >= maxForwardHops {
		writeError(w, http.StatusServiceUnavailable,
			"cluster: session %q forwarded %d times without an owner; membership views still converging, retry", id, hops)
		return
	}
	cands := rt.cl.Route(id)
	if len(cands) == 0 {
		writeError(w, http.StatusServiceUnavailable, "cluster: no live node for session %q", id)
		return
	}
	// Buffer the body once so it survives a failover re-send.
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
	}
	for i, cand := range cands {
		if cand == rt.cl.Self() {
			rt.serveLocal(w, r, id, body)
			return
		}
		err := rt.forward(w, r, cand, body)
		if err == nil {
			return
		}
		rt.cl.Observe(cand, err)
		rt.forwardErrors.Inc()
		if !errors.Is(err, syscall.ECONNREFUSED) || i == len(cands)-1 {
			// Anything but a refused connection may have reached the
			// peer; surface it and let the client decide to retry.
			writeError(w, http.StatusBadGateway, "cluster: forward to %s: %v", cand, err)
			return
		}
	}
	writeError(w, http.StatusServiceUnavailable, "cluster: no live node for session %q", id)
}

// serveLocal runs the request through the local server. Reads stream
// straight to the client; mutations are buffered so replication can
// veto the ack (submits) or at least run before the response is
// released (create/drain/purge).
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request, id string, body []byte) {
	if err := rt.cl.EnsureLocal(r.Context(), id); err != nil {
		rt.srv.writeAPIError(w, err, http.StatusInternalServerError)
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	mut := mutationOf(r)
	if mut == "" {
		rt.srv.ServeHTTP(w, r)
		return
	}
	bw := &bufferedResponse{header: http.Header{}}
	rt.srv.ServeHTTP(bw, r)
	if bw.status >= 200 && bw.status < 300 {
		m := mut
		if m == MutationDrain && bw.status == http.StatusNoContent {
			m = MutationPurge // second DELETE removes the tombstone
		}
		if err := rt.cl.Replicate(r.Context(), id, m); err != nil {
			rt.replErrors.Inc()
			if m == MutationSubmit {
				// Suppress the ack: the client retries, and the retry
				// is idempotent (a duplicate-ID 400 after a successful
				// but unacked replication means "already accepted").
				writeError(w, http.StatusBadGateway, "cluster: replicate session %s: %v", id, err)
				return
			}
			// Create/drain/purge degrade: the replica converges from
			// the next shipped log batch or the client's retry.
		}
	}
	bw.flush(w)
}

// mutationOf classifies the request; "" means a read.
func mutationOf(r *http.Request) Mutation {
	switch {
	case r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/tasks"):
		return MutationSubmit
	case r.Method == http.MethodPost:
		return MutationCreate
	case r.Method == http.MethodDelete:
		return MutationDrain
	}
	return ""
}

// forward proxies the request to node and relays the response. A
// non-nil return means the response was NOT written and the caller may
// fail over; once any byte of the peer's response is relayed, errors
// are swallowed (the client sees a truncated body, as with any proxy).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, node string, body []byte) error {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, rt.cl.Addr(node)+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if sid := r.Header.Get(SessionIDHeader); sid != "" {
		req.Header.Set(SessionIDHeader, sid)
	}
	// Stamp the forward with this node's view epoch and address (the
	// receiver's anti-entropy pull) and the incremented hop count (the
	// receiver's loop guard).
	req.Header.Set(EpochHeader, strconv.FormatUint(rt.cl.Epoch(), 10))
	req.Header.Set(SenderAddrHeader, rt.cl.Addr(rt.cl.Self()))
	hops := 0
	if hv := r.Header.Get(forwardHopsHeader); hv != "" {
		hops, _ = strconv.Atoi(hv)
	}
	req.Header.Set(forwardHopsHeader, strconv.Itoa(hops+1))
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rt.forwards.Inc()
	rt.cl.Observe(node, nil)
	h := w.Header()
	for _, k := range forwardedHeaders {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	// Status already relayed; a broken client read cannot be repaired here.
	_, _ = io.Copy(w, resp.Body)
	return nil
}

// bufferedResponse captures a handler's response so the router can run
// replication between the handler and the wire.
type bufferedResponse struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.buf.Write(p)
}

// flush replays the captured response onto the real writer.
func (b *bufferedResponse) flush(w http.ResponseWriter) {
	h := w.Header()
	for _, k := range headerKeys(b.header) {
		h[k] = b.header[k]
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	//dvfslint:allow errcheck-hot status already written; nothing useful to do on a failed body write
	_, _ = w.Write(b.buf.Bytes())
}

// headerKeys returns the header's keys sorted, for deterministic
// relay order.
func headerKeys(h http.Header) []string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
