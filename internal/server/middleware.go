package server

import (
	"context"
	"net/http"
	"time"
)

// statusRecorder captures the response status for failure accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// instrument wraps the mux with the serving plumbing, outermost first:
// request metrics, a per-request deadline, and panic-to-500 recovery.
// Handlers observe the deadline through the request context (queue
// waits and shard round-trips select on it).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.requests.Inc()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)

		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				s.failures.Inc()
				// Best effort: if the handler already wrote a header
				// this is a no-op and the client sees a broken body.
				writeError(rec, http.StatusInternalServerError, "internal error: %v", p)
			} else if rec.status >= 500 {
				s.failures.Inc()
			}
			s.latency.Observe(time.Since(start).Seconds())
		}()
		next.ServeHTTP(rec, r)
	})
}
