package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
)

// maxMovedMarkers caps the moved-marker map; past it the markers reset
// wholesale. Markers only upgrade a 404 into a retryable 503 for
// requests racing a migration flip, so losing old ones is harmless.
const maxMovedMarkers = 65536

// sessions is the registry of live and drained (tombstoned) shards.
type sessions struct {
	mu         sync.Mutex
	m          map[string]*shard
	moved      map[string]string // migrated-away session -> target node
	seq        int
	maxOpen    int
	queueDepth int
	parallel   int

	open    *obs.Gauge
	opened  *obs.Counter
	drained *obs.Counter
	tasks   *obs.Counter
	batch   *obs.Histogram
}

// batchSizeBuckets covers group-commit coalescing from "no concurrency"
// (1) up to a full default intake ring (64).
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

func newSessions(maxOpen, queueDepth, parallel int, reg *obs.Registry) *sessions {
	return &sessions{
		m:          map[string]*shard{},
		moved:      map[string]string{},
		maxOpen:    maxOpen,
		queueDepth: queueDepth,
		parallel:   parallel,
		open:       reg.Gauge(obs.ServerSessionsOpen),
		opened:     reg.Counter(obs.ServerSessionsOpened),
		drained:    reg.Counter(obs.ServerSessionsDrained),
		tasks:      reg.Counter(obs.ServerSessionTasks),
		batch:      reg.Histogram(obs.ServerSessionBatchSize, batchSizeBuckets),
	}
}

// create opens a new shard. An empty id generates a fresh sequential
// one; a non-empty id (the cluster router's placement header) is used
// verbatim and must not collide with a registered session.
func (ss *sessions) create(id string, spec PlatformSpec, params model.CostParams, plat *platform.Platform) (*shard, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if len(ss.m) >= ss.maxOpen {
		return nil, fmt.Errorf("%w (%d); drain and delete old sessions", ErrSessionTableFull, ss.maxOpen)
	}
	if id == "" {
		ss.seq++
		id = fmt.Sprintf("s-%06d", ss.seq)
	} else if _, ok := ss.m[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionExists, id)
	}
	sh, err := newShard(id, spec, params, plat, ss.queueDepth, ss.parallel, ss.batch)
	if err != nil {
		return nil, err
	}
	ss.m[id] = sh
	delete(ss.moved, id) // the session lives here again
	ss.opened.Inc()
	ss.open.Add(1)
	return sh, nil
}

// adopt registers a shard around a session rebuilt from replicated
// state (Server.AdoptSession). The ID is the dead owner's, so clients
// keep addressing the session they created.
func (ss *sessions) adopt(id string, rb *RebuiltSession) (*shard, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if _, ok := ss.m[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionExists, id)
	}
	if len(ss.m) >= ss.maxOpen {
		return nil, fmt.Errorf("%w (%d); drain and delete old sessions", ErrSessionTableFull, ss.maxOpen)
	}
	sh := startShard(id, rb.Spec, rb.Rec, rb.Sess, ss.queueDepth, ss.batch, rb.Submitted)
	ss.m[id] = sh
	delete(ss.moved, id) // adopted back: the marker no longer applies
	ss.opened.Inc()
	ss.open.Add(1)
	return sh, nil
}

// get looks a shard up by ID.
func (ss *sessions) get(id string) (*shard, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	sh, ok := ss.m[id]
	return sh, ok
}

// remove forgets a shard and stops its goroutine.
func (ss *sessions) remove(id string) {
	ss.mu.Lock()
	sh, ok := ss.m[id]
	delete(ss.m, id)
	ss.mu.Unlock()
	if ok {
		sh.purge()
	}
}

// markMoved retires a shard after a migration flip, leaving a marker
// naming the new owner. The marker turns what would be a 404 (session
// unknown here) into a retryable ErrSessionMoved 503 for any request
// that raced past routing before the flip. The live-session gauge
// drops — the session still exists, just not here.
func (ss *sessions) markMoved(id, target string) {
	ss.mu.Lock()
	sh, ok := ss.m[id]
	delete(ss.m, id)
	if len(ss.moved) >= maxMovedMarkers {
		ss.moved = map[string]string{}
	}
	ss.moved[id] = target
	ss.mu.Unlock()
	if ok {
		ss.open.Add(-1)
		sh.purge()
	}
}

// movedTo reports a moved marker's target, if one exists.
func (ss *sessions) movedTo(id string) (string, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	target, ok := ss.moved[id]
	return target, ok
}

// all snapshots the registry in ID order.
func (ss *sessions) all() []*shard {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]*shard, 0, len(ss.m))
	for _, sh := range ss.m {
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// count returns the number of registered shards (live + tombstoned).
func (ss *sessions) count() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.m)
}

// handleSessionCreate is POST /v1/sessions.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeAPIError(w, ErrDraining, http.StatusServiceUnavailable)
		return
	}
	var spec PlatformSpec
	if err := decodeJSON(w, r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, params, plat, err := spec.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The cluster router pre-places sessions on the hash ring by
	// minting the ID before the create reaches the owning node; honor
	// its choice when the header is present.
	id := r.Header.Get(SessionIDHeader)
	if id != "" && !validSessionID(id) {
		writeError(w, http.StatusBadRequest, "invalid %s %q: want 1-64 chars of [A-Za-z0-9._-]", SessionIDHeader, id)
		return
	}
	sh, err := s.sessions.create(id, spec, params, plat)
	if err != nil {
		s.writeAPIError(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusCreated, SessionInfo{ID: sh.id, PlatformSpec: sh.spec})
}

// lookupShard resolves {id} or writes a 404 — unless the session was
// migrated away, in which case the reply is the retryable moved 503.
func (s *Server) lookupShard(w http.ResponseWriter, r *http.Request) (*shard, bool) {
	id := r.PathValue("id")
	sh, ok := s.sessions.get(id)
	if !ok {
		if target, moved := s.sessions.movedTo(id); moved {
			s.writeAPIError(w, fmt.Errorf("%w: %s (now on %s)", ErrSessionMoved, id, target), http.StatusServiceUnavailable)
			return nil, false
		}
		writeError(w, http.StatusNotFound, "no session %q", id)
		return nil, false
	}
	return sh, true
}

// sessionErr upgrades a raced shard-death error: if the shard vanished
// because the session migrated away mid-request, the caller should see
// the retryable moved sentinel, not a terminal "gone".
func (s *Server) sessionErr(id string, err error) error {
	if err != nil && errors.Is(err, ErrSessionGone) {
		if target, ok := s.sessions.movedTo(id); ok {
			return fmt.Errorf("%w: %s (now on %s)", ErrSessionMoved, id, target)
		}
	}
	return err
}

// handleSessionStatus is GET /v1/sessions/{id}.
func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	sh, ok := s.lookupShard(w, r)
	if !ok {
		return
	}
	resp, err := sh.do(r.Context(), shardReq{op: opStatus})
	if err != nil {
		s.writeAPIError(w, s.sessionErr(sh.id, err), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, SessionInfo{
		ID:           sh.id,
		PlatformSpec: sh.spec,
		Clock:        resp.clock,
		Pending:      resp.pending,
		Submitted:    resp.submitted,
		Drained:      resp.drained,
	})
}

// handleSessionSubmit is POST /v1/sessions/{id}/tasks.
func (s *Server) handleSessionSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeAPIError(w, ErrDraining, http.StatusServiceUnavailable)
		return
	}
	sh, ok := s.lookupShard(w, r)
	if !ok {
		return
	}
	var req SubmitRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tasks, err := tasksFromRecords(req.Tasks)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := sh.submit(r.Context(), tasks, req.Clamp)
	if err != nil {
		s.writeAPIError(w, s.sessionErr(sh.id, err), http.StatusInternalServerError)
		return
	}
	if resp.err != nil {
		// Session-level failures (duplicate IDs, stale arrivals) are the
		// client's fault; sentinels (drained, canceled) map themselves.
		s.writeAPIError(w, resp.err, http.StatusBadRequest)
		return
	}
	s.sessions.tasks.Add(float64(len(tasks)))
	writeSubmitResponse(w, SubmitResponse{
		Accepted: len(tasks),
		Clock:    resp.clock,
		Pending:  resp.pending,
	})
}

// handleSessionEvents is GET /v1/sessions/{id}/events: the shard's obs
// event trace so far. The default (format=jsonl) is JSON Lines; with
// ?format=binary the same events stream in the compact framed binary
// trace encoding (decode with obs.BinaryReader or cmd/traceinfo, which
// auto-detects the magic). After a drain it is the complete trace of
// the session and replays through report.TimelineFromEvents.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sh, ok := s.lookupShard(w, r)
	if !ok {
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = s.cfg.TraceFormat
	}
	switch format {
	case "jsonl", "binary":
	default:
		writeError(w, http.StatusBadRequest, "unknown trace format %q (want jsonl or binary)", format)
		return
	}
	events := sh.rec.Events()
	w.Header().Set("X-Event-Count", fmt.Sprint(len(events)))
	// Append-frame the whole trace through one pooled buffer: the same
	// bytes the serializers produce, without a marshal allocation per
	// event (a drained session replays thousands of them). Both
	// encoders emit self-contained append-only bytes, so the buffer can
	// flush to the wire at any point.
	bp := encBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	flush := func() bool {
		if _, err := w.Write(buf); err != nil {
			return false // client went away mid-stream
		}
		buf = buf[:0]
		return true
	}
	if format == "binary" {
		w.Header().Set("Content-Type", "application/octet-stream")
		var enc obs.BinaryEncoder
		for _, ev := range events {
			buf = enc.AppendEvent(buf, ev)
			if len(buf) >= eventFlushBytes && !flush() {
				*bp = buf[:0]
				encBufPool.Put(bp)
				return
			}
		}
		buf = enc.Flush(buf)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, ev := range events {
			buf = ev.AppendJSON(buf)
			buf = append(buf, '\n')
			if len(buf) >= eventFlushBytes && !flush() {
				*bp = buf[:0]
				encBufPool.Put(bp)
				return
			}
		}
	}
	if len(buf) > 0 {
		//dvfslint:allow errcheck-hot header already sent; nothing useful to do on error
		_, _ = w.Write(buf)
		buf = buf[:0]
	}
	*bp = buf
	encBufPool.Put(bp)
}

// handleSessionSnapshot is GET /v1/sessions/{id}/snapshot: a binary
// checkpoint of the live session (sim checkpoint format, "DVSC"
// magic). The snapshot is taken on the shard goroutine after flushing
// the group-commit intake, so it always lands on a batch boundary —
// never between the submissions of one coalesced admission. Restore it
// with core.Scheduler.RestoreOnline on a scheduler configured with the
// same platform and cost constants; recovering a traced session is
// "restore the snapshot, replay the events-endpoint suffix".
func (s *Server) handleSessionSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Shutdown is draining every shard to its final result; a
		// checkpoint taken mid-drain would race the tombstone, and a
		// drained session cannot be snapshotted anyway. Fail over.
		s.writeAPIError(w, ErrDraining, http.StatusServiceUnavailable)
		return
	}
	sh, ok := s.lookupShard(w, r)
	if !ok {
		return
	}
	resp, err := sh.do(r.Context(), shardReq{op: opSnapshot})
	if err != nil {
		s.writeAPIError(w, s.sessionErr(sh.id, err), http.StatusInternalServerError)
		return
	}
	if resp.err != nil {
		s.writeAPIError(w, resp.err, http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Checkpoint-Clock", fmt.Sprint(resp.clock))
	w.Header().Set("X-Checkpoint-Pending", fmt.Sprint(resp.pending))
	//dvfslint:allow errcheck-hot header already sent; nothing useful to do on error
	_, _ = w.Write(resp.snapshot)
}

// handleSessionDelete is DELETE /v1/sessions/{id}: the first call
// drains the session (completing all pending work in virtual time) and
// reports the final measurements, keeping the trace readable; the
// second call purges the tombstone.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	sh, ok := s.lookupShard(w, r)
	if !ok {
		return
	}
	resp, err := sh.do(r.Context(), shardReq{op: opStatus})
	if err != nil {
		s.writeAPIError(w, s.sessionErr(sh.id, err), http.StatusInternalServerError)
		return
	}
	if resp.drained {
		s.sessions.remove(sh.id)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	resp, err = sh.do(r.Context(), shardReq{op: opDrain})
	if err != nil {
		s.writeAPIError(w, s.sessionErr(sh.id, err), http.StatusInternalServerError)
		return
	}
	if resp.first {
		s.sessions.drained.Inc()
		s.sessions.open.Add(-1)
	}
	if resp.err != nil {
		if errors.Is(resp.err, core.ErrCanceled) || errors.Is(resp.err, ErrSessionMigrating) {
			// The request deadline aborted the drain mid-flight, or the
			// drain raced a migration freeze. Either way the session is
			// still live (here or, after the flip, on the new owner) and
			// the drain can be retried — purging it would drop a shard a
			// migration still references.
			s.writeAPIError(w, resp.err, http.StatusInternalServerError)
			return
		}
		// Nothing was ever submitted (or the drain failed): purge and
		// report.
		s.sessions.remove(sh.id)
		writeError(w, http.StatusConflict, "drain %s: %v", sh.id, resp.err)
		return
	}
	writeJSON(w, http.StatusOK, drainResponse(sh.id, resp.result))
}

// DrainSummary describes one session drained during shutdown.
type DrainSummary struct {
	ID    string
	Tasks int
	Cost  float64
	Err   error
}

// DrainAll drains every live session, in ID order, and returns one
// summary per session that had work. It is the graceful-shutdown path:
// pending virtual-time work is completed (tasks are never dropped),
// tombstones stay readable until the process exits. It implies
// BeginDrain, so the planes refuse new work with 503 while it runs.
func (s *Server) DrainAll(ctx context.Context) []DrainSummary {
	s.BeginDrain()
	var out []DrainSummary
	for _, sh := range s.sessions.all() {
		st, err := sh.do(ctx, shardReq{op: opStatus})
		if err == nil && st.drained {
			continue
		}
		resp, err := sh.do(ctx, shardReq{op: opDrain})
		if err != nil {
			out = append(out, DrainSummary{ID: sh.id, Err: err})
			continue
		}
		if resp.first {
			s.sessions.drained.Inc()
			s.sessions.open.Add(-1)
		}
		if resp.err != nil {
			// An empty session has nothing to report.
			if resp.submitted > 0 {
				out = append(out, DrainSummary{ID: sh.id, Err: resp.err})
			}
			continue
		}
		out = append(out, DrainSummary{ID: sh.id, Tasks: len(resp.result.Tasks), Cost: resp.result.TotalCost})
	}
	return out
}
