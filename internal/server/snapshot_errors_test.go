package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"dvfsched/internal/sim"
	"dvfsched/internal/trace"
)

// TestSnapshotUnknownSession: a snapshot of a session that never
// existed is a clean 404, not a hang or a 500.
func TestSnapshotUnknownSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := getRaw(t, ts.URL+"/v1/sessions/no-such-session/snapshot")
	if code != http.StatusNotFound {
		t.Fatalf("snapshot of unknown session: status %d, body %s", code, body)
	}
}

// TestSnapshotWhileServerDraining: once BeginDrain flips the server
// into shutdown, snapshots shed with 503 before touching the shard —
// they would otherwise race the drain loop's tombstones.
func TestSnapshotWhileServerDraining(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL)
	submitOver(t, ts.URL, id, []trace.Record{{ID: 1, Cycles: 1, Arrival: 0}}, false)
	srv.BeginDrain()
	code, body, _ := getRaw(t, ts.URL+"/v1/sessions/"+id+"/snapshot")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("snapshot while draining: status %d, body %s", code, body)
	}
}

// TestSnapshotDrainedSession: a drained session keeps its trace but
// has no live engine to checkpoint; the snapshot endpoint must say so
// with 409, and a purged session with 404.
func TestSnapshotDrainedSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL)
	submitOver(t, ts.URL, id, []trace.Record{{ID: 1, Cycles: 1, Arrival: 0}}, false)
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusOK {
		t.Fatalf("drain: status %d", code)
	}
	code, body, _ := getRaw(t, ts.URL+"/v1/sessions/"+id+"/snapshot")
	if code != http.StatusConflict {
		t.Fatalf("snapshot of drained session: status %d, body %s", code, body)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusNoContent {
		t.Fatalf("purge: status %d", code)
	}
	code, body, _ = getRaw(t, ts.URL+"/v1/sessions/"+id+"/snapshot")
	if code != http.StatusNotFound {
		t.Fatalf("snapshot of purged session: status %d, body %s", code, body)
	}
}

// TestSnapshotRacesDelete hammers the snapshot endpoint while a DELETE
// drains the same shard. Every response must be clean: a 200 carrying
// a decodable checkpoint (taken before the drain won), or 409/404 once
// the tombstone landed — never a 5xx, never a torn blob. Meaningful
// under -race.
func TestSnapshotRacesDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL)
	recs := make([]trace.Record, 40)
	for i := range recs {
		recs[i] = trace.Record{ID: i + 1, Cycles: 3, Arrival: float64(i) * 0.1}
	}
	submitOver(t, ts.URL, id, recs, false)

	const snapshotters = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, snapshotters*16)
	for g := 0; g < snapshotters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			sawDrained := false
			for i := 0; i < 16 && !sawDrained; i++ {
				code, body, _ := getRaw(t, ts.URL+"/v1/sessions/"+id+"/snapshot")
				switch code {
				case http.StatusOK:
					if _, err := sim.UnmarshalCheckpoint(body); err != nil {
						errs <- fmt.Errorf("200 snapshot does not decode: %v", err)
						return
					}
				case http.StatusConflict, http.StatusNotFound:
					sawDrained = true // drain won; all later calls agree
				default:
					errs <- fmt.Errorf("snapshot racing delete: status %d, body %s", code, body)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusOK {
			errs <- fmt.Errorf("drain racing snapshots: status %d", code)
		}
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
