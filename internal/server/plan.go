package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
)

// planJob is one queued planning request.
type planJob struct {
	ctx    context.Context
	key    string
	params model.CostParams
	plat   *platform.Platform
	tasks  model.TaskSet
	reply  chan planReply
}

type planReply struct {
	resp PlanResponse
	err  error
}

// planCacheEntry is one cached plan: the response struct (for the
// compute path) plus the fully pre-encoded cache-hit HTTP body
// ("cached":true, trailing newline included), so the hit path writes
// stored bytes without touching an encoder.
type planCacheEntry struct {
	resp PlanResponse
	hit  []byte
}

// planner is the stateless planning plane: a bounded queue feeding a
// fixed worker pool, fronted by a striped LRU result cache. Queue
// overflow is surfaced to callers as backpressure (HTTP 429), never as
// unbounded memory growth.
type planner struct {
	queue chan planJob
	cache *stripedCache

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup

	plans      *obs.Counter
	aborts     *obs.Counter
	hits       *obs.Counter
	misses     *obs.Counter
	queueDepth *obs.Gauge

	// onComputeStart, when set by a test, runs on the worker goroutine
	// just before planning begins, receiving the job's context — the
	// hook cancellation tests use to hold a plan verifiably in flight
	// until the request is canceled.
	onComputeStart func(ctx context.Context)
}

// newPlanner starts workers goroutines over a queue of the given
// depth. A negative worker count starts none — jobs then queue until
// they are shed, which tests use to exercise backpressure.
func newPlanner(workers, queueDepth, cacheSize int, reg *obs.Registry) *planner {
	if workers < 0 {
		workers = 0
	}
	p := &planner{
		queue:      make(chan planJob, queueDepth),
		cache:      newStripedCache(cacheSize),
		closed:     make(chan struct{}),
		plans:      reg.Counter(obs.ServerPlans),
		aborts:     reg.Counter(obs.ServerPlansAborted),
		hits:       reg.Counter(obs.ServerPlanCacheHits),
		misses:     reg.Counter(obs.ServerPlanCacheMisses),
		queueDepth: reg.Gauge(obs.ServerPlanQueueDepth),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// close stops accepting work and waits for in-flight plans to finish.
func (p *planner) close() {
	p.closeOnce.Do(func() { close(p.closed) })
	p.wg.Wait()
}

func (p *planner) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.closed:
			return
		case job := <-p.queue:
			p.queueDepth.Set(float64(len(p.queue)))
			resp, err := p.compute(job)
			select {
			case job.reply <- planReply{resp: resp, err: err}:
			case <-job.ctx.Done():
			}
		}
	}
}

// compute runs the batch planner through the core facade and shapes
// the wire response.
func (p *planner) compute(job planJob) (PlanResponse, error) {
	if p.onComputeStart != nil {
		p.onComputeStart(job.ctx)
	}
	sched, err := core.New(job.params, job.plat)
	if err != nil {
		return PlanResponse{}, err
	}
	plan, err := sched.PlanBatch(job.ctx, job.tasks)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			p.aborts.Inc()
		}
		return PlanResponse{}, err
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		return PlanResponse{}, err
	}
	// Store the plan document compact: it is embedded verbatim by the
	// append framing, and re-indenting it per response would undo the
	// zero-alloc path.
	var compact bytes.Buffer
	if err := json.Compact(&compact, buf.Bytes()); err != nil {
		return PlanResponse{}, err
	}
	eCost, tCost, total := plan.Cost()
	joules, makespan, turnaround := plan.EnergyTime()
	resp := PlanResponse{
		Plan:           compact.Bytes(),
		EnergyCost:     eCost,
		TimeCost:       tCost,
		TotalCost:      total,
		Joules:         joules,
		MakespanS:      makespan,
		TurnaroundSumS: turnaround,
	}
	p.plans.Inc()
	hit := resp
	hit.Cached = true
	p.cache.put(job.key, &planCacheEntry{
		resp: resp,
		hit:  append(appendPlanResponse(nil, hit), '\n'),
	})
	return resp, nil
}

// handlePlan is POST /v1/plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeAPIError(w, ErrDraining, http.StatusServiceUnavailable)
		return
	}
	var req PlanRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, params, plat, err := req.PlatformSpec.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tasks, err := tasksFromRecords(req.Tasks)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Canonicalize: WBG is invariant to input order (it sorts by
	// cycles), so hash and plan a by-ID ordering and identical
	// workloads in any order share a cache slot. tasksFromRecords built
	// a fresh slice, so sorting in place clones nothing.
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].ID < tasks[j].ID })
	key := planKey(spec, tasks)

	if v, ok := s.planner.cache.get(key); ok {
		s.planner.hits.Inc()
		// The entry carries its pre-encoded body: a cache hit performs
		// zero JSON work.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		//dvfslint:allow errcheck-hot header already sent; nothing useful to do on error
		_, _ = w.Write(v.(*planCacheEntry).hit)
		return
	}
	s.planner.misses.Inc()

	job := planJob{
		ctx:    r.Context(),
		key:    key,
		params: params,
		plat:   plat,
		tasks:  tasks,
		reply:  make(chan planReply, 1),
	}
	select {
	case s.planner.queue <- job:
		s.planner.queueDepth.Set(float64(len(s.planner.queue)))
	case <-s.planner.closed:
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	default:
		s.writeAPIError(w, fmt.Errorf("%w: plan queue full (%d queued)", ErrBusy, cap(s.planner.queue)), http.StatusTooManyRequests)
		return
	}
	select {
	case rep := <-job.reply:
		if rep.err != nil {
			s.writeAPIError(w, rep.err, http.StatusBadRequest)
			return
		}
		writePlanResponse(w, rep.resp)
	case <-s.planner.closed:
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request cancelled or timed out")
	}
}

// keyBufPool recycles the canonical-workload buffers planKey hashes.
var keyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1<<10)
		return &b
	},
}

// planKey hashes the canonical workload: platform spec plus every task
// field the planner reads, all floats as exact IEEE bits. Identical
// requests — and only identical requests — share a key. The canonical
// bytes are assembled in a pooled buffer and digested with the
// one-shot sha256.Sum256 (stack-allocated state), so the only
// allocation left is the returned key string itself.
func planKey(spec PlatformSpec, tasks model.TaskSet) string {
	bp := keyBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, spec.Platform...)
	b = append(b, 0)
	b = appendKeyU64(b, uint64(int64(spec.Cores)))
	b = appendKeyU64(b, math.Float64bits(spec.Re))
	b = appendKeyU64(b, math.Float64bits(spec.Rt))
	for _, t := range tasks {
		b = appendKeyU64(b, uint64(int64(t.ID)))
		b = append(b, t.Name...)
		b = append(b, 0)
		b = appendKeyU64(b, math.Float64bits(t.Cycles))
	}
	sum := sha256.Sum256(b)
	*bp = b[:0]
	keyBufPool.Put(bp)
	var dst [2 * sha256.Size]byte
	hex.Encode(dst[:], sum[:])
	return string(dst[:])
}

// appendKeyU64 appends v little-endian, matching the layout the
// streaming hasher used so keys stay stable across the refactor.
func appendKeyU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
