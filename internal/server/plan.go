package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
)

// planJob is one queued planning request.
type planJob struct {
	ctx    context.Context
	key    string
	params model.CostParams
	plat   *platform.Platform
	tasks  model.TaskSet
	reply  chan planReply
}

type planReply struct {
	resp PlanResponse
	err  error
}

// planner is the stateless planning plane: a bounded queue feeding a
// fixed worker pool, fronted by an LRU result cache. Queue overflow is
// surfaced to callers as backpressure (HTTP 429), never as unbounded
// memory growth.
type planner struct {
	queue chan planJob
	cache *lruCache

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup

	plans      *obs.Counter
	aborts     *obs.Counter
	hits       *obs.Counter
	misses     *obs.Counter
	queueDepth *obs.Gauge

	// onComputeStart, when set by a test, runs on the worker goroutine
	// just before planning begins, receiving the job's context — the
	// hook cancellation tests use to hold a plan verifiably in flight
	// until the request is canceled.
	onComputeStart func(ctx context.Context)
}

// newPlanner starts workers goroutines over a queue of the given
// depth. A negative worker count starts none — jobs then queue until
// they are shed, which tests use to exercise backpressure.
func newPlanner(workers, queueDepth, cacheSize int, reg *obs.Registry) *planner {
	if workers < 0 {
		workers = 0
	}
	p := &planner{
		queue:      make(chan planJob, queueDepth),
		cache:      newLRUCache(cacheSize),
		closed:     make(chan struct{}),
		plans:      reg.Counter(obs.ServerPlans),
		aborts:     reg.Counter(obs.ServerPlansAborted),
		hits:       reg.Counter(obs.ServerPlanCacheHits),
		misses:     reg.Counter(obs.ServerPlanCacheMisses),
		queueDepth: reg.Gauge(obs.ServerPlanQueueDepth),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// close stops accepting work and waits for in-flight plans to finish.
func (p *planner) close() {
	p.closeOnce.Do(func() { close(p.closed) })
	p.wg.Wait()
}

func (p *planner) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.closed:
			return
		case job := <-p.queue:
			p.queueDepth.Set(float64(len(p.queue)))
			resp, err := p.compute(job)
			select {
			case job.reply <- planReply{resp: resp, err: err}:
			case <-job.ctx.Done():
			}
		}
	}
}

// compute runs the batch planner through the core facade and shapes
// the wire response.
func (p *planner) compute(job planJob) (PlanResponse, error) {
	if p.onComputeStart != nil {
		p.onComputeStart(job.ctx)
	}
	sched, err := core.New(job.params, job.plat)
	if err != nil {
		return PlanResponse{}, err
	}
	plan, err := sched.PlanBatch(job.ctx, job.tasks)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			p.aborts.Inc()
		}
		return PlanResponse{}, err
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		return PlanResponse{}, err
	}
	eCost, tCost, total := plan.Cost()
	joules, makespan, turnaround := plan.EnergyTime()
	resp := PlanResponse{
		Plan:           bytes.TrimSpace(buf.Bytes()),
		EnergyCost:     eCost,
		TimeCost:       tCost,
		TotalCost:      total,
		Joules:         joules,
		MakespanS:      makespan,
		TurnaroundSumS: turnaround,
	}
	p.plans.Inc()
	p.cache.put(job.key, resp)
	return resp, nil
}

// handlePlan is POST /v1/plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeAPIError(w, ErrDraining, http.StatusServiceUnavailable)
		return
	}
	var req PlanRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, params, plat, err := req.PlatformSpec.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tasks, err := tasksFromRecords(req.Tasks)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Canonicalize: WBG is invariant to input order (it sorts by
	// cycles), so hash and plan a by-ID ordering and identical
	// workloads in any order share a cache slot.
	tasks = tasks.Clone()
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].ID < tasks[j].ID })
	key := planKey(spec, tasks)

	if v, ok := s.planner.cache.get(key); ok {
		s.planner.hits.Inc()
		resp := v.(PlanResponse)
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.planner.misses.Inc()

	job := planJob{
		ctx:    r.Context(),
		key:    key,
		params: params,
		plat:   plat,
		tasks:  tasks,
		reply:  make(chan planReply, 1),
	}
	select {
	case s.planner.queue <- job:
		s.planner.queueDepth.Set(float64(len(s.planner.queue)))
	case <-s.planner.closed:
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	default:
		s.writeAPIError(w, fmt.Errorf("%w: plan queue full (%d queued)", ErrBusy, cap(s.planner.queue)), http.StatusTooManyRequests)
		return
	}
	select {
	case rep := <-job.reply:
		if rep.err != nil {
			s.writeAPIError(w, rep.err, http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, rep.resp)
	case <-s.planner.closed:
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request cancelled or timed out")
	}
}

// planKey hashes the canonical workload: platform spec plus every task
// field the planner reads, all floats as exact IEEE bits. Identical
// requests — and only identical requests — share a key.
func planKey(spec PlatformSpec, tasks model.TaskSet) string {
	h := sha256.New()
	put := func(b []byte) {
		//dvfslint:allow errcheck-hot hash.Hash.Write is documented to never return an error
		h.Write(b)
	}
	var scratch [8]byte
	writeF := func(f float64) {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(f))
		put(scratch[:])
	}
	writeI := func(i int) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(int64(i)))
		put(scratch[:])
	}
	put([]byte(spec.Platform))
	put([]byte{0})
	writeI(spec.Cores)
	writeF(spec.Re)
	writeF(spec.Rt)
	for _, t := range tasks {
		writeI(t.ID)
		put([]byte(t.Name))
		put([]byte{0})
		writeF(t.Cycles)
	}
	return hex.EncodeToString(h.Sum(nil))
}
