package server

import (
	"context"
	"errors"
	"fmt"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

// shardOp selects the operation a shardReq carries.
type shardOp int

const (
	opSubmit shardOp = iota
	opStatus
	opDrain
	opPurge
)

// shardReq is one message on a shard's request channel. ctx is the
// originating request's context: the shard goroutine threads it into
// Submit and Drain so an HTTP deadline cancels the virtual-time
// advance it is paying for.
type shardReq struct {
	op    shardOp
	ctx   context.Context
	tasks model.TaskSet
	reply chan shardResp
}

// shardResp is the shard goroutine's answer.
type shardResp struct {
	err       error
	clock     float64
	pending   int
	submitted int
	drained   bool
	// first marks the opDrain reply that actually performed the drain,
	// so lifecycle counters fire exactly once per session.
	first  bool
	result *sim.Result
}

// shard is one online session: a core.OnlineSession owned by a single
// goroutine, reachable only through a bounded request channel. The
// channel is the shard's concurrency story — the virtual-time engine
// itself never sees more than one caller.
type shard struct {
	id   string
	spec PlatformSpec
	// rec records the session's event stream; obs.Recorder is
	// internally locked, so the events endpoint reads it without a
	// round-trip through the goroutine.
	rec  *obs.Recorder
	reqs chan shardReq
	// dead is closed when the goroutine exits (purge), so callers
	// blocked on enqueue or reply fail fast instead of hanging.
	dead chan struct{}
}

// newShard builds the session's scheduler (sink and, when parallel >=
// 2, a candidate-evaluation pool wired through options), opens the
// session and starts its goroutine. queueDepth bounds the number of
// in-flight requests; overflow is reported to the caller as
// backpressure.
func newShard(id string, spec PlatformSpec, params model.CostParams, plat *platform.Platform, queueDepth, parallel int) (*shard, error) {
	rec := &obs.Recorder{}
	opts := []core.Option{core.WithSink(rec)}
	if parallel >= 2 {
		opts = append(opts, core.WithParallelism(parallel))
	}
	sched, err := core.New(params, plat, opts...)
	if err != nil {
		return nil, err
	}
	sess, err := sched.OpenOnline(context.Background())
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:   id,
		spec: spec,
		rec:  rec,
		reqs: make(chan shardReq, queueDepth),
		dead: make(chan struct{}),
	}
	go sh.loop(sess)
	return sh, nil
}

// loop is the shard goroutine: it serializes every touch of the
// session and retains the drained result as a tombstone so the trace
// and final report stay readable until the shard is purged. On exit it
// releases the session's evaluation pool (idempotent after a drain),
// so purging an undrained shard never leaks pool goroutines.
func (sh *shard) loop(sess *core.OnlineSession) {
	defer close(sh.dead)
	defer sess.Close()
	var (
		submitted int
		final     *sim.Result
		finalErr  error
	)
	for req := range sh.reqs {
		var resp shardResp
		switch req.op {
		case opSubmit:
			if final != nil || finalErr != nil {
				resp.err = fmt.Errorf("%w: %s", ErrSessionDrained, sh.id)
				break
			}
			if err := sess.Submit(req.ctx, req.tasks); err != nil {
				resp.err = err
				break
			}
			submitted += len(req.tasks)
			resp.clock, resp.pending, resp.submitted = sess.Clock(), sess.Pending(), submitted
		case opStatus:
			resp.submitted = submitted
			if final != nil {
				resp.drained = true
				resp.clock, resp.pending = final.Makespan, 0
			} else {
				resp.clock, resp.pending = sess.Clock(), sess.Pending()
			}
		case opDrain:
			if final == nil && finalErr == nil {
				res, err := sess.Drain(req.ctx)
				if err != nil && errors.Is(err, core.ErrCanceled) {
					// A canceled drain is retryable: the engine stopped at
					// an event boundary and stays consistent, so don't
					// tombstone the session.
					resp.err = err
					resp.submitted = submitted
					break
				}
				final, finalErr = res, err
				resp.first = true
			}
			resp.result, resp.err, resp.drained = final, finalErr, true
			resp.submitted = submitted
			if final != nil {
				resp.clock = final.Makespan
			}
		case opPurge:
			req.reply <- shardResp{}
			return
		}
		req.reply <- resp
	}
}

// do sends a request to the shard goroutine and waits for its reply,
// honoring context cancellation and shard death. A full request queue
// returns ErrBusy immediately (backpressure at the HTTP layer).
func (sh *shard) do(ctx context.Context, req shardReq) (shardResp, error) {
	req.ctx = ctx
	req.reply = make(chan shardResp, 1)
	select {
	case sh.reqs <- req:
	case <-sh.dead:
		return shardResp{}, fmt.Errorf("%w: %s", ErrSessionGone, sh.id)
	case <-ctx.Done():
		return shardResp{}, ctx.Err()
	default:
		return shardResp{}, fmt.Errorf("%w: session %s", ErrBusy, sh.id)
	}
	select {
	case resp := <-req.reply:
		return resp, nil
	case <-sh.dead:
		return shardResp{}, fmt.Errorf("%w: %s", ErrSessionGone, sh.id)
	case <-ctx.Done():
		return shardResp{}, ctx.Err()
	}
}

// purge asks the goroutine to exit; pending callers observe dead.
func (sh *shard) purge() {
	select {
	case sh.reqs <- shardReq{op: opPurge, reply: make(chan shardResp, 1)}:
	case <-sh.dead:
	}
}
