package server

import (
	"context"
	"fmt"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/sim"
)

// shardOp selects the operation a shardReq carries.
type shardOp int

const (
	opSubmit shardOp = iota
	opStatus
	opDrain
	opPurge
)

// shardReq is one message on a shard's request channel.
type shardReq struct {
	op    shardOp
	tasks model.TaskSet
	reply chan shardResp
}

// shardResp is the shard goroutine's answer.
type shardResp struct {
	err       error
	clock     float64
	pending   int
	submitted int
	drained   bool
	// first marks the opDrain reply that actually performed the drain,
	// so lifecycle counters fire exactly once per session.
	first  bool
	result *sim.Result
}

// shard is one online session: a core.OnlineSession owned by a single
// goroutine, reachable only through a bounded request channel. The
// channel is the shard's concurrency story — the virtual-time engine
// itself never sees more than one caller.
type shard struct {
	id   string
	spec PlatformSpec
	// rec records the session's event stream; obs.Recorder is
	// internally locked, so the events endpoint reads it without a
	// round-trip through the goroutine.
	rec  *obs.Recorder
	reqs chan shardReq
	// dead is closed when the goroutine exits (purge), so callers
	// blocked on enqueue or reply fail fast instead of hanging.
	dead chan struct{}
}

// newShard opens the session and starts its goroutine. queueDepth
// bounds the number of in-flight requests; overflow is reported to the
// caller as backpressure.
func newShard(id string, spec PlatformSpec, sched *core.Scheduler, queueDepth int) (*shard, error) {
	rec := &obs.Recorder{}
	sched.Sink = rec
	sess, err := sched.OpenOnline()
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:   id,
		spec: spec,
		rec:  rec,
		reqs: make(chan shardReq, queueDepth),
		dead: make(chan struct{}),
	}
	go sh.loop(sess)
	return sh, nil
}

// loop is the shard goroutine: it serializes every touch of the
// session and retains the drained result as a tombstone so the trace
// and final report stay readable until the shard is purged.
func (sh *shard) loop(sess *core.OnlineSession) {
	defer close(sh.dead)
	var (
		submitted int
		final     *sim.Result
		finalErr  error
	)
	for req := range sh.reqs {
		var resp shardResp
		switch req.op {
		case opSubmit:
			if final != nil || finalErr != nil {
				resp.err = fmt.Errorf("session %s already drained", sh.id)
				break
			}
			if err := sess.Submit(req.tasks); err != nil {
				resp.err = err
				break
			}
			submitted += len(req.tasks)
			resp.clock, resp.pending, resp.submitted = sess.Clock(), sess.Pending(), submitted
		case opStatus:
			resp.submitted = submitted
			if final != nil {
				resp.drained = true
				resp.clock, resp.pending = final.Makespan, 0
			} else {
				resp.clock, resp.pending = sess.Clock(), sess.Pending()
			}
		case opDrain:
			if final == nil && finalErr == nil {
				final, finalErr = sess.Drain()
				resp.first = true
			}
			resp.result, resp.err, resp.drained = final, finalErr, true
			resp.submitted = submitted
			if final != nil {
				resp.clock = final.Makespan
			}
		case opPurge:
			req.reply <- shardResp{}
			return
		}
		req.reply <- resp
	}
}

// do sends a request to the shard goroutine and waits for its reply,
// honoring context cancellation and shard death. A full request queue
// returns errBusy immediately (429 backpressure at the HTTP layer).
func (sh *shard) do(ctx context.Context, req shardReq) (shardResp, error) {
	req.reply = make(chan shardResp, 1)
	select {
	case sh.reqs <- req:
	case <-sh.dead:
		return shardResp{}, errGone
	case <-ctx.Done():
		return shardResp{}, ctx.Err()
	default:
		return shardResp{}, errBusy
	}
	select {
	case resp := <-req.reply:
		return resp, nil
	case <-sh.dead:
		return shardResp{}, errGone
	case <-ctx.Done():
		return shardResp{}, ctx.Err()
	}
}

// purge asks the goroutine to exit; pending callers observe dead.
func (sh *shard) purge() {
	select {
	case sh.reqs <- shardReq{op: opPurge, reply: make(chan shardResp, 1)}:
	case <-sh.dead:
	}
}

var (
	errBusy = fmt.Errorf("session queue full; retry later")
	errGone = fmt.Errorf("session is gone")
)
