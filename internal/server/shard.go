package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

// shardOp selects the operation a shardReq carries. Submissions do not
// travel this channel: they go through the group-commit intake so
// concurrent submitters coalesce (see shard.submit).
type shardOp int

const (
	opStatus shardOp = iota
	opDrain
	opSnapshot
	opPurge
	// opHandoff freezes the shard for a planned migration: it snapshots
	// the session at the group-commit boundary the flush just closed and
	// fences every subsequent mutation (submit, drain, snapshot) with
	// ErrSessionMigrating until opUnfreeze or opPurge.
	opHandoff
	// opUnfreeze lifts a handoff freeze after a failed ship, resuming
	// normal service on the still-authoritative owner.
	opUnfreeze
)

// shardReq is one control-plane message on a shard's request channel.
// ctx is the originating request's context: the shard goroutine
// threads it into Drain so an HTTP deadline cancels the virtual-time
// advance it is paying for.
type shardReq struct {
	op    shardOp
	ctx   context.Context
	reply chan shardResp
}

// shardResp is the shard goroutine's answer.
type shardResp struct {
	err       error
	clock     float64
	pending   int
	submitted int
	drained   bool
	// first marks the opDrain reply that actually performed the drain,
	// so lifecycle counters fire exactly once per session.
	first  bool
	result *sim.Result
	// snapshot is the opSnapshot reply payload: a serialized session
	// checkpoint.
	snapshot []byte
}

// submitReq is one submission waiting in a shard's intake ring. The
// reply channel has capacity 1 so the leader never blocks answering.
// Requests are pooled: ONLY the submitter that received its reply may
// return a request to the pool — a submitter that gave up (context
// canceled, shard died) must leave its request to the garbage
// collector, because the leader may still be holding it.
type submitReq struct {
	ctx   context.Context
	tasks model.TaskSet
	clamp bool
	reply chan shardResp
}

var submitReqPool = sync.Pool{
	New: func() any { return &submitReq{reply: make(chan shardResp, 1)} },
}

// shard is one online session: a core.OnlineSession owned by a single
// goroutine. Control operations (status, drain, purge) arrive on a
// bounded request channel; submissions arrive through a mutex-guarded
// intake slice that the goroutine drains a whole batch at a time —
// group-commit admission. Concurrent submitters pay one lock
// acquisition and one goroutine wakeup per *batch* instead of one
// channel round trip per request, while the engine itself still sees
// one caller: the leader applies each submission individually, in
// intake order, so the schedule is byte-identical to the same
// submissions arriving serially in that order.
type shard struct {
	id   string
	spec PlatformSpec
	// rec records the session's event stream; obs.Recorder is
	// internally locked, so the events endpoint reads it without a
	// round-trip through the goroutine.
	rec  *obs.Recorder
	reqs chan shardReq
	// dead is closed when the goroutine exits (purge), so callers
	// blocked on enqueue or reply fail fast instead of hanging.
	dead chan struct{}

	// mu guards intake, the bounded submission ring. intakeCap bounds
	// it; overflow is ErrBusy backpressure, exactly like a full request
	// channel. kick (capacity 1) wakes the leader; one pending wakeup
	// is enough because the leader always drains the whole intake.
	mu        sync.Mutex
	intake    []*submitReq
	intakeCap int
	kick      chan struct{}

	// spare is the leader-owned second buffer: intake and spare
	// ping-pong so steady-state admission never allocates. Only the
	// shard goroutine touches spare.
	spare []*submitReq

	// batchSize observes how many submissions each flush admitted.
	batchSize *obs.Histogram
}

// shardState is the loop-private session lifecycle: how many tasks
// were accepted, and the drain tombstone.
type shardState struct {
	submitted int
	final     *sim.Result
	finalErr  error
	// frozen marks a handoff in progress: mutations are fenced with
	// ErrSessionMigrating so a submit racing the migration cannot land
	// on a state that has already been shipped (exactly-once across the
	// ownership flip). Only opUnfreeze clears it; opPurge retires the
	// shard without clearing.
	frozen bool
}

// newShard builds the session's scheduler (sink and, when parallel >=
// 2, a candidate-evaluation pool wired through options), opens the
// session and starts its goroutine. queueDepth bounds both the intake
// ring and the control channel; overflow is reported to the caller as
// backpressure.
func newShard(id string, spec PlatformSpec, params model.CostParams, plat *platform.Platform, queueDepth, parallel int, batchSize *obs.Histogram) (*shard, error) {
	rec := &obs.Recorder{}
	opts := []core.Option{core.WithSink(rec)}
	if parallel >= 2 {
		opts = append(opts, core.WithParallelism(parallel))
	}
	sched, err := core.New(params, plat, opts...)
	if err != nil {
		return nil, err
	}
	sess, err := sched.OpenOnline(context.Background())
	if err != nil {
		return nil, err
	}
	return startShard(id, spec, rec, sess, queueDepth, batchSize, 0), nil
}

// startShard wires an already-open session into a shard and starts its
// goroutine. newShard uses it for fresh sessions; the cluster adoption
// path (Server.AdoptSession) uses it directly with a session rebuilt
// from a replicated checkpoint + log, carrying the task count the dead
// owner had already accepted.
func startShard(id string, spec PlatformSpec, rec *obs.Recorder, sess *core.OnlineSession, queueDepth int, batchSize *obs.Histogram, submitted int) *shard {
	sh := &shard{
		id:        id,
		spec:      spec,
		rec:       rec,
		reqs:      make(chan shardReq, queueDepth),
		dead:      make(chan struct{}),
		intake:    make([]*submitReq, 0, queueDepth),
		intakeCap: queueDepth,
		kick:      make(chan struct{}, 1),
		spare:     make([]*submitReq, 0, queueDepth),
		batchSize: batchSize,
	}
	//dvfslint:allow goroleak the loop exits on the opPurge control op, delivered over reqs by the registry
	go sh.loop(sess, shardState{submitted: submitted})
	return sh
}

// loop is the shard goroutine: it serializes every touch of the
// session and retains the drained result as a tombstone so the trace
// and final report stay readable until the shard is purged. On exit it
// releases the session's evaluation pool (idempotent after a drain),
// so purging an undrained shard never leaks pool goroutines.
//
// Submissions queued in the intake are flushed before any control
// operation is answered, so a drain observes every submission that
// beat it into the shard and a status reply reflects them.
func (sh *shard) loop(sess *core.OnlineSession, st shardState) {
	defer close(sh.dead)
	defer sess.Close()
	for {
		select {
		case <-sh.kick:
			sh.flushIntake(sess, &st)
		case req := <-sh.reqs:
			sh.flushIntake(sess, &st)
			var resp shardResp
			switch req.op {
			case opStatus:
				resp.submitted = st.submitted
				if st.final != nil {
					resp.drained = true
					resp.clock, resp.pending = st.final.Makespan, 0
				} else {
					resp.clock, resp.pending = sess.Clock(), sess.Pending()
				}
			case opDrain:
				if st.frozen {
					resp.err = fmt.Errorf("%w: %s", ErrSessionMigrating, sh.id)
					break
				}
				if st.final == nil && st.finalErr == nil {
					res, err := sess.Drain(req.ctx)
					if err != nil && errors.Is(err, core.ErrCanceled) {
						// A canceled drain is retryable: the engine stopped at
						// an event boundary and stays consistent, so don't
						// tombstone the session.
						resp.err = err
						resp.submitted = st.submitted
						break
					}
					st.final, st.finalErr = res, err
					resp.first = true
				}
				resp.result, resp.err, resp.drained = st.final, st.finalErr, true
				resp.submitted = st.submitted
				if st.final != nil {
					resp.clock = st.final.Makespan
				}
			case opSnapshot:
				// Landing here means the intake was flushed: a snapshot
				// can observe a whole group-committed batch or none of it,
				// never a prefix.
				if st.frozen {
					resp.err = fmt.Errorf("%w: %s", ErrSessionMigrating, sh.id)
					break
				}
				if st.final != nil || st.finalErr != nil {
					resp.err = fmt.Errorf("%w: %s", ErrSessionDrained, sh.id)
					break
				}
				resp.snapshot, resp.err = sess.Snapshot()
				resp.clock, resp.pending, resp.submitted = sess.Clock(), sess.Pending(), st.submitted
			case opHandoff:
				// The flush above closed a group-commit batch, so the
				// handoff checkpoint observes whole batches only; any
				// submission arriving after this point is fenced by the
				// frozen flag and retried by the client against the new
				// owner.
				if st.frozen {
					resp.err = fmt.Errorf("%w: %s", ErrSessionMigrating, sh.id)
					break
				}
				if st.final != nil || st.finalErr != nil {
					resp.err = fmt.Errorf("%w: %s", ErrSessionDrained, sh.id)
					break
				}
				resp.snapshot, resp.err = sess.Snapshot()
				if resp.err == nil {
					st.frozen = true
				}
				resp.clock, resp.pending, resp.submitted = sess.Clock(), sess.Pending(), st.submitted
			case opUnfreeze:
				st.frozen = false
				resp.submitted = st.submitted
			case opPurge:
				req.reply <- shardResp{}
				return
			}
			req.reply <- resp
		}
	}
}

// flushIntake is the group commit: swap the intake out under the lock,
// then apply every queued submission in intake order — the order
// submitters won the lock, which becomes the batch's definitive
// arrival sequence — replying to each as it lands. Replies go to
// capacity-1 channels, so a departed submitter never blocks the
// leader.
func (sh *shard) flushIntake(sess *core.OnlineSession, st *shardState) {
	sh.mu.Lock()
	batch := sh.intake
	sh.intake = sh.spare[:0]
	sh.mu.Unlock()
	if len(batch) == 0 {
		sh.spare = batch
		return
	}
	if sh.batchSize != nil {
		sh.batchSize.Observe(float64(len(batch)))
	}
	for _, req := range batch {
		req.reply <- sh.admitOne(sess, st, req)
	}
	for i := range batch {
		batch[i] = nil
	}
	sh.spare = batch[:0]
}

// admitOne applies a single submission to the session: the same
// semantics a dedicated per-request channel round trip had, so
// coalescing is invisible to correctness.
func (sh *shard) admitOne(sess *core.OnlineSession, st *shardState, req *submitReq) shardResp {
	var resp shardResp
	if st.frozen {
		resp.err = fmt.Errorf("%w: %s", ErrSessionMigrating, sh.id)
		return resp
	}
	if st.final != nil || st.finalErr != nil {
		resp.err = fmt.Errorf("%w: %s", ErrSessionDrained, sh.id)
		return resp
	}
	var err error
	if req.clamp {
		err = sess.Admit(req.ctx, req.tasks)
	} else {
		err = sess.Submit(req.ctx, req.tasks)
	}
	if err != nil {
		resp.err = err
		return resp
	}
	st.submitted += len(req.tasks)
	resp.clock, resp.pending, resp.submitted = sess.Clock(), sess.Pending(), st.submitted
	return resp
}

// submit enqueues a submission into the intake ring and waits for the
// leader's reply, honoring context cancellation and shard death. A
// full intake returns ErrBusy immediately (backpressure at the HTTP
// layer). clamp selects Admit (stale arrivals clamped to the clock)
// over Submit (stale arrivals rejected).
func (sh *shard) submit(ctx context.Context, tasks model.TaskSet, clamp bool) (shardResp, error) {
	req := submitReqPool.Get().(*submitReq)
	req.ctx, req.tasks, req.clamp = ctx, tasks, clamp
	sh.mu.Lock()
	if len(sh.intake) >= sh.intakeCap {
		sh.mu.Unlock()
		req.ctx, req.tasks = nil, nil
		submitReqPool.Put(req)
		return shardResp{}, fmt.Errorf("%w: session %s", ErrBusy, sh.id)
	}
	sh.intake = append(sh.intake, req)
	sh.mu.Unlock()
	select {
	case sh.kick <- struct{}{}:
	default: // a wakeup is already pending; the leader drains everything
	}
	select {
	case resp := <-req.reply:
		req.ctx, req.tasks = nil, nil
		//dvfslint:allow poolcheck the reply above hands the req back: the loop never touches it after replying (receiver-only Put)
		submitReqPool.Put(req)
		return resp, nil
	case <-sh.dead:
		return shardResp{}, fmt.Errorf("%w: %s", ErrSessionGone, sh.id)
	case <-ctx.Done():
		return shardResp{}, ctx.Err()
	}
}

// do sends a control request to the shard goroutine and waits for its
// reply, honoring context cancellation and shard death. A full request
// queue returns ErrBusy immediately (backpressure at the HTTP layer).
func (sh *shard) do(ctx context.Context, req shardReq) (shardResp, error) {
	req.ctx = ctx
	req.reply = make(chan shardResp, 1)
	select {
	case sh.reqs <- req:
	case <-sh.dead:
		return shardResp{}, fmt.Errorf("%w: %s", ErrSessionGone, sh.id)
	case <-ctx.Done():
		return shardResp{}, ctx.Err()
	default:
		return shardResp{}, fmt.Errorf("%w: session %s", ErrBusy, sh.id)
	}
	select {
	case resp := <-req.reply:
		return resp, nil
	case <-sh.dead:
		return shardResp{}, fmt.Errorf("%w: %s", ErrSessionGone, sh.id)
	case <-ctx.Done():
		return shardResp{}, ctx.Err()
	}
}

// purge asks the goroutine to exit; pending callers observe dead.
func (sh *shard) purge() {
	select {
	case sh.reqs <- shardReq{op: opPurge, reply: make(chan shardResp, 1)}:
	case <-sh.dead:
	}
}
