package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
	"dvfsched/internal/trace"
)

// maxBodyBytes bounds request bodies; a 100k-task submission is a few
// MB of JSONL, so 64 MiB is generous without being unbounded.
const maxBodyBytes = 64 << 20

// PlatformSpec is the platform slice of a request: a named rate table
// replicated over identical cores. The zero value means "table2 on 4
// cores".
type PlatformSpec struct {
	// Cores is the core count (default 4).
	Cores int `json:"cores,omitempty"`
	// Platform names the rate table: table2, i7, or exynos (default
	// table2).
	Platform string `json:"platform,omitempty"`
	// Re and Rt are the cost constants (defaults 0.1 and 0.4, the
	// paper's batch setting).
	Re float64 `json:"re,omitempty"`
	Rt float64 `json:"rt,omitempty"`
}

// normalize fills defaults and resolves the named rate table.
func (p PlatformSpec) normalize() (PlatformSpec, model.CostParams, *platform.Platform, error) {
	if p.Cores == 0 {
		p.Cores = 4
	}
	if p.Platform == "" {
		p.Platform = "table2"
	}
	if p.Re == 0 {
		p.Re = 0.1
	}
	if p.Rt == 0 {
		p.Rt = 0.4
	}
	if p.Cores < 0 || p.Cores > 4096 {
		return p, model.CostParams{}, nil, fmt.Errorf("cores must be in 1..4096, got %d", p.Cores)
	}
	var rates *model.RateTable
	switch p.Platform {
	case "table2":
		rates = platform.TableII()
	case "i7":
		rates = platform.IntelI7950()
	case "exynos":
		rates = platform.ExynosT4412()
	default:
		return p, model.CostParams{}, nil, fmt.Errorf("unknown platform %q (want table2, i7, or exynos)", p.Platform)
	}
	params := model.CostParams{Re: p.Re, Rt: p.Rt}
	if err := params.Validate(); err != nil {
		return p, model.CostParams{}, nil, err
	}
	return p, params, platform.Homogeneous(p.Cores, rates, platform.Ideal{}), nil
}

// PlanRequest is the body of POST /v1/plan: a batch workload (all
// arrivals 0, no deadlines, non-interactive) to schedule with Workload
// Based Greedy.
type PlanRequest struct {
	PlatformSpec
	// Tasks is the workload in the trace wire format.
	Tasks []trace.Record `json:"tasks"`
}

// PlanResponse is the planning plane's reply.
type PlanResponse struct {
	// Plan is the self-contained plan document (batch.Plan JSON form).
	Plan json.RawMessage `json:"plan"`
	// EnergyCost, TimeCost and TotalCost are the analytic model's
	// predictions in cents (Eq. 8).
	EnergyCost float64 `json:"energy_cost"`
	TimeCost   float64 `json:"time_cost"`
	TotalCost  float64 `json:"total_cost"`
	// Joules, MakespanS and TurnaroundSumS are the physical totals.
	Joules         float64 `json:"joules"`
	MakespanS      float64 `json:"makespan_s"`
	TurnaroundSumS float64 `json:"turnaround_sum_s"`
	// Cached reports whether the result came from the LRU cache.
	Cached bool `json:"cached"`
}

// SessionInfo describes one online session shard.
type SessionInfo struct {
	ID string `json:"id"`
	PlatformSpec
	// Clock is the session's virtual time in seconds.
	Clock float64 `json:"clock"`
	// Pending counts submitted-but-uncompleted tasks.
	Pending int `json:"pending"`
	// Submitted counts tasks accepted so far.
	Submitted int `json:"submitted"`
	// Drained reports whether the session has been drained and only
	// its trace remains readable.
	Drained bool `json:"drained"`
}

// SubmitRequest is the body of POST /v1/sessions/{id}/tasks.
type SubmitRequest struct {
	Tasks []trace.Record `json:"tasks"`
	// Clamp admits arrivals stamped before the session clock by
	// clamping them up to it (core.OnlineSession.Admit) instead of
	// rejecting the batch with 400. Concurrent submitters to one
	// session need it: whichever request loses the race into the shard
	// sees virtual time already advanced past its timestamps.
	Clamp bool `json:"clamp,omitempty"`
}

// SubmitResponse acknowledges accepted arrivals.
type SubmitResponse struct {
	Accepted int     `json:"accepted"`
	Clock    float64 `json:"clock"`
	Pending  int     `json:"pending"`
}

// DrainResponse reports a drained session's final measurements.
type DrainResponse struct {
	ID     string `json:"id"`
	Policy string `json:"policy"`
	Tasks  int    `json:"tasks"`
	// Costs in cents, applied to the measured run.
	EnergyCost float64 `json:"energy_cost"`
	TimeCost   float64 `json:"time_cost"`
	TotalCost  float64 `json:"total_cost"`
	// Physical totals.
	TotalEnergyJ   float64 `json:"total_energy_j"`
	MakespanS      float64 `json:"makespan_s"`
	TurnaroundSumS float64 `json:"turnaround_sum_s"`
	Switches       int     `json:"switches"`
	Preemptions    int     `json:"preemptions"`
}

// drainResponse converts a sim result into the wire form.
func drainResponse(id string, res *sim.Result) DrainResponse {
	return DrainResponse{
		ID:             id,
		Policy:         res.Policy,
		Tasks:          len(res.Tasks),
		EnergyCost:     res.EnergyCost,
		TimeCost:       res.TimeCost,
		TotalCost:      res.TotalCost,
		TotalEnergyJ:   res.TotalEnergy,
		MakespanS:      res.Makespan,
		TurnaroundSumS: res.TurnaroundSum,
		Switches:       res.Switches,
		Preemptions:    res.Preemptions,
	}
}

// apiError is the machine-readable error payload carried by every
// non-2xx reply on every plane (plan, session, cluster replica, cluster
// admin). Code is a stable snake_case identifier clients can switch on;
// Message is human-readable detail. The code↔status table lives in
// DESIGN §13.4.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorResponse is the JSON body of every non-2xx reply: one envelope,
// `{"error":{"code":"...","message":"..."}}`, across all planes. The
// Router forwards these bodies verbatim, so a client sees the same
// shape whether the answering node owned the session or proxied it.
type errorResponse struct {
	Error apiError `json:"error"`
}

// decodeJSON parses a request body strictly (unknown fields rejected,
// size-capped) into dst.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// writeJSON serializes v with the given status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//dvfslint:allow errcheck-hot header already sent; nothing useful to do on error
	_ = enc.Encode(v)
}

// codeForStatus derives the envelope code for call sites that only
// know an HTTP status (parse errors, validation failures). Sentinel
// mappings in writeAPIError carry more specific codes.
func codeForStatus(status int) string {
	switch {
	case status == http.StatusNotFound:
		return "not_found"
	case status == http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case status == http.StatusConflict:
		return "conflict"
	case status == http.StatusTooManyRequests:
		return "busy"
	case status == http.StatusServiceUnavailable:
		return "unavailable"
	case status == http.StatusBadGateway:
		return "bad_gateway"
	case status >= 500:
		return "internal"
	default:
		return "bad_request"
	}
}

// writeError serializes the error envelope with a code derived from
// the status alone; use writeCodedError when a more specific code is
// known.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeCodedError(w, status, codeForStatus(status), format, args...)
}

// writeCodedError serializes the one error envelope every plane emits.
func writeCodedError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: apiError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// WriteErrorEnvelope is the exported face of the unified error
// envelope, for the cluster planes (internal/cluster) — every non-2xx
// body in the system goes through this one shape. An empty code is
// derived from the status.
func WriteErrorEnvelope(w http.ResponseWriter, status int, code, format string, args ...any) {
	if code == "" {
		code = codeForStatus(status)
	}
	writeCodedError(w, status, code, format, args...)
}

// writeAPIError maps typed errors to HTTP statuses and envelope codes:
// this package's sentinels (errors.go) plus the core facade's.
// Backpressure (ErrBusy, ErrSessionTableFull) is 429 in steady state
// and 503 once a drain has begun, so load balancers stop retrying a
// terminating replica instead of backing off against it. Migration
// fencing (ErrSessionMigrating, ErrSessionMoved) is 503: the condition
// clears in milliseconds and a retry re-routes to the new owner.
// Errors matching none of the sentinels get the caller's fallback
// status.
func (s *Server) writeAPIError(w http.ResponseWriter, err error, fallback int) {
	switch {
	case errors.Is(err, ErrDraining):
		writeCodedError(w, http.StatusServiceUnavailable, "draining", "%v", err)
	case errors.Is(err, ErrBusy), errors.Is(err, ErrSessionTableFull):
		code := "busy"
		if errors.Is(err, ErrSessionTableFull) {
			code = "session_table_full"
		}
		if s.draining.Load() {
			writeCodedError(w, http.StatusServiceUnavailable, "draining", "%v (draining)", err)
			return
		}
		s.rejected.Inc()
		writeCodedError(w, http.StatusTooManyRequests, code, "%v", err)
	case errors.Is(err, ErrSessionGone):
		writeCodedError(w, http.StatusNotFound, "session_not_found", "%v", err)
	case errors.Is(err, ErrSessionDrained):
		writeCodedError(w, http.StatusConflict, "session_drained", "%v", err)
	case errors.Is(err, ErrSessionExists):
		writeCodedError(w, http.StatusConflict, "session_exists", "%v", err)
	case errors.Is(err, ErrSessionMigrating):
		writeCodedError(w, http.StatusServiceUnavailable, "session_migrating", "%v", err)
	case errors.Is(err, ErrSessionMoved):
		writeCodedError(w, http.StatusServiceUnavailable, "session_moved", "%v", err)
	case errors.Is(err, core.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		writeCodedError(w, http.StatusServiceUnavailable, "canceled", "request cancelled or timed out: %v", err)
	case errors.Is(err, core.ErrNotBatchable),
		errors.Is(err, core.ErrNoCores),
		errors.Is(err, core.ErrEmptySubmission):
		writeCodedError(w, http.StatusBadRequest, "invalid_workload", "%v", err)
	default:
		writeError(w, fallback, "%v", err)
	}
}

// tasksFromRecords converts wire records into model tasks.
func tasksFromRecords(recs []trace.Record) (model.TaskSet, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("empty task list")
	}
	tasks := make(model.TaskSet, len(recs))
	for i, rec := range recs {
		tasks[i] = rec.Task()
	}
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	return tasks, nil
}
