// Package server turns the scheduler into a long-running service: a
// stdlib-only net/http JSON API with two planes. The stateless
// planning plane runs the Workload Based Greedy batch planner
// (Section III) behind a worker pool and an LRU result cache; the
// stateful session plane hosts online-mode shards (Section IV) — one
// Least Marginal Cost policy and virtual-time engine per session,
// owned by a single goroutine — that accept task arrivals over HTTP
// and stream their observability trace back as JSON Lines.
//
// Production plumbing is part of the contract: bounded queues that
// shed load with 429s, per-request timeouts, panic-to-500 recovery,
// /healthz and /metrics (an obs.Registry snapshot), and graceful
// drain of every live session on shutdown.
package server

import (
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dvfsched/internal/obs"
)

// Config tunes the daemon. The zero value is production-safe.
type Config struct {
	// Workers sizes the planning worker pool; 0 means GOMAXPROCS,
	// negative starts no workers (tests only).
	Workers int
	// QueueDepth bounds the planning queue; 0 means 4×Workers.
	QueueDepth int
	// CacheSize bounds the plan LRU cache entries; 0 means 256,
	// negative disables caching.
	CacheSize int
	// MaxSessions bounds concurrently registered sessions (live plus
	// drained-but-not-purged); 0 means 1024.
	MaxSessions int
	// SessionQueueDepth bounds each shard's request queue; 0 means 64.
	SessionQueueDepth int
	// SessionParallelism, when >= 2, gives each online session a
	// candidate-evaluation worker pool of that width
	// (core.WithParallelism); 0 or 1 keeps placement sequential.
	// Schedules are identical either way.
	SessionParallelism int
	// RequestTimeout bounds each request's handling time; 0 means 30s.
	RequestTimeout time.Duration
	// TraceFormat is the events endpoint's encoding when the request
	// has no ?format= query: "jsonl" (default) or "binary". A request's
	// explicit ?format= always wins.
	TraceFormat string
	// Registry receives the server's metrics; nil means a fresh one.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 1024
	}
	if c.SessionQueueDepth == 0 {
		c.SessionQueueDepth = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.TraceFormat == "" {
		c.TraceFormat = "jsonl"
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server is the scheduling service. It implements http.Handler; wire
// it into an http.Server (cmd/dvfschedd) or httptest (tests).
type Server struct {
	cfg      Config
	reg      *obs.Registry
	planner  *planner
	sessions *sessions
	handler  http.Handler
	started  time.Time

	closeOnce sync.Once
	draining  atomic.Bool

	requests *obs.Counter
	failures *obs.Counter
	rejected *obs.Counter
	panics   *obs.Counter
	inflight *obs.Gauge
	latency  *obs.Histogram
}

// latencyBuckets spans sub-millisecond cache hits through multi-second
// planning runs, in seconds.
var latencyBuckets = []float64{1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// New builds a server and starts its planning workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		planner:  newPlanner(cfg.Workers, cfg.QueueDepth, cfg.CacheSize, reg),
		sessions: newSessions(cfg.MaxSessions, cfg.SessionQueueDepth, cfg.SessionParallelism, reg),
		started:  time.Now(),
		requests: reg.Counter(obs.ServerRequests),
		failures: reg.Counter(obs.ServerFailures),
		rejected: reg.Counter(obs.ServerRejected),
		panics:   reg.Counter(obs.ServerPanics),
		inflight: reg.Gauge(obs.ServerInFlight),
		latency:  reg.Histogram(obs.ServerLatency, latencyBuckets),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionStatus)
	mux.HandleFunc("POST /v1/sessions/{id}/tasks", s.handleSessionSubmit)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleSessionEvents)
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.handleSessionSnapshot)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.handler = s.instrument(mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Sessions returns the number of registered sessions (live plus
// tombstoned), for health reporting.
func (s *Server) Sessions() int { return s.sessions.count() }

// BeginDrain flips the server into drain mode: both planes refuse new
// work with 503 (ErrDraining) so load balancers fail over, while
// in-flight requests, already-queued plans and DrainAll itself
// proceed. Idempotent. cmd/dvfschedd calls it on SIGTERM before
// shutting the listener down.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the planning workers. Call after the http.Server has
// stopped serving and sessions are drained.
func (s *Server) Close() {
	s.closeOnce.Do(func() { s.planner.close() })
}

// healthzResponse is the GET /healthz body.
type healthzResponse struct {
	Status   string  `json:"status"`
	UptimeS  float64 `json:"uptime_s"`
	Sessions int     `json:"sessions"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:   "ok",
		UptimeS:  time.Since(s.started).Seconds(),
		Sessions: s.sessions.count(),
	})
}

// handleMetrics serves the registry snapshot as indented JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	//dvfslint:allow errcheck-hot best-effort reply: the 200 header is already committed, only the client's read fails
	_ = s.reg.WriteJSON(w)
}
