package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"dvfsched/internal/obs"
	"dvfsched/internal/trace"
)

// TestSessionEventHooks pins the recorder-backed cluster hooks the
// replication shipper lives on: AppendSessionEventsSince must be
// Since-into-a-caller-slice (same events, prefix preserved, suffix
// selected by Seq), and SessionLastSeq must name exactly the tail the
// covering ack has to reach.
func TestSessionEventHooks(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	var info SessionInfo
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", map[string]any{"cores": 2}, &info); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	path := ts.URL + "/v1/sessions/" + info.ID + "/tasks"
	for i, batch := range [][]trace.Record{
		{{ID: 1, Cycles: 30, Arrival: 0}, {ID: 2, Cycles: 10, Arrival: 0.5}},
		{{ID: 3, Cycles: 5, Arrival: 1.0}},
	} {
		if code := doJSON(t, http.MethodPost, path, SubmitRequest{Tasks: batch}, nil); code != http.StatusOK {
			t.Fatalf("submit %d: %d", i, code)
		}
	}

	evs, err := s.SessionEventsSince(info.ID, 0)
	if err != nil || len(evs) == 0 {
		t.Fatalf("SessionEventsSince: %d events, err %v", len(evs), err)
	}
	last, err := s.SessionLastSeq(info.ID)
	if err != nil {
		t.Fatalf("SessionLastSeq: %v", err)
	}
	if want := evs[len(evs)-1].Seq; last != want || last == 0 {
		t.Fatalf("SessionLastSeq %d, want trace tail %d", last, want)
	}

	// Append-into-scratch is Since, byte for byte.
	got, err := s.AppendSessionEventsSince(info.ID, 0, make([]obs.Event, 0, 4))
	if err != nil {
		t.Fatalf("AppendSessionEventsSince: %v", err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("AppendSessionEventsSince(0) diverges from SessionEventsSince: %d vs %d events", len(got), len(evs))
	}

	// A mid-trace cursor selects exactly the suffix past it.
	mid := evs[len(evs)/2].Seq
	wantTail, err := s.SessionEventsSince(info.ID, mid)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := s.AppendSessionEventsSince(info.ID, mid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tail, wantTail) {
		t.Fatalf("suffix after %d diverges: %d vs %d events", mid, len(tail), len(wantTail))
	}
	for _, ev := range tail {
		if ev.Seq <= mid {
			t.Fatalf("suffix after %d contains Seq %d", mid, ev.Seq)
		}
	}

	// The caller's prefix survives, and a fully-covered cursor appends
	// nothing.
	dst := []obs.Event{evs[0]}
	dst, err = s.AppendSessionEventsSince(info.ID, last, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != 1 || dst[0].Seq != evs[0].Seq {
		t.Fatalf("covered cursor mutated dst: %d events", len(dst))
	}

	// Unknown sessions fail with the typed gone error on every hook.
	if _, err := s.AppendSessionEventsSince("nope", 0, nil); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("AppendSessionEventsSince(unknown): %v", err)
	}
	if _, err := s.SessionLastSeq("nope"); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("SessionLastSeq(unknown): %v", err)
	}
}

// countingTransport counts round trips on their way to the default
// transport.
type countingTransport struct {
	calls atomic.Int64
}

func (c *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	c.calls.Add(1)
	return http.DefaultTransport.RoundTrip(r)
}

// TestRouterSetTransport proves an installed transport carries the
// router's forwards — the seam the cluster node uses to pool forwards,
// ships and probes on one shared connection pool.
func TestRouterSetTransport(t *testing.T) {
	owner, _, ownerTS := newRouterNode(t, "b")
	front := New(Config{})
	fc := &fakeCluster{self: "a", routes: []string{"b"}, addrs: map[string]string{"b": ownerTS.URL}}
	rt := NewRouter(front, fc)
	ct := &countingTransport{}
	rt.SetTransport(ct)
	frontTS := httptest.NewServer(rt)
	t.Cleanup(func() {
		frontTS.Close()
		front.Close()
	})

	var info SessionInfo
	if code := doJSON(t, http.MethodPost, frontTS.URL+"/v1/sessions", map[string]any{"cores": 2}, &info); code != http.StatusCreated {
		t.Fatalf("forwarded create: %d", code)
	}
	if !owner.HasSession(info.ID) {
		t.Fatal("session did not land on the owner")
	}
	if ct.calls.Load() == 0 {
		t.Fatal("forward bypassed the installed transport")
	}
}
