package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used map from string
// keys to immutable values, safe for concurrent use. The planning
// plane keys it by the canonical workload hash, so identical plan
// requests are served without re-running the planner.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// newLRUCache returns a cache holding at most capacity entries;
// capacity <= 0 disables caching (every lookup misses).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached value and refreshes its recency.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a value, evicting the least recently used
// entry when over capacity.
func (c *lruCache) put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
