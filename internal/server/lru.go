package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used map from string
// keys to immutable values, safe for concurrent use. The planning
// plane keys it by the canonical workload hash, so identical plan
// requests are served without re-running the planner.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// newLRUCache returns a cache holding at most capacity entries;
// capacity <= 0 disables caching (every lookup misses).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached value and refreshes its recency.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a value, evicting the least recently used
// entry when over capacity.
func (c *lruCache) put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// cacheStripes is the stripe count of stripedCache: enough that
// concurrent cache-hit traffic rarely collides on one stripe lock,
// small enough that per-stripe LRU capacity stays meaningful.
const cacheStripes = 8

// stripedCache shards an LRU cache over independently locked stripes,
// selected by an FNV-1a hash of the key. Under concurrent cache-hit
// load a single-lock LRU serializes every request on one mutex (each
// hit mutates recency order, so even reads take the exclusive lock);
// striping divides that contention by the stripe count. Recency is
// per-stripe — an eviction takes the oldest entry of the *stripe*, not
// the global oldest — which is the standard trade for lock-free-ish
// LRU reads and harmless at plan-cache scale.
type stripedCache struct {
	stripes [cacheStripes]*lruCache
}

// newStripedCache splits capacity evenly (rounded up) across stripes;
// capacity <= 0 disables caching, matching newLRUCache.
func newStripedCache(capacity int) *stripedCache {
	per := 0
	if capacity > 0 {
		per = (capacity + cacheStripes - 1) / cacheStripes
	}
	sc := &stripedCache{}
	for i := range sc.stripes {
		sc.stripes[i] = newLRUCache(per)
	}
	return sc
}

// stripe picks the lruCache owning key (inline FNV-1a, no allocation).
func (c *stripedCache) stripe(key string) *lruCache {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.stripes[h%cacheStripes]
}

// get returns the cached value and refreshes its stripe-local recency.
func (c *stripedCache) get(key string) (any, bool) { return c.stripe(key).get(key) }

// put inserts or refreshes a value in the key's stripe.
func (c *stripedCache) put(key string, val any) { c.stripe(key).put(key, val) }

// len sums entries across stripes.
func (c *stripedCache) len() int {
	n := 0
	for _, s := range c.stripes {
		n += s.len()
	}
	return n
}
