package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// discardResponseWriter satisfies http.ResponseWriter with no body
// retention, for alloc counting and benchmarks where recording the
// response would dominate the measurement.
type discardResponseWriter struct {
	h      http.Header
	status int
}

func newDiscardResponseWriter() *discardResponseWriter {
	return &discardResponseWriter{h: make(http.Header)}
}

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardResponseWriter) WriteHeader(status int)      { w.status = status }

var submitResponseCorpus = []SubmitResponse{
	{},
	{Accepted: 1, Clock: 0.5, Pending: 3},
	{Accepted: 128, Clock: 123.456789, Pending: 0},
	{Accepted: 7, Clock: 1e21, Pending: 42},
	{Accepted: -1, Clock: 1e-7, Pending: -2},
}

func TestAppendSubmitResponseMatchesMarshal(t *testing.T) {
	for _, r := range submitResponseCorpus {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got := appendSubmitResponse(nil, r)
		if !bytes.Equal(got, want) {
			t.Errorf("appendSubmitResponse(%+v):\n got %s\nwant %s", r, got, want)
		}
	}
}

var planResponseCorpus = []PlanResponse{
	{},
	{Plan: json.RawMessage(`null`), Cached: true},
	{
		Plan:           json.RawMessage(`{"assignments":[{"core":0,"task":1}],"cost":2.5}`),
		EnergyCost:     1.25,
		TimeCost:       3.5,
		TotalCost:      4.75,
		Joules:         10.125,
		MakespanS:      2.5,
		TurnaroundSumS: 7.5,
	},
	{
		Plan:           json.RawMessage(`[1,2,3]`),
		EnergyCost:     1e-7,
		TimeCost:       9.99e20,
		TotalCost:      1e21,
		Joules:         math.SmallestNonzeroFloat64,
		MakespanS:      math.MaxFloat64,
		TurnaroundSumS: 1e-300,
		Cached:         true,
	},
}

func TestAppendPlanResponseMatchesMarshal(t *testing.T) {
	for _, r := range planResponseCorpus {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got := appendPlanResponse(nil, r)
		if !bytes.Equal(got, want) {
			t.Errorf("appendPlanResponse(%+v):\n got %s\nwant %s", r, got, want)
		}
	}
}

// TestAppendersZeroAlloc pins the append framing at zero allocations
// when the destination buffer has capacity — the property the pooled
// writers rely on.
func TestAppendersZeroAlloc(t *testing.T) {
	sub := SubmitResponse{Accepted: 64, Clock: 123.456, Pending: 7}
	plan := planResponseCorpus[2]
	buf := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(100, func() {
		buf = appendSubmitResponse(buf[:0], sub)
	}); n != 0 {
		t.Errorf("appendSubmitResponse: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		buf = appendPlanResponse(buf[:0], plan)
	}); n != 0 {
		t.Errorf("appendPlanResponse: %v allocs/op, want 0", n)
	}
}

// TestPlanCacheHitResponseParity checks the pre-encoded cache-hit body
// carries exactly the computed response with cached flipped to true.
func TestPlanCacheHitResponseParity(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	body, err := json.Marshal(PlanRequest{Tasks: benchTasks(8)})
	if err != nil {
		t.Fatal(err)
	}
	post := func() *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
		s.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("plan: %d %s", w.Code, w.Body)
		}
		return w
	}
	miss, hit := post(), post()
	var missResp, hitResp PlanResponse
	if err := json.Unmarshal(miss.Body.Bytes(), &missResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(hit.Body.Bytes(), &hitResp); err != nil {
		t.Fatal(err)
	}
	if missResp.Cached || !hitResp.Cached {
		t.Fatalf("cached flags: miss %v hit %v, want false/true", missResp.Cached, hitResp.Cached)
	}
	missResp.Cached = true
	hitResp.Plan, missResp.Plan = nil, nil
	if !reflect.DeepEqual(missResp, hitResp) {
		t.Fatalf("hit response diverges from computed response:\nmiss %+v\nhit  %+v", missResp, hitResp)
	}
	var missPlan, hitPlan any
	if err := json.Unmarshal(json.RawMessage(miss.Body.Bytes()), &missPlan); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(json.RawMessage(hit.Body.Bytes()), &hitPlan); err != nil {
		t.Fatal(err)
	}
}

// TestPlanCacheHitAllocs pins the whole cache-hit request path —
// decode, canonical hash, cache lookup, pre-encoded write — to a fixed
// allocation budget so regressions that reintroduce per-request
// marshaling fail loudly.
func TestPlanCacheHitAllocs(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	body, err := json.Marshal(PlanRequest{Tasks: benchTasks(8)})
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", rd)
	w := newDiscardResponseWriter()
	// Warm the cache (first request computes).
	s.ServeHTTP(w, req)
	if w.status != http.StatusOK {
		t.Fatalf("warmup status %d", w.status)
	}
	n := testing.AllocsPerRun(200, func() {
		rd.Reset(body)
		s.ServeHTTP(w, req)
	})
	// The remaining allocations are request plumbing (context, decoder,
	// task records) — the encode path itself contributes none. Pinned
	// with slack below the >60 allocs the marshal-per-hit path cost.
	const maxAllocs = 42
	if n > maxAllocs {
		t.Errorf("plan cache hit: %v allocs/op, want <= %d", n, maxAllocs)
	}
}
