package server

import (
	"context"
	"fmt"

	"dvfsched/internal/core"
	"dvfsched/internal/obs"
	"dvfsched/internal/sim"
)

// SessionIDHeader carries a caller-chosen session ID on POST
// /v1/sessions. The cluster router mints the ID before routing the
// create, so placement on the consistent-hash ring is decided from the
// ID the client will be handed back.
const SessionIDHeader = "X-Dvfs-Session-Id"

// EpochHeader stamps forwarded requests with the sender's membership
// epoch; a receiver holding an older view uses it (plus
// SenderAddrHeader) to pull the newer membership — anti-entropy
// without a gossip subsystem.
const EpochHeader = "X-Dvfs-Epoch"

// SenderAddrHeader carries the forwarding node's own base URL, so a
// receiver that doesn't know the sender yet (it may have joined after
// the receiver's view was built) can still sync membership from it.
const SenderAddrHeader = "X-Dvfs-Sender-Addr"

// forwardHopsHeader counts router-to-router forwards; requests at the
// limit are refused instead of orbiting a transiently inconsistent
// placement or ring view.
const forwardHopsHeader = "X-Dvfs-Forward-Hops"

// validSessionID accepts 1-64 characters of [A-Za-z0-9._-]: safe in
// URL paths, ring keys and log lines without escaping.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// RebuiltSession is the product of ReplaySession: a live online
// session whose recorder already holds the complete reconstructed
// trace, plus the accepted-task count carried over from the original
// owner.
type RebuiltSession struct {
	Spec      PlatformSpec
	Rec       *obs.Recorder
	Sess      *core.OnlineSession
	Submitted int
}

// ReplaySession rebuilds a live session from replicated state: an
// optional checkpoint (core.OnlineSession.Snapshot bytes; nil means
// start fresh) and the session's event log. The checkpoint restores
// the engine exactly; the log supplies both the pre-checkpoint trace
// prefix (pre-loaded into the recorder so the full history stays
// readable) and the post-checkpoint arrival suffix, which is replayed
// through core.OnlineSession.ReplayTrace so the engine re-derives the
// post-checkpoint schedule it had already committed to. The log must
// cover every event up to the checkpoint's sequence number — the
// replication protocol ships events before checkpoints to guarantee
// it.
//
// parallel >= 2 wires in a candidate-evaluation pool of that width
// (schedules are identical either way). The caller owns the returned
// session and must Close or Drain it.
func ReplaySession(ctx context.Context, spec PlatformSpec, parallel int, checkpoint []byte, log []obs.Event) (*RebuiltSession, error) {
	spec, params, plat, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	rec := &obs.Recorder{}
	opts := []core.Option{core.WithSink(rec)}
	if parallel >= 2 {
		opts = append(opts, core.WithParallelism(parallel))
	}
	sched, err := core.New(params, plat, opts...)
	if err != nil {
		return nil, err
	}

	var sess *core.OnlineSession
	var afterSeq uint64
	var known func(int) bool
	submitted := 0
	if len(checkpoint) > 0 {
		cp, err := sim.UnmarshalCheckpoint(checkpoint)
		if err != nil {
			return nil, fmt.Errorf("decode checkpoint: %w", err)
		}
		// Events at or before the checkpoint were emitted by the run
		// being restored; pre-load them so the restored engine's events
		// (which continue at EvSeq+1) append seamlessly and the
		// reconstructed trace is byte-identical to the owner's.
		for _, ev := range log {
			if ev.Seq <= cp.EvSeq {
				rec.Emit(ev)
			}
		}
		sess, err = sched.RestoreOnline(ctx, checkpoint)
		if err != nil {
			return nil, err
		}
		afterSeq = cp.EvSeq
		ids := make(map[int]bool, len(cp.IDs))
		for _, id := range cp.IDs {
			ids[id] = true
		}
		// Tasks injected before the checkpoint live in the restored
		// state; only genuinely new post-checkpoint arrivals replay.
		known = func(id int) bool { return ids[id] }
		submitted = len(cp.Tasks)
	} else {
		sess, err = sched.OpenOnline(ctx)
		if err != nil {
			return nil, err
		}
	}
	n, err := sess.ReplayTrace(ctx, log, afterSeq, known)
	if err != nil {
		sess.Close()
		return nil, err
	}
	return &RebuiltSession{Spec: spec, Rec: rec, Sess: sess, Submitted: submitted + n}, nil
}

// HasSession reports whether id is registered (live or tombstoned).
func (s *Server) HasSession(id string) bool {
	_, ok := s.sessions.get(id)
	return ok
}

// SessionSpec returns the platform spec a session was created with.
func (s *Server) SessionSpec(id string) (PlatformSpec, bool) {
	sh, ok := s.sessions.get(id)
	if !ok {
		return PlatformSpec{}, false
	}
	return sh.spec, true
}

// SessionEventsSince returns the session's recorded events with
// Seq > after, in emission order. It reads the shard's recorder
// directly (internally locked), so it never blocks on the shard
// goroutine — the replication shipper calls it on every mutation.
func (s *Server) SessionEventsSince(id string, after uint64) ([]obs.Event, error) {
	sh, ok := s.sessions.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionGone, id)
	}
	return sh.rec.Since(after), nil
}

// AppendSessionEventsSince is SessionEventsSince appending into a
// caller-owned slice instead of allocating: the stream shipper reuses
// one scratch slice per frame build, so coalescing many sessions into
// a frame costs no per-session event-slice allocation.
func (s *Server) AppendSessionEventsSince(id string, after uint64, dst []obs.Event) ([]obs.Event, error) {
	sh, ok := s.sessions.get(id)
	if !ok {
		return dst, fmt.Errorf("%w: %s", ErrSessionGone, id)
	}
	return sh.rec.AppendSince(dst, after), nil
}

// SessionLastSeq returns the sequence number of the session's last
// recorded event (0 when none). A mutation that just committed reads
// it to learn which replication ack covers its own events.
func (s *Server) SessionLastSeq(id string) (uint64, error) {
	sh, ok := s.sessions.get(id)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrSessionGone, id)
	}
	return sh.rec.LastSeq(), nil
}

// SnapshotSession takes a checkpoint of a live session on its shard
// goroutine, after the group-commit intake is flushed — the same
// batch-boundary guarantee the HTTP snapshot endpoint has. A drained
// session returns ErrSessionDrained.
func (s *Server) SnapshotSession(ctx context.Context, id string) ([]byte, error) {
	sh, ok := s.sessions.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionGone, id)
	}
	resp, err := sh.do(ctx, shardReq{op: opSnapshot})
	if err != nil {
		return nil, err
	}
	if resp.err != nil {
		return nil, resp.err
	}
	return resp.snapshot, nil
}

// HandoffState is the payload of a planned migration: everything the
// target node needs to adopt the session and everything the trace
// guarantee needs — the full event log, not just the post-checkpoint
// suffix, so the rebuilt recorder holds the complete byte-identical
// history.
type HandoffState struct {
	Spec       PlatformSpec
	Submitted  int
	Checkpoint []byte
	Events     []obs.Event
}

// HandoffSession freezes a live session for migration and returns its
// handoff state. The freeze happens on the shard goroutine after the
// group-commit intake is flushed, so the checkpoint lands on a batch
// boundary; from that moment every mutation against the shard is
// fenced with ErrSessionMigrating until AbortHandoff or FinishHandoff.
// A drained session returns ErrSessionDrained (tombstones don't
// migrate); a session already frozen returns ErrSessionMigrating.
func (s *Server) HandoffSession(ctx context.Context, id string) (*HandoffState, error) {
	sh, ok := s.sessions.get(id)
	if !ok {
		return nil, s.sessionErr(id, fmt.Errorf("%w: %s", ErrSessionGone, id))
	}
	resp, err := sh.do(ctx, shardReq{op: opHandoff})
	if err != nil {
		return nil, s.sessionErr(id, err)
	}
	if resp.err != nil {
		return nil, resp.err
	}
	// The engine is frozen: the recorder is quiescent, so this read
	// observes exactly the events the checkpoint covers.
	return &HandoffState{
		Spec:       sh.spec,
		Submitted:  resp.submitted,
		Checkpoint: resp.snapshot,
		Events:     sh.rec.Events(),
	}, nil
}

// AbortHandoff lifts a migration freeze after a failed ship: the shard
// resumes serving here, still authoritative, nothing lost.
func (s *Server) AbortHandoff(ctx context.Context, id string) error {
	sh, ok := s.sessions.get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrSessionGone, id)
	}
	_, err := sh.do(ctx, shardReq{op: opUnfreeze})
	return err
}

// FinishHandoff retires the local shard after a successful migration
// flip: the shard is purged and a moved marker (target node) is left
// behind, so requests racing the flip get a retryable 503
// (ErrSessionMoved) instead of a terminal 404.
func (s *Server) FinishHandoff(id, target string) {
	s.sessions.markMoved(id, target)
}

// DropSession removes a session shard without draining it — the
// cluster uses it to discard a partially adopted handoff whose
// integrity check failed. Not for general use: tasks pending in the
// dropped engine are abandoned.
func (s *Server) DropSession(id string) {
	s.sessions.remove(id)
}

// SessionMovedTo reports where a migrated-away session went, if a
// moved marker exists for id.
func (s *Server) SessionMovedTo(id string) (string, bool) {
	return s.sessions.movedTo(id)
}

// LiveSessionIDs returns the IDs of every live (not drained) local
// session, in ID order — the rebalance/evacuate work list.
func (s *Server) LiveSessionIDs(ctx context.Context) []string {
	var out []string
	for _, sh := range s.sessions.all() {
		resp, err := sh.do(ctx, shardReq{op: opStatus})
		if err == nil && resp.err == nil && !resp.drained {
			out = append(out, sh.id)
		}
	}
	return out
}

// AdoptSession rebuilds a session from replicated state (ReplaySession)
// and installs it as a live shard under the dead owner's ID: the
// cluster failover path, and (via the handoff endpoint) the planned
// migration path. The adopted shard serves exactly like a locally
// created one — submits, snapshots, drain, events.
func (s *Server) AdoptSession(ctx context.Context, id string, spec PlatformSpec, checkpoint []byte, log []obs.Event) (SessionInfo, error) {
	if !validSessionID(id) {
		return SessionInfo{}, fmt.Errorf("invalid session ID %q", id)
	}
	rb, err := ReplaySession(ctx, spec, s.cfg.SessionParallelism, checkpoint, log)
	if err != nil {
		return SessionInfo{}, err
	}
	// Read the session before adopt hands ownership to the shard
	// goroutine; afterwards only the shard may touch it.
	clock, pending := rb.Sess.Clock(), rb.Sess.Pending()
	sh, err := s.sessions.adopt(id, rb)
	if err != nil {
		rb.Sess.Close()
		return SessionInfo{}, err
	}
	return SessionInfo{
		ID:           sh.id,
		PlatformSpec: sh.spec,
		Clock:        clock,
		Pending:      pending,
		Submitted:    rb.Submitted,
	}, nil
}
