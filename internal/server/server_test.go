package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dvfsched/internal/batch"
	"dvfsched/internal/core"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
	"dvfsched/internal/report"
	"dvfsched/internal/trace"
	"dvfsched/internal/workload"
)

// newTestServer starts an httptest server around a fresh Server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// doJSON posts a JSON body and decodes a JSON reply.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func batchRecords(n int, seed int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{ID: i, Cycles: 10 + rng.Float64()*500}
	}
	return recs
}

func TestPlanMatchesDirectScheduler(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	recs := batchRecords(24, 1)

	var resp PlanResponse
	code := doJSON(t, "POST", ts.URL+"/v1/plan", PlanRequest{
		PlatformSpec: PlatformSpec{Cores: 4, Platform: "table2", Re: 0.1, Rt: 0.4},
		Tasks:        recs,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}

	// Direct in-process oracle.
	tasks := make(model.TaskSet, len(recs))
	for i, r := range recs {
		tasks[i] = r.Task()
	}
	sched, err := core.New(model.CostParams{Re: 0.1, Rt: 0.4},
		platform.Homogeneous(4, platform.TableII(), platform.Ideal{}))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.PlanBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	_, _, want := plan.Cost()
	if resp.TotalCost != want {
		t.Fatalf("service cost %v != direct cost %v", resp.TotalCost, want)
	}
	if resp.Cached {
		t.Fatal("first request reported cached")
	}

	// The returned plan document must round-trip and re-cost
	// identically.
	got, err := readPlanDoc(resp.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("plan document cost %v != %v", got, want)
	}
}

// readPlanDoc re-parses the self-contained plan JSON and evaluates its
// cost.
func readPlanDoc(raw json.RawMessage) (float64, error) {
	plan, err := batch.ReadPlanJSON(bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	_, _, total := plan.Cost()
	return total, nil
}

func TestPlanCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := PlanRequest{Tasks: batchRecords(10, 2)}

	var first, second PlanResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/plan", req, &first); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/plan", req, &second); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags: first=%v second=%v", first.Cached, second.Cached)
	}
	if first.TotalCost != second.TotalCost {
		t.Fatalf("cache changed the answer: %v vs %v", first.TotalCost, second.TotalCost)
	}
	// Same workload, different task order: still a hit.
	perm := append([]trace.Record(nil), req.Tasks...)
	perm[0], perm[len(perm)-1] = perm[len(perm)-1], perm[0]
	var third PlanResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/plan", PlanRequest{Tasks: perm}, &third); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !third.Cached {
		t.Fatal("permuted workload missed the cache")
	}
	snap := s.Registry().Snapshot()
	if snap.Counters[obs.ServerPlanCacheHits] != 2 || snap.Counters[obs.ServerPlans] != 1 {
		t.Fatalf("cache counters: %+v", snap.Counters)
	}
}

func TestPlanRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
	}{
		{"empty tasks", PlanRequest{}},
		{"bad platform", PlanRequest{PlatformSpec: PlatformSpec{Platform: "zen4"}, Tasks: batchRecords(2, 3)}},
		{"negative cycles", PlanRequest{Tasks: []trace.Record{{ID: 0, Cycles: -1}}}},
		{"online task", PlanRequest{Tasks: []trace.Record{{ID: 0, Cycles: 5, Arrival: 3}}}},
		{"duplicate ids", PlanRequest{Tasks: []trace.Record{{ID: 0, Cycles: 5}, {ID: 0, Cycles: 6}}}},
		{"unknown field", map[string]any{"tasks": []trace.Record{{ID: 0, Cycles: 5}}, "bogus": 1}},
	}
	for _, tc := range cases {
		var eresp errorResponse
		if code := doJSON(t, "POST", ts.URL+"/v1/plan", tc.body, &eresp); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (error %q)", tc.name, code, eresp.Error)
		}
	}
}

// TestPlanBackpressure fills the (worker-less) queue and checks the
// overflow request is shed with 429.
func TestPlanBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: -1, QueueDepth: 1, RequestTimeout: 300 * time.Millisecond})

	done := make(chan int, 1)
	go func() {
		done <- doJSON(t, "POST", ts.URL+"/v1/plan", PlanRequest{Tasks: batchRecords(2, 4)}, nil)
	}()
	// Wait until the first request occupies the only queue slot, then a
	// second distinct workload must bounce with 429.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.planner.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the queue")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := doJSON(t, "POST", ts.URL+"/v1/plan", PlanRequest{Tasks: batchRecords(3, 5)}, nil); got != http.StatusTooManyRequests {
		t.Fatalf("overflow request got %d, want 429", got)
	}
	if first := <-done; first != http.StatusServiceUnavailable {
		t.Fatalf("queued request finished with %d, want 503 timeout", first)
	}
	if s.Registry().Snapshot().Counters[obs.ServerRejected] < 1 {
		t.Fatal("rejected counter did not move")
	}
}

func sessionTrace(t *testing.T, seed int64) model.TaskSet {
	t.Helper()
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 150, 25, 45
	tasks, err := judge.Generate(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	tasks.ByArrival()
	return tasks
}

// TestSessionLifecycle drives a full session: create, submit in
// batches, stream events, drain via DELETE, and cross-check that the
// streamed trace replays to the reported final cost.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var info SessionInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions", PlatformSpec{Cores: 4}, &info); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	if info.ID == "" {
		t.Fatal("no session ID")
	}
	base := ts.URL + "/v1/sessions/" + info.ID

	tasks := sessionTrace(t, 99)
	for start := 0; start < len(tasks); start += 20 {
		end := start + 20
		if end > len(tasks) {
			end = len(tasks)
		}
		recs := make([]trace.Record, 0, end-start)
		for _, task := range tasks[start:end] {
			recs = append(recs, trace.FromTask(task))
		}
		var sub SubmitResponse
		if code := doJSON(t, "POST", base+"/tasks", SubmitRequest{Tasks: recs}, &sub); code != http.StatusOK {
			t.Fatalf("submit status %d", code)
		}
		if sub.Accepted != len(recs) {
			t.Fatalf("accepted %d != %d", sub.Accepted, len(recs))
		}
	}

	var status SessionInfo
	if code := doJSON(t, "GET", base, nil, &status); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if status.Submitted != len(tasks) {
		t.Fatalf("submitted %d != %d", status.Submitted, len(tasks))
	}

	var drain DrainResponse
	if code := doJSON(t, "DELETE", base, nil, &drain); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	if drain.Tasks != len(tasks) {
		t.Fatalf("drained %d tasks, submitted %d", drain.Tasks, len(tasks))
	}
	if drain.Policy != "lmc" {
		t.Fatalf("policy %q", drain.Policy)
	}

	// The tombstone keeps the complete trace readable: replay it.
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events, err := obs.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := report.TimelineFromEvents(events); err != nil {
		t.Fatalf("trace does not replay: %v", err)
	}
	reg := obs.NewRegistry()
	sink := obs.NewMetricsSink(reg)
	for _, ev := range events {
		sink.Emit(ev)
	}
	snap := reg.Snapshot()
	energy := snap.Counters["sim.energy_j"]
	turnaround := snap.Histograms["sim.turnaround_s"].Sum
	replayCost := 0.1*energy + 0.4*turnaround
	if math.Abs(replayCost-drain.TotalCost) > 1e-6*math.Abs(drain.TotalCost) {
		t.Fatalf("replayed cost %v != reported %v", replayCost, drain.TotalCost)
	}
	if snap.Counters["sim.tasks.completed"] != float64(len(tasks)) {
		t.Fatalf("trace completes %v tasks, want %d", snap.Counters["sim.tasks.completed"], len(tasks))
	}

	// Second DELETE purges; the session then 404s.
	if code := doJSON(t, "DELETE", base, nil, nil); code != http.StatusNoContent {
		t.Fatalf("purge status %d", code)
	}
	if code := doJSON(t, "GET", base, nil, nil); code != http.StatusNotFound {
		t.Fatalf("status after purge %d", code)
	}
}

func TestSessionRejectsStaleArrivalsAndDrainedSubmits(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/v1/sessions", PlatformSpec{Cores: 1}, &info)
	base := ts.URL + "/v1/sessions/" + info.ID

	if code := doJSON(t, "POST", base+"/tasks", SubmitRequest{
		Tasks: []trace.Record{{ID: 0, Cycles: 5, Arrival: 10}},
	}, nil); code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	var eresp errorResponse
	if code := doJSON(t, "POST", base+"/tasks", SubmitRequest{
		Tasks: []trace.Record{{ID: 1, Cycles: 5, Arrival: 3}},
	}, &eresp); code != http.StatusBadRequest || !strings.Contains(eresp.Error.Message, "before the session clock") {
		t.Fatalf("stale arrival: status %d error %+v", code, eresp.Error)
	}
	if code := doJSON(t, "DELETE", base, nil, nil); code != http.StatusOK {
		t.Fatalf("drain status %d", code)
	}
	if code := doJSON(t, "POST", base+"/tasks", SubmitRequest{
		Tasks: []trace.Record{{ID: 2, Cycles: 5, Arrival: 1e6}},
	}, &eresp); code != http.StatusConflict || eresp.Error.Code != "session_drained" {
		t.Fatalf("submit after drain: status %d error %+v", code, eresp.Error)
	}
}

// TestConcurrentSessions hammers several sessions from several
// goroutines; run under -race this is the shard-isolation proof.
func TestConcurrentSessions(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const nSessions = 4
	const perSession = 3 // goroutines per session submitting disjoint ID ranges

	var wg sync.WaitGroup
	errs := make(chan error, nSessions*perSession)
	for si := 0; si < nSessions; si++ {
		var info SessionInfo
		if code := doJSON(t, "POST", ts.URL+"/v1/sessions", PlatformSpec{Cores: 2}, &info); code != http.StatusCreated {
			t.Fatalf("create status %d", code)
		}
		base := ts.URL + "/v1/sessions/" + info.ID
		for g := 0; g < perSession; g++ {
			wg.Add(1)
			go func(base string, g int) {
				defer wg.Done()
				// Monotone arrivals per goroutine; the shard may bounce
				// some as stale versus another goroutine's progress —
				// that's expected, only transport errors fail the test.
				for i := 0; i < 10; i++ {
					recs := []trace.Record{{ID: g*1000 + i, Cycles: 1 + float64(i), Arrival: float64(i)}}
					body, _ := json.Marshal(SubmitRequest{Tasks: recs})
					resp, err := http.Post(base+"/tasks", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest &&
						resp.StatusCode != http.StatusTooManyRequests {
						errs <- fmt.Errorf("submit status %d", resp.StatusCode)
						return
					}
				}
			}(base, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	summaries := s.DrainAll(context.Background())
	if len(summaries) == 0 {
		t.Fatal("DrainAll drained nothing")
	}
	for _, sum := range summaries {
		if sum.Err != nil {
			t.Fatalf("drain %s: %v", sum.ID, sum.Err)
		}
	}
}

// TestDrainAllCompletesPendingWork verifies shutdown drains without
// dropping tasks.
func TestDrainAllCompletesPendingWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/v1/sessions", PlatformSpec{Cores: 2}, &info)
	base := ts.URL + "/v1/sessions/" + info.ID

	// Tasks arriving far apart: after submit, most work is pending.
	recs := make([]trace.Record, 10)
	for i := range recs {
		recs[i] = trace.Record{ID: i, Cycles: 100, Arrival: float64(i * 10)}
	}
	var sub SubmitResponse
	if code := doJSON(t, "POST", base+"/tasks", SubmitRequest{Tasks: recs}, &sub); code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	if sub.Pending == 0 {
		t.Fatal("expected pending work before shutdown")
	}
	summaries := s.DrainAll(context.Background())
	if len(summaries) != 1 || summaries[0].Err != nil {
		t.Fatalf("summaries: %+v", summaries)
	}
	if summaries[0].Tasks != len(recs) {
		t.Fatalf("drain completed %d tasks, submitted %d", summaries[0].Tasks, len(recs))
	}
	snap := s.Registry().Snapshot()
	if snap.Gauges[obs.ServerSessionsOpen] != 0 {
		t.Fatalf("open-sessions gauge %v after drain", snap.Gauges[obs.ServerSessionsOpen])
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var hz healthzResponse
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, hz)
	}
	doJSON(t, "POST", ts.URL+"/v1/plan", PlanRequest{Tasks: batchRecords(4, 6)}, nil)
	var snap obs.Snapshot
	if code := doJSON(t, "GET", ts.URL+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Counters[obs.ServerRequests] < 2 {
		t.Fatalf("requests counter %v", snap.Counters[obs.ServerRequests])
	}
	if snap.Counters[obs.ServerPlans] != 1 {
		t.Fatalf("plans counter %v", snap.Counters[obs.ServerPlans])
	}
}

// TestPanicRecovery routes a panicking handler through the middleware.
func TestPanicRecovery(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.instrument(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d", rec.Code)
	}
	if got := s.Registry().Snapshot().Counters[obs.ServerPanics]; got != 1 {
		t.Fatalf("panics counter %v", got)
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("b", 2)
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatal("a missing")
	}
	c.put("c", 3) // evicts b (a was refreshed)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}
	c.put("a", 9)
	if v, _ := c.get("a"); v.(int) != 9 {
		t.Fatal("refresh did not update value")
	}
	disabled := newLRUCache(0)
	disabled.put("x", 1)
	if _, ok := disabled.get("x"); ok {
		t.Fatal("disabled cache stored a value")
	}
}
