package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"

	"dvfsched/internal/obs"
	"dvfsched/internal/trace"
)

// fakeCluster is a scriptable Cluster implementation: the test decides
// the candidate chain, the address book, and whether EnsureLocal /
// Replicate fail, and it records every replicated mutation in order.
type fakeCluster struct {
	self  string
	addrs map[string]string

	mu           sync.Mutex
	routes       []string
	seq          int
	mutations    []Mutation
	observed     map[string]error
	ensureErr    error
	replicateErr error
}

func (f *fakeCluster) Self() string { return f.self }

func (f *fakeCluster) Epoch() uint64 { return 1 }

func (f *fakeCluster) Route(string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.routes...)
}

func (f *fakeCluster) Addr(node string) string { return f.addrs[node] }

func (f *fakeCluster) Observe(node string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.observed == nil {
		f.observed = map[string]error{}
	}
	f.observed[node] = err
}

func (f *fakeCluster) NewSessionID() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	return fmt.Sprintf("s-%s-%03d", f.self, f.seq)
}

func (f *fakeCluster) EnsureLocal(context.Context, string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ensureErr
}

func (f *fakeCluster) Replicate(_ context.Context, _ string, m Mutation) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mutations = append(f.mutations, m)
	return f.replicateErr
}

func (f *fakeCluster) replicated() []Mutation {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Mutation(nil), f.mutations...)
}

// newRouterNode boots one Server fronted by a Router over a
// fakeCluster that, by default, routes everything to itself.
func newRouterNode(t *testing.T, self string) (*Server, *fakeCluster, *httptest.Server) {
	t.Helper()
	s := New(Config{})
	fc := &fakeCluster{self: self, routes: []string{self}, addrs: map[string]string{}}
	ts := httptest.NewServer(NewRouter(s, fc))
	fc.addrs[self] = ts.URL
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, fc, ts
}

// TestRouterLocalLifecycle drives a full session lifecycle through a
// self-owned router: the ID is minted by the cluster, every mutation is
// replicated in order (including the 204-purge reclassification of the
// second DELETE), and non-session routes bypass the router entirely.
func TestRouterLocalLifecycle(t *testing.T) {
	s, fc, ts := newRouterNode(t, "a")

	var info SessionInfo
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", map[string]any{"cores": 2}, &info); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if info.ID != "s-a-001" {
		t.Fatalf("session ID %q not minted by the cluster", info.ID)
	}
	if !s.HasSession(info.ID) {
		t.Fatal("HasSession false for a live session")
	}
	if _, ok := s.SessionSpec(info.ID); !ok {
		t.Fatal("SessionSpec missing for a live session")
	}
	if got := s.Sessions(); got != 1 {
		t.Fatalf("Sessions() = %d, want 1", got)
	}

	path := ts.URL + "/v1/sessions/" + info.ID
	sub := SubmitRequest{Tasks: []trace.Record{{ID: 1, Cycles: 5, Arrival: 0.1}, {ID: 2, Cycles: 3, Arrival: 0.2}}}
	if code := doJSON(t, http.MethodPost, path+"/tasks", sub, nil); code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}

	evs, err := s.SessionEventsSince(info.ID, 0)
	if err != nil || len(evs) == 0 {
		t.Fatalf("SessionEventsSince: %d events, err %v", len(evs), err)
	}
	if tail, err := s.SessionEventsSince(info.ID, evs[0].Seq); err != nil || len(tail) != len(evs)-1 {
		t.Fatalf("SessionEventsSince(after first) = %d events, err %v, want %d", len(tail), err, len(evs)-1)
	}
	if _, err := s.SessionEventsSince("nope", 0); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("SessionEventsSince unknown: %v, want ErrSessionGone", err)
	}

	// Status and events are reads: no replication.
	if code := doJSON(t, http.MethodGet, path, nil, &info); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	code, body, hdr := getRaw(t, path+"/events")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("events: %d (%d bytes)", code, len(body))
	}
	if hdr.Get("X-Event-Count") == "" {
		t.Fatal("events reply missing X-Event-Count")
	}

	var dr DrainResponse
	if code := doJSON(t, http.MethodDelete, path, nil, &dr); code != http.StatusOK {
		t.Fatalf("drain: %d", code)
	}
	if dr.Tasks != 2 {
		t.Fatalf("drained %d tasks, want 2", dr.Tasks)
	}
	if code := doJSON(t, http.MethodDelete, path, nil, nil); code != http.StatusNoContent {
		t.Fatalf("purge: %d", code)
	}

	want := []Mutation{MutationCreate, MutationSubmit, MutationDrain, MutationPurge}
	got := fc.replicated()
	if len(got) != len(want) {
		t.Fatalf("replicated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replicated %v, want %v", got, want)
		}
	}

	// Non-session routes bypass the session router.
	if code, _, _ := getRaw(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz through router: %d", code)
	}
	// A prefix collision is not a session path.
	if code, _, _ := getRaw(t, ts.URL+"/v1/sessionsfoo"); code != http.StatusNotFound {
		t.Fatalf("/v1/sessionsfoo: %d, want 404", code)
	}
	// The collection route only accepts POST.
	if code, _, _ := getRaw(t, ts.URL+"/v1/sessions"); code == http.StatusOK {
		t.Fatalf("GET collection route: %d, want an error status", code)
	}
}

// TestRouterForward places the session on a remote node: the front
// must proxy the whole lifecycle and relay bodies and headers.
func TestRouterForward(t *testing.T) {
	owner, _, ownerTS := newRouterNode(t, "b")
	front := New(Config{})
	fc := &fakeCluster{self: "a", routes: []string{"b"}, addrs: map[string]string{"b": ownerTS.URL}}
	frontTS := httptest.NewServer(NewRouter(front, fc))
	t.Cleanup(func() {
		frontTS.Close()
		front.Close()
	})

	var info SessionInfo
	if code := doJSON(t, http.MethodPost, frontTS.URL+"/v1/sessions", map[string]any{"cores": 2}, &info); code != http.StatusCreated {
		t.Fatalf("forwarded create: %d", code)
	}
	if !owner.HasSession(info.ID) {
		t.Fatal("session did not land on the owner")
	}
	if front.HasSession(info.ID) {
		t.Fatal("session leaked onto the front")
	}

	path := frontTS.URL + "/v1/sessions/" + info.ID
	sub := SubmitRequest{Tasks: []trace.Record{{ID: 7, Cycles: 4, Arrival: 0.3}}}
	if code := doJSON(t, http.MethodPost, path+"/tasks", sub, nil); code != http.StatusOK {
		t.Fatalf("forwarded submit: %d", code)
	}
	code, body, hdr := getRaw(t, path+"/events")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"arrival"`)) {
		t.Fatalf("forwarded events: %d %q", code, body)
	}
	if hdr.Get("X-Event-Count") == "" {
		t.Fatal("forward dropped X-Event-Count")
	}
	var dr DrainResponse
	if code := doJSON(t, http.MethodDelete, path, nil, &dr); code != http.StatusOK || dr.Tasks != 1 {
		t.Fatalf("forwarded drain: %d, %d tasks", code, dr.Tasks)
	}
	if v := front.Registry().Snapshot().Counters[obs.ClusterForwards]; v == 0 {
		t.Fatal("ClusterForwards stayed 0 across a forwarded lifecycle")
	}
	// Errors forward byte-for-byte too.
	if code := doJSON(t, http.MethodGet, frontTS.URL+"/v1/sessions/unknown", nil, nil); code != http.StatusNotFound {
		t.Fatalf("forwarded unknown session: %d, want 404", code)
	}
}

// refusedAddr returns a loopback URL that refuses connections.
func refusedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

// TestRouterFailover exercises the candidate chain: a refused owner
// fails over to the next candidate (here: ourselves), any other
// transport error is surfaced as 502, and an empty chain is 503.
func TestRouterFailover(t *testing.T) {
	_, fc, ts := newRouterNode(t, "a")
	fc.addrs["dead"] = refusedAddr(t)

	fc.mu.Lock()
	fc.routes = []string{"dead", "a"}
	fc.mu.Unlock()
	var info SessionInfo
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", map[string]any{"cores": 2}, &info); code != http.StatusCreated {
		t.Fatalf("create via failover: %d", code)
	}
	fc.mu.Lock()
	obsErr, seen := fc.observed["dead"]
	fc.mu.Unlock()
	if !seen || obsErr == nil {
		t.Fatal("refused connection was not observed as down")
	}

	// Refused connection with no next candidate: 503 after the loop.
	fc.mu.Lock()
	fc.routes = []string{"dead"}
	fc.mu.Unlock()
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+info.ID, nil, nil); code != http.StatusBadGateway {
		t.Fatalf("refused-only chain: %d, want 502", code)
	}

	// A malformed peer address is not a refused connection: 502, no
	// failover even with a live candidate behind it.
	fc.addrs["bad"] = "http://\x7f"
	fc.mu.Lock()
	fc.routes = []string{"bad", "a"}
	fc.mu.Unlock()
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+info.ID, nil, nil); code != http.StatusBadGateway {
		t.Fatalf("non-refused transport error: %d, want 502", code)
	}

	// No live candidates at all: 503.
	fc.mu.Lock()
	fc.routes = nil
	fc.mu.Unlock()
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+info.ID, nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("empty chain: %d, want 503", code)
	}
}

// TestRouterReplicationVeto: a failed replication suppresses the ack
// for submits (502; the client retries idempotently) but degrades for
// other mutations; a failed EnsureLocal fails the request outright.
func TestRouterReplicationVeto(t *testing.T) {
	s, fc, ts := newRouterNode(t, "a")

	fc.mu.Lock()
	fc.replicateErr = errors.New("replica unreachable")
	fc.mu.Unlock()

	// Create degrades: 201 despite the replication failure.
	var info SessionInfo
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", map[string]any{"cores": 2}, &info); code != http.StatusCreated {
		t.Fatalf("create with failing replication: %d", code)
	}

	// Submit is vetoed: 502 and the ack is suppressed — but the tasks
	// were accepted locally, so a retry sees duplicate IDs.
	path := ts.URL + "/v1/sessions/" + info.ID
	sub := SubmitRequest{Tasks: []trace.Record{{ID: 1, Cycles: 5, Arrival: 0.1}}}
	if code := doJSON(t, http.MethodPost, path+"/tasks", sub, nil); code != http.StatusBadGateway {
		t.Fatalf("submit with failing replication: %d, want 502", code)
	}
	if v := s.Registry().Snapshot().Counters[obs.ClusterReplicationErrors]; v == 0 {
		t.Fatal("ClusterReplicationErrors stayed 0")
	}

	fc.mu.Lock()
	fc.replicateErr = nil
	fc.ensureErr = errors.New("replica state corrupt")
	fc.mu.Unlock()
	if code := doJSON(t, http.MethodGet, path, nil, nil); code != http.StatusInternalServerError {
		t.Fatalf("EnsureLocal failure: %d, want 500", code)
	}
}

func TestValidSessionID(t *testing.T) {
	for _, tc := range []struct {
		id string
		ok bool
	}{
		{"s-n1-000001", true},
		{"A.b_c-9", true},
		{"", false},
		{"has space", false},
		{"slash/y", false},
		{string(make([]byte, 65)), false},
	} {
		if got := validSessionID(tc.id); got != tc.ok {
			t.Errorf("validSessionID(%q) = %v, want %v", tc.id, got, tc.ok)
		}
	}
}

// TestAdoptSessionParity is the in-package failover drill: run a
// session on one server, ship its checkpoint + log to a second, adopt
// it there, and require the adopted session to serve and drain exactly
// like the original would have.
func TestAdoptSessionParity(t *testing.T) {
	owner, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL)
	recs := make([]trace.Record, 12)
	for i := range recs {
		recs[i] = trace.Record{ID: i + 1, Cycles: 2 + float64(i), Arrival: float64(i) * 0.05}
	}
	submitOver(t, ts.URL, id, recs[:8], true)

	ctx := context.Background()
	checkpoint, err := owner.SnapshotSession(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.SnapshotSession(ctx, "nope"); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("snapshot unknown: %v, want ErrSessionGone", err)
	}
	submitOver(t, ts.URL, id, recs[8:], true)
	spec, ok := owner.SessionSpec(id)
	if !ok {
		t.Fatal("owner lost the session spec")
	}
	log, err := owner.SessionEventsSince(id, 0)
	if err != nil {
		t.Fatal(err)
	}

	standby, standbyTS := newTestServer(t, Config{})
	if _, err := standby.AdoptSession(ctx, "bad id!", spec, checkpoint, log); err == nil {
		t.Fatal("AdoptSession accepted an invalid ID")
	}
	info, err := standby.AdoptSession(ctx, id, spec, checkpoint, log)
	if err != nil {
		t.Fatal(err)
	}
	if info.Submitted != len(recs) {
		t.Fatalf("adopted session carries %d submitted tasks, want %d", info.Submitted, len(recs))
	}
	if _, err := standby.AdoptSession(ctx, id, spec, checkpoint, log); err == nil {
		t.Fatal("AdoptSession accepted a duplicate ID")
	}

	// The owner and the adopted copy drain to the same trace, bit for
	// bit — checkpoint restore plus suffix replay loses nothing.
	var drOwner, drAdopted DrainResponse
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil, &drOwner); code != http.StatusOK {
		t.Fatalf("owner drain: %d", code)
	}
	if code := doJSON(t, http.MethodDelete, standbyTS.URL+"/v1/sessions/"+id, nil, &drAdopted); code != http.StatusOK {
		t.Fatalf("adopted drain: %d", code)
	}
	if drOwner.Tasks != drAdopted.Tasks || drOwner.TotalCost != drAdopted.TotalCost {
		t.Fatalf("drain diverged: owner %d tasks cost %g, adopted %d tasks cost %g",
			drOwner.Tasks, drOwner.TotalCost, drAdopted.Tasks, drAdopted.TotalCost)
	}
	_, evOwner, _ := getRaw(t, ts.URL+"/v1/sessions/"+id+"/events")
	_, evAdopted, _ := getRaw(t, standbyTS.URL+"/v1/sessions/"+id+"/events")
	if !bytes.Equal(evOwner, evAdopted) {
		t.Fatal("adopted trace is not byte-identical to the owner's")
	}
}

// TestReplaySessionErrors covers the rebuild failure modes: a corrupt
// checkpoint, a bad spec, and a fresh (checkpoint-free) rebuild.
func TestReplaySessionErrors(t *testing.T) {
	ctx := context.Background()
	spec := PlatformSpec{Cores: 2}
	if _, err := ReplaySession(ctx, spec, 0, []byte("garbage"), nil); err == nil {
		t.Fatal("ReplaySession accepted a corrupt checkpoint")
	}
	if _, err := ReplaySession(ctx, PlatformSpec{Cores: -1}, 0, nil, nil); err == nil {
		t.Fatal("ReplaySession accepted a bad spec")
	}
	rb, err := ReplaySession(ctx, spec, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb.Sess.Close()
}

// closeBody is a response body that records Close, so tests can pin
// the forwarding path's cleanup contract.
type closeBody struct {
	io.Reader
	closed bool
}

func (b *closeBody) Close() error { b.closed = true; return nil }

// scriptedTransport returns canned responses or errors without a
// network, in call order.
type scriptedTransport struct {
	mu    sync.Mutex
	calls int
	round func(call int, r *http.Request) (*http.Response, error)
}

func (st *scriptedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	st.mu.Lock()
	call := st.calls
	st.calls++
	st.mu.Unlock()
	return st.round(call, r)
}

// TestRouterForwardClosesBody: a forwarded response body must be
// closed after the relay, or sustained forwarding pins every upstream
// connection the transport ever opened.
func TestRouterForwardClosesBody(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	fc := &fakeCluster{self: "a", routes: []string{"b"}, addrs: map[string]string{"b": "http://peer-b"}}
	rt := NewRouter(s, fc)

	body := &closeBody{Reader: strings.NewReader(`{"id":"x"}`)}
	rt.client.Transport = &scriptedTransport{round: func(int, *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       body,
		}, nil
	}}

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/sessions/x/result", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != `{"id":"x"}` {
		t.Fatalf("relay = %d %q, want 200 with the peer's body", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Content-Type") != "application/json" {
		t.Fatal("relay dropped Content-Type")
	}
	if !body.closed {
		t.Fatal("forwarded response body was not closed")
	}
}

// TestRouterFailoverClosesNothing: a refused connection fails over to
// the next candidate (here: local), marks the dead peer down, and the
// request still succeeds; any body a later candidate returns is still
// closed.
func TestRouterFailoverRefusedConn(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	fc := &fakeCluster{self: "a", routes: []string{"b", "a"}, addrs: map[string]string{"b": "http://peer-b"}}
	rt := NewRouter(s, fc)
	refused := &net.OpError{Op: "dial", Err: &os.SyscallError{Syscall: "connect", Err: syscall.ECONNREFUSED}}
	rt.client.Transport = &scriptedTransport{round: func(int, *http.Request) (*http.Response, error) {
		return nil, refused
	}}

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/sessions/nope/result", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("failover to local = %d, want the local 404", rec.Code)
	}
	fc.mu.Lock()
	obsErr := fc.observed["b"]
	fc.mu.Unlock()
	if obsErr == nil {
		t.Fatal("refused peer was not observed down")
	}
}
