// Package platform models the hardware the paper evaluates on: CPUs
// with per-core DVFS (frequency/energy tables), and the execution
// non-idealities — shared-resource contention and non-proportional
// frequency scaling — that the paper identifies as the source of the
// ~8% gap between its analytic model and measurements (Section V-A2).
package platform

import (
	"fmt"

	"dvfsched/internal/model"
)

// TableII returns the five-level rate table of Table II of the paper
// (Intel i7-950 steps used in the batch-mode experiments): rates in
// GHz, E(p) in nJ/cycle, T(p) in ns/cycle.
func TableII() *model.RateTable {
	return model.MustRateTable([]model.RateLevel{
		{Rate: 1.6, Energy: 3.375, Time: 0.625},
		{Rate: 2.0, Energy: 4.22, Time: 0.5},
		{Rate: 2.4, Energy: 5.0, Time: 0.42},
		{Rate: 2.8, Energy: 6.0, Time: 0.36},
		{Rate: 3.0, Energy: 7.1, Time: 0.33},
	})
}

// fittedEnergy interpolates E(p) = a + b*p^2, the classical
// static-plus-quadratic-dynamic per-cycle energy, with a and b fitted
// to Table II's endpoints (E(1.6)=3.375, E(3.0)=7.1).
func fittedEnergy(p float64) float64 {
	const (
		b = (7.1 - 3.375) / (3.0*3.0 - 1.6*1.6)
		a = 3.375 - b*1.6*1.6
	)
	return a + b*p*p
}

// IntelI7950 returns the full 12-step frequency ladder of the Intel
// Core i7-950 the paper's testbed exposes (1.60-3.06 GHz), with
// per-cycle energies from the Table II quadratic fit and T(p) = 1/p.
func IntelI7950() *model.RateTable {
	steps := []float64{1.60, 1.73, 1.86, 2.00, 2.13, 2.26, 2.40, 2.53, 2.66, 2.80, 2.93, 3.06}
	levels := make([]model.RateLevel, len(steps))
	for i, p := range steps {
		levels[i] = model.RateLevel{Rate: p, Energy: fittedEnergy(p), Time: 1 / p}
	}
	return model.MustRateTable(levels)
}

// ExynosT4412 returns a rate table for the ARM Exynos-4412 the paper
// cites (0.2-1.7 GHz in 0.1 GHz steps), with a mobile-class energy
// curve E(p) = 0.15 + 0.35*p^2 nJ/cycle.
func ExynosT4412() *model.RateTable {
	levels := make([]model.RateLevel, 0, 16)
	for i := 2; i <= 17; i++ {
		p := float64(i) / 10
		levels = append(levels, model.RateLevel{Rate: p, Energy: 0.15 + 0.35*p*p, Time: 1 / p})
	}
	return model.MustRateTable(levels)
}

// ExecutionModel maps a nominal rate level to the effective per-cycle
// time and energy a task observes, given how many cores are busy.
// The analytic cost model of the paper corresponds to Ideal; the
// "experiment" side of Fig. 1 corresponds to a Realistic model.
type ExecutionModel interface {
	// TimePerCycle returns the effective ns/cycle at level l while
	// activeCores cores (including this one) are busy.
	TimePerCycle(l model.RateLevel, activeCores int) float64
	// EnergyPerCycle returns the effective nJ/cycle under the same
	// conditions.
	EnergyPerCycle(l model.RateLevel, activeCores int) float64
}

// Ideal executes exactly at the rate table's T and E: the assumptions
// of the analytic model.
type Ideal struct{}

// TimePerCycle returns l.Time unchanged.
func (Ideal) TimePerCycle(l model.RateLevel, _ int) float64 { return l.Time }

// EnergyPerCycle returns l.Energy unchanged.
func (Ideal) EnergyPerCycle(l model.RateLevel, _ int) float64 { return l.Energy }

// Realistic adds the two effects the paper blames for its 8%
// sim-vs-experiment gap:
//
//  1. co-running tasks contend for the last-level cache and memory, so
//     the memory-bound fraction of cycles stretches with the number of
//     active cores;
//  2. doubling the frequency does not halve execution time, because
//     the memory-bound fraction does not scale with core frequency.
//
// A MemFraction of the cycles takes MemTime ns regardless of
// frequency, inflated by ContentionPenalty per additional active core;
// static power (StaticWatts) keeps burning during those stall cycles.
type Realistic struct {
	// MemFraction is the fraction of cycles that are memory-bound
	// (0..1).
	MemFraction float64
	// MemTime is the ns cost of a memory-bound cycle at one active
	// core.
	MemTime float64
	// ContentionPenalty is the fractional slowdown of memory-bound
	// cycles per additional active core.
	ContentionPenalty float64
	// StaticWatts is the static power burned during stall time, in
	// watts (1 W = 1 nJ/ns).
	StaticWatts float64
}

// Validate checks parameter sanity.
func (r Realistic) Validate() error {
	if r.MemFraction < 0 || r.MemFraction >= 1 {
		return fmt.Errorf("platform: MemFraction must be in [0,1), got %v", r.MemFraction)
	}
	if r.MemTime < 0 || r.ContentionPenalty < 0 || r.StaticWatts < 0 {
		return fmt.Errorf("platform: negative Realistic parameter: %+v", r)
	}
	return nil
}

// TimePerCycle implements ExecutionModel.
func (r Realistic) TimePerCycle(l model.RateLevel, activeCores int) float64 {
	extra := 0.0
	if activeCores > 1 {
		extra = r.ContentionPenalty * float64(activeCores-1)
	}
	return (1-r.MemFraction)*l.Time + r.MemFraction*r.MemTime*(1+extra)
}

// EnergyPerCycle implements ExecutionModel: nominal energy plus static
// power during the stall time beyond the nominal cycle time.
func (r Realistic) EnergyPerCycle(l model.RateLevel, activeCores int) float64 {
	stall := r.TimePerCycle(l, activeCores) - l.Time
	if stall < 0 {
		stall = 0
	}
	return l.Energy + r.StaticWatts*stall
}

// DefaultRealistic is the Realistic model calibrated so that executing
// the paper's SPEC batch on four cores costs ~8% more than the
// analytic model predicts, reproducing Fig. 1.
func DefaultRealistic() Realistic {
	return Realistic{
		MemFraction:       0.12,
		MemTime:           0.75,
		ContentionPenalty: 0.22,
		StaticWatts:       1.5,
	}
}

// Platform bundles the per-core rate tables with the execution model
// and DVFS switching overhead.
type Platform struct {
	// Cores holds one rate table per core.
	Cores []*model.RateTable
	// Exec is the execution model; nil means Ideal.
	Exec ExecutionModel
	// SwitchLatency is the time a frequency change stalls the core,
	// in seconds (tens of microseconds on real hardware).
	SwitchLatency float64
	// IdleWatts is per-core idle power. The paper subtracts the idle
	// reading from its measurements, so experiments use 0; set it to
	// study total-system energy.
	IdleWatts float64
}

// Homogeneous builds a platform of n identical cores.
func Homogeneous(n int, rates *model.RateTable, exec ExecutionModel) *Platform {
	cores := make([]*model.RateTable, n)
	for i := range cores {
		cores[i] = rates
	}
	return &Platform{Cores: cores, Exec: exec}
}

// Validate checks the platform definition.
func (p *Platform) Validate() error {
	if len(p.Cores) == 0 {
		return fmt.Errorf("platform: no cores")
	}
	for i, rt := range p.Cores {
		if err := rt.Validate(); err != nil {
			return fmt.Errorf("platform: core %d: %w", i, err)
		}
	}
	if p.SwitchLatency < 0 {
		return fmt.Errorf("platform: negative switch latency")
	}
	if p.IdleWatts < 0 {
		return fmt.Errorf("platform: negative idle power")
	}
	if r, ok := p.Exec.(Realistic); ok {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ExecModel returns the execution model, defaulting to Ideal.
func (p *Platform) ExecModel() ExecutionModel {
	if p.Exec == nil {
		return Ideal{}
	}
	return p.Exec
}

// NumCores returns the core count.
func (p *Platform) NumCores() int { return len(p.Cores) }
