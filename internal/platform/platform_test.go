package platform

import (
	"math"
	"testing"

	"dvfsched/internal/model"
)

func TestTableIIMatchesPaper(t *testing.T) {
	rt := TableII()
	if rt.Len() != 5 {
		t.Fatalf("Len = %d, want 5", rt.Len())
	}
	want := []struct{ p, e, tt float64 }{
		{1.6, 3.375, 0.625},
		{2.0, 4.22, 0.5},
		{2.4, 5.0, 0.42},
		{2.8, 6.0, 0.36},
		{3.0, 7.1, 0.33},
	}
	for i, w := range want {
		l := rt.Level(i)
		if l.Rate != w.p || l.Energy != w.e || l.Time != w.tt {
			t.Errorf("level %d = %+v, want %+v", i, l, w)
		}
	}
}

func TestIntelI7950(t *testing.T) {
	rt := IntelI7950()
	if rt.Len() != 12 {
		t.Fatalf("Len = %d, want 12", rt.Len())
	}
	if rt.Min().Rate != 1.60 || rt.Max().Rate != 3.06 {
		t.Errorf("range %v..%v", rt.Min().Rate, rt.Max().Rate)
	}
	// The fit passes through Table II's endpoints.
	if math.Abs(rt.Min().Energy-3.375) > 1e-9 {
		t.Errorf("E(1.6) = %v, want 3.375", rt.Min().Energy)
	}
	if err := rt.Validate(); err != nil {
		t.Error(err)
	}
}

func TestExynosT4412(t *testing.T) {
	rt := ExynosT4412()
	if rt.Len() != 16 {
		t.Fatalf("Len = %d, want 16", rt.Len())
	}
	if math.Abs(rt.Min().Rate-0.2) > 1e-9 || math.Abs(rt.Max().Rate-1.7) > 1e-9 {
		t.Errorf("range %v..%v", rt.Min().Rate, rt.Max().Rate)
	}
	// Mobile chip draws far less per cycle than the desktop part.
	if rt.Max().Energy >= TableII().Min().Energy {
		t.Errorf("Exynos max E %v not below i7 min E", rt.Max().Energy)
	}
}

func TestIdealModel(t *testing.T) {
	l := model.RateLevel{Rate: 2, Energy: 4, Time: 0.5}
	var m Ideal
	for _, active := range []int{1, 2, 8} {
		if m.TimePerCycle(l, active) != 0.5 || m.EnergyPerCycle(l, active) != 4 {
			t.Error("Ideal must not depend on active cores")
		}
	}
}

func TestRealisticSlowdownMonotone(t *testing.T) {
	r := DefaultRealistic()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	l := TableII().Max()
	t1 := r.TimePerCycle(l, 1)
	t4 := r.TimePerCycle(l, 4)
	if t1 < l.Time {
		t.Errorf("realistic time %v below nominal %v", t1, l.Time)
	}
	if t4 <= t1 {
		t.Errorf("contention did not slow down: %v vs %v", t4, t1)
	}
	if r.EnergyPerCycle(l, 4) <= r.EnergyPerCycle(l, 1) {
		t.Error("stall energy did not grow with contention")
	}
	if r.EnergyPerCycle(l, 1) < l.Energy {
		t.Error("realistic energy below nominal")
	}
}

func TestRealisticNonIdealScaling(t *testing.T) {
	// Doubling frequency must less-than-halve execution time.
	r := DefaultRealistic()
	lo := model.RateLevel{Rate: 1.5, Energy: 4, Time: 1 / 1.5}
	hi := model.RateLevel{Rate: 3.0, Energy: 8, Time: 1 / 3.0}
	speedup := r.TimePerCycle(lo, 1) / r.TimePerCycle(hi, 1)
	if speedup >= 2 {
		t.Errorf("speedup %v, want < 2 (non-ideal scaling)", speedup)
	}
	if speedup <= 1 {
		t.Errorf("speedup %v, want > 1", speedup)
	}
}

func TestRealisticValidate(t *testing.T) {
	bad := []Realistic{
		{MemFraction: -0.1},
		{MemFraction: 1.0},
		{MemFraction: 0.5, MemTime: -1},
		{MemFraction: 0.5, ContentionPenalty: -1},
		{MemFraction: 0.5, StaticWatts: -1},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("expected error for %+v", r)
		}
	}
}

func TestPlatformValidate(t *testing.T) {
	p := Homogeneous(4, TableII(), Ideal{})
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if p.NumCores() != 4 {
		t.Errorf("NumCores = %d", p.NumCores())
	}
	if (&Platform{}).Validate() == nil {
		t.Error("empty platform accepted")
	}
	bad := Homogeneous(1, TableII(), Realistic{MemFraction: -1})
	if bad.Validate() == nil {
		t.Error("invalid exec model accepted")
	}
	neg := Homogeneous(1, TableII(), Ideal{})
	neg.SwitchLatency = -1
	if neg.Validate() == nil {
		t.Error("negative switch latency accepted")
	}
}

func TestExecModelDefault(t *testing.T) {
	p := &Platform{Cores: []*model.RateTable{TableII()}}
	if _, ok := p.ExecModel().(Ideal); !ok {
		t.Error("nil Exec did not default to Ideal")
	}
}
