// Package dynsched implements the paper's dynamic single-core
// scheduling structure (Section IV-A, Algorithms 4-6): a schedule of
// batch tasks kept in the optimal shortest-first order under arbitrary
// insertions and deletions, with the total cost C maintained
// incrementally.
//
// Tasks live in a range tree sorted by length descending, so a task's
// rank is its backward position k^B (rank 1 executes last). Each
// dominating position range D_i = [lo_i, hi_i] (package envelope)
// tracks its occupied boundary positions [a_i, b_i], the aggregates
// x_i = ξ([a_i, b_i]) and d_i = Δ([a_i, b_i]), and handles to its
// boundary nodes α_i and β_i. An insertion or deletion shifts at most
// one task across each range boundary, so updates cost
// O(|P-hat| + log N) and the total cost is read back in Θ(1) per
// range set (Eq. 32):
//
//	C = Σ_i Re·E(p̂_i)·x_i + Rt·T(p̂_i)·(d_i + (a_i-1)·x_i).
package dynsched

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/rangetree"
)

// Sentinel errors, matchable via errors.Is. Detailed messages wrap
// these with %w.
var (
	// ErrBadCycles is returned when a task length is not positive and
	// finite.
	ErrBadCycles = errors.New("dynsched: cycles must be positive and finite")
	// ErrBadHandle is returned when a handle is nil or already deleted.
	ErrBadHandle = errors.New("dynsched: nil or already-deleted handle")
)

// Handle identifies a task inside a Scheduler.
type Handle struct {
	node   *rangetree.Node
	cycles float64
}

// Cycles returns the task length the handle was inserted with.
func (h *Handle) Cycles() float64 { return h.cycles }

// rangeState is the per-dominating-range bookkeeping of Algorithm 4.
type rangeState struct {
	lo, hi int // static bounds of D_i (hi may be envelope.Unbounded)
	a, b   int // occupied positions; empty iff b < a
	x, d   float64
	alpha  *rangetree.Node // node at position a, nil if empty
	beta   *rangetree.Node // node at position b, nil if empty
}

// Scheduler maintains one core's dynamic schedule.
type Scheduler struct {
	params model.CostParams
	env    *envelope.Envelope
	tree   *rangetree.Tree
	ranges []rangeState
	cost   float64

	// metric handles; nil until Instrument is called.
	insertCtr, deleteCtr *obs.Counter
	updateNs             *obs.Histogram
	clock                func() time.Time
}

// updateLatencyBuckets spans sub-microsecond range-tree updates
// through pathological millisecond stalls, in nanoseconds.
var updateLatencyBuckets = []float64{100, 250, 500, 1e3, 2.5e3, 5e3, 1e4, 1e5, 1e6}

// Instrument attaches a metrics registry: Insert and Delete count into
// "dynsched.inserts"/"dynsched.deletes" and observe their wall-clock
// latency into the "rangetree.update_ns" histogram. Schedulers sharing
// a registry (e.g. one per core) aggregate into the same metrics.
func (s *Scheduler) Instrument(reg *obs.Registry) {
	if reg == nil {
		s.insertCtr, s.deleteCtr, s.updateNs = nil, nil, nil
		return
	}
	s.insertCtr = reg.Counter("dynsched.inserts")
	s.deleteCtr = reg.Counter("dynsched.deletes")
	s.updateNs = reg.Histogram("rangetree.update_ns", updateLatencyBuckets)
}

// SetClock injects the wall clock used to time range-tree updates into
// the "rangetree.update_ns" histogram. The scheduler itself is
// deterministic, so it never reads time.Now on its own: callers that
// want latency observations pass time.Now here (internal/core does),
// while reproducible runs leave the clock nil and get counters only.
func (s *Scheduler) SetClock(now func() time.Time) { s.clock = now }

// observeUpdate starts timing one Insert/Delete; the returned func
// records the elapsed nanoseconds. A nil clock or histogram makes both
// halves no-ops.
func (s *Scheduler) observeUpdate() func() {
	if s.clock == nil || s.updateNs == nil {
		return func() {}
	}
	t0 := s.clock()
	return func() { s.updateNs.Observe(float64(s.clock().Sub(t0))) }
}

// New initializes the structure (Algorithm 4).
func New(params model.CostParams, rates *model.RateTable) (*Scheduler, error) {
	env, err := envelope.Compute(params, rates)
	if err != nil {
		return nil, err
	}
	return NewFromEnvelope(env), nil
}

// NewFromEnvelope builds a scheduler sharing an already-computed
// envelope (cores with identical rate tables can share one).
func NewFromEnvelope(env *envelope.Envelope) *Scheduler {
	s := &Scheduler{
		params: env.Params(),
		env:    env,
		tree:   rangetree.New(),
		ranges: make([]rangeState, env.NumRanges()),
	}
	for i := range s.ranges {
		r := env.Range(i)
		s.ranges[i] = rangeState{lo: r.Lo, hi: r.Hi, a: r.Lo, b: r.Lo - 1}
	}
	return s
}

// Len returns the number of scheduled tasks.
func (s *Scheduler) Len() int { return s.tree.Len() }

// Cost returns the maintained total cost C in cents. Θ(1): the value
// is updated during Insert and Delete.
func (s *Scheduler) Cost() float64 { return s.cost }

// Envelope returns the dominating-range envelope in use.
func (s *Scheduler) Envelope() *envelope.Envelope { return s.env }

// refreshCost recomputes C from the per-range aggregates (Algorithm 5
// line 22 / Algorithm 6 line 32). O(|P-hat|).
func (s *Scheduler) refreshCost() {
	var c float64
	for i := range s.ranges {
		r := &s.ranges[i]
		if r.b < r.a {
			continue
		}
		l := s.env.Range(i).Level
		c += s.params.Re*l.Energy*r.x + s.params.Rt*l.Time*(r.d+float64(r.a-1)*r.x)
	}
	s.cost = c
}

// Insert adds a task of the given length (Algorithm 5) and returns its
// handle. O(|P-hat| + log N).
func (s *Scheduler) Insert(cycles float64) (*Handle, error) {
	node, err := s.insertNode(cycles)
	if err != nil {
		return nil, err
	}
	return &Handle{node: node, cycles: cycles}, nil
}

// insertNode is Insert without the Handle wrapper: the allocation-free
// form used by MarginalInsertCost, whose trial insert would otherwise
// allocate a Handle per candidate probe.
func (s *Scheduler) insertNode(cycles float64) (*rangetree.Node, error) {
	if cycles <= 0 || math.IsNaN(cycles) || math.IsInf(cycles, 0) {
		return nil, fmt.Errorf("%w, got %v", ErrBadCycles, cycles)
	}
	if s.insertCtr != nil {
		s.insertCtr.Inc()
		defer s.observeUpdate()()
	}
	node := s.tree.Insert(cycles)
	kb := s.tree.Rank(node)
	i := s.env.RangeIndexFor(kb)
	r := &s.ranges[i]

	if kb == r.a {
		r.alpha = node
	}
	if kb > r.b {
		r.beta = node
	}
	r.b++
	r.x += cycles
	// The new task contributes local rank kb-a+1; tasks at ranks
	// kb+1..b (post-insertion) shifted down by one local position.
	r.d += float64(kb-r.a+1)*cycles + s.tree.RangeXi(kb+1, r.b)

	// Cascade the overflow: the last task of a full range becomes the
	// first task of the next range.
	for r.hi != envelope.Unbounded && r.b > r.hi {
		ptr := r.beta
		r.d -= float64(r.b-r.a+1) * ptr.Cycles()
		r.x -= ptr.Cycles()
		r.b--
		r.beta = ptr.Prev()
		if r.b < r.a {
			r.alpha, r.beta = nil, nil
		}

		i++
		nr := &s.ranges[i]
		nr.alpha = ptr
		if nr.b < nr.a {
			nr.beta = ptr
		}
		nr.b++
		nr.x += ptr.Cycles()
		nr.d += nr.x // prepend: every local rank shifts by one
		r = nr
	}
	s.refreshCost()
	return node, nil
}

// Delete removes a task previously inserted (Algorithm 6).
// O(|P-hat| + log N). The handle must not be reused.
func (s *Scheduler) Delete(h *Handle) error {
	if h == nil || h.node == nil {
		return ErrBadHandle
	}
	if err := s.deleteNode(h.node, h.cycles); err != nil {
		return err
	}
	h.node = nil
	return nil
}

// deleteNode is Delete on a raw tree node; the node must have been
// returned by insertNode on this scheduler and not deleted since.
func (s *Scheduler) deleteNode(node *rangetree.Node, cycles float64) error {
	if s.deleteCtr != nil {
		s.deleteCtr.Inc()
		defer s.observeUpdate()()
	}
	kb := s.tree.Rank(node)
	// i starts at the last non-empty range (Algorithm 6 line 2).
	i := len(s.ranges) - 1
	for i > 0 && s.ranges[i].b < s.ranges[i].a {
		i--
	}
	// Pull the first task of each later range down to fill the hole
	// the deletion opens (lines 3-19).
	for s.ranges[i].a > kb {
		r := &s.ranges[i]
		tptr := r.alpha
		r.d -= r.x
		r.x -= tptr.Cycles()
		r.b--
		if r.a <= r.b {
			r.alpha = tptr.Next()
		} else {
			r.alpha, r.beta = nil, nil
		}

		i--
		pr := &s.ranges[i]
		pr.beta = tptr
		if pr.b < pr.a {
			pr.alpha = tptr
		}
		pr.b++
		pr.x += tptr.Cycles()
		pr.d += float64(pr.b-pr.a+1) * tptr.Cycles()
	}

	r := &s.ranges[i]
	// Remove the task's own contribution and the shift of everything
	// after it inside the range (pre-deletion ranks kb+1..b).
	r.d -= float64(kb-r.a+1)*cycles + s.tree.RangeXi(kb+1, r.b)
	r.x -= cycles
	r.b--
	if r.a > r.b {
		r.alpha, r.beta = nil, nil
	} else if r.alpha == node {
		r.alpha = node.Next()
	} else if r.beta == node {
		r.beta = node.Prev()
	}

	s.tree.Delete(node)
	s.refreshCost()
	return nil
}

// Rank returns the current backward position of the task.
func (s *Scheduler) Rank(h *Handle) int { return s.tree.Rank(h.node) }

// LevelFor returns the processing rate the task should currently use,
// i.e. the dominating rate of its backward position.
func (s *Scheduler) LevelFor(h *Handle) model.RateLevel {
	return s.env.LevelFor(s.tree.Rank(h.node))
}

// CostByQueries evaluates Eq. 32 directly with O(|P-hat|) range-tree
// queries, without using the maintained aggregates. It is the simpler
// O(|P-hat|·log N) variant; Cost() should always agree with it.
func (s *Scheduler) CostByQueries() float64 {
	n := s.tree.Len()
	var c float64
	for i := 0; i < s.env.NumRanges(); i++ {
		r := s.env.Range(i)
		lo, hi := r.Lo, r.Hi
		if hi > n {
			hi = n
		}
		if lo > hi {
			break
		}
		xiV := s.tree.RangeXi(lo, hi)
		gamma := s.tree.RangeGamma(lo, hi)
		c += s.params.Re*r.Level.Energy*xiV + s.params.Rt*r.Level.Time*gamma
	}
	return c
}

// CostNaive recomputes the cost by walking every task: Σ C^B(k)·L_k.
// O(N); the baseline the paper's data structures beat.
func (s *Scheduler) CostNaive() float64 {
	var c float64
	k := 1
	for n := s.tree.First(); n != nil; n = n.Next() {
		c += s.env.Cost(k) * n.Cycles()
		k++
	}
	return c
}

// MarginalInsertCost returns the cost increase that inserting a task
// of the given length would cause, without changing the schedule
// observably (it performs a trial insert and delete). The probe works
// on raw tree nodes and the tree recycles them, so a steady-state
// probe allocates nothing.
func (s *Scheduler) MarginalInsertCost(cycles float64) (float64, error) {
	// The probe insert/delete pair is not a real queue mutation; keep
	// it out of the update metrics so they count structure changes.
	ic, dc := s.insertCtr, s.deleteCtr
	s.insertCtr, s.deleteCtr = nil, nil
	before := s.cost
	node, err := s.insertNode(cycles)
	if err != nil {
		s.insertCtr, s.deleteCtr = ic, dc
		return 0, err
	}
	after := s.cost
	err = s.deleteNode(node, cycles)
	s.insertCtr, s.deleteCtr = ic, dc
	if err != nil {
		return 0, err
	}
	return after - before, nil
}

// checkInvariants cross-checks the maintained per-range aggregates
// against direct tree queries. Test helper.
func (s *Scheduler) checkInvariants() error {
	n := s.tree.Len()
	pos := 1
	for i := range s.ranges {
		r := &s.ranges[i]
		wantA := r.lo
		wantB := r.hi
		if wantB > n {
			wantB = n
		}
		if wantB < wantA { // empty range
			if r.b >= r.a {
				return fmt.Errorf("dynsched: range %d should be empty, has [%d,%d]", i, r.a, r.b)
			}
			continue
		}
		if r.a != wantA || r.b != wantB {
			return fmt.Errorf("dynsched: range %d bounds [%d,%d], want [%d,%d]", i, r.a, r.b, wantA, wantB)
		}
		if got := s.tree.RangeXi(r.a, r.b); math.Abs(got-r.x) > 1e-6*math.Max(1, got) {
			return fmt.Errorf("dynsched: range %d x=%v, queries say %v", i, r.x, got)
		}
		if got := s.tree.RangeDelta(r.a, r.b); math.Abs(got-r.d) > 1e-6*math.Max(1, got) {
			return fmt.Errorf("dynsched: range %d d=%v, queries say %v", i, r.d, got)
		}
		if s.tree.Rank(r.alpha) != r.a {
			return fmt.Errorf("dynsched: range %d alpha rank %d != a=%d", i, s.tree.Rank(r.alpha), r.a)
		}
		if s.tree.Rank(r.beta) != r.b {
			return fmt.Errorf("dynsched: range %d beta rank %d != b=%d", i, s.tree.Rank(r.beta), r.b)
		}
		pos = r.b + 1
	}
	_ = pos
	if q := s.CostByQueries(); math.Abs(q-s.cost) > 1e-6*math.Max(1, q) {
		return fmt.Errorf("dynsched: maintained cost %v != query cost %v", s.cost, q)
	}
	return nil
}
