package dynsched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/rangetree"
)

func testEnvelope(t testing.TB) *envelope.Envelope {
	t.Helper()
	env, err := envelope.Compute(model.CostParams{Re: 0.1, Rt: 0.4}, platform.TableII())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// driveIdentically applies the same randomized operation mix —
// inserts, deletes by rank, and marginal-cost probes (which advance
// the tree's seq/rng even though they leave the schedule unchanged) —
// to both schedulers and requires bit-identical results at every step.
func driveIdentically(t *testing.T, a, b *Scheduler, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed)) // deterministic mix, not randomness
	for i := 0; i < ops; i++ {
		switch {
		case a.Len() > 0 && rng.Intn(4) == 0:
			k := rng.Intn(a.Len()) + 1
			ha, err := a.HandleAtRank(k)
			if err != nil {
				t.Fatal(err)
			}
			hb, err := b.HandleAtRank(k)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Delete(ha); err != nil {
				t.Fatal(err)
			}
			if err := b.Delete(hb); err != nil {
				t.Fatal(err)
			}
		case rng.Intn(3) == 0:
			c := rng.Float64()*50 + 0.01
			ma, err := a.MarginalInsertCost(c)
			if err != nil {
				t.Fatal(err)
			}
			mb, err := b.MarginalInsertCost(c)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(ma) != math.Float64bits(mb) {
				t.Fatalf("op %d: marginal cost %v vs %v", i, ma, mb)
			}
		default:
			c := rng.Float64()*50 + 0.01
			if _, err := a.Insert(c); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Insert(c); err != nil {
				t.Fatal(err)
			}
		}
		if math.Float64bits(a.Cost()) != math.Float64bits(b.Cost()) {
			t.Fatalf("op %d: cost diverged: %v vs %v", i, a.Cost(), b.Cost())
		}
		if a.Len() != b.Len() {
			t.Fatalf("op %d: len diverged: %d vs %d", i, a.Len(), b.Len())
		}
	}
}

func TestCheckpointRestoreExact(t *testing.T) {
	env := testEnvelope(t)
	s := NewFromEnvelope(env)
	rng := rand.New(rand.NewSource(3))
	var handles []*Handle
	for i := 0; i < 400; i++ {
		if len(handles) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(handles))
			if err := s.Delete(handles[j]); err != nil {
				t.Fatal(err)
			}
			handles = append(handles[:j], handles[j+1:]...)
		} else {
			h, err := s.Insert(rng.Float64()*80 + 0.01)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		// Probes advance the priority stream mid-history, exactly as
		// the LMC placement loop does.
		if rng.Intn(5) == 0 {
			if _, err := s.MarginalInsertCost(rng.Float64() * 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}

	cp := s.Checkpoint()
	restored, err := RestoreFromEnvelope(env, cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.checkInvariants(); err != nil {
		t.Fatalf("restored scheduler invalid: %v", err)
	}
	if math.Float64bits(restored.Cost()) != math.Float64bits(s.Cost()) {
		t.Fatalf("restored cost %v != %v", restored.Cost(), s.Cost())
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored len %d != %d", restored.Len(), s.Len())
	}
	// Re-checkpointing the restored scheduler must reproduce the
	// checkpoint exactly — restore loses nothing.
	if again := restored.Checkpoint(); !reflect.DeepEqual(cp, again) {
		t.Fatal("checkpoint of restored scheduler differs")
	}
	// And the decisive property: identical future behavior under a
	// shared operation stream, probes included.
	driveIdentically(t, s, restored, 17, 300)
}

func TestCheckpointRestoreEmpty(t *testing.T) {
	env := testEnvelope(t)
	s := NewFromEnvelope(env)
	// Churn that ends empty still advances the generators.
	h, err := s.Insert(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(h); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreFromEnvelope(env, s.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	driveIdentically(t, s, restored, 23, 100)
}

func TestRestoreRejectsMismatchedCheckpoint(t *testing.T) {
	env := testEnvelope(t)
	s := NewFromEnvelope(env)
	for i := 0; i < 20; i++ {
		if _, err := s.Insert(float64(i) + 1); err != nil {
			t.Fatal(err)
		}
	}
	cp := s.Checkpoint()

	// Wrong number of ranges.
	bad := cp
	bad.Ranges = bad.Ranges[:1]
	if _, err := RestoreFromEnvelope(env, bad); err == nil {
		t.Error("want error for range-count mismatch")
	}

	// Occupancy inconsistent with the tree size.
	bad = cp
	bad.Ranges = append([]RangeCheckpoint(nil), cp.Ranges...)
	for i := range bad.Ranges {
		if bad.Ranges[i].B >= bad.Ranges[i].A {
			bad.Ranges[i].B--
			break
		}
	}
	if _, err := RestoreFromEnvelope(env, bad); err == nil {
		t.Error("want error for occupancy mismatch")
	}

	// Tree nodes out of rank order.
	bad = cp
	bad.Tree.Nodes = append([]rangetree.NodeState(nil), cp.Tree.Nodes...)
	bad.Tree.Nodes[0], bad.Tree.Nodes[1] = bad.Tree.Nodes[1], bad.Tree.Nodes[0]
	if _, err := RestoreFromEnvelope(env, bad); err == nil {
		t.Error("want error for rank-order violation")
	}
}
