package dynsched_test

import (
	"math/rand"
	"testing"

	"dvfsched/internal/dynsched"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

func benchScheduler(b *testing.B) *dynsched.Scheduler {
	b.Helper()
	s, err := dynsched.New(model.CostParams{Re: 0.1, Rt: 0.4}, platform.TableII())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkChurn measures one delete plus one insert against a
// 512-task single-core queue — the incremental cost maintenance the
// online planes lean on.
func BenchmarkChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := benchScheduler(b)
	handles := make([]*dynsched.Handle, 0, 512)
	for i := 0; i < 512; i++ {
		h, err := s.Insert(1 + rng.Float64()*100)
		if err != nil {
			b.Fatal(err)
		}
		handles = append(handles, h)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(handles))
		if err := s.Delete(handles[j]); err != nil {
			b.Fatal(err)
		}
		h, err := s.Insert(1 + rng.Float64()*100)
		if err != nil {
			b.Fatal(err)
		}
		handles[j] = h
	}
}

// BenchmarkMarginalInsertCost measures the what-if query the Least
// Marginal Cost policy issues per core per arrival.
func BenchmarkMarginalInsertCost(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := benchScheduler(b)
	for i := 0; i < 512; i++ {
		if _, err := s.Insert(1 + rng.Float64()*100); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MarginalInsertCost(1 + rng.Float64()*100); err != nil {
			b.Fatal(err)
		}
	}
}
