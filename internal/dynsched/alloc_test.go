package dynsched_test

import (
	"math"
	"math/rand"
	"testing"

	"dvfsched/internal/dynsched"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

// TestMarginalInsertCostAllocs is the PR's allocation guard for the
// marginal-cost query: once the node freelist is warm, probing "what
// would inserting this task cost?" against a populated queue must not
// allocate — the Least Marginal Cost policy issues one such probe per
// core per arrival.
func TestMarginalInsertCostAllocs(t *testing.T) {
	s, err := dynsched.New(model.CostParams{Re: 0.1, Rt: 0.4}, platform.TableII())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		if _, err := s.Insert(1 + rng.Float64()*100); err != nil {
			t.Fatal(err)
		}
	}
	// One probe warms the freelist with the trial node.
	if _, err := s.MarginalInsertCost(42); err != nil {
		t.Fatal(err)
	}
	before := s.Cost()
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.MarginalInsertCost(42); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MarginalInsertCost allocated %.1f objects per run, want 0", allocs)
	}
	if got := s.Cost(); math.Float64bits(got) != math.Float64bits(before) {
		t.Fatalf("probe mutated the queue cost: %v -> %v", before, got)
	}
}
