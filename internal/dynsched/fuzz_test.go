package dynsched

import (
	"math"
	"testing"

	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

// FuzzDynamicCost drives the dynamic structure through a byte-derived
// insert/delete sequence and checks after every operation that the
// O(1) maintained cost matches both the O(|P-hat|·log N) query
// recomputation and the O(N) brute force over Eq. 28-34, and that the
// per-range aggregates stay consistent.
func FuzzDynamicCost(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 60, 17, 90, 200, 5})
	f.Add([]byte{10, 10, 10, 10, 140, 141, 142, 10, 10, 150})
	f.Add([]byte{120, 7, 33, 210, 56, 180, 2, 99, 250, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		env := envelope.MustCompute(model.CostParams{Re: 0.4, Rt: 0.1}, platform.TableII())
		s := NewFromEnvelope(env)
		var handles []*Handle
		for _, b := range data {
			if b < 128 || len(handles) == 0 {
				h, err := s.Insert(float64(1 + b%32))
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, h)
			} else {
				i := int(b-128) % len(handles)
				if err := s.Delete(handles[i]); err != nil {
					t.Fatal(err)
				}
				handles = append(handles[:i], handles[i+1:]...)
			}
			if err := s.checkInvariants(); err != nil {
				t.Fatal(err)
			}
			cost := s.Cost()
			scale := math.Max(1, math.Abs(cost))
			if naive := s.CostNaive(); math.Abs(cost-naive) > 1e-9*scale {
				t.Fatalf("Cost %v != brute force %v with %d tasks", cost, naive, s.Len())
			}
			if byQ := s.CostByQueries(); math.Abs(cost-byQ) > 1e-9*scale {
				t.Fatalf("Cost %v != query recomputation %v with %d tasks", cost, byQ, s.Len())
			}
		}
	})
}
