package dynsched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvfsched/internal/batch"
	"dvfsched/internal/model"
)

func table2() *model.RateTable {
	return model.MustRateTable([]model.RateLevel{
		{Rate: 1.6, Energy: 3.375, Time: 0.625},
		{Rate: 2.0, Energy: 4.22, Time: 0.5},
		{Rate: 2.4, Energy: 5.0, Time: 0.42},
		{Rate: 2.8, Energy: 6.0, Time: 0.36},
		{Rate: 3.0, Energy: 7.1, Time: 0.33},
	})
}

var paperParams = model.CostParams{Re: 0.1, Rt: 0.4}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewValidates(t *testing.T) {
	if _, err := New(model.CostParams{}, table2()); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestInsertRejectsBadCycles(t *testing.T) {
	s, err := New(paperParams, table2())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := s.Insert(v); err == nil {
			t.Errorf("Insert(%v) accepted", v)
		}
	}
}

func TestDeleteNilHandle(t *testing.T) {
	s, _ := New(paperParams, table2())
	if err := s.Delete(nil); err == nil {
		t.Error("nil handle accepted")
	}
	h, _ := s.Insert(1)
	if err := s.Delete(h); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(h); err == nil {
		t.Error("double delete accepted")
	}
}

func TestCostMatchesStaticOptimum(t *testing.T) {
	// Inserting a whole batch must reproduce the cost of the static
	// optimal single-core plan (Algorithm 2): same order, same rates.
	rng := rand.New(rand.NewSource(1))
	s, err := New(paperParams, table2())
	if err != nil {
		t.Fatal(err)
	}
	tasks := make(model.TaskSet, 40)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 0.1 + rng.Float64()*50, Deadline: model.NoDeadline}
		if _, err := s.Insert(tasks[i].Cycles); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := batch.SingleCore(paperParams, table2(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	_, _, want := plan.Cost()
	if !approxEq(s.Cost(), want) {
		t.Errorf("dynamic cost %v != static optimal %v", s.Cost(), want)
	}
}

func TestThreeCostEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, _ := New(paperParams, table2())
	var handles []*Handle
	for step := 0; step < 3000; step++ {
		if len(handles) == 0 || rng.Float64() < 0.6 {
			h, err := s.Insert(0.1 + rng.Float64()*100)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		} else {
			i := rng.Intn(len(handles))
			if err := s.Delete(handles[i]); err != nil {
				t.Fatal(err)
			}
			handles[i] = handles[len(handles)-1]
			handles = handles[:len(handles)-1]
		}
		if step%97 == 0 {
			maintained, queried, naive := s.Cost(), s.CostByQueries(), s.CostNaive()
			if !approxEq(maintained, queried) || !approxEq(maintained, naive) {
				t.Fatalf("step %d: cost engines disagree: %v / %v / %v", step, maintained, queried, naive)
			}
			if err := s.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
}

func TestLevelForMatchesEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, _ := New(paperParams, table2())
	var handles []*Handle
	for i := 0; i < 200; i++ {
		h, _ := s.Insert(0.1 + rng.Float64()*10)
		handles = append(handles, h)
	}
	for _, h := range handles {
		k := s.Rank(h)
		if s.LevelFor(h).Rate != s.Envelope().LevelFor(k).Rate {
			t.Fatalf("LevelFor mismatch at rank %d", k)
		}
	}
}

func TestMarginalInsertCost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, _ := New(paperParams, table2())
	for i := 0; i < 100; i++ {
		if _, err := s.Insert(0.1 + rng.Float64()*10); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Cost()
	nBefore := s.Len()
	mc, err := s.MarginalInsertCost(5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != nBefore {
		t.Fatal("MarginalInsertCost changed the schedule size")
	}
	if !approxEq(s.Cost(), before) {
		t.Fatalf("MarginalInsertCost drifted the cost: %v -> %v", before, s.Cost())
	}
	// Verify against a real insertion.
	h, _ := s.Insert(5)
	if !approxEq(s.Cost()-before, mc) {
		t.Errorf("marginal cost %v, actual delta %v", mc, s.Cost()-before)
	}
	if err := s.Delete(h); err != nil {
		t.Fatal(err)
	}
}

func TestMarginalCostIncreasesWithLength(t *testing.T) {
	s, _ := New(paperParams, table2())
	for i := 0; i < 20; i++ {
		s.Insert(float64(i + 1))
	}
	small, _ := s.MarginalInsertCost(0.5)
	large, _ := s.MarginalInsertCost(50)
	if small <= 0 || large <= small {
		t.Errorf("marginal costs: small=%v large=%v", small, large)
	}
}

func TestEmptySchedulerCostZero(t *testing.T) {
	s, _ := New(paperParams, table2())
	if s.Cost() != 0 || s.CostByQueries() != 0 || s.CostNaive() != 0 {
		t.Error("empty scheduler non-zero cost")
	}
	h, _ := s.Insert(3)
	s.Delete(h)
	if !approxEq(s.Cost(), 0) {
		t.Errorf("cost after insert+delete = %v, want ~0", s.Cost())
	}
	if s.Len() != 0 {
		t.Error("Len != 0")
	}
}

// Property: random interleavings keep all invariants and the maintained
// cost equal to the naive recomputation.
func TestDynamicInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := New(paperParams, table2())
		var handles []*Handle
		for step := 0; step < 120; step++ {
			if len(handles) == 0 || rng.Float64() < 0.55 {
				h, err := s.Insert(0.01 + rng.Float64()*rng.Float64()*200)
				if err != nil {
					return false
				}
				handles = append(handles, h)
			} else {
				i := rng.Intn(len(handles))
				if err := s.Delete(handles[i]); err != nil {
					return false
				}
				handles[i] = handles[len(handles)-1]
				handles = handles[:len(handles)-1]
			}
		}
		if err := s.checkInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return approxEq(s.Cost(), s.CostNaive())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with few rate levels and heavy Rt, several dominating
// ranges are active; the cascades across boundaries must stay exact.
func TestCascadeHeavyProperty(t *testing.T) {
	rt := model.MustRateTable([]model.RateLevel{
		{Rate: 1, Energy: 1, Time: 1},
		{Rate: 2, Energy: 4, Time: 0.5},
		{Rate: 4, Energy: 16, Time: 0.25},
	})
	cp := model.CostParams{Re: 1, Rt: 1}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(cp, rt)
		if err != nil {
			return false
		}
		var handles []*Handle
		for step := 0; step < 200; step++ {
			if len(handles) == 0 || rng.Float64() < 0.5 {
				h, err := s.Insert(0.5 + float64(rng.Intn(8)))
				if err != nil {
					return false
				}
				handles = append(handles, h)
			} else {
				i := rng.Intn(len(handles))
				if err := s.Delete(handles[i]); err != nil {
					return false
				}
				handles[i] = handles[len(handles)-1]
				handles = handles[:len(handles)-1]
			}
			if err := s.checkInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
