package dynsched

import (
	"fmt"

	"dvfsched/internal/envelope"
	"dvfsched/internal/rangetree"
)

// RangeCheckpoint is the persisted occupancy of one dominating range.
// The static bounds and the rate level are not stored: they derive
// from the envelope the scheduler is restored onto.
type RangeCheckpoint struct {
	// A and B are the occupied boundary positions; empty iff B < A.
	A int `json:"a"`
	B int `json:"b"`
	// X and D are the maintained aggregates x_i and d_i, bit-exact.
	X float64 `json:"x"`
	D float64 `json:"d"`
}

// Checkpoint is a complete exact-state capture of a Scheduler. The
// floating-point fields (tree aggregates, range aggregates, cost) are
// accumulation state whose rounding depends on the full insert/delete
// history — they are recorded verbatim, never recomputed, so a
// restored scheduler returns bit-identical costs and makes
// bit-identical decisions from the first operation on.
type Checkpoint struct {
	// Tree is the range tree's exact state.
	Tree rangetree.TreeState `json:"tree"`
	// Ranges is the per-dominating-range occupancy, aligned with the
	// envelope's range list.
	Ranges []RangeCheckpoint `json:"ranges"`
	// Cost is the maintained total cost C, bit-exact.
	Cost float64 `json:"cost"`
}

// Checkpoint captures the scheduler's complete state. Metric handles
// and the injected clock are wiring, not state: the restoring side
// re-attaches its own via Instrument and SetClock.
func (s *Scheduler) Checkpoint() Checkpoint {
	cp := Checkpoint{
		Tree:   s.tree.Snapshot(),
		Ranges: make([]RangeCheckpoint, len(s.ranges)),
		Cost:   s.cost,
	}
	for i := range s.ranges {
		r := &s.ranges[i]
		cp.Ranges[i] = RangeCheckpoint{A: r.a, B: r.b, X: r.x, D: r.d}
	}
	return cp
}

// RestoreFromEnvelope rebuilds a scheduler from a checkpoint onto an
// envelope, which must be computed from the same cost parameters and
// rate table as the captured scheduler's (cores with identical tables
// can share it, exactly as with NewFromEnvelope). Handles into the old
// scheduler are dead; re-derive them with HandleAtRank.
func RestoreFromEnvelope(env *envelope.Envelope, cp Checkpoint) (*Scheduler, error) {
	s := NewFromEnvelope(env)
	if len(cp.Ranges) != len(s.ranges) {
		return nil, fmt.Errorf("dynsched: restore: checkpoint has %d ranges, envelope has %d (parameter mismatch?)",
			len(cp.Ranges), len(s.ranges))
	}
	tree, nodes, err := rangetree.Restore(cp.Tree)
	if err != nil {
		return nil, fmt.Errorf("dynsched: restore: %w", err)
	}
	s.tree = tree
	n := len(nodes)
	pos := 1
	for i := range s.ranges {
		r := &s.ranges[i]
		rc := cp.Ranges[i]
		wantB := r.hi
		if wantB == envelope.Unbounded || wantB > n {
			wantB = n
		}
		if wantB < r.lo {
			// Range beyond the occupied prefix: must be empty.
			if rc.B >= rc.A {
				return nil, fmt.Errorf("dynsched: restore: range %d should be empty, checkpoint has [%d,%d]", i, rc.A, rc.B)
			}
			continue
		}
		if rc.A != r.lo || rc.B != wantB {
			return nil, fmt.Errorf("dynsched: restore: range %d occupancy [%d,%d], want [%d,%d]",
				i, rc.A, rc.B, r.lo, wantB)
		}
		r.a, r.b = rc.A, rc.B
		r.x, r.d = rc.X, rc.D
		r.alpha, r.beta = nodes[r.a-1], nodes[r.b-1]
		pos = r.b + 1
	}
	if pos != n+1 {
		return nil, fmt.Errorf("dynsched: restore: ranges cover positions up to %d, tree has %d tasks", pos-1, n)
	}
	s.cost = cp.Cost
	return s, nil
}

// HandleAtRank returns a handle to the task at backward position k
// (1-based), for re-deriving task references after a restore. O(log N).
func (s *Scheduler) HandleAtRank(k int) (*Handle, error) {
	node := s.tree.Select(k)
	if node == nil {
		return nil, fmt.Errorf("dynsched: no task at rank %d (len %d)", k, s.tree.Len())
	}
	return &Handle{node: node, cycles: node.Cycles()}, nil
}
