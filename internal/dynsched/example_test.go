package dynsched_test

import (
	"fmt"

	"dvfsched/internal/dynsched"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

// Maintain a single core's optimal queue cost under dynamic insertion
// and deletion (Algorithms 4-6); Cost is read back in constant time.
func ExampleScheduler() {
	s, err := dynsched.New(model.CostParams{Re: 0.1, Rt: 0.4}, platform.TableII())
	if err != nil {
		panic(err)
	}
	a, _ := s.Insert(100)
	b, _ := s.Insert(10)
	fmt.Printf("two tasks: cost %.2f cents\n", s.Cost())
	fmt.Printf("the 100-Gcyc task runs last at %.1f GHz, the 10-Gcyc one first at %.1f GHz\n",
		s.LevelFor(a).Rate, s.LevelFor(b).Rate)
	mc, _ := s.MarginalInsertCost(50)
	fmt.Printf("inserting a 50-Gcyc task would add %.2f cents\n", mc)
	s.Delete(a)
	s.Delete(b)
	fmt.Printf("emptied: cost %.0f\n", s.Cost())
	// Output:
	// two tasks: cost 66.97 cents
	// the 100-Gcyc task runs last at 1.6 GHz, the 10-Gcyc one first at 2.0 GHz
	// inserting a 50-Gcyc task would add 42.92 cents
	// emptied: cost 0
}
