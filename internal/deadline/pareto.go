package deadline

import (
	"fmt"
	"math"
	"sort"

	"dvfsched/internal/model"
)

// MinTimeDP is the dual of MinEnergyDP, matching the bi-criteria
// decision problem of Theorem 1 (a time bound and an energy budget):
// it finds the schedule minimizing total completion time subject to a
// total energy budget (joules) and every per-task deadline, by dynamic
// programming over an energy grid of the given resolution (joules per
// bucket). Energies round up to whole buckets, so returned schedules
// genuinely respect the budget.
func MinTimeDP(tasks model.TaskSet, rates *model.RateTable, energyBudget, resolution float64) (*Schedule, error) {
	if err := validate(tasks, rates); err != nil {
		return nil, err
	}
	if resolution <= 0 || energyBudget <= 0 {
		return nil, fmt.Errorf("deadline: budget and resolution must be positive")
	}
	bucketsF := math.Ceil(energyBudget/resolution) + 1
	if bucketsF > MaxDPBuckets {
		return nil, fmt.Errorf("deadline: DP grid of %.0f buckets exceeds limit %d; coarsen the resolution", bucketsF, MaxDPBuckets)
	}
	buckets := int(bucketsF)
	order := EDFOrder(tasks)

	const inf = math.MaxFloat64
	// cur[e] = minimal elapsed time after the processed prefix using
	// at most e energy buckets.
	cur := make([]float64, buckets)
	next := make([]float64, buckets)
	for i := 1; i < buckets; i++ {
		cur[i] = 0
	}
	choice := make([][]int16, len(order))

	for i, t := range order {
		for j := range next {
			next[j] = inf
		}
		ch := make([]int16, buckets)
		for j := range ch {
			ch[j] = -1
		}
		for li := 0; li < rates.Len(); li++ {
			l := rates.Level(li)
			dur := model.TaskTime(t.Cycles, l)
			eBuckets := int(math.Ceil(model.TaskEnergy(t.Cycles, l) / resolution))
			if eBuckets < 1 {
				eBuckets = 1
			}
			for from := 0; from+eBuckets < buckets; from++ {
				if cur[from] >= inf {
					continue
				}
				elapsed := cur[from] + dur
				if t.HasDeadline() && elapsed > t.Deadline+1e-9 {
					continue
				}
				to := from + eBuckets
				if elapsed < next[to] {
					next[to] = elapsed
					ch[to] = int16(li)
				}
			}
		}
		// Using less energy never hurts: make next monotone so later
		// tasks can start from any budget at least as large.
		best := inf
		var bestCh int16 = -1
		for e := 0; e < buckets; e++ {
			if next[e] < best {
				best = next[e]
				bestCh = ch[e]
			} else if next[e] > best {
				next[e] = best
				ch[e] = bestCh
			}
		}
		choice[i] = ch
		cur, next = next, cur
	}

	if cur[buckets-1] >= inf {
		return nil, fmt.Errorf("deadline: no schedule fits the %.3f J budget and the deadlines", energyBudget)
	}

	// Reconstruct: walk back through the monotone tables.
	levels := make([]model.RateLevel, len(order))
	e := buckets - 1
	for i := len(order) - 1; i >= 0; i-- {
		li := choice[i][e]
		if li < 0 {
			return nil, fmt.Errorf("deadline: internal reconstruction error at task %d", order[i].ID)
		}
		l := rates.Level(int(li))
		levels[i] = l
		eb := int(math.Ceil(model.TaskEnergy(order[i].Cycles, l) / resolution))
		if eb < 1 {
			eb = 1
		}
		e -= eb
		if e < 0 {
			e = 0
		}
	}
	sched := &Schedule{Order: make([]model.Assignment, len(order))}
	for i, task := range order {
		sched.Order[i] = model.Assignment{Task: task, Level: levels[i]}
		sched.EnergyJ += model.TaskEnergy(task.Cycles, levels[i])
		sched.MakespanS += model.TaskTime(task.Cycles, levels[i])
	}
	if sched.EnergyJ > energyBudget+resolution*float64(len(order))+1e-9 {
		return nil, fmt.Errorf("deadline: internal error: budget overrun")
	}
	if ok, _ := Feasible(sched.Order); !ok {
		return nil, fmt.Errorf("deadline: internal error: infeasible schedule")
	}
	return sched, nil
}

// ParetoPoint is one energy/makespan trade-off of a task set.
type ParetoPoint struct {
	// EnergyJ and MakespanS are the schedule's totals.
	EnergyJ, MakespanS float64
}

// Pareto enumerates the energy/time Pareto frontier of a deadline-
// feasible task set by sweeping energy budgets between the all-max
// and minimum-energy schedules. Points come sorted by increasing
// energy (decreasing makespan) with dominated points removed.
func Pareto(tasks model.TaskSet, rates *model.RateTable, steps int, resolution float64) ([]ParetoPoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("deadline: need at least 2 steps")
	}
	minE, err := MinEnergyDP(tasks, rates, resolution)
	if err != nil {
		return nil, err
	}
	var maxE float64
	for _, t := range tasks {
		maxE += model.TaskEnergy(t.Cycles, rates.Max())
	}
	lo, hi := minE.EnergyJ, maxE
	var points []ParetoPoint
	for i := 0; i < steps; i++ {
		budget := lo + (hi-lo)*float64(i)/float64(steps-1)
		// Each task's energy rounds up to a whole bucket inside the
		// DP, so grant the budget that rounding slack; the schedule's
		// true energy is reported exactly.
		res := budget / 4096
		s, err := MinTimeDP(tasks, rates, budget+res*float64(len(tasks)+2), res)
		if err != nil {
			continue
		}
		points = append(points, ParetoPoint{EnergyJ: s.EnergyJ, MakespanS: s.MakespanS})
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("deadline: no feasible points")
	}
	sort.Slice(points, func(i, j int) bool { return points[i].EnergyJ < points[j].EnergyJ })
	// Drop dominated points.
	out := points[:0]
	bestTime := math.Inf(1)
	for _, p := range points {
		if p.MakespanS < bestTime-1e-9 {
			out = append(out, p)
			bestTime = p.MakespanS
		}
	}
	return out, nil
}
