package deadline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvfsched/internal/exact"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

func twoRates() *model.RateTable {
	return model.MustRateTable([]model.RateLevel{
		{Rate: 0.5, Energy: 1, Time: 2},
		{Rate: 1.0, Energy: 4, Time: 1},
	})
}

func TestEDFOrder(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Cycles: 1, Deadline: 10},
		{ID: 2, Cycles: 1, Deadline: 2},
		{ID: 3, Cycles: 1, Deadline: model.NoDeadline},
		{ID: 4, Cycles: 1, Deadline: 2},
	}
	got := EDFOrder(tasks)
	want := []int{2, 4, 1, 3}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("EDF order = %v", got)
		}
	}
}

func TestFeasible(t *testing.T) {
	l := model.RateLevel{Rate: 1, Energy: 1, Time: 1}
	order := []model.Assignment{
		{Task: model.Task{ID: 1, Cycles: 2, Deadline: 3}, Level: l},
		{Task: model.Task{ID: 2, Cycles: 2, Deadline: 4}, Level: l},
	}
	if ok, end := Feasible(order); !ok || end != 4 {
		t.Errorf("tight-but-feasible order rejected (ok=%v end=%v)", ok, end)
	}
	// Shrink the second deadline: completion at 4 > 3.5.
	order[1].Task.Deadline = 3.5
	if ok, _ := Feasible(order); ok {
		t.Error("infeasible order reported feasible")
	}
	// Tasks without deadlines never constrain.
	order[1].Task.Deadline = model.NoDeadline
	if ok, _ := Feasible(order); !ok {
		t.Error("NoDeadline constrained feasibility")
	}
}

func TestFeasibleBoundary(t *testing.T) {
	l := model.RateLevel{Rate: 1, Energy: 1, Time: 1}
	order := []model.Assignment{
		{Task: model.Task{ID: 1, Cycles: 2, Deadline: 2}, Level: l},
	}
	if ok, end := Feasible(order); !ok || end != 2 {
		t.Errorf("exact-deadline completion should be feasible (ok=%v end=%v)", ok, end)
	}
	order[0].Task.Deadline = 1.5
	if ok, _ := Feasible(order); ok {
		t.Error("missed deadline reported feasible")
	}
}

func TestMinEnergyDPPicksSlowWhenSlackAllows(t *testing.T) {
	// One task, 10 Gcycles: slow takes 20 s / 10 J, fast 10 s / 40 J.
	mk := func(deadline float64) model.TaskSet {
		return model.TaskSet{{ID: 1, Cycles: 10, Deadline: deadline}}
	}
	s, err := MinEnergyDP(mk(25), twoRates(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Order[0].Level.Rate != 0.5 || s.EnergyJ != 10 {
		t.Errorf("loose deadline: rate %v energy %v", s.Order[0].Level.Rate, s.EnergyJ)
	}
	s, err = MinEnergyDP(mk(12), twoRates(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Order[0].Level.Rate != 1.0 || s.EnergyJ != 40 {
		t.Errorf("tight deadline: rate %v energy %v", s.Order[0].Level.Rate, s.EnergyJ)
	}
	if _, err := MinEnergyDP(mk(5), twoRates(), 0.5); err == nil {
		t.Error("impossible deadline produced a schedule")
	}
}

func TestMinEnergyDPMixedSpeeds(t *testing.T) {
	// Two 10-Gcycle tasks, common deadline 30 s: running both slow
	// takes 40 s (infeasible); one slow + one fast takes 30 s,
	// energy 50 J; both fast 20 s, 80 J. The DP must find 50 J.
	tasks := model.TaskSet{
		{ID: 1, Cycles: 10, Deadline: 30},
		{ID: 2, Cycles: 10, Deadline: 30},
	}
	s, err := MinEnergyDP(tasks, twoRates(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.EnergyJ-50) > 1e-9 {
		t.Errorf("energy = %v, want 50", s.EnergyJ)
	}
	if ok, _ := Feasible(s.Order); !ok {
		t.Error("DP schedule infeasible")
	}
}

func TestMinEnergyDPValidation(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 1, Deadline: 10}}
	if _, err := MinEnergyDP(tasks, twoRates(), 0); err == nil {
		t.Error("zero resolution accepted")
	}
	if _, err := MinEnergyDP(tasks, twoRates(), 1e-9); err == nil {
		t.Error("bucket explosion not caught")
	}
	late := model.TaskSet{{ID: 1, Cycles: 1, Arrival: 1, Deadline: 10}}
	if _, err := MinEnergyDP(late, twoRates(), 0.5); err == nil {
		t.Error("non-zero arrival accepted")
	}
}

func TestSlackReclaimFeasibleAndFrugal(t *testing.T) {
	rates := platform.TableII()
	rng := rand.New(rand.NewSource(1))
	tasks := make(model.TaskSet, 12)
	elapsed := 0.0
	for i := range tasks {
		cyc := 1 + rng.Float64()*50
		elapsed += cyc * rates.Max().Time
		// Deadlines with 40% slack over the max-rate schedule.
		tasks[i] = model.Task{ID: i, Cycles: cyc, Deadline: elapsed * 1.4}
	}
	s, err := SlackReclaim(tasks, rates)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := Feasible(s.Order); !ok {
		t.Fatal("slack-reclaimed schedule infeasible")
	}
	// It must beat the all-max schedule on energy.
	allMax := 0.0
	for _, task := range tasks {
		allMax += model.TaskEnergy(task.Cycles, rates.Max())
	}
	if s.EnergyJ >= allMax {
		t.Errorf("no energy saved: %v >= %v", s.EnergyJ, allMax)
	}
}

func TestSlackReclaimInfeasible(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 100, Deadline: 1}}
	if _, err := SlackReclaim(tasks, platform.TableII()); err == nil {
		t.Error("impossible instance accepted")
	}
}

// Property: the DP's feasibility decision agrees with the exhaustive
// Deadline-SingleCore solver when given the matching energy budget.
func TestDPAgreesWithExhaustiveSolver(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		tasks := make(model.TaskSet, n)
		elapsed := 0.0
		for i := range tasks {
			cyc := float64(1 + rng.Intn(6))
			elapsed += cyc * 1 // fastest rate T=1
			tasks[i] = model.Task{ID: i, Cycles: cyc, Deadline: elapsed * (1 + rng.Float64())}
		}
		sched, dpErr := MinEnergyDP(tasks, twoRates(), 0.125)
		// The exhaustive solver decides feasibility under a budget;
		// probe it at the DP's energy and just below.
		if dpErr != nil {
			ok, err := exact.SolveDeadlineSingleCore(exact.DeadlineInstance{
				Tasks: tasks, Rates: twoRates(), EnergyBudget: 1e12,
			})
			if err != nil {
				return false
			}
			return !ok // DP says impossible -> solver agrees
		}
		ok, err := exact.SolveDeadlineSingleCore(exact.DeadlineInstance{
			Tasks: tasks, Rates: twoRates(), EnergyBudget: sched.EnergyJ + 1e-6,
		})
		if err != nil || !ok {
			t.Logf("seed %d: solver rejects DP energy %v", seed, sched.EnergyJ)
			return false
		}
		// Integer durations + 0.125 buckets: the DP is exact here, so
		// no schedule exists strictly below its energy.
		below, err := exact.SolveDeadlineSingleCore(exact.DeadlineInstance{
			Tasks: tasks, Rates: twoRates(), EnergyBudget: sched.EnergyJ - 1e-3,
		})
		if err != nil {
			return false
		}
		if below {
			t.Logf("seed %d: solver found cheaper than DP's %v", seed, sched.EnergyJ)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SlackReclaim never beats the DP (the DP is optimal on the
// grid) and both are feasible.
func TestSlackReclaimVsDP(t *testing.T) {
	rates := twoRates()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		tasks := make(model.TaskSet, n)
		elapsed := 0.0
		for i := range tasks {
			cyc := float64(1 + rng.Intn(5))
			elapsed += cyc
			tasks[i] = model.Task{ID: i, Cycles: cyc, Deadline: elapsed*1.2 + rng.Float64()*5}
		}
		dp, err1 := MinEnergyDP(tasks, rates, 0.125)
		greedy, err2 := SlackReclaim(tasks, rates)
		if (err1 == nil) != (err2 == nil) {
			// Both methods must agree on feasibility at max rate.
			t.Logf("seed %d: dpErr=%v greedyErr=%v", seed, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if ok, _ := Feasible(greedy.Order); !ok {
			return false
		}
		return greedy.EnergyJ >= dp.EnergyJ-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMultiCore(t *testing.T) {
	rates := platform.TableII()
	rng := rand.New(rand.NewSource(2))
	tasks := make(model.TaskSet, 16)
	for i := range tasks {
		cyc := 1 + rng.Float64()*40
		tasks[i] = model.Task{ID: i, Cycles: cyc, Deadline: 40 + rng.Float64()*60}
	}
	scheds, err := MultiCore(tasks, []*model.RateTable{rates, rates, rates, rates})
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 4 {
		t.Fatalf("schedules = %d", len(scheds))
	}
	seen := map[int]bool{}
	for _, s := range scheds {
		if ok, _ := Feasible(s.Order); !ok {
			t.Error("core schedule infeasible")
		}
		for _, a := range s.Order {
			if seen[a.Task.ID] {
				t.Errorf("task %d scheduled twice", a.Task.ID)
			}
			seen[a.Task.ID] = true
		}
	}
	if len(seen) != 16 {
		t.Errorf("scheduled %d of 16 tasks", len(seen))
	}
	if TotalEnergy(scheds) <= 0 {
		t.Error("no energy accounted")
	}
}

func TestMultiCoreValidation(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 1, Deadline: 10}}
	if _, err := MultiCore(tasks, nil); err == nil {
		t.Error("no cores accepted")
	}
	if _, err := MultiCore(nil, []*model.RateTable{platform.TableII()}); err == nil {
		t.Error("empty tasks accepted")
	}
	impossible := model.TaskSet{{ID: 1, Cycles: 1000, Deadline: 0.1}}
	if _, err := MultiCore(impossible, []*model.RateTable{platform.TableII()}); err == nil {
		t.Error("impossible instance accepted")
	}
}
