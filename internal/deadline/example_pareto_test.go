package deadline_test

import (
	"fmt"

	"dvfsched/internal/deadline"
	"dvfsched/internal/model"
)

// The bi-criteria view of Theorem 1: sweep energy budgets to trace
// the energy/makespan trade-off.
func ExamplePareto() {
	rates := model.MustRateTable([]model.RateLevel{
		{Rate: 0.5, Energy: 1, Time: 2},
		{Rate: 1.0, Energy: 4, Time: 1},
	})
	tasks := model.TaskSet{
		{ID: 1, Cycles: 10, Deadline: 60},
		{ID: 2, Cycles: 10, Deadline: 60},
	}
	points, err := deadline.Pareto(tasks, rates, 5, 0.25)
	if err != nil {
		panic(err)
	}
	for _, p := range points {
		fmt.Printf("%.0f J -> %.0f s\n", p.EnergyJ, p.MakespanS)
	}
	// Output:
	// 20 J -> 40 s
	// 50 J -> 30 s
	// 80 J -> 20 s
}
