// Package deadline provides practical solvers for the deadline-
// constrained batch problems of Section III-A. Theorems 1 and 2 prove
// Deadline-SingleCore and Deadline-MultiCore NP-complete, so this
// package offers what an NP-completeness result licenses:
//
//   - MinEnergyDP: an exact pseudo-polynomial dynamic program over a
//     discretized time horizon (single core, per-task deadlines),
//   - SlackReclaim: a fast greedy heuristic in the spirit of the
//     RT-DVS slack-reclamation schemes the paper cites (start at
//     maximum frequency, then spend slack on the cheapest downgrades),
//   - MultiCore: longest-processing-time partitioning across cores
//     with per-core slack reclamation.
//
// All solvers schedule in earliest-deadline-first order, which is
// optimal for ordering on one core when every task is released at
// time zero.
package deadline

import (
	"fmt"
	"math"
	"sort"

	"dvfsched/internal/model"
)

// Schedule is a single core's deadline-feasible schedule: tasks in
// execution order with chosen rate levels.
type Schedule struct {
	// Order lists tasks in execution order with their rates.
	Order []model.Assignment
	// EnergyJ is the schedule's total energy in joules.
	EnergyJ float64
	// MakespanS is the completion time of the last task.
	MakespanS float64
}

// EDFOrder returns the tasks sorted earliest-deadline-first (ties by
// ID), the order every solver here uses.
func EDFOrder(tasks model.TaskSet) model.TaskSet {
	out := tasks.Clone()
	sort.SliceStable(out, func(i, j int) bool {
		//dvfslint:allow floatcmp sort tie-break needs a strict weak order; epsilon equality is intransitive
		if out[i].Deadline != out[j].Deadline {
			return out[i].Deadline < out[j].Deadline
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Feasible reports whether executing the assignments in order meets
// every finite deadline, and returns the completion time.
func Feasible(order []model.Assignment) (bool, float64) {
	elapsed := 0.0
	for _, a := range order {
		elapsed += model.TaskTime(a.Task.Cycles, a.Level)
		if a.Task.HasDeadline() && elapsed > a.Task.Deadline+1e-9 {
			return false, elapsed
		}
	}
	return true, elapsed
}

func validate(tasks model.TaskSet, rates *model.RateTable) error {
	if err := tasks.Validate(); err != nil {
		return err
	}
	if err := rates.Validate(); err != nil {
		return err
	}
	for _, t := range tasks {
		if t.Arrival != 0 {
			return fmt.Errorf("deadline: task %d arrives at %v; batch-mode solvers need arrival 0", t.ID, t.Arrival)
		}
	}
	return nil
}

// horizon returns the DP time horizon: the largest finite deadline, or
// (if some tasks are unconstrained) the time to run everything at the
// slowest rate, whichever is larger.
func horizon(tasks model.TaskSet, rates *model.RateTable) float64 {
	h := 0.0
	for _, t := range tasks {
		if t.HasDeadline() && t.Deadline > h {
			h = t.Deadline
		}
	}
	slowest := tasks.TotalCycles() * rates.Min().Time
	if slowest > h {
		h = slowest
	}
	return h
}

// MaxDPBuckets caps the discretization size of MinEnergyDP.
const MaxDPBuckets = 2_000_000

// MinEnergyDP finds a minimum-energy, deadline-feasible single-core
// schedule by dynamic programming over a time grid of the given
// resolution (seconds per bucket). Durations round up to whole
// buckets, so any schedule it returns is genuinely feasible; energy is
// exact for the chosen rates and within one downgrade step of the
// continuous optimum as resolution tends to zero. It returns an error
// if no feasible schedule exists even at maximum frequency, or if the
// grid would exceed MaxDPBuckets.
func MinEnergyDP(tasks model.TaskSet, rates *model.RateTable, resolution float64) (*Schedule, error) {
	if err := validate(tasks, rates); err != nil {
		return nil, err
	}
	if resolution <= 0 {
		return nil, fmt.Errorf("deadline: resolution must be positive, got %v", resolution)
	}
	order := EDFOrder(tasks)
	bucketsF := math.Ceil(horizon(order, rates)/resolution) + 1
	if bucketsF > MaxDPBuckets {
		return nil, fmt.Errorf("deadline: DP grid of %.0f buckets exceeds limit %d; coarsen the resolution", bucketsF, MaxDPBuckets)
	}
	buckets := int(bucketsF)

	const inf = math.MaxFloat64
	cur := make([]float64, buckets)
	next := make([]float64, buckets)
	for i := range cur {
		cur[i] = inf
	}
	cur[0] = 0
	// choice[i][t] is the level index used by task i to arrive at
	// bucket t.
	choice := make([][]int16, len(order))

	for i, t := range order {
		for j := range next {
			next[j] = inf
		}
		ch := make([]int16, buckets)
		for j := range ch {
			ch[j] = -1
		}
		limit := buckets - 1
		if t.HasDeadline() {
			if dl := int(math.Floor(t.Deadline / resolution)); dl < limit {
				limit = dl
			}
		}
		for li := 0; li < rates.Len(); li++ {
			l := rates.Level(li)
			durBuckets := int(math.Ceil(model.TaskTime(t.Cycles, l) / resolution))
			if durBuckets < 1 {
				durBuckets = 1
			}
			energy := model.TaskEnergy(t.Cycles, l)
			for from := 0; from+durBuckets <= limit; from++ {
				if cur[from] >= inf {
					continue
				}
				to := from + durBuckets
				if e := cur[from] + energy; e < next[to] {
					next[to] = e
					ch[to] = int16(li)
				}
			}
		}
		choice[i] = ch
		cur, next = next, cur
	}

	bestT, bestE := -1, inf
	for t, e := range cur {
		if e < bestE {
			bestE, bestT = e, t
		}
	}
	if bestT < 0 {
		return nil, fmt.Errorf("deadline: no feasible schedule (even the fastest rates miss a deadline)")
	}

	// Reconstruct rate choices backwards through the bucket chain.
	levels := make([]model.RateLevel, len(order))
	t := bestT
	for i := len(order) - 1; i >= 0; i-- {
		li := choice[i][t]
		if li < 0 {
			return nil, fmt.Errorf("deadline: internal reconstruction error at task %d", order[i].ID)
		}
		l := rates.Level(int(li))
		levels[i] = l
		dur := int(math.Ceil(model.TaskTime(order[i].Cycles, l) / resolution))
		if dur < 1 {
			dur = 1
		}
		t -= dur
	}
	sched := &Schedule{Order: make([]model.Assignment, len(order))}
	for i, task := range order {
		sched.Order[i] = model.Assignment{Task: task, Level: levels[i]}
		sched.EnergyJ += model.TaskEnergy(task.Cycles, levels[i])
		sched.MakespanS += model.TaskTime(task.Cycles, levels[i])
	}
	if ok, _ := Feasible(sched.Order); !ok {
		return nil, fmt.Errorf("deadline: internal error: DP produced an infeasible schedule")
	}
	return sched, nil
}

// SlackReclaim computes a deadline-feasible single-core schedule
// greedily: every task starts at the maximum rate (if that misses a
// deadline, no schedule exists); then, while any single task can step
// one rate level down without violating feasibility, the step saving
// the most energy is taken. O(n^2 |P|) worst case.
func SlackReclaim(tasks model.TaskSet, rates *model.RateTable) (*Schedule, error) {
	if err := validate(tasks, rates); err != nil {
		return nil, err
	}
	order := EDFOrder(tasks)
	idx := make([]int, len(order))
	assign := make([]model.Assignment, len(order))
	for i, t := range order {
		idx[i] = rates.Len() - 1
		assign[i] = model.Assignment{Task: t, Level: rates.Max()}
	}
	if ok, _ := Feasible(assign); !ok {
		return nil, fmt.Errorf("deadline: no feasible schedule (even the fastest rates miss a deadline)")
	}
	for {
		best, bestSave := -1, 0.0
		for i := range assign {
			if idx[i] == 0 {
				continue
			}
			lower := rates.Level(idx[i] - 1)
			save := model.TaskEnergy(order[i].Cycles, assign[i].Level) - model.TaskEnergy(order[i].Cycles, lower)
			if save <= bestSave {
				continue
			}
			old := assign[i].Level
			assign[i].Level = lower
			if ok, _ := Feasible(assign); ok {
				best, bestSave = i, save
			}
			assign[i].Level = old
		}
		if best < 0 {
			break
		}
		idx[best]--
		assign[best].Level = rates.Level(idx[best])
	}
	sched := &Schedule{Order: assign}
	for _, a := range assign {
		sched.EnergyJ += model.TaskEnergy(a.Task.Cycles, a.Level)
		sched.MakespanS += model.TaskTime(a.Task.Cycles, a.Level)
	}
	return sched, nil
}

// MultiCore partitions tasks across the given cores longest-
// processing-time-first (balancing the load at maximum frequency) and
// then reclaims slack independently on each core. Cores may have
// different rate tables. Returns one schedule per core.
func MultiCore(tasks model.TaskSet, coreRates []*model.RateTable) ([]*Schedule, error) {
	if len(coreRates) == 0 {
		return nil, fmt.Errorf("deadline: no cores")
	}
	for i, rt := range coreRates {
		if err := rt.Validate(); err != nil {
			return nil, fmt.Errorf("deadline: core %d: %w", i, err)
		}
	}
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	// LPT: heaviest first onto the core that would finish it soonest
	// at max rate.
	sorted := tasks.Clone()
	sorted.SortByCyclesDesc()
	perCore := make([]model.TaskSet, len(coreRates))
	load := make([]float64, len(coreRates))
	for _, t := range sorted {
		best, bestFinish := 0, math.Inf(1)
		for j, rt := range coreRates {
			finish := load[j] + model.TaskTime(t.Cycles, rt.Max())
			if finish < bestFinish {
				best, bestFinish = j, finish
			}
		}
		perCore[best] = append(perCore[best], t)
		load[best] += model.TaskTime(t.Cycles, coreRates[best].Max())
	}
	out := make([]*Schedule, len(coreRates))
	for j, sub := range perCore {
		if len(sub) == 0 {
			out[j] = &Schedule{}
			continue
		}
		s, err := SlackReclaim(sub, coreRates[j])
		if err != nil {
			return nil, fmt.Errorf("deadline: core %d: %w", j, err)
		}
		out[j] = s
	}
	return out, nil
}

// TotalEnergy sums the energy of a multi-core schedule.
func TotalEnergy(scheds []*Schedule) float64 {
	var e float64
	for _, s := range scheds {
		if s != nil {
			e += s.EnergyJ
		}
	}
	return e
}
