package deadline_test

import (
	"fmt"

	"dvfsched/internal/deadline"
	"dvfsched/internal/model"
)

// Minimize energy under deadlines with the exact pseudo-polynomial DP:
// with enough slack both tasks run slow; tightening one deadline
// forces a faster rate for it.
func ExampleMinEnergyDP() {
	rates := model.MustRateTable([]model.RateLevel{
		{Rate: 0.5, Energy: 1, Time: 2},
		{Rate: 1.0, Energy: 4, Time: 1},
	})
	tasks := model.TaskSet{
		{ID: 1, Cycles: 10, Deadline: 15}, // tight: must run fast
		{ID: 2, Cycles: 10, Deadline: 60}, // loose: can run slow
	}
	s, err := deadline.MinEnergyDP(tasks, rates, 0.5)
	if err != nil {
		panic(err)
	}
	for _, a := range s.Order {
		fmt.Printf("task %d @ %.1f GHz (deadline %.0f s)\n", a.Task.ID, a.Level.Rate, a.Task.Deadline)
	}
	fmt.Printf("energy %.0f J, done at %.0f s\n", s.EnergyJ, s.MakespanS)
	// Output:
	// task 1 @ 1.0 GHz (deadline 15 s)
	// task 2 @ 0.5 GHz (deadline 60 s)
	// energy 50 J, done at 30 s
}
