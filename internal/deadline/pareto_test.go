package deadline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

func TestMinTimeDPBudgetExtremes(t *testing.T) {
	// 10 Gcyc, two rates: slow 20 s/10 J, fast 10 s/40 J.
	tasks := model.TaskSet{{ID: 1, Cycles: 10, Deadline: model.NoDeadline}}
	// A lavish budget buys the fast rate.
	s, err := MinTimeDP(tasks, twoRates(), 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Order[0].Level.Rate != 1.0 || math.Abs(s.MakespanS-10) > 1e-9 {
		t.Errorf("lavish budget: %+v", s)
	}
	// A tight budget forces the slow rate.
	s, err = MinTimeDP(tasks, twoRates(), 15, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Order[0].Level.Rate != 0.5 || math.Abs(s.MakespanS-20) > 1e-9 {
		t.Errorf("tight budget: %+v", s)
	}
	// Below the minimum-energy schedule: infeasible.
	if _, err := MinTimeDP(tasks, twoRates(), 5, 0.1); err == nil {
		t.Error("impossible budget accepted")
	}
}

func TestMinTimeDPRespectsDeadlines(t *testing.T) {
	// Tight deadline forces fast even though the budget would prefer
	// slow for minimal... the budget must still cover fast.
	tasks := model.TaskSet{{ID: 1, Cycles: 10, Deadline: 12}}
	s, err := MinTimeDP(tasks, twoRates(), 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Order[0].Level.Rate != 1.0 {
		t.Errorf("deadline ignored: %+v", s)
	}
	// Budget too small for the only feasible rate: error.
	if _, err := MinTimeDP(tasks, twoRates(), 20, 0.1); err == nil {
		t.Error("deadline-infeasible budget accepted")
	}
}

func TestMinTimeDPValidation(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 1, Deadline: model.NoDeadline}}
	if _, err := MinTimeDP(tasks, twoRates(), 0, 0.1); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := MinTimeDP(tasks, twoRates(), 10, 0); err == nil {
		t.Error("zero resolution accepted")
	}
	if _, err := MinTimeDP(tasks, twoRates(), 1e12, 1e-9); err == nil {
		t.Error("grid explosion accepted")
	}
}

// Property: the two DPs are consistent — running MinTimeDP at the
// budget MinEnergyDP found yields a feasible schedule no slower than
// the all-slow bound, and MinTimeDP's makespan decreases (weakly) as
// the budget grows.
func TestEnergyTimeDualityProperty(t *testing.T) {
	rates := twoRates()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		tasks := make(model.TaskSet, n)
		elapsed := 0.0
		for i := range tasks {
			cyc := float64(1 + rng.Intn(5))
			elapsed += cyc
			tasks[i] = model.Task{ID: i, Cycles: cyc, Deadline: elapsed*1.5 + 5}
		}
		minE, err := MinEnergyDP(tasks, rates, 0.125)
		if err != nil {
			return true
		}
		prev := math.Inf(1)
		for _, mult := range []float64{1.0, 1.5, 2.5, 4.0} {
			s, err := MinTimeDP(tasks, rates, minE.EnergyJ*mult+1e-6, 0.05)
			if err != nil {
				t.Logf("seed %d mult %v: %v", seed, mult, err)
				return false
			}
			if ok, _ := Feasible(s.Order); !ok {
				return false
			}
			if s.MakespanS > prev+1e-9 {
				t.Logf("seed %d: makespan rose with budget: %v -> %v", seed, prev, s.MakespanS)
				return false
			}
			prev = s.MakespanS
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParetoFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tasks := make(model.TaskSet, 6)
	elapsed := 0.0
	for i := range tasks {
		cyc := 1 + rng.Float64()*10
		elapsed += cyc * platform.TableII().Max().Time
		tasks[i] = model.Task{ID: i, Cycles: cyc, Deadline: elapsed * 3}
	}
	points, err := Pareto(tasks, platform.TableII(), 8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatalf("frontier too small: %v", points)
	}
	for i := 1; i < len(points); i++ {
		if points[i].EnergyJ <= points[i-1].EnergyJ {
			t.Errorf("energies not increasing: %v", points)
		}
		if points[i].MakespanS >= points[i-1].MakespanS {
			t.Errorf("makespans not decreasing: %v", points)
		}
	}
	if _, err := Pareto(tasks, platform.TableII(), 1, 0.05); err == nil {
		t.Error("steps=1 accepted")
	}
}
