package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// WriteText renders diagnostics one per line in the conventional
// file:line:col form, with paths relative to root when possible.
func WriteText(w io.Writer, root string, diags []Diagnostic) error {
	for _, d := range diags {
		d = relativize(root, d)
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the machine-readable output schema of dvfslint -json,
// stable for CI annotation tooling.
type jsonReport struct {
	// Findings are the surviving diagnostics, sorted by position.
	Findings []Diagnostic `json:"findings"`
	// Count duplicates len(findings) for cheap consumption.
	Count int `json:"count"`
}

// WriteJSON renders diagnostics as an indented JSON document.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	rel := make([]Diagnostic, len(diags))
	for i, d := range diags {
		rel[i] = relativize(root, d)
	}
	b, err := json.MarshalIndent(jsonReport{Findings: rel, Count: len(rel)}, "", "  ")
	if err != nil {
		return fmt.Errorf("lint: marshal report: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// relativize rewrites the diagnostic's file path relative to root.
func relativize(root string, d Diagnostic) Diagnostic {
	if root == "" {
		return d
	}
	if rel, err := filepath.Rel(root, d.File); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		d.File = filepath.ToSlash(rel)
	}
	return d
}
