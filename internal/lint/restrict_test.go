package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const restrictSrc = `package p

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) f(x, y float64) bool {
	b.mu.Lock()
	//dvfslint:allow mutexblock the channel is buffered by protocol
	b.ch <- 1
	b.mu.Unlock()
	//dvfslint:allow floatcmp exact replay identity comparison
	return x == y
}
`

func restrictPkg(t *testing.T) *Package {
	t.Helper()
	loader := newTestLoader(t)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "restrict.go", restrictSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.CheckPackage("internal/restrictcase", fset, []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestRestrictedRunKeepsForeignDirectives: running one analyzer must
// not turn the others' allow directives into findings. A -only run
// that reported "unused directive" for every analyzer it skipped (or
// "unknown analyzer" for their names) would make the flag useless on a
// swept repo.
func TestRestrictedRunKeepsForeignDirectives(t *testing.T) {
	pkg := restrictPkg(t)
	for _, only := range []string{"mutexblock", "floatcmp"} {
		suite := DefaultSuite()
		if err := suite.Restrict(only); err != nil {
			t.Fatal(err)
		}
		if diags := suite.RunPackage(pkg); len(diags) != 0 {
			t.Errorf("-only=%s over a swept package: got %v, want none", only, diags)
		}
	}
}

// TestRestrictedRunStillFlagsOwnUnused: restriction narrows the unused
// check, it does not disable it — a stale directive for an analyzer
// that DID run is still a finding.
func TestRestrictedRunStillFlagsOwnUnused(t *testing.T) {
	const src = `package p

//dvfslint:allow floatcmp nothing compares floats below
func g() {}
`
	loader := newTestLoader(t)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "stale.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.CheckPackage("internal/stalecase", fset, []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	suite := DefaultSuite()
	if err := suite.Restrict("floatcmp"); err != nil {
		t.Fatal(err)
	}
	diags := suite.RunPackage(pkg)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unused") {
		t.Fatalf("got %v, want exactly the unused-directive finding", diags)
	}
}

// TestRestrictUnknownAnalyzer: a typoed -only must error out, never
// silently run nothing.
func TestRestrictUnknownAnalyzer(t *testing.T) {
	if err := DefaultSuite().Restrict("poolchek"); err == nil {
		t.Fatal("Restrict accepted an unknown analyzer name")
	}
	if err := DefaultSuite().Restrict(); err == nil {
		t.Fatal("Restrict accepted an empty selection")
	}
}
