package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a package through
// its Pass and reports findings; the suite applies directive
// suppression afterwards.
type Analyzer struct {
	// Name is the identifier used in output and in allow directives.
	Name string
	// Doc is a one-line description for -list and the docs table.
	Doc string
	// Applies filters packages by module-relative path; nil means the
	// analyzer runs everywhere.
	Applies func(rel string) bool
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite bundles analyzers and runs them with directive suppression.
type Suite struct {
	Analyzers []*Analyzer
}

// DefaultSuite returns the four domain analyzers in reporting order.
func DefaultSuite() *Suite {
	return &Suite{Analyzers: []*Analyzer{
		FloatCmpAnalyzer,
		NondeterminismAnalyzer,
		MutexBlockAnalyzer,
		ErrcheckHotAnalyzer,
	}}
}

// Analyzer returns the suite analyzer with the given name, or nil.
func (s *Suite) Analyzer(name string) *Analyzer {
	for _, a := range s.Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes every applicable analyzer over every package, applies
// //dvfslint:allow suppression, reports malformed and unused
// directives, and returns the surviving diagnostics sorted by
// position.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, s.RunPackage(pkg)...)
	}
	sortDiagnostics(out)
	return out
}

// RunPackage runs the suite over a single package.
func (s *Suite) RunPackage(pkg *Package) []Diagnostic {
	known := make(map[string]bool, len(s.Analyzers))
	for _, a := range s.Analyzers {
		known[a.Name] = true
	}
	dirs := parseDirectives(pkg, known)

	var raw []Diagnostic
	for _, a := range s.Analyzers {
		if a.Applies != nil && !a.Applies(pkg.Rel) {
			continue
		}
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
		a.Run(pass)
	}

	out := dirs.filter(raw)
	out = append(out, dirs.problems()...)
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// inspectFiles walks every file of the pass's package.
func (p *Pass) inspectFiles(visit func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, visit)
	}
}
