package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"sync"
)

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a package through
// its Pass and reports findings; the suite applies directive
// suppression afterwards.
type Analyzer struct {
	// Name is the identifier used in output and in allow directives.
	Name string
	// Doc is a one-line description for -list and the docs table.
	Doc string
	// Applies filters packages by module-relative path; nil means the
	// analyzer runs everywhere.
	Applies func(rel string) bool
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite bundles analyzers and runs them with directive suppression.
type Suite struct {
	Analyzers []*Analyzer
	// only, when non-nil, restricts which analyzers run (-only flag).
	// The full roster still defines the valid directive names, so a
	// restricted run neither rejects other analyzers' allow directives
	// as unknown nor reports them unused.
	only map[string]bool
}

// DefaultSuite returns the eight domain analyzers in reporting order.
func DefaultSuite() *Suite {
	return &Suite{Analyzers: []*Analyzer{
		FloatCmpAnalyzer,
		NondeterminismAnalyzer,
		MutexBlockAnalyzer,
		ErrcheckHotAnalyzer,
		PoolCheckAnalyzer,
		GoroLeakAnalyzer,
		AtomicMixAnalyzer,
		LockOrderAnalyzer,
	}}
}

// Restrict limits subsequent runs to the named analyzers; unknown
// names are an error (a typo must not silently run nothing).
func (s *Suite) Restrict(names ...string) error {
	if len(names) == 0 {
		return fmt.Errorf("no analyzers selected (use -list for the roster)")
	}
	only := make(map[string]bool, len(names))
	for _, n := range names {
		if s.Analyzer(n) == nil {
			return fmt.Errorf("unknown analyzer %q (use -list for the roster)", n)
		}
		only[n] = true
	}
	s.only = only
	return nil
}

// Active reports whether an analyzer runs under the current
// restriction.
func (s *Suite) Active(name string) bool {
	return s.only == nil || s.only[name]
}

// Analyzer returns the suite analyzer with the given name, or nil.
func (s *Suite) Analyzer(name string) *Analyzer {
	for _, a := range s.Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes every applicable analyzer over every package, applies
// //dvfslint:allow suppression, reports malformed and unused
// directives, and returns the surviving diagnostics sorted by
// position.
// Packages are independent once type-checked, so they are analyzed in
// parallel; the merged result is position-sorted and deterministic.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	results := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = s.RunPackage(pkg)
		}(i, pkg)
	}
	wg.Wait()
	var out []Diagnostic
	for _, r := range results {
		out = append(out, r...)
	}
	sortDiagnostics(out)
	return out
}

// RunPackage runs the suite over a single package.
func (s *Suite) RunPackage(pkg *Package) []Diagnostic {
	known := make(map[string]bool, len(s.Analyzers))
	for _, a := range s.Analyzers {
		known[a.Name] = true
	}
	dirs := parseDirectives(pkg, known)

	var raw []Diagnostic
	for _, a := range s.Analyzers {
		if !s.Active(a.Name) {
			continue
		}
		if a.Applies != nil && !a.Applies(pkg.Rel) {
			continue
		}
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
		a.Run(pass)
	}

	out := dirs.filter(raw)
	out = append(out, dirs.problems(s.Active)...)
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// inspectFiles walks every file of the pass's package.
func (p *Pass) inspectFiles(visit func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, visit)
	}
}
