package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeakAnalyzer flags goroutine lifecycle hazards in the long-lived
// types (server shards, cluster prober, router, worker pools): a `go`
// statement whose body observes no stop signal outlives its owner, and
// an unstopped time.Ticker leaks its channel and timer goroutine.
//
// A goroutine body counts as stoppable when it:
//
//   - receives from a context's Done channel,
//   - receives from a channel whose name signals shutdown (done, stop,
//     quit, exit, dead, close, kill — the repo's conventions),
//   - ranges over a channel (a closed channel ends the loop), or
//   - is tracked by a sync.WaitGroup (calls wg.Done), so an owner
//     provably waits for it.
//
// Bodies with none of these are fire-and-forget; goroutines whose stop
// signal is a protocol the analyzer cannot see (a control-op sentinel
// on a request channel, a closing listener) carry a justified
// //dvfslint:allow goroleak directive naming it.
var GoroLeakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc:  "require goroutines to observe a stop signal and tickers to be stopped",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	decls := declBodies(pass)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(pass, n, decls)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkTickers(pass, n.Body)
				}
			case *ast.FuncLit:
				checkTickers(pass, n.Body)
			}
			return true
		})
	}
}

// declBodies indexes the package's function declarations by their
// type-checker objects, so `go obj.method(...)` resolves to a body.
func declBodies(pass *Pass) map[types.Object]*ast.BlockStmt {
	out := map[types.Object]*ast.BlockStmt{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil {
				out[obj] = fd.Body
			}
		}
	}
	return out
}

// checkGoStmt resolves the spawned body and requires a stop signal.
// Calls whose body is out of reach (another package's function, a
// method value) are skipped: the analyzer only judges code it can see.
func checkGoStmt(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.BlockStmt) {
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		if obj := pass.Pkg.Info.Uses[fun]; obj != nil {
			body = decls[obj]
		}
	case *ast.SelectorExpr:
		if obj := pass.Pkg.Info.Uses[fun.Sel]; obj != nil {
			body = decls[obj]
		}
	}
	if body == nil {
		return
	}
	if !observesStop(pass, body) {
		pass.Report(g.Go, "fire-and-forget goroutine: body observes no stop signal (ctx.Done(), a done/stop channel, a close-ranged channel, or a tracked WaitGroup)")
	}
}

// stopChannelNames are the identifier fragments that mark a channel as
// a shutdown signal by convention.
var stopChannelNames = []string{"done", "stop", "quit", "exit", "dead", "close", "kill"}

func isStopName(name string) bool {
	name = strings.ToLower(name)
	for _, frag := range stopChannelNames {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// observesStop reports whether a goroutine body contains any of the
// recognized stop-signal shapes. The walk descends into nested
// literals: a stop observed inside a closure the goroutine runs still
// bounds the goroutine.
func observesStop(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isStopSource(pass, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupDone(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isStopSource reports whether the received-from expression is a stop
// signal: ctx.Done() or a conventionally named channel.
func isStopSource(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Name() != "Done" {
			return false
		}
		// Done() on context.Context (or any interface embedding it).
		return fn.Pkg() != nil && fn.Pkg().Path() == "context"
	case *ast.Ident:
		return isStopName(e.Name)
	case *ast.SelectorExpr:
		return isStopName(e.Sel.Name)
	}
	return false
}

// isWaitGroupDone reports whether call is (*sync.WaitGroup).Done().
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Done" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && recvTypeName(recv.Type()) == "WaitGroup"
}

// tickerState is the per-body lifecycle of one locally created ticker
// or timer.
type tickerState struct {
	pos     ast.Node
	kind    string
	stopped bool
	escaped bool
}

// checkTickers requires every time.NewTicker/NewTimer created and kept
// local to a body to be stopped in that same body. A ticker that
// escapes (returned, stored in a field, sent on a channel) transfers
// the obligation to its new owner and is skipped.
func checkTickers(pass *Pass, body *ast.BlockStmt) {
	tickers := map[types.Object]*tickerState{}
	for _, s := range body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		kind := timeConstructorName(pass, as.Rhs[0])
		if kind == "" {
			continue
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := assignedObject(pass, id); obj != nil {
			tickers[obj] = &tickerState{pos: as.Rhs[0], kind: kind}
		}
	}
	if len(tickers) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if base, ok := sel.X.(*ast.Ident); ok && (sel.Sel.Name == "Stop" || sel.Sel.Name == "Reset") {
				if obj := pass.Pkg.Info.Uses[base]; obj != nil {
					if t, tracked := tickers[obj]; tracked && sel.Sel.Name == "Stop" {
						t.stopped = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				markTickerEscapes(pass, e, tickers)
			}
		case *ast.SendStmt:
			markTickerEscapes(pass, n.Value, tickers)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if _, isSel := lhs.(*ast.SelectorExpr); isSel && i < len(n.Rhs) {
					markTickerEscapes(pass, n.Rhs[i], tickers)
				}
			}
		}
		return true
	})
	for _, t := range tickers {
		if !t.stopped && !t.escaped {
			pass.Report(t.pos.Pos(), "%s is never stopped in this function: defer its Stop() so the ticker's goroutine and channel are released", t.kind)
		}
	}
}

// markTickerEscapes marks tickers referenced by e as escaped.
func markTickerEscapes(pass *Pass, e ast.Expr, tickers map[types.Object]*tickerState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Pkg.Info.Uses[id]; obj != nil {
				if t, tracked := tickers[obj]; tracked {
					t.escaped = true
				}
			}
		}
		return true
	})
}

// timeConstructorName classifies time.NewTicker / time.NewTimer calls.
func timeConstructorName(pass *Pass, e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	switch fn.Name() {
	case "NewTicker":
		return "time.Ticker"
	case "NewTimer":
		return "time.Timer"
	}
	return ""
}
