package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPackages are the engine packages whose runs must be
// bit-reproducible: same workload in, same schedule, trace and cost
// out. Wall-clock reads, the global math/rand source and
// order-sensitive map iteration all break replayability (the report
// package reconstructs Gantt charts and CSVs as a pure function of the
// trace, and the service's plan cache keys on canonical hashes).
var deterministicPackages = map[string]bool{
	"internal/model":     true,
	"internal/envelope":  true,
	"internal/batch":     true,
	"internal/online":    true,
	"internal/dynsched":  true,
	"internal/rangetree": true,
	"internal/exact":     true,
	"internal/sim":       true,
}

// mapOrderPackages additionally get the map-iteration check: they feed
// output paths (metrics dumps, traces, goldens) whose bytes must be
// deterministic even though the packages themselves may touch the
// clock.
var mapOrderPackages = map[string]bool{
	"internal/obs": true,
}

// NondeterminismAnalyzer enforces reproducibility in the deterministic
// engine packages: no time.Now, no global math/rand source, and no
// order-sensitive map iteration. Map iteration is accepted when it is
// provably order-insensitive (every statement only inserts into a map
// or deletes from one) or follows the collect-then-sort idiom (the
// statement after the loop is a sort/slices call).
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid time.Now, global math/rand and unsorted map iteration in deterministic packages",
	Applies: func(rel string) bool {
		return deterministicPackages[rel] || mapOrderPackages[rel]
	},
	Run: runNondeterminism,
}

func runNondeterminism(pass *Pass) {
	full := deterministicPackages[pass.Pkg.Rel]
	info := pass.Pkg.Info
	pass.inspectFiles(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !full {
				return true
			}
			obj := info.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				switch obj.Name() {
				case "Now", "Since", "Until":
					pass.Report(n.Pos(), "time.%s in deterministic package %s: inject a clock or move timing to the caller", obj.Name(), pass.Pkg.Rel)
				}
			case "math/rand", "math/rand/v2":
				// Only package-level functions draw from the shared
				// global source; methods run on an explicit generator.
				fn, isFunc := obj.(*types.Func)
				if isFunc && fn.Type().(*types.Signature).Recv() == nil && usesGlobalRandSource(obj.Name()) {
					pass.Report(n.Pos(), "global math/rand source in deterministic package %s: thread a seeded *rand.Rand instead", pass.Pkg.Rel)
				}
			}
		case *ast.BlockStmt:
			checkMapRanges(pass, n.List)
		case *ast.CaseClause:
			checkMapRanges(pass, n.Body)
		case *ast.CommClause:
			checkMapRanges(pass, n.Body)
		}
		return true
	})
}

// usesGlobalRandSource reports whether the math/rand package-level
// function name draws from the shared global source. Constructors that
// build explicit, seedable generators are the sanctioned alternative.
func usesGlobalRandSource(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// checkMapRanges flags order-sensitive map iteration inside a
// statement list, where the following statement is visible so the
// collect-then-sort idiom can be recognized.
func checkMapRanges(pass *Pass, stmts []ast.Stmt) {
	info := pass.Pkg.Info
	for i, st := range stmts {
		rs, ok := st.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := info.Types[rs.X]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		if orderInsensitiveBody(pass, rs.Body.List) {
			continue
		}
		if i+1 < len(stmts) && isSortStmt(stmts[i+1]) {
			continue
		}
		pass.Report(rs.For, "map iteration order is randomized: sort the keys before ranging, or restructure into order-insensitive writes")
	}
}

// orderInsensitiveBody reports whether every statement in a range body
// is order-insensitive: an assignment whose targets are all map index
// expressions, or a delete call. Anything else — appends, float
// accumulation, I/O — can observe iteration order.
func orderInsensitiveBody(pass *Pass, stmts []ast.Stmt) bool {
	info := pass.Pkg.Info
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					return false
				}
				tv, ok := info.Types[ix.X]
				if !ok || tv.Type == nil {
					return false
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return false
				}
			}
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "delete" {
				return false
			}
		default:
			return false
		}
	}
	return len(stmts) > 0
}

// isSortStmt reports whether st is a call into package sort or slices.
func isSortStmt(st ast.Stmt) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && (pkg.Name == "sort" || pkg.Name == "slices")
}
