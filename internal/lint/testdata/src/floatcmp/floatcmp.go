// Corpus for the floatcmp analyzer: every ==/!= between float-typed
// expressions is flagged unless both sides are constants or one side
// is the exact-by-representation zero sentinel.
package floatcmpcase

type rate float64

func compare(a, b float64, f float32, c, d complex128, r1, r2 rate, n int) {
	_ = a == b   // want "float comparison =="
	_ = a != b   // want "float comparison !="
	_ = f == 1.5 // want "float comparison =="
	_ = c == d   // want "float comparison =="
	_ = r1 == r2 // want "float comparison =="

	_ = n == 3         // negative: integers compare exactly
	_ = a == 0         // negative: zero sentinel means unset/empty
	_ = 0.0 != b       // negative: zero sentinel, constant on the left
	_ = 1.5 == 3.0/2.0 // negative: constant-folded at compile time
	_ = a < b          // negative: ordered comparisons are fine
}
