// Corpus for the lockorder analyzer: the lexical acquisition graph
// over named mutexes (identified by their declaring field or variable)
// must be acyclic. Opposite nesting orders, call chains that close a
// cycle, and re-acquiring a held mutex are findings.
package lockcase

import "sync"

type shards struct {
	mapMu  sync.Mutex
	ringMu sync.Mutex
}

func (s *shards) mapThenRing() {
	s.mapMu.Lock()
	s.ringMu.Lock() // want "completes a lock-order cycle"
	s.ringMu.Unlock()
	s.mapMu.Unlock()
}

func (s *shards) ringThenMap() {
	s.ringMu.Lock()
	s.mapMu.Lock() // want "completes a lock-order cycle"
	s.mapMu.Unlock()
	s.ringMu.Unlock()
}

type once struct{ mu sync.Mutex }

func (o *once) relock() {
	o.mu.Lock()
	o.mu.Lock() // want "self-deadlock"
	o.mu.Unlock()
	o.mu.Unlock()
}

type store struct {
	idxMu  sync.Mutex
	dataMu sync.Mutex
}

func (s *store) rebuild() {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	s.flush() // want "completing a lock-order cycle"
}

func (s *store) flush() {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
}

func (s *store) merge() {
	s.dataMu.Lock()
	s.idxMu.Lock() // want "completes a lock-order cycle"
	s.idxMu.Unlock()
	s.dataMu.Unlock()
}

type consistent struct {
	a sync.Mutex
	b sync.Mutex
}

func (c *consistent) first() {
	c.a.Lock()
	c.b.Lock() // negative: a is taken before b on every path
	c.b.Unlock()
	c.a.Unlock()
}

func (c *consistent) second() {
	c.a.Lock()
	defer c.a.Unlock()
	c.b.Lock()
	defer c.b.Unlock()
}

func (c *consistent) handoff() {
	c.b.Lock()
	c.b.Unlock()
	c.a.Lock() // negative: b was released before a is taken
	c.a.Unlock()
}

func (c *consistent) spawn(done chan struct{}) {
	c.b.Lock()
	defer c.b.Unlock()
	go func() {
		c.a.Lock() // negative: the goroutine does not hold b
		c.a.Unlock()
		<-done
	}()
}

type pair struct{ mu sync.Mutex }

func mergePair(a, b *pair) {
	a.mu.Lock()
	//dvfslint:allow lockorder callers pass a and b in address order, so instances nest consistently
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

//dvfslint:allow lockorder no locks here // want "unused //dvfslint:allow lockorder directive"
func lockless() {}

//dvfslint:allow lokorder typo in the analyzer name // want "unknown analyzer"
func typoed() {}
