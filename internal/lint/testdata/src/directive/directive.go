// Corpus for //dvfslint:allow hygiene: a directive suppresses exactly
// its own line and the line below, a reason is mandatory, and
// malformed or unused directives are findings themselves — deleting a
// load-bearing suppression or typoing one can never silently pass.
package directivecase

func compare(a, b float64) {
	//dvfslint:allow floatcmp exact replay identity, verified by construction
	_ = a == b // negative: suppressed by the standalone directive above

	_ = a != b //dvfslint:allow floatcmp a trailing directive covers its own line

	//dvfslint:allow floatcmp nothing on the next line compares floats // want "unused //dvfslint:allow floatcmp directive"
	_ = a < b

	//dvfslint:deny floatcmp no such verb // want "unknown dvfslint directive verb"

	//dvfslint:allow flotcmp typo in the analyzer name // want "unknown analyzer"

	_ = a == b // want "float comparison =="
}
