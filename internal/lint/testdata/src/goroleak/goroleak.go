// Corpus for the goroleak analyzer: every goroutine the package spawns
// must observe a stop signal — ctx.Done(), a conventionally named
// done/stop channel, a close-ranged channel, or a tracked WaitGroup —
// and every locally owned time.Ticker/Timer must be stopped.
package gorocase

import (
	"context"
	"sync"
	"time"
)

func compute() {}

func spin() {
	for {
		compute()
	}
}

func launchSpin() {
	go spin() // want "fire-and-forget goroutine"
}

func launchLit(events chan int) {
	go func() { // want "fire-and-forget goroutine"
		for {
			select {
			case e := <-events:
				_ = e
			default:
			}
		}
	}()
}

type worker struct {
	stop chan struct{}
}

func (w *worker) runForever() {
	for {
		compute()
	}
}

func (w *worker) startForever() {
	go w.runForever() // want "fire-and-forget goroutine"
}

func (w *worker) run() {
	<-w.stop
}

func (w *worker) start() {
	go w.run() // negative: run receives from the stop channel
}

func watch(ctx context.Context, events chan int) {
	go func() { // negative: the select observes ctx.Done
		for {
			select {
			case <-ctx.Done():
				return
			case e := <-events:
				_ = e
			}
		}
	}()
}

func drain(events chan int) {
	go func() { // negative: closing events ends the range
		for e := range events {
			_ = e
		}
		compute()
	}()
}

func fanOut(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // negative: the WaitGroup tracks completion
		defer wg.Done()
		compute()
	}()
}

func tickerLeak(d time.Duration) {
	t := time.NewTicker(d) // want "time.Ticker is never stopped"
	go func() {
		for range t.C {
			compute()
		}
	}()
}

func timerLeak(d time.Duration) bool {
	t := time.NewTimer(d) // want "time.Timer is never stopped"
	select {
	case <-t.C:
		return true
	default:
		return false
	}
}

func tickerStopped(d time.Duration) {
	t := time.NewTicker(d) // negative: deferred Stop releases it
	defer t.Stop()
	<-t.C
}

func tickerHandedOff(d time.Duration) *time.Ticker {
	t := time.NewTicker(d)
	return t // negative: ownership transfers to the caller
}

func serveLoop() {
	for {
		compute()
	}
}

func acceptLoop() {
	//dvfslint:allow goroleak the loop exits when the listener underneath it closes
	go serveLoop()
}

//dvfslint:allow goroleak nothing spawns here // want "unused //dvfslint:allow goroleak directive"
func nothingSpawns() {}

//dvfslint:allow goroleek typo in the analyzer name // want "unknown analyzer"
func typoed() {}
