// Corpus posed as internal/obs, which is in mapOrderPackages only:
// the clock is permitted (latency observation is its job) but map
// iteration feeding output must still be deterministic.
package mapordercase

import "time"

func stamp() time.Time {
	return time.Now() // negative: obs gets only the map-order check
}

func dump(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want "map iteration order is randomized"
		out = append(out, v)
	}
	return out
}
