// Corpus for the atomicmix analyzer: a variable whose address reaches
// any sync/atomic function must be accessed through sync/atomic
// everywhere — one plain read or write makes every "atomic" access a
// data race.
package atomiccase

import "sync/atomic"

type counter struct {
	hits   uint64
	misses uint64
}

func (c *counter) hit() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) load() uint64 {
	return atomic.LoadUint64(&c.hits) // negative: atomic API on every access
}

func (c *counter) read() uint64 {
	return c.hits // want "plain access to hits"
}

func (c *counter) miss() {
	c.misses++ // negative: misses never goes through sync/atomic
}

var total uint64

func bump() {
	atomic.AddUint64(&total, 1)
}

func reset() {
	total = 0 // want "plain access to total"
}

var enabled atomic.Bool

func enable() {
	enabled.Store(true) // negative: typed atomics cannot be mixed
}

func seed(c *counter) {
	//dvfslint:allow atomicmix the constructor runs before any goroutine can observe c
	c.hits = 0
}

//dvfslint:allow atomicmix no atomics here // want "unused //dvfslint:allow atomicmix directive"
func plainOnly() {}

//dvfslint:allow atomicmux typo in the analyzer name // want "unknown analyzer"
func typoed() {}
