// Corpus for the poolcheck analyzer: sync.Pool values live between
// exactly one Get and at most one Put, owned by one function frame.
// Use-after-Put, double-Put, Put of a value that escaped, and returning
// memory a deferred Put is about to recycle are findings.
package poolcase

import "sync"

type request struct {
	id   int
	next *request
}

var reqPool = sync.Pool{New: func() any { return new(request) }}

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

var lastReq *request

type holder struct{ req *request }

func useAfterPut() int {
	req := reqPool.Get().(*request)
	req.id = 7
	reqPool.Put(req)
	return req.id // want "use of pooled value req after it was returned to the pool"
}

func doublePut() {
	req := reqPool.Get().(*request)
	reqPool.Put(req)
	reqPool.Put(req) // want "returned to the pool twice"
}

func putAfterGlobalStore() {
	req := reqPool.Get().(*request)
	lastReq = req
	reqPool.Put(req) // want "escaped before this Put"
}

func putAfterFieldStore(h *holder) {
	req := reqPool.Get().(*request)
	h.req = req
	reqPool.Put(req) // want "escaped before this Put"
}

func putAfterSend(ch chan *request) {
	req := reqPool.Get().(*request)
	ch <- req
	reqPool.Put(req) // want "escaped before this Put"
}

func returnWhileDeferredPut() []byte {
	bp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bp)
	out := *bp
	return out // want "returned while a deferred Put releases it"
}

func aliasUseAfterPut() int {
	bp := bufPool.Get().(*[]byte)
	data := *bp // the slice aliases the pooled buffer and joins its group
	bufPool.Put(bp)
	return len(data) // want "use of pooled value bp after it was returned to the pool"
}

func cleanLifecycle() {
	req := reqPool.Get().(*request)
	req.id = 1 // negative: writing the pooled value's own field keeps ownership
	req.next = nil
	reqPool.Put(req)
}

func branchPut(flush bool) {
	req := reqPool.Get().(*request)
	if flush {
		reqPool.Put(req)
		return
	}
	req.id = 2 // negative: the Put above is on the other path
	reqPool.Put(req)
}

func handBack(ch chan *request) {
	req := reqPool.Get().(*request)
	ch <- req
	//dvfslint:allow poolcheck the intake protocol hands the request back before Put
	reqPool.Put(req)
}

//dvfslint:allow poolcheck nothing pooled here // want "unused //dvfslint:allow poolcheck directive"
func nothingPooled() {}

//dvfslint:allow poolchek typo in the analyzer name // want "unknown analyzer"
func typoed() {}
