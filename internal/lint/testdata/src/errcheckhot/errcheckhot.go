// Corpus for the errcheck-hot analyzer, posed as internal/trace:
// writer/encoder calls whose error result is dropped, either as a
// bare statement or by discarding every result to _.
package errcheckcase

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// nopSink's Write returns nothing, so dropping its "result" is fine.
type nopSink struct{}

func (nopSink) Write(p []byte) {}

func emit(w *bufio.Writer, enc *json.Encoder, buf *bytes.Buffer, out io.Writer, v any) error {
	buf.WriteString("hdr")        // want "unchecked error from buf.WriteString"
	enc.Encode(v)                 // want "unchecked error from enc.Encode"
	fmt.Fprintf(out, "x=%d\n", 1) // want "unchecked error from fmt.Fprintf"
	_ = w.Flush()                 // want "error from w.Flush discarded to _"

	if err := enc.Encode(v); err != nil { // negative: checked
		return err
	}
	if _, err := buf.WriteString("ok"); err != nil { // negative: checked
		return err
	}
	n, err := out.Write([]byte("ok")) // negative: results bound to variables
	_ = n
	if err != nil {
		return err
	}
	var s nopSink
	s.Write(nil) // negative: this Write returns no error
	buf.Reset()  // negative: not a writer entry point
	return w.Flush()
}
