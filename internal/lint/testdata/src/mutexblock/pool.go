// Worker-pool shapes for the mutexblock analyzer, mirroring the
// request/ack striped pool the online engine uses for candidate
// evaluation: channel handoffs belong outside any lock, and the
// analyzer must neither miss a handoff smuggled under a mutex nor
// flag the lock-free steady state.
package mutexcase

import "sync"

type pool struct {
	mu     sync.Mutex
	closed bool
	reqs   []chan func(int)
	acks   chan struct{}
}

func (p *pool) evalLockFree(n int, fn func(int)) {
	// The hot path: fan out, run the caller's stripe, collect acks —
	// no lock anywhere.
	active := 0
	for w := 1; w < len(p.reqs) && w < n; w++ {
		p.reqs[w] <- fn // negative: no mutex held
		active++
	}
	for j := 0; j < n; j += len(p.reqs) {
		fn(j)
	}
	for i := 0; i < active; i++ {
		<-p.acks // negative: no mutex held
	}
}

func (p *pool) closeGuardedHandoff() {
	// Bad shape: the shutdown handoff blocks every worker touching the
	// same mutex. The state flip belongs under the lock, the channel
	// operations after it.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.reqs {
		ch <- nil // want "channel send while holding a mutex"
	}
	<-p.acks // want "channel receive while holding a mutex"
}

func (p *pool) closeThenDrain() {
	// Good shape: flip the flag under the lock, hand off after.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, ch := range p.reqs {
		close(ch)
	}
	<-p.acks // negative: lock released before the drain
}

func (p *pool) ackUnderAllow() {
	p.mu.Lock()
	defer p.mu.Unlock()
	//dvfslint:allow mutexblock the ack channel is buffered to pool width, so this send cannot block
	p.acks <- struct{}{}
}
