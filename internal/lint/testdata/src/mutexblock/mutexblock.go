// Corpus for the mutexblock analyzer: channel operations, blocking
// selects and well-known blocking calls performed while a sync.Mutex
// or RWMutex is held.
package mutexcase

import (
	"sync"
	"time"
)

type box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	wg   sync.WaitGroup
	done chan struct{}
}

func (b *box) sendLocked(v int) {
	b.mu.Lock()
	b.ch <- v // want "channel send while holding a mutex"
	b.mu.Unlock()
}

func (b *box) recvDeferred() int {
	b.mu.Lock()
	defer b.mu.Unlock() // deferred Unlock keeps the lock held below
	return <-b.ch       // want "channel receive while holding a mutex"
}

func (b *box) readLocked() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return <-b.ch // want "channel receive while holding a mutex"
}

func (b *box) waitLocked() {
	b.mu.Lock()
	b.wg.Wait() // want "sync.WaitGroup.Wait while holding a mutex"
	b.mu.Unlock()
}

func (b *box) sleepLocked() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding a mutex"
	b.mu.Unlock()
}

func (b *box) selectLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want "blocking select while holding a mutex"
	case v := <-b.ch:
		_ = v
	}
}

func (b *box) goroutineOwnLock() {
	go func() {
		b.mu.Lock()
		b.ch <- 1 // want "channel send while holding a mutex"
		b.mu.Unlock()
		<-b.done // stop signal keeps goroleak out of this corpus
	}()
}

func (b *box) sendAfterUnlock(v int) {
	b.mu.Lock()
	pending := len(b.ch)
	b.mu.Unlock()
	_ = pending
	b.ch <- v // negative: lock released before the send
}

func (b *box) nonBlockingSelect() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // negative: a default case cannot block
	case v := <-b.ch:
		_ = v
	default:
	}
}

func (b *box) goroutineEscapesLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 1 // negative: the goroutine does not hold the caller's lock
		<-b.done  // stop signal keeps goroleak out of this corpus
	}()
}

func (b *box) closureDefinedNotRun() func() {
	b.mu.Lock()
	defer b.mu.Unlock()
	return func() {
		b.ch <- 1 // negative: defining a closure does not run it
	}
}
