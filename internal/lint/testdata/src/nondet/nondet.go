// Corpus for the nondeterminism analyzer, posed as a deterministic
// engine package (internal/sim): wall-clock reads, the global
// math/rand source and order-sensitive map iteration are flagged;
// seeded generators and the two sanctioned map idioms are not.
package nondetcase

import (
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now() // want "time.Now in deterministic package internal/sim"
	return t.UnixNano()
}

func draw() float64 {
	return rand.Float64() // want "global math/rand source in deterministic package internal/sim"
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // negative: explicit seeded generator
	return r.Float64()
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package internal/sim"
}

func iterate(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is randomized"
		keys = append(keys, k)
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m { // negative: collect-then-sort idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func copyInto(dst, src map[string]int) {
	for k, v := range src { // negative: map-to-map writes are order-insensitive
		dst[k] = v
	}
}

func purge(m map[string]int, dead map[string]bool) {
	for k := range dead { // negative: deletes are order-insensitive
		delete(m, k)
	}
}

func overSlice(xs []int) int {
	var sum int
	for _, x := range xs { // negative: slice iteration is ordered
		sum += x
	}
	return sum
}
