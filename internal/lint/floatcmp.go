package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer flags == and != between float-typed expressions.
// The cost model's guarantees (Eq. 8, Thms 3-5) evaporate when two
// independently computed costs are compared for bit equality, so every
// float comparison must either go through an epsilon helper
// (model.ApproxEq) or carry a //dvfslint:allow floatcmp directive
// explaining why bit equality is intended — table lookups of values
// copied verbatim, sentinel encodings, exact-replay identities.
//
// Two comparison shapes are exempt by design:
//
//   - both operands are compile-time constants (the compiler folds
//     them, so they cannot drift at run time);
//   - one operand is the constant zero. Zero is exactly representable
//     and `x == 0` tests "unset/empty/default", not equality of two
//     computed values — the drift-prone shape always involves a
//     computed operand on each side or a non-zero constant.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= on float-typed expressions outside epsilon helpers",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	pass.inspectFiles(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt, yt := info.Types[be.X], info.Types[be.Y]
		if !isFloat(xt.Type) && !isFloat(yt.Type) {
			return true
		}
		if xt.Value != nil && yt.Value != nil {
			return true // constant-folded; cannot drift
		}
		if isZeroConst(xt) || isZeroConst(yt) {
			return true // exact sentinel: zero means unset/empty
		}
		pass.Report(be.OpPos, "float comparison %s: use model.ApproxEq or justify exactness with a //dvfslint:allow floatcmp directive", be.Op)
		return true
	})
}

// isZeroConst reports whether the operand is a compile-time numeric
// constant equal to zero.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isFloat reports whether t's core type is a floating-point or complex
// basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
