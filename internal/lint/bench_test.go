package lint

import "testing"

// BenchmarkLintRepo measures the production path: parallel parse, a
// dependency-leveled concurrent type-check, and per-package concurrent
// analysis. Each iteration builds a fresh loader, so the dominant cost
// — type-checking the stdlib closure from source — is paid every time,
// exactly as one `make lint` run pays it.
func BenchmarkLintRepo(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		if diags := DefaultSuite().Run(pkgs); len(diags) != 0 {
			b.Fatalf("repo not lint-clean during benchmark: %v", diags[0])
		}
	}
}

// BenchmarkLintRepoSerial is the pre-parallel baseline: the same
// discovery, but every package parsed, type-checked and analyzed one
// after another on one goroutine. The delta against BenchmarkLintRepo
// is what the pipelined loader buys (bounded by GOMAXPROCS — on a
// single-core runner the two converge).
func BenchmarkLintRepoSerial(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		rels, err := l.discover()
		if err != nil {
			b.Fatal(err)
		}
		suite := DefaultSuite()
		var diags []Diagnostic
		for _, rel := range rels {
			pkg, err := l.Load(rel)
			if err != nil {
				b.Fatal(err)
			}
			diags = append(diags, suite.RunPackage(pkg)...)
		}
		if len(diags) != 0 {
			b.Fatalf("repo not lint-clean during benchmark: %v", diags[0])
		}
	}
}
