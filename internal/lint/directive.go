package lint

import (
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//dvfslint:allow <analyzer> <reason>
//
// The directive silences findings of the named analyzer on its own
// line, or — when the comment stands alone — on the next line. A
// reason is mandatory: suppressions document why the invariant is
// safe to relax at that one site.
const directivePrefix = "//dvfslint:"

// directive is one parsed //dvfslint: comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	problem  string // non-empty for malformed directives
	used     bool
}

// directiveSet indexes a package's directives by (file, line) for both
// the directive's own line and the line below it.
type directiveSet struct {
	byLine map[string]map[int][]*directive
	all    []*directive
}

// parseDirectives scans every comment in the package. known names the
// valid analyzer identifiers; anything else is a malformed directive
// (typos must not silently disable enforcement).
func parseDirectives(pkg *Package, known map[string]bool) *directiveSet {
	set := &directiveSet{byLine: map[string]map[int][]*directive{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := parseDirective(pkg.Position(c.Pos()), c.Text, known)
				set.all = append(set.all, d)
				if d.problem != "" {
					continue
				}
				lines := set.byLine[d.pos.Filename]
				if lines == nil {
					lines = map[int][]*directive{}
					set.byLine[d.pos.Filename] = lines
				}
				// A directive covers its own line (trailing comment)
				// and the next line (standalone comment above).
				lines[d.pos.Line] = append(lines[d.pos.Line], d)
				lines[d.pos.Line+1] = append(lines[d.pos.Line+1], d)
			}
		}
	}
	return set
}

// parseDirective validates one //dvfslint: comment.
func parseDirective(pos token.Position, text string, known map[string]bool) *directive {
	d := &directive{pos: pos}
	rest := strings.TrimPrefix(text, directivePrefix)
	verb, args, _ := strings.Cut(rest, " ")
	if verb != "allow" {
		d.problem = "unknown dvfslint directive verb " + quote(verb) + " (want allow)"
		return d
	}
	analyzer, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
	d.analyzer = analyzer
	d.reason = strings.TrimSpace(reason)
	switch {
	case analyzer == "":
		d.problem = "allow directive names no analyzer"
	case !known[analyzer]:
		d.problem = "allow directive names unknown analyzer " + quote(analyzer)
	case d.reason == "":
		d.problem = "allow directive for " + analyzer + " has no reason; justify the suppression"
	}
	return d
}

// quote wraps s in double quotes for error text.
func quote(s string) string { return `"` + s + `"` }

// filter drops diagnostics covered by a matching allow directive,
// marking those directives used.
func (s *directiveSet) filter(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if s.suppresses(d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (s *directiveSet) suppresses(d Diagnostic) bool {
	hit := false
	for _, dir := range s.byLine[d.File][d.Line] {
		if dir.analyzer == d.Analyzer {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// problems reports malformed and unused directives as diagnostics of
// the pseudo-analyzer "directive", keeping every suppression in the
// tree load-bearing. active filters the unused check: a directive for
// an analyzer that did not run this invocation (-only) cannot be
// judged unused.
func (s *directiveSet) problems(active func(name string) bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		msg := d.problem
		if msg == "" && !d.used && active(d.analyzer) {
			msg = "unused //dvfslint:allow " + d.analyzer + " directive (nothing to suppress here; delete it)"
		}
		if msg == "" {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "directive",
			Pos:      d.pos,
			File:     d.pos.Filename,
			Line:     d.pos.Line,
			Column:   d.pos.Column,
			Message:  msg,
		})
	}
	return out
}
