package lint

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantMarker extracts `want "regexp"` expectations from corpus
// comments. A diagnostic is expected on the comment's own line.
var wantMarker = regexp.MustCompile(`want "([^"]*)"`)

// expectation is one parsed want marker.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// corpusCases maps each testdata corpus directory to the
// module-relative path it poses as, which selects the analyzers that
// apply to it.
var corpusCases = map[string]string{
	"floatcmp":    "internal/floatcmpcase",
	"nondet":      "internal/sim",
	"maporder":    "internal/obs",
	"mutexblock":  "internal/mutexcase",
	"errcheckhot": "internal/trace",
	"directive":   "internal/directivecase",
	"poolcheck":   "internal/poolcase",
	"goroleak":    "internal/gorocase",
	"atomicmix":   "internal/atomiccase",
	"lockorder":   "internal/lockcase",
}

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// parseCorpus parses every .go file in testdata/src/<dir> into its own
// FileSet and collects the want expectations from its comments.
func parseCorpus(t *testing.T, dir string) (*token.FileSet, []*ast.File, []*expectation) {
	t.Helper()
	path := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(path)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(path, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing corpus %s: %v", e.Name(), err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{
					file: pos.Filename,
					line: pos.Line,
					re:   regexp.MustCompile(m[1]),
				})
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("no corpus files in %s", path)
	}
	return fset, files, wants
}

// TestCorpus runs the full suite over each corpus package and checks
// its diagnostics against the want markers: every marker must be hit
// and no diagnostic may appear without one. Deleting an analyzer makes
// its positive cases fail; loosening one makes negatives fail.
func TestCorpus(t *testing.T) {
	loader := newTestLoader(t)
	for dir, rel := range corpusCases {
		t.Run(dir, func(t *testing.T) {
			fset, files, wants := parseCorpus(t, dir)
			pkg, err := loader.CheckPackage(rel, fset, files)
			if err != nil {
				t.Fatal(err)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("corpus does not type-check: %v", terr)
			}
			diags := DefaultSuite().RunPackage(pkg)
			for _, d := range diags {
				full := d.Analyzer + ": " + d.Message
				found := false
				for _, w := range wants {
					if !w.matched && w.file == d.File && w.line == d.Line && w.re.MatchString(full) {
						w.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestDirectiveMissingReason covers the one malformed-directive shape
// the corpus cannot express inline (a want marker appended to the
// directive would itself become the reason): a reasonless allow is a
// finding and does not suppress.
func TestDirectiveMissingReason(t *testing.T) {
	const src = `package p

func f(a, b float64) {
	//dvfslint:allow floatcmp
	_ = a == b
}
`
	loader := newTestLoader(t)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "reasonless.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.CheckPackage("internal/reasonless", fset, []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	diags := DefaultSuite().RunPackage(pkg)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (finding + malformed directive): %v", len(diags), diags)
	}
	if diags[0].Analyzer != "directive" || !strings.Contains(diags[0].Message, "no reason") {
		t.Errorf("diag[0] = %s, want directive/no-reason", diags[0])
	}
	if diags[1].Analyzer != "floatcmp" {
		t.Errorf("diag[1] = %s, want the unsuppressed floatcmp finding", diags[1])
	}
}

// TestRepoIsLintClean is the acceptance gate: the suite over every
// module package must report nothing. Each //dvfslint:allow in the
// tree is load-bearing — removing one resurrects a finding or trips
// the unused-directive check, so this test fails either way.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the stdlib closure from source")
	}
	loader := newTestLoader(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module discovery is broken", len(pkgs))
	}
	for _, d := range DefaultSuite().Run(pkgs) {
		t.Errorf("%s", d)
	}
}

// TestWriteJSON pins the -json schema: findings array plus count, with
// module-relative paths.
func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{{
		Analyzer: "floatcmp",
		File:     "/mod/internal/model/task.go",
		Line:     12,
		Column:   8,
		Message:  "float comparison ==",
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/mod", diags); err != nil {
		t.Fatal(err)
	}
	var report struct {
		Findings []Diagnostic `json:"findings"`
		Count    int          `json:"count"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if report.Count != 1 || len(report.Findings) != 1 {
		t.Fatalf("report = %+v, want one finding", report)
	}
	got := report.Findings[0]
	if got.File != "internal/model/task.go" || got.Line != 12 || got.Analyzer != "floatcmp" {
		t.Errorf("finding = %+v, want relativized path and preserved fields", got)
	}
}
