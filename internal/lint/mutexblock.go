package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MutexBlockAnalyzer flags operations that can block indefinitely —
// channel sends and receives, selects without a default, time.Sleep,
// WaitGroup.Wait, Cond.Wait — performed while a sync.Mutex or RWMutex
// is held. In the serving planes (internal/server, internal/obs) a
// blocked critical section stalls every request behind it and can
// deadlock against the shard goroutines, so blocking work must move
// outside the lock (the sessions registry's snapshot-then-purge
// pattern).
//
// The analysis is lexical, per function body: it tracks lock depth
// through the statement list (a deferred Unlock keeps the lock held to
// the end of the function) and descends into branches with a copy of
// the state. Function literals start unlocked, and `go` statements are
// skipped — their bodies do not run under the caller's lock.
var MutexBlockAnalyzer = &Analyzer{
	Name: "mutexblock",
	Doc:  "forbid channel operations and blocking calls while a sync mutex is held",
	Run:  runMutexBlock,
}

func runMutexBlock(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Keep descending after scanning a body: nested function
			// literals (goroutine bodies, callbacks) are reached here and
			// get their own fresh state. scanStmt never enters a FuncLit,
			// so each body is scanned exactly once.
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanLocked(pass, n.Body.List, &lockState{})
				}
			case *ast.FuncLit:
				scanLocked(pass, n.Body.List, &lockState{})
			}
			return true
		})
	}
}

// lockState is the lexical lock-tracking state within one function.
type lockState struct {
	depth int
}

func (st *lockState) held() bool { return st.depth > 0 }

func (st *lockState) copy() *lockState { c := *st; return &c }

// scanLocked walks a statement list in source order, updating the lock
// state and reporting blocking operations performed while locked.
func scanLocked(pass *Pass, stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		scanStmt(pass, s, st)
	}
}

func scanStmt(pass *Pass, s ast.Stmt, st *lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if kind := mutexCallKind(pass, s.X); kind == lockAcquire {
			st.depth++
			return
		} else if kind == lockRelease {
			if st.depth > 0 {
				st.depth--
			}
			return
		}
		checkBlockingExpr(pass, s.X, st)
	case *ast.DeferStmt:
		// A deferred Unlock runs at return: the lock stays held for the
		// rest of the function, which is exactly what depth already
		// says. Other deferred calls do not run here either.
	case *ast.GoStmt:
		// The spawned goroutine does not hold the caller's lock; its
		// body is scanned as a FuncLit with fresh state.
	case *ast.SendStmt:
		if st.held() {
			pass.Report(s.Arrow, "channel send while holding a mutex: move the send outside the critical section")
		}
		checkBlockingExpr(pass, s.Chan, st)
		checkBlockingExpr(pass, s.Value, st)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if st.held() && !hasDefault {
			pass.Report(s.Select, "blocking select while holding a mutex: add a default case or release the lock first")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanLocked(pass, cc.Body, st.copy())
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			checkBlockingExpr(pass, e, st)
		}
	case *ast.DeclStmt:
		checkBlockingExpr(pass, s, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			checkBlockingExpr(pass, e, st)
		}
	case *ast.BlockStmt:
		scanLocked(pass, s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, st)
		}
		checkBlockingExpr(pass, s.Cond, st)
		scanLocked(pass, s.Body.List, st.copy())
		if s.Else != nil {
			scanStmt(pass, s.Else, st.copy())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, st)
		}
		if s.Cond != nil {
			checkBlockingExpr(pass, s.Cond, st)
		}
		scanLocked(pass, s.Body.List, st.copy())
	case *ast.RangeStmt:
		checkBlockingExpr(pass, s.X, st)
		scanLocked(pass, s.Body.List, st.copy())
	case *ast.SwitchStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLocked(pass, cc.Body, st.copy())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLocked(pass, cc.Body, st.copy())
			}
		}
	case *ast.LabeledStmt:
		scanStmt(pass, s.Stmt, st)
	}
}

// lockCallKind classifies a mutex method call expression.
type lockCallKind int

const (
	notMutexCall lockCallKind = iota
	lockAcquire
	lockRelease
)

// mutexCallKind reports whether e is a Lock/RLock or Unlock/RUnlock
// call on a sync.Mutex or sync.RWMutex (including ones embedded in or
// reached through struct fields).
func mutexCallKind(pass *Pass, e ast.Expr) lockCallKind {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return notMutexCall
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return notMutexCall
	}
	obj := pass.Pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return notMutexCall
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return notMutexCall
	}
	name := recvTypeName(recv.Type())
	if name != "Mutex" && name != "RWMutex" {
		return notMutexCall
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lockAcquire
	case "Unlock", "RUnlock":
		return lockRelease
	}
	return notMutexCall
}

// recvTypeName unwraps a (possibly pointer) receiver to its named type.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkBlockingExpr inspects an expression (or declaration) subtree
// for operations that can block: channel receives and calls to
// time.Sleep, (*sync.WaitGroup).Wait, (*sync.Cond).Wait. Function
// literals are skipped — defining a closure does not run it.
func checkBlockingExpr(pass *Pass, n ast.Node, st *lockState) {
	if n == nil || !st.held() {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Report(n.OpPos, "channel receive while holding a mutex: move the receive outside the critical section")
			}
		case *ast.CallExpr:
			if name := blockingCallName(pass, n); name != "" {
				pass.Report(n.Pos(), "%s while holding a mutex: release the lock before blocking", name)
			}
		}
		return true
	})
}

// blockingCallName identifies well-known blocking calls.
func blockingCallName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.Pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if fn.Name() != "Wait" {
			return ""
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			return ""
		}
		switch recvTypeName(sig.Recv().Type()) {
		case "WaitGroup":
			return "sync.WaitGroup.Wait"
		case "Cond":
			return "sync.Cond.Wait"
		}
	}
	return ""
}
