package lint

import (
	"go/ast"
	"go/types"
)

// errcheckHotPackages are the wire-format hot paths: the JSONL trace
// codec and the HTTP serving plane. A swallowed write error there
// silently truncates a trace or a response body, which downstream
// replay (report.TimelineFromEvents) then misreads as a malformed
// schedule.
var errcheckHotPackages = map[string]bool{
	"internal/trace":  true,
	"internal/server": true,
}

// writerCallNames are the writer/encoder entry points whose error
// returns must be checked in the hot packages.
var writerCallNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteJSON":   true,
	"Encode":      true,
	"Flush":       true,
	"Close":       true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
}

// ErrcheckHotAnalyzer flags writer/encoder calls whose error result is
// dropped — either as a bare expression statement or by assigning
// every result to the blank identifier — inside the trace and server
// packages. Deliberate discards (e.g. a response writer after the
// header is committed) must carry a //dvfslint:allow errcheck-hot
// directive stating why nothing can be done with the error.
var ErrcheckHotAnalyzer = &Analyzer{
	Name:    "errcheck-hot",
	Doc:     "require checked errors on writer/encoder calls in the trace and wire hot paths",
	Applies: func(rel string) bool { return errcheckHotPackages[rel] },
	Run:     runErrcheckHot,
}

func runErrcheckHot(pass *Pass) {
	pass.inspectFiles(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if name, ok := droppedWriterError(pass, n.X); ok {
				pass.Report(n.Pos(), "unchecked error from %s: hot-path write failures must surface (check it or justify with //dvfslint:allow errcheck-hot)", name)
			}
		case *ast.AssignStmt:
			if !allBlank(n.Lhs) || len(n.Rhs) != 1 {
				return true
			}
			if name, ok := droppedWriterError(pass, n.Rhs[0]); ok {
				pass.Report(n.Pos(), "error from %s discarded to _: hot-path write failures must surface (check it or justify with //dvfslint:allow errcheck-hot)", name)
			}
		}
		return true
	})
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}

// droppedWriterError reports whether e is a call to a writer/encoder
// function that returns an error.
func droppedWriterError(pass *Pass, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return "", false
	}
	if !writerCallNames[name] {
		return "", false
	}
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil || !returnsError(tv.Type) {
		return "", false
	}
	return callDisplayName(call), true
}

// returnsError reports whether a call result type is or ends in error.
func returnsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callDisplayName renders the callee compactly, e.g. "enc.Encode".
func callDisplayName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}
