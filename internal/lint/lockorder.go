package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrderAnalyzer builds a lexical lock-acquisition graph over the
// package's named mutexes and flags cycles — the shard-map vs
// intake-ring style deadlock where goroutine 1 holds A and wants B
// while goroutine 2 holds B and wants A. Mutex identity is the
// declaration: the struct field (`shard.mu`, `Node.shipsMu`) or the
// package-level variable, so every instance of a type shares one node,
// which is exactly the granularity a lock *hierarchy* is defined at.
//
// Edges come from two shapes, both tracked with mutexblock's lexical
// discipline (deferred Unlocks hold to end of function, branches fork
// the held set, goroutine bodies start clean):
//
//   - a direct Lock/RLock of B while A is held;
//   - a call to a same-package function that (transitively) acquires B
//     while A is held.
//
// A cycle means two call paths acquire the same mutexes in opposite
// orders; the fix is a documented hierarchy (always A before B) or
// narrowing one critical section. A self-edge — re-acquiring a mutex
// already held — is reported as a self-deadlock; the rare pattern of
// locking two *instances* behind one field (pairwise merges) needs a
// //dvfslint:allow lockorder directive stating the instance order.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "flag cycles in the mutex acquisition order graph (potential deadlocks)",
	Run:  runLockOrder,
}

// lockEdge is one observed acquisition: to was acquired (directly or
// via a call) while from was held.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
	via      string // callee name for call-induced edges, "" for direct
}

// lockGraph accumulates the package's acquisition facts.
type lockGraph struct {
	pass   *Pass
	labels map[types.Object]string
	edges  map[[2]types.Object]*lockEdge
	// acquires is each function's transitive may-acquire set, built to
	// a fixed point over the package call graph.
	acquires map[types.Object]map[types.Object]bool
	// calls maps each function to the same-package functions it calls.
	calls map[types.Object]map[types.Object]bool
	// pending are call sites made under held locks, resolved into
	// edges once the transitive acquire sets are stable.
	pending []pendingCall
	decls   map[types.Object]*ast.FuncDecl
}

type pendingCall struct {
	held   []types.Object
	callee types.Object
	pos    token.Pos
	name   string
}

func runLockOrder(pass *Pass) {
	g := &lockGraph{
		pass:     pass,
		labels:   map[types.Object]string{},
		edges:    map[[2]types.Object]*lockEdge{},
		acquires: map[types.Object]map[types.Object]bool{},
		calls:    map[types.Object]map[types.Object]bool{},
		decls:    map[types.Object]*ast.FuncDecl{},
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil {
				g.decls[obj] = fd
			}
		}
	}
	// Scan every function: direct edges, held call sites, per-function
	// direct acquire sets and the call graph.
	for obj, fd := range g.decls {
		g.scanFunction(obj, fd.Body)
	}
	g.propagateAcquires()
	g.resolveCalls()
	g.reportCycles()
}

// scanFunction walks one function body with lexical held-set tracking.
func (g *lockGraph) scanFunction(fn types.Object, body *ast.BlockStmt) {
	g.acquires[fn] = map[types.Object]bool{}
	g.calls[fn] = map[types.Object]bool{}
	g.scanStmts(fn, body.List, &heldSet{})
}

// heldSet is the ordered multiset of currently held mutexes.
type heldSet struct {
	order []types.Object
	depth map[types.Object]int
}

func (h *heldSet) copy() *heldSet {
	c := &heldSet{order: append([]types.Object(nil), h.order...), depth: map[types.Object]int{}}
	for k, v := range h.depth {
		c.depth[k] = v
	}
	return c
}

func (h *heldSet) acquire(obj types.Object) {
	if h.depth == nil {
		h.depth = map[types.Object]int{}
	}
	if h.depth[obj] == 0 {
		h.order = append(h.order, obj)
	}
	h.depth[obj]++
}

func (h *heldSet) release(obj types.Object) {
	if h.depth[obj] == 0 {
		return
	}
	h.depth[obj]--
	if h.depth[obj] == 0 {
		for i := len(h.order) - 1; i >= 0; i-- {
			if h.order[i] == obj {
				h.order = append(h.order[:i], h.order[i+1:]...)
				break
			}
		}
	}
}

func (h *heldSet) holding() []types.Object {
	var out []types.Object
	for _, obj := range h.order {
		if h.depth[obj] > 0 {
			out = append(out, obj)
		}
	}
	return out
}

func (g *lockGraph) scanStmts(fn types.Object, stmts []ast.Stmt, held *heldSet) {
	for _, s := range stmts {
		g.scanStmt(fn, s, held)
	}
}

func (g *lockGraph) scanStmt(fn types.Object, s ast.Stmt, held *heldSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if g.handleLockCall(fn, s.X, held, false) {
			return
		}
		g.scanExpr(fn, s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held to the end of the
		// function — which is what the held set already says. A deferred
		// Lock would be bizarre; ignore it like mutexblock does.
		if kind, _ := lockCallTarget(g.pass, s.Call); kind == notMutexCall {
			g.scanExpr(fn, s.Call, held)
		}
	case *ast.GoStmt:
		// The goroutine does not inherit the spawner's locks, and its
		// acquisitions are concurrent, not nested: no edges. Its body is
		// reached as a FuncLit with a clean held set via scanExpr.
		g.scanExpr(fn, s.Call.Fun, &heldSet{})
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			g.scanExpr(fn, e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			g.scanExpr(fn, e, held)
		}
	case *ast.SendStmt:
		g.scanExpr(fn, s.Chan, held)
		g.scanExpr(fn, s.Value, held)
	case *ast.DeclStmt:
		g.scanExpr(fn, s, held)
	case *ast.BlockStmt:
		g.scanStmts(fn, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			g.scanStmt(fn, s.Init, held)
		}
		g.scanExpr(fn, s.Cond, held)
		g.scanStmts(fn, s.Body.List, held.copy())
		if s.Else != nil {
			g.scanStmt(fn, s.Else, held.copy())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			g.scanStmt(fn, s.Init, held)
		}
		if s.Cond != nil {
			g.scanExpr(fn, s.Cond, held)
		}
		g.scanStmts(fn, s.Body.List, held.copy())
	case *ast.RangeStmt:
		g.scanExpr(fn, s.X, held)
		g.scanStmts(fn, s.Body.List, held.copy())
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := held.copy()
				if cc.Comm != nil {
					g.scanStmt(fn, cc.Comm, branch)
				}
				g.scanStmts(fn, cc.Body, branch)
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.scanStmt(fn, s.Init, held)
		}
		g.scanExpr(fn, s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.scanStmts(fn, cc.Body, held.copy())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.scanStmts(fn, cc.Body, held.copy())
			}
		}
	case *ast.LabeledStmt:
		g.scanStmt(fn, s.Stmt, held)
	}
}

// handleLockCall processes e if it is a Lock/Unlock on an identifiable
// mutex, updating the held set, recording edges and the function's
// direct acquire set. Returns true when e was a mutex call.
func (g *lockGraph) handleLockCall(fn types.Object, e ast.Expr, held *heldSet, deferred bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	kind, recv := lockCallTarget(g.pass, call)
	if kind == notMutexCall {
		return false
	}
	obj, label := g.mutexIdentity(recv)
	if obj == nil {
		return true // an anonymous mutex expression; nothing to track
	}
	g.labels[obj] = label
	switch kind {
	case lockAcquire:
		for _, from := range held.holding() {
			g.addEdge(from, obj, call.Pos(), "")
		}
		held.acquire(obj)
		g.acquires[fn][obj] = true
	case lockRelease:
		held.release(obj)
	}
	return true
}

// scanExpr records call-graph facts and held call sites inside an
// expression subtree; nested function literals are scanned with a
// clean held set but contribute their acquisitions to the enclosing
// function's summary (a closure is usually invoked by the function
// that builds it).
func (g *lockGraph) scanExpr(fn types.Object, n ast.Node, held *heldSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.scanStmts(fn, n.Body.List, &heldSet{})
			return false
		case *ast.CallExpr:
			if g.handleLockCall(fn, n, held, false) {
				return false
			}
			callee := calleeObject(g.pass, n)
			if callee == nil {
				return true
			}
			if _, local := g.decls[callee]; !local {
				return true
			}
			g.calls[fn][callee] = true
			if holding := held.holding(); len(holding) > 0 {
				g.pending = append(g.pending, pendingCall{
					held:   holding,
					callee: callee,
					pos:    n.Pos(),
					name:   calleeDisplay(n),
				})
			}
		}
		return true
	})
}

// lockCallTarget classifies call as a mutex acquire/release (via
// mutexblock's mutexCallKind) and returns the receiver expression —
// the `sh.mu` in `sh.mu.Lock()` — for identity resolution.
func lockCallTarget(pass *Pass, call *ast.CallExpr) (lockCallKind, ast.Expr) {
	kind := mutexCallKind(pass, call)
	if kind == notMutexCall {
		return notMutexCall, nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return notMutexCall, nil
	}
	return kind, sel.X
}

// calleeObject resolves a call to a same-package function or method
// object, when the callee is a plain identifier or selector.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.Pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func calleeDisplay(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return exprDisplay(fun)
	}
	return "call"
}

// mutexIdentity resolves the receiver expression of a Lock call to its
// declaration-level identity: the struct field object (all instances
// share it) or the package-level variable object.
func (g *lockGraph) mutexIdentity(recv ast.Expr) (types.Object, string) {
	switch recv := recv.(type) {
	case *ast.SelectorExpr:
		obj, ok := g.pass.Pkg.Info.Uses[recv.Sel].(*types.Var)
		if !ok {
			return nil, ""
		}
		if obj.IsField() {
			return obj, fieldLabel(g.pass, recv, obj)
		}
		return obj, obj.Name()
	case *ast.Ident:
		obj, ok := g.pass.Pkg.Info.Uses[recv].(*types.Var)
		if !ok {
			return nil, ""
		}
		return obj, obj.Name()
	case *ast.ParenExpr:
		return g.mutexIdentity(recv.X)
	case *ast.IndexExpr:
		return g.mutexIdentity(recv.X)
	}
	return nil, ""
}

// fieldLabel renders "Type.field" for a mutex field, falling back to
// the source selector text when the base type is unnamed.
func fieldLabel(pass *Pass, sel *ast.SelectorExpr, field *types.Var) string {
	if tv, ok := pass.Pkg.Info.Types[sel.X]; ok && tv.Type != nil {
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + field.Name()
		}
	}
	return exprDisplay(sel)
}

func (g *lockGraph) addEdge(from, to types.Object, pos token.Pos, via string) {
	key := [2]types.Object{from, to}
	if _, ok := g.edges[key]; !ok {
		g.edges[key] = &lockEdge{from: from, to: to, pos: pos, via: via}
	}
}

// propagateAcquires closes each function's acquire set over the
// package call graph (may-acquire, not must-acquire).
func (g *lockGraph) propagateAcquires() {
	for changed := true; changed; {
		changed = false
		for fn, callees := range g.calls {
			acq := g.acquires[fn]
			for callee := range callees {
				for m := range g.acquires[callee] {
					if !acq[m] {
						acq[m] = true
						changed = true
					}
				}
			}
		}
	}
}

// resolveCalls turns held call sites into edges using the transitive
// acquire sets.
func (g *lockGraph) resolveCalls() {
	for _, pc := range g.pending {
		for m := range g.acquires[pc.callee] {
			for _, from := range pc.held {
				g.addEdge(from, m, pc.pos, pc.name)
			}
		}
	}
}

// reportCycles reports every edge that participates in a cycle, at the
// edge's source position. Reporting per-edge (not per-cycle) puts a
// finding at each acquisition site a developer would need to reorder.
func (g *lockGraph) reportCycles() {
	adj := map[types.Object][]types.Object{}
	for key := range g.edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	reaches := func(from, to types.Object) bool {
		if from == to {
			return true
		}
		seen := map[types.Object]bool{from: true}
		stack := []types.Object{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range adj[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	var offending []*lockEdge
	for _, e := range g.edges {
		if reaches(e.to, e.from) {
			offending = append(offending, e)
		}
	}
	sort.Slice(offending, func(i, j int) bool { return offending[i].pos < offending[j].pos })
	for _, e := range offending {
		from, to := g.labels[e.from], g.labels[e.to]
		switch {
		case e.from == e.to && e.via == "":
			g.pass.Report(e.pos, "mutex %s acquired while already held: self-deadlock (or an instance-pair pattern needing a documented order)", to)
		case e.from == e.to:
			g.pass.Report(e.pos, "call to %s re-acquires %s while it is held: self-deadlock on any shared instance", e.via, to)
		case e.via == "":
			g.pass.Report(e.pos, "acquiring %s while holding %s completes a lock-order cycle (%s is also held when %s is acquired): pick one order", to, from, to, from)
		default:
			g.pass.Report(e.pos, "call to %s acquires %s while %s is held, completing a lock-order cycle with the reverse order elsewhere: pick one order", e.via, to, from)
		}
	}
}
