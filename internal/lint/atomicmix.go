package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMixAnalyzer enforces the obs.Histogram / metrics-registry
// memory-model invariant: once any access to a variable goes through
// sync/atomic, every access must. A field or package variable that is
// passed by address to a sync/atomic function anywhere in the package
// and is also read or written plainly elsewhere is a data race the
// race detector only catches when both sides happen to run under
// -race at the same instant — the analyzer catches it structurally.
//
// The typed atomics (atomic.Uint64, atomic.Bool, ...) make mixing
// impossible through their method set and need no analysis; this
// check covers the pointer-based functions (atomic.AddUint64(&x, 1)
// and friends), where nothing stops a plain `x++` three lines later.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "forbid plain reads/writes of variables that are accessed through sync/atomic elsewhere",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// Pass 1: collect every variable whose address reaches a
	// sync/atomic call, and remember the exact AST nodes of those
	// sanctioned accesses.
	atomicVars := map[types.Object]ast.Node{} // object -> first atomic site
	sanctioned := map[ast.Node]bool{}         // ident/selector nodes inside atomic args
	pass.inspectFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			target := ast.Unparen(un.X)
			obj := accessedObject(pass, target)
			if obj == nil {
				continue
			}
			if _, seen := atomicVars[obj]; !seen {
				atomicVars[obj] = target
			}
			sanctioned[target] = true
		}
		return true
	})
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: any other mention of those variables is a plain access.
	pass.inspectFiles(func(n ast.Node) bool {
		var obj types.Object
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sanctioned[n] {
				return false
			}
			obj = pass.Pkg.Info.Uses[n.Sel]
		case *ast.Ident:
			if sanctioned[n] {
				return true
			}
			obj = pass.Pkg.Info.Uses[n]
		default:
			return true
		}
		if obj == nil {
			return true
		}
		if site, isAtomic := atomicVars[obj]; isAtomic {
			line := pass.Pkg.Position(site.Pos()).Line
			pass.Report(n.Pos(), "plain access to %s, which is accessed through sync/atomic elsewhere (line %d): use the atomic API on every access or neither", obj.Name(), line)
			if _, isSel := n.(*ast.SelectorExpr); isSel {
				return false // don't re-report via the nested Sel ident
			}
		}
		return true
	})
}

// isAtomicCall reports whether call is a package-level function of
// sync/atomic (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil
}

// accessedObject resolves the variable object behind an addressed
// expression: a plain identifier or the field of a selector.
func accessedObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := pass.Pkg.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pass.Pkg.Info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}
