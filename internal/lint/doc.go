// Package lint is dvfslint: a stdlib-only static-analysis suite that
// mechanically enforces the scheduler's correctness invariants across
// the whole module. The paper's guarantees (Thms 3-5, Eqs. 18-34) rely
// on implementation discipline the compiler cannot check — monotone
// rate/energy tables, reproducible event orderings, cost arithmetic
// that never compares floats for equality — so the suite encodes them
// as analyzers:
//
//   - floatcmp: no ==/!= on float-typed expressions; route through
//     model.ApproxEq or suppress with a justified directive.
//   - nondeterminism: the deterministic engine packages must not read
//     wall-clock time, the global math/rand source, or iterate maps in
//     an order-sensitive way.
//   - mutexblock: no channel operations or blocking calls while a
//     sync.Mutex/RWMutex is held (deadlock and tail-latency hazard in
//     the serving planes).
//   - errcheck-hot: writer/encoder error returns on the trace and wire
//     hot paths must be checked.
//   - poolcheck: sync.Pool values obey DESIGN §9.2's ownership rules —
//     one Get, at most one Put, no use after Put, no Put of a value
//     that escaped, no returning memory a deferred Put recycles.
//   - goroleak: every go statement's body must observe a stop signal
//     (ctx.Done(), a done/stop channel, a close-ranged channel, or a
//     tracked WaitGroup), and locally owned tickers must be stopped.
//   - atomicmix: a variable accessed through sync/atomic anywhere must
//     never be read or written plainly elsewhere.
//   - lockorder: the named-mutex acquisition graph (direct nesting and
//     same-package call chains) must be acyclic.
//
// The suite is built purely on go/parser, go/ast, go/types and
// go/token — no golang.org/x/tools — so the module stays
// dependency-free. Loading is pipelined: packages parse concurrently
// and type-check in dependency order across a bounded worker pool, and
// Suite.Run analyzes packages in parallel with deterministic,
// position-sorted output. Findings can be suppressed, one line at a
// time, with a justified directive:
//
//	//dvfslint:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. Unused
// and malformed directives are themselves reported, so every
// suppression in the tree stays load-bearing: deleting one makes the
// repo-wide run (and `make lint`) fail again.
package lint
