package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package of the module.
type Package struct {
	// Path is the full import path (module path + "/" + Rel).
	Path string
	// Rel is the directory relative to the module root, "" for the root
	// package. Analyzers scope themselves by Rel.
	Rel string
	// Dir is the absolute directory.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info hold the type-checker's results. Type checking is
	// best-effort: stdlib import failures degrade to empty packages so
	// analyzers still see local types.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects non-fatal type-checker complaints.
	TypeErrors []error
}

// Position resolves a token.Pos against the package's file set.
func (p *Package) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// Loader discovers, parses and type-checks module packages on demand.
// It is built only on the standard library: repo-internal imports are
// loaded recursively from source, and stdlib imports go through the
// go/importer "source" importer (shared and cached across packages, so
// the transitive stdlib closure is checked once per process).
type Loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.ImporterFrom
	stdMu   sync.Mutex          // the source importer is not concurrency-safe
	mu      sync.Mutex          // guards pkgs
	pkgs    map[string]*Package // keyed by Rel
	loading map[string]bool     // import-cycle guard, keyed by Rel
}

func init() {
	// The source importer honors build.Default; with cgo enabled it
	// would try to invoke the cgo tool on packages like net. The pure-Go
	// fallbacks are what the scheduler builds against anyway.
	build.Default.CgoEnabled = false
}

// NewLoader returns a loader for the module rooted at root (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll discovers every package directory under the module root
// (skipping testdata, vendor, hidden and underscore directories) and
// loads each one, returning them sorted by Rel.
//
// Loading is pipelined: all package directories are parsed
// concurrently (token.FileSet is safe for concurrent use), the
// module-internal import graph is built from the parsed files, and
// packages are then type-checked level by level in dependency order
// with a bounded worker pool, so independent subtrees check in
// parallel. Cycles in the module graph are reported here instead of by
// Load's recursion guard.
func (l *Loader) LoadAll() ([]*Package, error) {
	rels, err := l.discover()
	if err != nil {
		return nil, err
	}

	// Parse every package concurrently.
	type parsedPkg struct {
		rel   string
		dir   string
		files []*ast.File
	}
	parsed := make([]*parsedPkg, len(rels))
	errs := make([]error, len(rels))
	workers := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, rel := range rels {
		wg.Add(1)
		go func(i int, rel string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dir, files, err := l.parseDir(rel)
			if err != nil {
				errs[i] = err
				return
			}
			parsed[i] = &parsedPkg{rel: rel, dir: dir, files: files}
		}(i, rel)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Build the module-internal dependency graph from the parsed
	// imports and order it (Kahn's algorithm, by level).
	idx := make(map[string]int, len(rels))
	for i, rel := range rels {
		idx[rel] = i
	}
	dependents := make([][]int, len(rels))
	indegree := make([]int, len(rels))
	for i, p := range parsed {
		for _, dep := range l.moduleImports(p.files) {
			if j, ok := idx[dep]; ok && j != i {
				dependents[j] = append(dependents[j], i)
				indegree[i]++
			}
		}
	}
	var level []int
	for i, deg := range indegree {
		if deg == 0 {
			level = append(level, i)
		}
	}
	checked := 0
	for len(level) > 0 {
		// Type-check one dependency level concurrently: everything a
		// package imports was checked in an earlier level.
		var cwg sync.WaitGroup
		for _, i := range level {
			cwg.Add(1)
			go func(p *parsedPkg) {
				defer cwg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				l.checkParsed(p.rel, p.dir, p.files)
			}(parsed[i])
		}
		cwg.Wait()
		checked += len(level)
		var next []int
		for _, i := range level {
			for _, j := range dependents[i] {
				if indegree[j]--; indegree[j] == 0 {
					next = append(next, j)
				}
			}
		}
		level = next
	}
	if checked < len(rels) {
		var stuck []string
		for i, deg := range indegree {
			if deg > 0 {
				stuck = append(stuck, strconv.Quote(rels[i]))
			}
		}
		return nil, fmt.Errorf("lint: import cycle among %s", strings.Join(stuck, ", "))
	}

	pkgs := make([]*Package, 0, len(rels))
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rel := range rels {
		pkgs = append(pkgs, l.pkgs[rel])
	}
	return pkgs, nil
}

// discover walks the module tree for package directories, sorted by
// Rel.
func (l *Loader) discover() ([]string, error) {
	var rels []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(l.root, path)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			rels = append(rels, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking module: %w", err)
	}
	sort.Strings(rels)
	return rels, nil
}

// moduleImports extracts the module-relative paths of the module
// packages imported by files.
func (l *Loader) moduleImports(files []*ast.File) []string {
	var deps []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == l.modPath {
				deps = append(deps, "")
			} else if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
				deps = append(deps, rest)
			}
		}
	}
	return deps
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isLintableFile(e.Name()) {
			return true
		}
	}
	return false
}

// isLintableFile reports whether name is a non-test Go source file.
func isLintableFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// Load parses and type-checks the package in the directory rel
// (relative to the module root), reusing a previous load if present.
// This sequential path serves single-package loads and the importer's
// recursion; LoadAll type-checks its discovered set through
// checkParsed directly.
func (l *Loader) Load(rel string) (*Package, error) {
	l.mu.Lock()
	pkg, ok := l.pkgs[rel]
	l.mu.Unlock()
	if ok {
		return pkg, nil
	}
	if l.loading[rel] {
		return nil, fmt.Errorf("lint: import cycle through %q", rel)
	}
	l.loading[rel] = true
	defer delete(l.loading, rel)

	dir, files, err := l.parseDir(rel)
	if err != nil {
		return nil, err
	}
	return l.checkParsed(rel, dir, files), nil
}

// parseDir reads and parses the non-test sources of one package
// directory. Safe for concurrent use: the shared FileSet synchronizes
// internally.
func (l *Loader) parseDir(rel string) (string, []*ast.File, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isLintableFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return "", nil, fmt.Errorf("lint: parsing %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return "", nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return dir, files, nil
}

// checkParsed type-checks one parsed package and publishes it in the
// cache. Callers must ensure the package's module dependencies are
// already loaded (LoadAll's level order) or loadable (Load's
// recursion).
func (l *Loader) checkParsed(rel, dir string, files []*ast.File) *Package {
	path := l.modPath
	if rel != "" {
		path = l.modPath + "/" + rel
	}
	pkg := &Package{Path: path, Rel: rel, Dir: dir, Fset: l.fset}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: &pkgImporter{l: l},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	pkg.Files, pkg.Types, pkg.Info = files, tpkg, info
	l.mu.Lock()
	l.pkgs[rel] = pkg
	l.mu.Unlock()
	return pkg
}

// CheckPackage type-checks an externally parsed file set as one
// package, for the testdata corpus driver. rel poses as the package's
// module-relative path so analyzers scope it like a real repo package.
func (l *Loader) CheckPackage(rel string, fset *token.FileSet, files []*ast.File) (*Package, error) {
	pkg := &Package{Path: l.modPath + "/" + rel, Rel: rel, Fset: fset}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: &fsetImporter{l: l, fset: fset},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(pkg.Path, fset, files, info)
	pkg.Files, pkg.Types, pkg.Info = files, tpkg, info
	return pkg, nil
}

// pkgImporter resolves imports during module type-checking: module
// paths recurse into the loader, everything else goes to the shared
// source importer, degrading to an empty placeholder package when the
// stdlib source is unavailable so analysis of local code continues.
type pkgImporter struct {
	l *Loader
}

func (im *pkgImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *pkgImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == im.l.modPath || strings.HasPrefix(path, im.l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, im.l.modPath), "/")
		pkg, err := im.l.Load(rel)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return im.l.importStd(path)
}

// fsetImporter serves CheckPackage, which type-checks files positioned
// in their own FileSet: module imports are refused (the corpus is
// stdlib-only) and stdlib imports share the loader's cache.
type fsetImporter struct {
	l    *Loader
	fset *token.FileSet
}

func (im *fsetImporter) Import(path string) (*types.Package, error) {
	if path == im.l.modPath || strings.HasPrefix(path, im.l.modPath+"/") {
		return nil, fmt.Errorf("lint: corpus packages must not import module packages (%s)", path)
	}
	return im.l.importStd(path)
}

// importStd imports a stdlib package through the shared source
// importer, substituting an empty named package on failure. The
// importer's internal cache is not safe for concurrent use, so calls
// are serialized; after the first LoadAll level warms the cache this
// is cheap.
func (l *Loader) importStd(path string) (*types.Package, error) {
	l.stdMu.Lock()
	pkg, err := l.std.ImportFrom(path, l.root, 0)
	l.stdMu.Unlock()
	if err == nil {
		return pkg, nil
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	fake := types.NewPackage(path, name)
	fake.MarkComplete()
	return fake, nil
}
