package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolCheckAnalyzer enforces DESIGN §9's scratch-ownership rules on
// sync.Pool values: a pooled value is held between exactly one Get and
// at most one Put, inside one function, by one owner. It flags, per
// function body and lexically (branches are scanned with a copy of the
// state, mirroring mutexblock):
//
//   - use-after-Put: any mention of the pooled value (or a reference
//     derived from it) after the statement that returned it to the pool;
//   - double-Put: returning the same value to a pool twice on one path;
//   - Put of an escaped value: the value was stored into a field or
//     package variable, sent on a channel, or returned before the Put —
//     another goroutine may still hold it, so only the receiver that
//     got it back may Put (PR 5's receiver-only-Put rule, the
//     submitReq intake contract);
//   - retained aliasing: a deferred Put combined with returning the
//     value (or a slice/pointer derived from it) hands the caller
//     memory the pool is about to recycle.
//
// Sites where a protocol guarantees safety (the group-commit intake's
// hand-back) carry a //dvfslint:allow poolcheck directive naming that
// protocol.
var PoolCheckAnalyzer = &Analyzer{
	Name: "poolcheck",
	Doc:  "enforce sync.Pool ownership: no use-after-Put, double-Put, Put of escaped values, or returned aliases of deferred-Put values",
	Run:  runPoolCheck,
}

func runPoolCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Each body is scanned exactly once with fresh state; nested
			// function literals reached here get their own scan and never
			// inherit the enclosing body's pooled variables.
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanPoolBody(pass, n.Body.List, newPoolState())
				}
			case *ast.FuncLit:
				scanPoolBody(pass, n.Body.List, newPoolState())
			}
			return true
		})
	}
}

// poolVar is the lexical lifecycle of one value obtained from a
// sync.Pool within one function body.
type poolVar struct {
	name string
	// group links aliases: every variable derived from the same Get
	// shares one group, so putting or using any member affects all.
	group *poolGroup
}

// poolGroup is the shared state of one pooled value and its aliases.
type poolGroup struct {
	name        string // the original Get target, for messages
	putLine     int    // 0 while live
	escapedLine int    // 0 until stored in a field, sent, or returned
	escapedHow  string
	deferredPut bool
}

// poolState tracks pooled variables per lexical path. vars maps the
// variable object to its lifecycle; copies share the groups (an alias
// discovered in a branch is still an alias after it) but branch
// put/escape transitions are path-local via the group copy.
type poolState struct {
	vars map[types.Object]*poolVar
}

func newPoolState() *poolState {
	return &poolState{vars: map[types.Object]*poolVar{}}
}

// copyState clones the state for a branch: group lifecycles fork so a
// Put inside an if-body (followed by a return) does not poison the
// fall-through path.
func (st *poolState) copyState() *poolState {
	c := newPoolState()
	groups := map[*poolGroup]*poolGroup{}
	for obj, pv := range st.vars {
		g, ok := groups[pv.group]
		if !ok {
			cp := *pv.group
			g = &cp
			groups[pv.group] = g
		}
		c.vars[obj] = &poolVar{name: pv.name, group: g}
	}
	return c
}

func scanPoolBody(pass *Pass, stmts []ast.Stmt, st *poolState) {
	for _, s := range stmts {
		scanPoolStmt(pass, s, st)
	}
}

func scanPoolStmt(pass *Pass, s ast.Stmt, st *poolState) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		scanPoolAssign(pass, s, st)
	case *ast.ExprStmt:
		if pv, ok := poolPutCall(pass, s.X, st); ok {
			recordPut(pass, s.X.Pos(), pv)
			return
		}
		checkPoolUses(pass, s.X, st)
	case *ast.DeferStmt:
		if pv, ok := poolPutCall(pass, s.Call, st); ok {
			pv.group.deferredPut = true
			return
		}
		checkPoolUses(pass, s.Call, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			checkPoolUses(pass, e, st)
			for _, pv := range referencedPoolVars(pass, e, st) {
				g := pv.group
				if g.deferredPut {
					pass.Report(e.Pos(), "pooled value %s (or memory it aliases) is returned while a deferred Put releases it: copy it out before returning", g.name)
				} else if g.putLine == 0 {
					g.escapedLine = pass.Pkg.Position(e.Pos()).Line
					g.escapedHow = "returned to the caller"
				}
			}
		}
	case *ast.SendStmt:
		checkPoolUses(pass, s.Chan, st)
		checkPoolUses(pass, s.Value, st)
		for _, pv := range referencedPoolVars(pass, s.Value, st) {
			if pv.group.putLine == 0 {
				pv.group.escapedLine = pass.Pkg.Position(s.Arrow).Line
				pv.group.escapedHow = "sent on a channel"
			}
		}
	case *ast.GoStmt:
		checkPoolUses(pass, s.Call, st)
		for _, pv := range referencedPoolVars(pass, s.Call, st) {
			if pv.group.putLine == 0 {
				pv.group.escapedLine = pass.Pkg.Position(s.Pos()).Line
				pv.group.escapedHow = "captured by a goroutine"
			}
		}
	case *ast.DeclStmt:
		checkPoolUses(pass, s, st)
	case *ast.BlockStmt:
		scanPoolBody(pass, s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			scanPoolStmt(pass, s.Init, st)
		}
		checkPoolUses(pass, s.Cond, st)
		scanPoolBody(pass, s.Body.List, st.copyState())
		if s.Else != nil {
			scanPoolStmt(pass, s.Else, st.copyState())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			scanPoolStmt(pass, s.Init, st)
		}
		if s.Cond != nil {
			checkPoolUses(pass, s.Cond, st)
		}
		scanPoolBody(pass, s.Body.List, st.copyState())
	case *ast.RangeStmt:
		checkPoolUses(pass, s.X, st)
		scanPoolBody(pass, s.Body.List, st.copyState())
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := st.copyState()
				if cc.Comm != nil {
					scanPoolStmt(pass, cc.Comm, branch)
				}
				scanPoolBody(pass, cc.Body, branch)
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			scanPoolStmt(pass, s.Init, st)
		}
		checkPoolUses(pass, s.Tag, st)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanPoolBody(pass, cc.Body, st.copyState())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanPoolBody(pass, cc.Body, st.copyState())
			}
		}
	case *ast.LabeledStmt:
		scanPoolStmt(pass, s.Stmt, st)
	}
}

// scanPoolAssign handles the three assignment shapes the lifecycle
// cares about: a Get that starts tracking, a write that makes a pooled
// value escape, and a derived reference that joins an alias group.
func scanPoolAssign(pass *Pass, s *ast.AssignStmt, st *poolState) {
	checkPoolUses(pass, s, st)

	// x := pool.Get()  /  x := pool.Get().(T)
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 && isPoolGetExpr(pass, s.Rhs[0]) {
		if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := assignedObject(pass, id); obj != nil {
				st.vars[obj] = &poolVar{name: id.Name, group: &poolGroup{name: id.Name}}
			}
		}
		return
	}

	for i, rhs := range s.Rhs {
		refs := referencedPoolVars(pass, rhs, st)
		if len(refs) == 0 {
			continue
		}
		if i >= len(s.Lhs) {
			break
		}
		lhs := s.Lhs[i]
		// Storing the value outside this function's frame is an escape:
		// a field of a non-pooled object, an element of one, or a
		// package-level variable.
		if target, ok := escapeTarget(pass, lhs, st); ok {
			for _, pv := range refs {
				if pv.group.putLine == 0 && pv.group.escapedLine == 0 {
					pv.group.escapedLine = pass.Pkg.Position(s.Pos()).Line
					pv.group.escapedHow = "stored in " + target
				}
			}
			continue
		}
		// x := <expr referencing a pooled value> of reference type:
		// x aliases the pooled memory and joins the group.
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := assignedObject(pass, id); obj != nil && isReferenceType(objType(obj)) {
				if _, tracked := st.vars[obj]; !tracked {
					st.vars[obj] = &poolVar{name: id.Name, group: refs[0].group}
				}
			}
		}
	}
}

// recordPut transitions a pooled value to returned, reporting
// double-Puts and Puts of escaped values.
func recordPut(pass *Pass, pos token.Pos, pv *poolVar) {
	g := pv.group
	if g.putLine != 0 {
		pass.Report(pos, "pooled value %s returned to the pool twice (previous Put at line %d)", g.name, g.putLine)
		return
	}
	if g.escapedLine != 0 {
		pass.Report(pos, "pooled value %s escaped before this Put (%s at line %d): only the receiver that got it back may return it to the pool", g.name, g.escapedHow, g.escapedLine)
	}
	g.putLine = pass.Pkg.Position(pos).Line
}

// checkPoolUses reports mentions of already-Put pooled values anywhere
// in the expression subtree. Nested function literals are skipped:
// defining a closure does not run it, and its body gets its own scan.
func checkPoolUses(pass *Pass, n ast.Node, st *poolState) {
	if n == nil || len(st.vars) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if pv, tracked := st.vars[obj]; tracked && pv.group.putLine != 0 {
			pass.Report(id.Pos(), "use of pooled value %s after it was returned to the pool (Put at line %d)", pv.group.name, pv.group.putLine)
		}
		return true
	})
}

// referencedPoolVars collects the live tracked variables mentioned in
// an expression subtree, skipping nested function literals.
func referencedPoolVars(pass *Pass, n ast.Node, st *poolState) []*poolVar {
	if n == nil || len(st.vars) == 0 {
		return nil
	}
	var out []*poolVar
	seen := map[*poolGroup]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if pv, tracked := st.vars[obj]; tracked && !seen[pv.group] {
			seen[pv.group] = true
			out = append(out, pv)
		}
		return true
	})
	return out
}

// escapeTarget classifies an assignment target that moves a pooled
// value out of the function's frame. Writes into the pooled value
// itself (req.ctx = nil, *bp = buf) are ownership-preserving and do
// not escape.
func escapeTarget(pass *Pass, lhs ast.Expr, st *poolState) (string, bool) {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		if exprRootIsTracked(pass, lhs.X, st) {
			return "", false // field of the pooled value itself
		}
		return "field " + exprDisplay(lhs), true
	case *ast.IndexExpr:
		if exprRootIsTracked(pass, lhs.X, st) {
			return "", false
		}
		return "element of " + exprDisplay(lhs.X), true
	case *ast.StarExpr:
		if exprRootIsTracked(pass, lhs.X, st) {
			return "", false // writing through the pooled pointer
		}
		return "dereference of " + exprDisplay(lhs.X), true
	case *ast.Ident:
		obj := assignedObject(pass, lhs)
		if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return "package variable " + lhs.Name, true
		}
	}
	return "", false
}

// exprRootIsTracked reports whether the base of a selector/index/star
// chain is itself a tracked pooled variable.
func exprRootIsTracked(pass *Pass, e ast.Expr, st *poolState) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			obj := pass.Pkg.Info.Uses[x]
			if obj == nil {
				return false
			}
			_, tracked := st.vars[obj]
			return tracked
		default:
			return false
		}
	}
}

// exprDisplay renders a short source-ish form of e for messages.
func exprDisplay(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprDisplay(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprDisplay(e.X)
	case *ast.StarExpr:
		return "*" + exprDisplay(e.X)
	case *ast.IndexExpr:
		return exprDisplay(e.X) + "[...]"
	}
	return "expression"
}

// assignedObject resolves the object an identifier binds or assigns.
func assignedObject(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Pkg.Info.Uses[id]
}

func objType(obj types.Object) types.Type {
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// isReferenceType reports whether values of t share underlying memory
// when copied — the types through which pooled memory can alias.
func isReferenceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// isPoolGetExpr reports whether e is (*sync.Pool).Get(), possibly
// wrapped in a type assertion.
func isPoolGetExpr(pass *Pass, e ast.Expr) bool {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	return poolMethodName(pass, call) == "Get"
}

// poolPutCall reports whether e is (*sync.Pool).Put(x) on a tracked
// variable, returning its lifecycle.
func poolPutCall(pass *Pass, e ast.Expr, st *poolState) (*poolVar, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || poolMethodName(pass, call) != "Put" || len(call.Args) != 1 {
		return nil, false
	}
	arg := call.Args[0]
	for {
		if p, ok := arg.(*ast.ParenExpr); ok {
			arg = p.X
			continue
		}
		break
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil {
		return nil, false
	}
	pv, tracked := st.vars[obj]
	return pv, tracked
}

// poolMethodName resolves a call to a method on sync.Pool, returning
// its name ("Get", "Put") or "".
func poolMethodName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || recvTypeName(recv.Type()) != "Pool" {
		return ""
	}
	return fn.Name()
}
