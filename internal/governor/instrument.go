package governor

import (
	"fmt"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
)

// Instrumented wraps a Governor and counts its activity in an
// obs.Registry: "governor.<name>.decisions" counts every Next call and
// "governor.<name>.level_changes" counts the calls that picked a
// different level than the current one. The wrapped governor's
// decisions are returned unchanged.
type Instrumented struct {
	G Governor

	decisions *obs.Counter
	changes   *obs.Counter
}

// Instrument wraps g so its decisions are counted in reg. A nil
// registry returns g unwrapped.
func Instrument(g Governor, reg *obs.Registry) Governor {
	if reg == nil {
		return g
	}
	return &Instrumented{
		G:         g,
		decisions: reg.Counter(fmt.Sprintf("governor.%s.decisions", g.Name())),
		changes:   reg.Counter(fmt.Sprintf("governor.%s.level_changes", g.Name())),
	}
}

// Name implements Governor.
func (i *Instrumented) Name() string { return i.G.Name() }

// Next implements Governor.
func (i *Instrumented) Next(rt *model.RateTable, currentIdx int, busy float64) int {
	next := i.G.Next(rt, currentIdx, busy)
	i.decisions.Inc()
	if next != currentIdx {
		i.changes.Inc()
	}
	return next
}
