// Package governor reimplements the Linux cpufreq governor policies
// the paper uses as baselines (Section V): On-demand, which jumps to
// the maximum frequency when a core's load crosses a threshold and
// steps down one level otherwise; Performance and Powersave, which pin
// the extremes; Userspace, which pins a chosen level; and
// Conservative, which steps in both directions.
//
// A governor is a pure decision function from (rate table, current
// level, observed busy fraction) to the next level index; the
// simulator's tick callback applies it.
package governor

import (
	"fmt"

	"dvfsched/internal/model"
)

// Governor decides a core's next frequency level once per sampling
// period.
type Governor interface {
	// Name identifies the governor.
	Name() string
	// Next returns the next level index given the current index and
	// the busy fraction (0..1) observed over the last period.
	Next(rt *model.RateTable, currentIdx int, busyFraction float64) int
}

// OnDemand mirrors Linux's ondemand governor as the paper describes
// it: load at or above UpThreshold jumps straight to the highest
// frequency; below it, the frequency drops one level per period.
type OnDemand struct {
	// UpThreshold is the load fraction that triggers max frequency;
	// the paper uses 0.85.
	UpThreshold float64
}

// DefaultOnDemand returns the paper's 85%-threshold configuration.
func DefaultOnDemand() OnDemand { return OnDemand{UpThreshold: 0.85} }

// Name implements Governor.
func (OnDemand) Name() string { return "ondemand" }

// Next implements Governor.
func (g OnDemand) Next(rt *model.RateTable, currentIdx int, busy float64) int {
	if busy >= g.UpThreshold {
		return rt.Len() - 1
	}
	if currentIdx > 0 {
		return currentIdx - 1
	}
	return 0
}

// Performance always selects the highest frequency.
type Performance struct{}

// Name implements Governor.
func (Performance) Name() string { return "performance" }

// Next implements Governor.
func (Performance) Next(rt *model.RateTable, _ int, _ float64) int { return rt.Len() - 1 }

// Powersave always selects the lowest frequency.
type Powersave struct{}

// Name implements Governor.
func (Powersave) Name() string { return "powersave" }

// Next implements Governor.
func (Powersave) Next(*model.RateTable, int, float64) int { return 0 }

// Userspace pins a fixed level, like writing scaling_setspeed with the
// userspace governor as the paper's experiment setup does.
type Userspace struct {
	// Index is the pinned level index.
	Index int
}

// Name implements Governor.
func (Userspace) Name() string { return "userspace" }

// Next implements Governor.
func (g Userspace) Next(rt *model.RateTable, _ int, _ float64) int {
	if g.Index < 0 {
		return 0
	}
	if g.Index >= rt.Len() {
		return rt.Len() - 1
	}
	return g.Index
}

// Conservative steps one level up above UpThreshold and one level down
// below DownThreshold, like Linux's conservative governor.
type Conservative struct {
	// UpThreshold triggers a one-step increase (e.g. 0.8).
	UpThreshold float64
	// DownThreshold triggers a one-step decrease (e.g. 0.2).
	DownThreshold float64
}

// DefaultConservative returns the common 80/20 configuration.
func DefaultConservative() Conservative {
	return Conservative{UpThreshold: 0.8, DownThreshold: 0.2}
}

// Name implements Governor.
func (Conservative) Name() string { return "conservative" }

// Next implements Governor.
func (g Conservative) Next(rt *model.RateTable, currentIdx int, busy float64) int {
	switch {
	case busy >= g.UpThreshold && currentIdx < rt.Len()-1:
		return currentIdx + 1
	case busy <= g.DownThreshold && currentIdx > 0:
		return currentIdx - 1
	default:
		return currentIdx
	}
}

// Validate checks a governor's configuration.
func Validate(g Governor) error {
	switch v := g.(type) {
	case OnDemand:
		if v.UpThreshold <= 0 || v.UpThreshold > 1 {
			return fmt.Errorf("governor: ondemand threshold %v outside (0,1]", v.UpThreshold)
		}
	case Conservative:
		if v.UpThreshold <= 0 || v.UpThreshold > 1 || v.DownThreshold < 0 || v.DownThreshold >= v.UpThreshold {
			return fmt.Errorf("governor: conservative thresholds (%v, %v) invalid", v.DownThreshold, v.UpThreshold)
		}
	}
	return nil
}
