package governor

import (
	"testing"

	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
)

func TestInstrumentCounts(t *testing.T) {
	reg := obs.NewRegistry()
	g := Instrument(DefaultOnDemand(), reg)
	if g.Name() != "ondemand" {
		t.Fatalf("name = %q", g.Name())
	}
	rt := platform.TableII()
	idx := 0
	// Busy period jumps to max (a change), idle periods walk back down
	// one level at a time until pinned at 0 (no change).
	loads := []float64{0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}
	for _, busy := range loads {
		next := g.Next(rt, idx, busy)
		want := DefaultOnDemand().Next(rt, idx, busy)
		if next != want {
			t.Fatalf("instrumented decision %d != bare decision %d", next, want)
		}
		idx = next
	}
	s := reg.Snapshot()
	if got := s.Counters["governor.ondemand.decisions"]; got != float64(len(loads)) {
		t.Errorf("decisions = %v, want %d", got, len(loads))
	}
	// 0->4, then 4->3->2->1->0, then two pinned-at-0 non-changes.
	if got := s.Counters["governor.ondemand.level_changes"]; got != 5 {
		t.Errorf("level_changes = %v, want 5", got)
	}
}

func TestInstrumentNilRegistry(t *testing.T) {
	g := Instrument(Powersave{}, nil)
	if _, wrapped := g.(*Instrumented); wrapped {
		t.Error("nil registry should return the governor unwrapped")
	}
}
