package governor

import (
	"testing"

	"dvfsched/internal/model"
)

func table2() *model.RateTable {
	return model.MustRateTable([]model.RateLevel{
		{Rate: 1.6, Energy: 3.375, Time: 0.625},
		{Rate: 2.0, Energy: 4.22, Time: 0.5},
		{Rate: 2.4, Energy: 5.0, Time: 0.42},
		{Rate: 2.8, Energy: 6.0, Time: 0.36},
		{Rate: 3.0, Energy: 7.1, Time: 0.33},
	})
}

func TestOnDemand(t *testing.T) {
	g := DefaultOnDemand()
	rt := table2()
	if got := g.Next(rt, 0, 0.9); got != rt.Len()-1 {
		t.Errorf("high load -> %d, want max index", got)
	}
	if got := g.Next(rt, 0, 0.85); got != rt.Len()-1 {
		t.Errorf("load at threshold should jump to max, got %d", got)
	}
	if got := g.Next(rt, 3, 0.5); got != 2 {
		t.Errorf("low load -> %d, want one step down", got)
	}
	if got := g.Next(rt, 0, 0.1); got != 0 {
		t.Errorf("bottom stays bottom, got %d", got)
	}
}

func TestPerformanceAndPowersave(t *testing.T) {
	rt := table2()
	if (Performance{}).Next(rt, 0, 0) != rt.Len()-1 {
		t.Error("performance not max")
	}
	if (Powersave{}).Next(rt, 4, 1.0) != 0 {
		t.Error("powersave not min")
	}
}

func TestUserspaceClamps(t *testing.T) {
	rt := table2()
	if (Userspace{Index: 2}).Next(rt, 0, 0) != 2 {
		t.Error("userspace ignored index")
	}
	if (Userspace{Index: -5}).Next(rt, 0, 0) != 0 {
		t.Error("negative index not clamped")
	}
	if (Userspace{Index: 99}).Next(rt, 0, 0) != rt.Len()-1 {
		t.Error("large index not clamped")
	}
}

func TestConservativeSteps(t *testing.T) {
	g := DefaultConservative()
	rt := table2()
	if got := g.Next(rt, 2, 0.9); got != 3 {
		t.Errorf("high load -> %d, want 3", got)
	}
	if got := g.Next(rt, 2, 0.1); got != 1 {
		t.Errorf("low load -> %d, want 1", got)
	}
	if got := g.Next(rt, 2, 0.5); got != 2 {
		t.Errorf("mid load -> %d, want unchanged", got)
	}
	if got := g.Next(rt, rt.Len()-1, 1.0); got != rt.Len()-1 {
		t.Error("top should stay top")
	}
	if got := g.Next(rt, 0, 0.0); got != 0 {
		t.Error("bottom should stay bottom")
	}
}

func TestValidate(t *testing.T) {
	good := []Governor{
		DefaultOnDemand(), DefaultConservative(), Performance{}, Powersave{}, Userspace{Index: 1},
	}
	for _, g := range good {
		if err := Validate(g); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
	}
	bad := []Governor{
		OnDemand{UpThreshold: 0},
		OnDemand{UpThreshold: 1.5},
		Conservative{UpThreshold: 0.2, DownThreshold: 0.8},
		Conservative{UpThreshold: 0, DownThreshold: 0},
	}
	for _, g := range bad {
		if err := Validate(g); err == nil {
			t.Errorf("%s config accepted: %+v", g.Name(), g)
		}
	}
}

func TestNames(t *testing.T) {
	for _, g := range []Governor{DefaultOnDemand(), Performance{}, Powersave{}, Userspace{}, DefaultConservative()} {
		if g.Name() == "" {
			t.Error("empty governor name")
		}
	}
}
