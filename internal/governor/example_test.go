package governor_test

import (
	"fmt"

	"dvfsched/internal/governor"
	"dvfsched/internal/platform"
)

// The on-demand governor jumps to the top frequency at 85% load and
// steps down one level per quiet period, exactly as the paper
// configures Linux's governor for its baselines.
func ExampleOnDemand() {
	g := governor.DefaultOnDemand()
	rt := platform.TableII()
	idx := 0 // start at 1.6 GHz
	for _, busy := range []float64{0.9, 0.5, 0.2, 0.95} {
		idx = g.Next(rt, idx, busy)
		fmt.Printf("load %.0f%% -> %.1f GHz\n", busy*100, rt.Level(idx).Rate)
	}
	// Output:
	// load 90% -> 3.0 GHz
	// load 50% -> 2.8 GHz
	// load 20% -> 2.4 GHz
	// load 95% -> 3.0 GHz
}
