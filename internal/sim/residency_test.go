package sim

import (
	"math"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

func TestResidencyAccounting(t *testing.T) {
	// One task at max, then one at min, on a single core.
	p := &residencyPolicy{}
	tasks := model.TaskSet{
		{ID: 1, Cycles: 10, Deadline: model.NoDeadline}, // 3.3 s at 3.0 GHz
		{ID: 2, Cycles: 8, Deadline: model.NoDeadline},  // 5.0 s at 1.6 GHz
	}
	res, err := Run(Config{Platform: singleCorePlatform(), Policy: p}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Residency) != 1 {
		t.Fatalf("residency cores = %d", len(res.Residency))
	}
	r := res.Residency[0]
	if math.Abs(r[3.0]-3.3) > 1e-9 {
		t.Errorf("3.0 GHz residency = %v, want 3.3", r[3.0])
	}
	if math.Abs(r[1.6]-5.0) > 1e-9 {
		t.Errorf("1.6 GHz residency = %v, want 5.0", r[1.6])
	}
	// Total residency equals total busy time equals makespan here.
	var total float64
	for _, v := range r {
		total += v
	}
	if math.Abs(total-res.Makespan) > 1e-9 {
		t.Errorf("residency total %v != makespan %v", total, res.Makespan)
	}
}

// residencyPolicy runs task 1 at max then task 2 at min.
type residencyPolicy struct {
	pending *TaskState
}

func (p *residencyPolicy) Name() string   { return "test-residency" }
func (p *residencyPolicy) Init(e *Engine) {}
func (p *residencyPolicy) OnArrival(e *Engine, ts *TaskState) {
	if ts.Task.ID == 1 {
		if err := e.Start(0, ts, e.RateTable(0).Max()); err != nil {
			panic(err)
		}
		return
	}
	p.pending = ts
}
func (p *residencyPolicy) OnCompletion(e *Engine, coreID int, _ *TaskState) {
	if p.pending != nil {
		ts := p.pending
		p.pending = nil
		if err := e.Start(coreID, ts, e.RateTable(coreID).Min()); err != nil {
			panic(err)
		}
	}
}
func (p *residencyPolicy) OnTick(*Engine) {}

func TestResidencyWithRealisticModel(t *testing.T) {
	// Residency counts wall-clock time, so the realistic model's
	// stretch shows up there too.
	tasks := model.TaskSet{{ID: 1, Cycles: 10, Deadline: model.NoDeadline}}
	plat := platform.Homogeneous(1, platform.TableII(), platform.DefaultRealistic())
	res, err := Run(Config{Platform: plat, Policy: newFIFO()}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residency[0][3.0] <= 10*0.33 {
		t.Errorf("realistic residency %v not above nominal 3.3", res.Residency[0][3.0])
	}
}
