package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Checkpoint serialization. JSON is not an option here: checkpoints
// legitimately contain +Inf (Task.Deadline = model.NoDeadline) and NaN
// (TickAt with no tick scheduled), which encoding/json rejects. The
// format is a small versioned binary envelope in the same spirit as
// the obs trace frames:
//
//	"DVSC" magic | version byte | payload | u32le CRC-32 (IEEE)
//
// The CRC covers everything before it. All floats are stored as their
// exact IEEE-754 bits (8-byte little-endian), so restore is bit-exact
// by construction; integers are varints; strings and byte slices are
// length-prefixed.

// checkpointMagic identifies a serialized checkpoint.
var checkpointMagic = [4]byte{'D', 'V', 'S', 'C'}

// checkpointVersion is the current serialization version. Decoders
// reject versions they do not know.
const checkpointVersion = 1

// Typed errors for checkpoint decoding, matchable via errors.Is.
var (
	ErrCheckpointMagic    = errors.New("sim: not a checkpoint (bad magic)")
	ErrCheckpointVersion  = errors.New("sim: unsupported checkpoint version")
	ErrCheckpointChecksum = errors.New("sim: checkpoint checksum mismatch")
	ErrCheckpointCorrupt  = errors.New("sim: corrupt checkpoint payload")
)

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// MarshalBinary serializes the checkpoint.
func (cp *Checkpoint) MarshalBinary() ([]byte, error) {
	b := append([]byte(nil), checkpointMagic[:]...)
	b = append(b, checkpointVersion)

	b = appendStr(b, cp.PolicyName)
	b = appendF64(b, cp.Clock)
	b = appendF64(b, cp.TickAt)
	b = binary.AppendUvarint(b, cp.Steps)
	b = binary.AppendUvarint(b, cp.OrderCtr)
	b = binary.AppendUvarint(b, cp.SeqCtr)
	b = binary.AppendUvarint(b, cp.EvSeq)
	b = binary.AppendVarint(b, int64(cp.Active))
	b = binary.AppendVarint(b, int64(cp.Undone))

	b = binary.AppendUvarint(b, uint64(len(cp.IDs)))
	for _, id := range cp.IDs {
		b = binary.AppendVarint(b, int64(id))
	}

	b = binary.AppendUvarint(b, uint64(len(cp.Tasks)))
	for i := range cp.Tasks {
		ts := &cp.Tasks[i]
		b = binary.AppendVarint(b, int64(ts.Task.ID))
		b = appendStr(b, ts.Task.Name)
		b = appendF64(b, ts.Task.Cycles)
		b = appendF64(b, ts.Task.Arrival)
		b = appendF64(b, ts.Task.Deadline)
		b = appendBool(b, ts.Task.Interactive)
		b = appendF64(b, ts.Remaining)
		b = appendF64(b, ts.Energy)
		b = appendBool(b, ts.Started)
		b = appendF64(b, ts.FirstStart)
		b = appendBool(b, ts.Done)
		b = appendF64(b, ts.Completion)
		b = binary.AppendVarint(b, int64(ts.Preemptions))
	}

	b = binary.AppendUvarint(b, uint64(len(cp.Events)))
	for _, ev := range cp.Events {
		b = appendF64(b, ev.Time)
		b = binary.AppendVarint(b, int64(ev.Kind))
		b = binary.AppendUvarint(b, ev.Order)
		b = binary.AppendVarint(b, int64(ev.Core))
		b = binary.AppendUvarint(b, ev.Seq)
		b = binary.AppendVarint(b, int64(ev.Task))
	}

	b = binary.AppendUvarint(b, uint64(len(cp.Cores)))
	for i := range cp.Cores {
		cc := &cp.Cores[i]
		b = binary.AppendVarint(b, int64(cc.LevelIdx))
		b = binary.AppendVarint(b, int64(cc.RunTask))
		b = binary.AppendVarint(b, int64(cc.RunLevelIdx))
		b = appendF64(b, cc.RunExecStart)
		b = appendF64(b, cc.RunLastSettle)
		b = binary.AppendUvarint(b, cc.RunSeq)
		b = appendBool(b, cc.IsBusy)
		b = appendF64(b, cc.BusyMark)
		b = appendF64(b, cc.BusyInWindow)
		b = appendF64(b, cc.BusyTotal)
		b = appendF64(b, cc.LastFraction)
		b = binary.AppendVarint(b, int64(cc.Switches))
		b = binary.AppendUvarint(b, uint64(len(cc.Residency)))
		for _, rs := range cc.Residency {
			b = appendF64(b, rs.Rate)
			b = appendF64(b, rs.Seconds)
		}
	}

	b = binary.AppendUvarint(b, uint64(len(cp.Policy)))
	b = append(b, cp.Policy...)

	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// cpReader decodes checkpoint payload fields with a sticky error, so
// call sites stay linear and the final err check catches truncation.
type cpReader struct {
	b   []byte
	pos int
	err error
}

func (r *cpReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrCheckpointCorrupt, r.pos)
	}
}

func (r *cpReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *cpReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *cpReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.pos:]))
	r.pos += 8
	return v
}

func (r *cpReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.pos) {
		r.fail()
		return ""
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *cpReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.pos) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.pos:])
	r.pos += int(n)
	return out
}

func (r *cpReader) boolean() bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.b) {
		r.fail()
		return false
	}
	v := r.b[r.pos]
	r.pos++
	if v > 1 {
		r.err = fmt.Errorf("%w: bad bool byte %#x at %d", ErrCheckpointCorrupt, v, r.pos-1)
		return false
	}
	return v == 1
}

// count validates a decoded element count against the bytes actually
// remaining (every element costs at least min bytes), so a corrupted
// length cannot drive a huge allocation.
func (r *cpReader) count(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64((len(r.b)-r.pos)/min) {
		r.err = fmt.Errorf("%w: element count %d exceeds remaining payload", ErrCheckpointCorrupt, n)
		return 0
	}
	return int(n)
}

// UnmarshalCheckpoint decodes a checkpoint produced by MarshalBinary.
// The magic, version and trailing CRC are all verified before any
// field is trusted.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(checkpointMagic)+1+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCheckpointMagic, len(data))
	}
	if [4]byte(data[:4]) != checkpointMagic {
		return nil, ErrCheckpointMagic
	}
	if v := data[4]; v != checkpointVersion {
		return nil, fmt.Errorf("%w: %d (decoder knows %d)", ErrCheckpointVersion, v, checkpointVersion)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrCheckpointChecksum
	}

	r := &cpReader{b: body, pos: 5}
	cp := &Checkpoint{
		PolicyName: r.str(),
		Clock:      r.f64(),
		TickAt:     r.f64(),
		Steps:      r.uvarint(),
		OrderCtr:   r.uvarint(),
		SeqCtr:     r.uvarint(),
		EvSeq:      r.uvarint(),
		Active:     int(r.varint()),
		Undone:     int(r.varint()),
	}

	if n := r.count(1); n > 0 {
		cp.IDs = make([]int, n)
		for i := range cp.IDs {
			cp.IDs[i] = int(r.varint())
		}
	}

	if n := r.count(8); n > 0 {
		cp.Tasks = make([]TaskState, n)
		for i := range cp.Tasks {
			ts := &cp.Tasks[i]
			ts.Task.ID = int(r.varint())
			ts.Task.Name = r.str()
			ts.Task.Cycles = r.f64()
			ts.Task.Arrival = r.f64()
			ts.Task.Deadline = r.f64()
			ts.Task.Interactive = r.boolean()
			ts.Remaining = r.f64()
			ts.Energy = r.f64()
			ts.Started = r.boolean()
			ts.FirstStart = r.f64()
			ts.Done = r.boolean()
			ts.Completion = r.f64()
			ts.Preemptions = int(r.varint())
		}
	}

	if n := r.count(8); n > 0 {
		cp.Events = make([]EventState, n)
		for i := range cp.Events {
			ev := &cp.Events[i]
			ev.Time = r.f64()
			ev.Kind = int(r.varint())
			ev.Order = r.uvarint()
			ev.Core = int(r.varint())
			ev.Seq = r.uvarint()
			ev.Task = int(r.varint())
		}
	}

	if n := r.count(8); n > 0 {
		cp.Cores = make([]CoreCheckpoint, n)
		for i := range cp.Cores {
			cc := &cp.Cores[i]
			cc.LevelIdx = int(r.varint())
			cc.RunTask = int(r.varint())
			cc.RunLevelIdx = int(r.varint())
			cc.RunExecStart = r.f64()
			cc.RunLastSettle = r.f64()
			cc.RunSeq = r.uvarint()
			cc.IsBusy = r.boolean()
			cc.BusyMark = r.f64()
			cc.BusyInWindow = r.f64()
			cc.BusyTotal = r.f64()
			cc.LastFraction = r.f64()
			cc.Switches = int(r.varint())
			if m := r.count(16); m > 0 {
				cc.Residency = make([]RateSeconds, m)
				for j := range cc.Residency {
					cc.Residency[j].Rate = r.f64()
					cc.Residency[j].Seconds = r.f64()
				}
			}
		}
	}

	cp.Policy = r.bytes()

	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpointCorrupt, len(body)-r.pos)
	}
	return cp, nil
}
