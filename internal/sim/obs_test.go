package sim

import (
	"math"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
)

// Every sim.Run executed by this package's tests — including all
// pre-existing engine scenarios — is validated by a fail-fast
// obs.InvariantSink: a violation of the conservation properties
// (single occupancy, time/energy monotonicity, completion >= arrival)
// turns into a Run error and fails the test.
func init() { testInvariants = true }

// stackPreemptor starts every arrival immediately on core 0 at max rate,
// preempting whatever runs there, and resumes paused tasks LIFO at the
// minimum rate; it exercises start/preempt/resume/dvfs transitions.
type stackPreemptor struct {
	paused []*TaskState
}

func (p *stackPreemptor) Name() string   { return "test-stack-preemptor" }
func (p *stackPreemptor) Init(e *Engine) {}
func (p *stackPreemptor) OnArrival(e *Engine, t *TaskState) {
	if !e.Idle(0) {
		prev, err := e.Preempt(0)
		if err != nil {
			panic(err)
		}
		p.paused = append(p.paused, prev)
	}
	if err := e.Start(0, t, e.RateTable(0).Max()); err != nil {
		panic(err)
	}
}
func (p *stackPreemptor) OnCompletion(e *Engine, coreID int, _ *TaskState) {
	if len(p.paused) == 0 || !e.Idle(0) {
		return
	}
	t := p.paused[len(p.paused)-1]
	p.paused = p.paused[:len(p.paused)-1]
	if err := e.Start(0, t, e.RateTable(0).Min()); err != nil {
		panic(err)
	}
}
func (p *stackPreemptor) OnTick(e *Engine) {}

// preemptionTasks is a three-task staircase that forces two
// preemptions and two resumes on a single core.
func preemptionTasks() model.TaskSet {
	return model.TaskSet{
		{ID: 1, Cycles: 100, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 50, Arrival: 5, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 10, Arrival: 8, Interactive: true, Deadline: model.NoDeadline},
	}
}

func TestEventStreamShape(t *testing.T) {
	rec := &obs.Recorder{}
	plat := singleCorePlatform()
	plat.SwitchLatency = 0.01
	res, err := Run(Config{Platform: plat, Policy: &stackPreemptor{}, Sink: rec},
		preemptionTasks(), paperParams)
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}

	counts := map[obs.Kind]int{}
	var lastSeq uint64
	var lastT float64
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not strictly increasing at %+v", ev)
		}
		if ev.T < lastT {
			t.Fatalf("time reversed at %+v", ev)
		}
		lastSeq, lastT = ev.Seq, ev.T
		counts[ev.Kind]++
	}
	if counts[obs.KindArrival] != 3 {
		t.Errorf("arrivals = %d, want 3", counts[obs.KindArrival])
	}
	if counts[obs.KindComplete] != 3 {
		t.Errorf("completions = %d, want 3", counts[obs.KindComplete])
	}
	if counts[obs.KindPreempt] != res.Preemptions || res.Preemptions == 0 {
		t.Errorf("preempt events = %d, result says %d", counts[obs.KindPreempt], res.Preemptions)
	}
	// Every occupancy change pairs with a core transition event.
	if got := counts[obs.KindCoreActive]; got != counts[obs.KindStart] {
		t.Errorf("core-active = %d, starts = %d", got, counts[obs.KindStart])
	}
	if got := counts[obs.KindCoreIdle]; got != counts[obs.KindPreempt]+counts[obs.KindComplete] {
		t.Errorf("core-idle = %d, preempts+completes = %d", got,
			counts[obs.KindPreempt]+counts[obs.KindComplete])
	}
	// The platform has a switch stall, so dvfs effect times must lag
	// their events whenever the affected core is running.
	if counts[obs.KindDVFS] == 0 {
		t.Error("no dvfs events despite rate changes")
	}
	for _, ev := range events {
		if ev.Kind == obs.KindDVFS && ev.EffectiveAt() < ev.T {
			t.Errorf("dvfs effect precedes event: %+v", ev)
		}
	}
}

func TestEventEnergyMatchesResult(t *testing.T) {
	rec := &obs.Recorder{}
	reg := obs.NewRegistry()
	res, err := Run(Config{
		Platform: platform.Homogeneous(2, table2(), platform.Ideal{}),
		Policy:   newFIFO(),
		Sink:     obs.Multi(rec, obs.NewMetricsSink(reg)),
	}, preemptionTasks(), paperParams)
	if err != nil {
		t.Fatal(err)
	}
	// Summing the final per-task energies off the event stream must
	// reproduce the engine's energy accounting.
	var fromEvents float64
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindComplete {
			fromEvents += ev.Energy
		}
	}
	if math.Abs(fromEvents-res.ActiveEnergy) > 1e-9*math.Max(1, res.ActiveEnergy) {
		t.Errorf("event energy %v != result energy %v", fromEvents, res.ActiveEnergy)
	}
	s := reg.Snapshot()
	if got := s.Counters["sim.energy_j"]; math.Abs(got-res.ActiveEnergy) > 1e-9*math.Max(1, res.ActiveEnergy) {
		t.Errorf("metrics energy %v != result energy %v", got, res.ActiveEnergy)
	}
	if got := s.Counters["sim.tasks.completed"]; got != 3 {
		t.Errorf("completed = %v", got)
	}
}

func TestInvariantHookCatchesViolations(t *testing.T) {
	// Bypass the emit() clock stamping to prove the hook actually
	// rejects a corrupted stream end to end.
	inv := obs.NewInvariantSink()
	inv.Emit(obs.Event{Seq: 1, T: 1, Kind: obs.KindStart, Core: 0, Task: 9, Rate: 3})
	if inv.Err() == nil {
		t.Fatal("invariant sink accepted a start without arrival")
	}
}

func TestNoSinkStillRuns(t *testing.T) {
	// Sink-less runs stay supported (and are what production perf
	// paths use); testInvariants attaches a checker regardless.
	tasks := model.TaskSet{{ID: 1, Cycles: 10, Deadline: model.NoDeadline}}
	if _, err := Run(Config{Platform: singleCorePlatform(), Policy: newFIFO()}, tasks, paperParams); err != nil {
		t.Fatal(err)
	}
}
