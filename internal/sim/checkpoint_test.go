package sim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
	"dvfsched/internal/power"
)

// cpFIFO is a checkpointable variant of the test FIFO policy: queue in
// arrival order, first idle core, and a level that alternates by task
// ID parity so runs exercise DVFS switches. Its only state is the
// queue, serialized as task-table indices.
type cpFIFO struct {
	queue []*TaskState
}

func (f *cpFIFO) Name() string   { return "cp-fifo" }
func (f *cpFIFO) Init(e *Engine) {}
func (f *cpFIFO) OnTick(e *Engine) {
	// Nudge an idle core's level around so tick events have visible
	// consequences that must survive a checkpoint.
	for i := 0; i < e.NumCores(); i++ {
		if e.Idle(i) {
			if err := e.SetLevel(i, e.RateTable(i).Min()); err != nil {
				panic(err)
			}
			return
		}
	}
}
func (f *cpFIFO) OnArrival(e *Engine, t *TaskState)           { f.queue = append(f.queue, t); f.drain(e) }
func (f *cpFIFO) OnCompletion(e *Engine, _ int, _ *TaskState) { f.drain(e) }
func (f *cpFIFO) drain(e *Engine) {
	for i := 0; i < e.NumCores() && len(f.queue) > 0; i++ {
		if !e.Idle(i) {
			continue
		}
		t := f.queue[0]
		f.queue = f.queue[1:]
		rt := e.RateTable(i)
		level := rt.Max()
		if t.Task.ID%2 == 0 {
			level = rt.Min()
		}
		if err := e.Start(i, t, level); err != nil {
			panic(err)
		}
	}
}

func (f *cpFIFO) SnapshotPolicy(taskIndex func(*TaskState) int) ([]byte, error) {
	b := binary.AppendUvarint(nil, uint64(len(f.queue)))
	for _, t := range f.queue {
		b = binary.AppendUvarint(b, uint64(taskIndex(t)))
	}
	return b, nil
}

func (f *cpFIFO) RestorePolicy(data []byte, taskAt func(int) *TaskState) error {
	n, w := binary.Uvarint(data)
	if w <= 0 {
		return fmt.Errorf("cp-fifo: bad queue length")
	}
	data = data[w:]
	f.queue = make([]*TaskState, 0, n)
	for i := uint64(0); i < n; i++ {
		idx, w := binary.Uvarint(data)
		if w <= 0 {
			return fmt.Errorf("cp-fifo: truncated queue entry %d", i)
		}
		data = data[w:]
		f.queue = append(f.queue, taskAt(int(idx)))
	}
	if len(data) != 0 {
		return fmt.Errorf("cp-fifo: %d trailing bytes", len(data))
	}
	return nil
}

// checkpointTasks builds a deterministic workload that keeps 3 cores
// oversubscribed: mixed lengths, staggered arrivals, both level
// parities.
func checkpointTasks() model.TaskSet {
	rng := rand.New(rand.NewSource(7)) // deterministic workload, not randomness
	tasks := make(model.TaskSet, 40)
	for i := range tasks {
		tasks[i] = model.Task{
			ID:          i + 1,
			Name:        fmt.Sprintf("job-%d", i+1),
			Cycles:      rng.Float64()*20 + 0.5,
			Arrival:     rng.Float64() * 8,
			Deadline:    model.NoDeadline,
			Interactive: i%3 == 0,
		}
	}
	return tasks
}

func traceBytes(events []obs.Event) []byte {
	var b []byte
	for _, ev := range events {
		b = ev.AppendJSON(b)
		b = append(b, '\n')
	}
	return b
}

// suffixAfter returns the events with Seq > seq.
func suffixAfter(events []obs.Event, seq uint64) []obs.Event {
	for i, ev := range events {
		if ev.Seq > seq {
			return events[i:]
		}
	}
	return nil
}

func sameResult(t *testing.T, a, b *Result) {
	t.Helper()
	type pair struct {
		name string
		x, y float64
	}
	for _, p := range []pair{
		{"ActiveEnergy", a.ActiveEnergy, b.ActiveEnergy},
		{"IdleEnergy", a.IdleEnergy, b.IdleEnergy},
		{"TotalEnergy", a.TotalEnergy, b.TotalEnergy},
		{"Makespan", a.Makespan, b.Makespan},
		{"TurnaroundSum", a.TurnaroundSum, b.TurnaroundSum},
		{"TotalCost", a.TotalCost, b.TotalCost},
	} {
		if math.Float64bits(p.x) != math.Float64bits(p.y) {
			t.Errorf("%s: %v vs %v (not bit-equal)", p.name, p.x, p.y)
		}
	}
	if a.Switches != b.Switches || a.Preemptions != b.Preemptions {
		t.Errorf("switches/preemptions: %d/%d vs %d/%d", a.Switches, a.Preemptions, b.Switches, b.Preemptions)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("task counts: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		x, y := a.Tasks[i], b.Tasks[i]
		if x.Task != y.Task || x.Done != y.Done || x.Preemptions != y.Preemptions ||
			math.Float64bits(x.Energy) != math.Float64bits(y.Energy) ||
			math.Float64bits(x.Completion) != math.Float64bits(y.Completion) ||
			math.Float64bits(x.FirstStart) != math.Float64bits(y.FirstStart) {
			t.Errorf("task %d state differs: %+v vs %+v", x.Task.ID, x, y)
		}
	}
}

// TestSessionSnapshotRestoreEquivalence is the core recovery property:
// snapshot at time t, serialize, restore into a fresh session, and the
// restored run's trace is byte-identical (via AppendJSON) to the
// uninterrupted run's suffix — including events from a batch injected
// after the cut into both sessions.
func TestSessionSnapshotRestoreEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, cut := range []float64{0.3, 1.7, 4.7} {
		t.Run(fmt.Sprintf("cut=%v", cut), func(t *testing.T) {
			recA := &obs.Recorder{}
			cfgA := Config{
				Platform:     platform.Homogeneous(3, table2(), platform.DefaultRealistic()),
				Policy:       &cpFIFO{},
				TickInterval: 0.25,
				Sink:         recA,
			}
			sA, err := OpenSession(cfgA, paperParams)
			if err != nil {
				t.Fatal(err)
			}
			if err := sA.Inject(checkpointTasks()); err != nil {
				t.Fatal(err)
			}
			if err := sA.AdvanceTo(ctx, cut); err != nil {
				t.Fatal(err)
			}

			cp, err := sA.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			wire, err := cp.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			cp2, err := UnmarshalCheckpoint(wire)
			if err != nil {
				t.Fatal(err)
			}
			// The wire format is a fixed point: re-marshaling the decoded
			// checkpoint reproduces the bytes exactly.
			wire2, err := cp2.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if string(wire) != string(wire2) {
				t.Fatal("re-marshaled checkpoint differs")
			}

			recB := &obs.Recorder{}
			cfgB := cfgA
			cfgB.Policy = &cpFIFO{}
			cfgB.Sink = recB
			sB, err := RestoreSession(cfgB, paperParams, cp2)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(sB.Clock()) != math.Float64bits(sA.Clock()) {
				t.Fatalf("restored clock %v, want %v", sB.Clock(), sA.Clock())
			}
			if sB.Pending() != sA.Pending() {
				t.Fatalf("restored pending %d, want %d", sB.Pending(), sA.Pending())
			}

			// A restored session keeps the ID history: re-injecting a used
			// ID must fail exactly as on the original.
			if err := sB.Inject(model.TaskSet{{ID: 1, Cycles: 1, Arrival: cut + 1, Deadline: model.NoDeadline}}); err == nil {
				t.Fatal("restored session accepted a duplicate task ID")
			}

			// Feed a post-snapshot batch to BOTH sessions: recovery must
			// hold for work that arrives after the checkpoint too.
			late := model.TaskSet{
				{ID: 101, Name: "late-a", Cycles: 6, Arrival: cut + 0.4, Deadline: model.NoDeadline},
				{ID: 102, Name: "late-b", Cycles: 2.5, Arrival: cut + 1.1, Deadline: model.NoDeadline, Interactive: true},
			}
			if err := sA.Inject(late); err != nil {
				t.Fatal(err)
			}
			if err := sB.Inject(late); err != nil {
				t.Fatal(err)
			}

			resA, err := sA.Finish(ctx)
			if err != nil {
				t.Fatal(err)
			}
			resB, err := sB.Finish(ctx)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, resA, resB)

			want := traceBytes(suffixAfter(recA.Events(), cp.EvSeq))
			got := traceBytes(recB.Events())
			if len(got) == 0 {
				t.Fatal("restored session emitted no events")
			}
			if string(want) != string(got) {
				t.Fatalf("trace suffix diverged:\noriginal %d bytes, restored %d bytes", len(want), len(got))
			}
		})
	}
}

func TestSnapshotRefusals(t *testing.T) {
	open := func(cfg Config) *Session {
		t.Helper()
		if cfg.Platform == nil {
			cfg.Platform = platform.Homogeneous(2, table2(), platform.Ideal{})
		}
		if cfg.Policy == nil {
			cfg.Policy = &cpFIFO{}
		}
		s, err := OpenSession(cfg, paperParams)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := open(Config{})
	if err := s.Inject(model.TaskSet{{ID: 1, Cycles: 1, Deadline: model.NoDeadline}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrSessionFinished) {
		t.Errorf("finished session: got %v", err)
	}

	if _, err := open(Config{Meter: power.NewMeter(0.1, 0)}).Snapshot(); !errors.Is(err, ErrNotCheckpointable) {
		t.Errorf("meter session: got %v", err)
	}
	if _, err := open(Config{RecordTimeline: true}).Snapshot(); !errors.Is(err, ErrNotCheckpointable) {
		t.Errorf("timeline session: got %v", err)
	}
	if _, err := open(Config{Policy: newFIFO()}).Snapshot(); !errors.Is(err, ErrNotCheckpointable) {
		t.Errorf("plain policy: got %v", err)
	}
}

// midrunCheckpoint opens a session, runs it partway, and returns its
// checkpoint plus the config it was captured under.
func midrunCheckpoint(t *testing.T) (Config, *Checkpoint) {
	t.Helper()
	cfg := Config{
		Platform:     platform.Homogeneous(3, table2(), platform.DefaultRealistic()),
		Policy:       &cpFIFO{},
		TickInterval: 0.25,
	}
	s, err := OpenSession(cfg, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(checkpointTasks()); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return cfg, cp
}

func TestRestoreRejectsMismatches(t *testing.T) {
	cfg, cp := midrunCheckpoint(t)
	fresh := func() Config {
		c := cfg
		c.Policy = &cpFIFO{}
		return c
	}

	if _, err := RestoreSession(fresh(), paperParams, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}

	bad := *cp
	bad.PolicyName = "someone-else"
	if _, err := RestoreSession(fresh(), paperParams, &bad); err == nil {
		t.Error("policy-name mismatch accepted")
	}

	c := fresh()
	c.Platform = platform.Homogeneous(2, table2(), platform.DefaultRealistic())
	if _, err := RestoreSession(c, paperParams, cp); err == nil {
		t.Error("core-count mismatch accepted")
	}

	c = fresh()
	c.Policy = newFIFO()
	if _, err := RestoreSession(c, paperParams, cp); !errors.Is(err, ErrNotCheckpointable) {
		t.Errorf("non-checkpointable restore policy: got %v", err)
	}

	if len(cp.Events) >= 2 {
		bad = *cp
		bad.Events = append([]EventState(nil), cp.Events...)
		bad.Events[0].Time = 1e18 // root later than its children
		if _, err := RestoreSession(fresh(), paperParams, &bad); err == nil {
			t.Error("heap-order violation accepted")
		}
	} else {
		t.Error("mid-run checkpoint unexpectedly has fewer than 2 queued events")
	}

	bad = *cp
	bad.Cores = append([]CoreCheckpoint(nil), cp.Cores...)
	bad.Cores[0].LevelIdx = 99
	if _, err := RestoreSession(fresh(), paperParams, &bad); err == nil {
		t.Error("out-of-range level index accepted")
	}

	bad = *cp
	bad.Active++
	if _, err := RestoreSession(fresh(), paperParams, &bad); err == nil {
		t.Error("active-count mismatch accepted")
	}
}

func TestUnmarshalCheckpointErrors(t *testing.T) {
	_, cp := midrunCheckpoint(t)
	wire, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := UnmarshalCheckpoint(nil); !errors.Is(err, ErrCheckpointMagic) {
		t.Errorf("empty: got %v", err)
	}

	bad := append([]byte(nil), wire...)
	bad[0] ^= 0xff
	if _, err := UnmarshalCheckpoint(bad); !errors.Is(err, ErrCheckpointMagic) {
		t.Errorf("bad magic: got %v", err)
	}

	bad = append([]byte(nil), wire...)
	bad[4] = 99
	if _, err := UnmarshalCheckpoint(bad); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("bad version: got %v", err)
	}

	bad = append([]byte(nil), wire...)
	bad[len(bad)/2] ^= 0x10
	if _, err := UnmarshalCheckpoint(bad); !errors.Is(err, ErrCheckpointChecksum) {
		t.Errorf("flipped payload byte: got %v", err)
	}

	if _, err := UnmarshalCheckpoint(wire[:len(wire)-7]); !errors.Is(err, ErrCheckpointChecksum) {
		t.Errorf("truncated: got %v", err)
	}

	// A structurally truncated payload with a VALID checksum must fail
	// with the corrupt error: magic + version + an unterminated varint.
	body := []byte{'D', 'V', 'S', 'C', checkpointVersion, 0x80}
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, err := UnmarshalCheckpoint(body); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("corrupt payload: got %v", err)
	}
}
