// Package sim is a deterministic discrete-event simulator of a
// multi-core platform with per-core DVFS. It provides the mechanics —
// virtual time, task execution with contention-dependent speed, energy
// accounting, frequency switching, and preemption — while scheduling
// policies (package sched, online) decide task placement, ordering and
// rates through the Engine API.
//
// The engine plays the role of the paper's testbed: the event-driven
// simulator of Section V-B, and, with a platform.Realistic execution
// model, the physical x86 machine of Section V-A.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
	"dvfsched/internal/power"
)

// Sentinel errors for session lifecycle and cancellation, matchable
// via errors.Is. Detailed messages wrap these with %w.
var (
	// ErrSessionFinished is returned by every Session method once
	// Finish has run.
	ErrSessionFinished = errors.New("sim: session already finished")
	// ErrCanceled is returned when a run is aborted by its context; the
	// underlying context.Canceled / DeadlineExceeded is wrapped too.
	ErrCanceled = errors.New("sim: run canceled")
)

// TaskState tracks one task through the simulation. Policies receive
// TaskStates on arrival and completion and may stash them in their own
// queues.
type TaskState struct {
	// Task is the immutable task definition.
	Task model.Task
	// Remaining is the number of Gcycles left to execute.
	Remaining float64
	// Energy is the joules consumed by this task so far.
	Energy float64
	// Started reports whether the task ever ran.
	Started bool
	// FirstStart is the time the task first started running.
	FirstStart float64
	// Done reports whether the task completed.
	Done bool
	// Completion is the completion time (valid once Done).
	Completion float64
	// Preemptions counts how many times the task was preempted.
	Preemptions int
}

// Turnaround returns completion minus arrival, in seconds.
func (t *TaskState) Turnaround() float64 { return t.Completion - t.Task.Arrival }

// Policy decides scheduling. All callbacks run on the simulator's
// single goroutine; policies must not retain the Engine past Run.
type Policy interface {
	// Name identifies the policy in results.
	Name() string
	// Init is called once before the first event.
	Init(e *Engine)
	// OnArrival is called when a task arrives.
	OnArrival(e *Engine, t *TaskState)
	// OnCompletion is called after a task finishes on the given core;
	// the core is idle when the callback runs.
	OnCompletion(e *Engine, coreID int, t *TaskState)
	// OnTick is called every Config.TickInterval of virtual time (if
	// non-zero); BusyFraction is refreshed at this point. Governor-
	// driven policies adjust frequencies here.
	OnTick(e *Engine)
}

// Config configures a simulation run.
type Config struct {
	// Platform describes cores and the execution model.
	Platform *platform.Platform
	// Policy is the scheduling policy under test.
	Policy Policy
	// TickInterval enables periodic OnTick callbacks (seconds);
	// 0 disables them.
	TickInterval float64
	// Meter, if non-nil, records per-core power segments.
	Meter *power.Meter
	// MaxTime aborts runs whose virtual time exceeds it; 0 means the
	// default of 1e9 seconds.
	MaxTime float64
	// RecordTimeline captures per-core execution segments into
	// Result.Timeline (adds memory proportional to event count).
	RecordTimeline bool
	// Sink, if non-nil, receives the run's structured event stream
	// (task arrival/start/preempt/complete, DVFS changes, core
	// idle/active transitions) as it unfolds. Sinks run on the
	// simulator goroutine and must not call back into the Engine.
	Sink obs.Sink
}

// TimelineSegment is one recorded stretch of execution: task TaskID
// ran on Core at Rate GHz during [Start, End).
type TimelineSegment struct {
	Core       int
	TaskID     int
	Start, End float64
	Rate       float64
}

// event kinds, in tie-break order at equal times: completions free
// cores before ticks observe them and before new arrivals are placed.
const (
	evCompletion = iota
	evTick
	evArrival
)

// event is one queued simulator event. It is deliberately pointer-free
// (tasks are referenced by index into Engine.tasks) so the event array
// never incurs GC write barriers, and it lives in a typed d-ary heap
// rather than container/heap: the interface boxing on every Push/Pop
// used to dominate the LMC hot path's allocations.
type event struct {
	time  float64
	kind  int
	order uint64 // global arrival order for full determinism
	core  int
	seq   uint64 // completion validity check
	task  int    // index into Engine.tasks for evArrival; -1 otherwise
}

// eventLess is the strict total order on events: time, then kind, then
// the unique order counter (orderCtr increments before every push, so
// no two queued events compare equal). Because the order breaks every
// tie, any correct min-heap — whatever its arity or internal layout —
// pops events in exactly this sequence; the typed heap below is
// behavior-identical to the container/heap it replaced.
func eventLess(a, b *event) bool {
	//dvfslint:allow floatcmp event-heap ordering needs a strict weak order; epsilon equality is intransitive
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.order < b.order
}

// heapArity is the event heap's branching factor. 4-ary halves the
// tree depth of the binary layout, trading a few extra comparisons per
// level for far fewer cache-missing swap chains in down — the
// simulator's single hottest loop. Pop order is unaffected (see
// eventLess).
const heapArity = 4

// eventHeap is a typed d-ary min-heap of events.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	h.down(0, n)
	ev := s[n]
	s[n] = event{} // keep the dead slot zeroed
	*h = s[:n]
	return ev
}

func (h eventHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / heapArity // parent
		if !eventLess(&h[j], &h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h eventHeap) down(i, n int) {
	for {
		first := heapArity*i + 1
		if first >= n || first < 0 { // first < 0 after int overflow
			break
		}
		j := first // least child
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&h[c], &h[j]) {
				j = c
			}
		}
		if !eventLess(&h[j], &h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// runSeg is the execution segment of the task currently on a core.
type runSeg struct {
	ts         *TaskState
	level      model.RateLevel
	tpc, epc   float64 // effective ns/cycle, nJ/cycle (set by reschedule)
	execStart  float64 // first instant cycles advance (after any switch stall)
	lastSettle float64
	seq        uint64
}

type coreState struct {
	id    int
	rates *model.RateTable
	level model.RateLevel
	// run points at seg while a task executes and is nil when idle;
	// seg is the per-core scratch segment reused across starts so the
	// steady-state arrival path never allocates. Nothing outside the
	// engine may retain *runSeg across events.
	run    *runSeg
	seg    runSeg
	isBusy bool
	// busy accounting
	busyMark     float64
	busyInWindow float64
	busyTotal    float64
	lastFraction float64
	switches     int
	residency    map[float64]float64 // busy seconds per rate (GHz)
}

func (c *coreState) accountBusy(now float64) {
	if c.isBusy {
		c.busyInWindow += now - c.busyMark
		c.busyTotal += now - c.busyMark
	}
	c.busyMark = now
}

// Engine is the simulation state exposed to policies.
type Engine struct {
	cfg      Config
	exec     platform.ExecutionModel
	clock    float64
	events   eventHeap
	orderCtr uint64
	seqCtr   uint64
	cores    []*coreState
	active   int
	tasks    []*TaskState
	undone   int
	timeline []TimelineSegment
	sink     obs.Sink
	evSeq    uint64
	err      error
}

// testInvariants, when set (by this package's tests), attaches a
// fail-fast obs.InvariantSink to every Run so all scenarios are
// validated against the conservation properties of the event stream.
var testInvariants bool

// emit forwards an event to the configured sink, stamping the current
// clock and the next sequence number. No-op without a sink, so the
// hot path stays allocation-free when observability is off.
func (e *Engine) emit(ev obs.Event) {
	if e.sink == nil {
		return
	}
	e.evSeq++
	ev.Seq = e.evSeq
	ev.T = e.clock
	e.sink.Emit(ev)
}

// Clock returns the current virtual time in seconds.
func (e *Engine) Clock() float64 { return e.clock }

// NumCores returns the number of cores.
func (e *Engine) NumCores() int { return len(e.cores) }

// RateTable returns core i's rate table.
func (e *Engine) RateTable(i int) *model.RateTable { return e.cores[i].rates }

// CurrentLevel returns core i's current frequency level.
func (e *Engine) CurrentLevel(i int) model.RateLevel { return e.cores[i].level }

// Running returns the task currently executing on core i, or nil.
func (e *Engine) Running(i int) *TaskState {
	if e.cores[i].run == nil {
		return nil
	}
	return e.cores[i].run.ts
}

// Idle reports whether core i has no running task.
func (e *Engine) Idle(i int) bool { return e.cores[i].run == nil }

// BusyFraction returns core i's busy fraction over the last completed
// tick window (valid during OnTick).
func (e *Engine) BusyFraction(i int) float64 { return e.cores[i].lastFraction }

// ActiveCores returns the number of cores currently executing.
func (e *Engine) ActiveCores() int { return e.active }

// settleAll charges elapsed time to every running task and emits meter
// segments up to the current clock.
func (e *Engine) settleAll() {
	for _, c := range e.cores {
		seg := c.run
		if seg == nil {
			continue
		}
		from := seg.lastSettle
		if e.clock <= from {
			continue
		}
		elapsed := e.clock - from
		progress := elapsed / seg.tpc
		if progress > seg.ts.Remaining {
			progress = seg.ts.Remaining
		}
		seg.ts.Remaining -= progress
		seg.ts.Energy += progress * seg.epc
		if e.cfg.Meter != nil {
			// nJ/cycle over ns/cycle is watts.
			if err := e.cfg.Meter.Record(from, e.clock, seg.epc/seg.tpc); err != nil && e.err == nil {
				e.err = err
			}
		}
		c.residency[seg.level.Rate] += elapsed
		if e.cfg.RecordTimeline {
			e.timeline = append(e.timeline, TimelineSegment{
				Core:   c.id,
				TaskID: seg.ts.Task.ID,
				Start:  from,
				End:    e.clock,
				Rate:   seg.level.Rate,
			})
		}
		seg.lastSettle = e.clock
	}
}

// rescheduleAll recomputes effective speeds (which depend on the
// active-core count) and requeues completion events. Must follow
// settleAll within the same instant.
func (e *Engine) rescheduleAll() {
	for _, c := range e.cores {
		seg := c.run
		if seg == nil {
			continue
		}
		seg.tpc = e.exec.TimePerCycle(seg.level, e.active)
		seg.epc = e.exec.EnergyPerCycle(seg.level, e.active)
		e.seqCtr++
		seg.seq = e.seqCtr
		start := seg.lastSettle
		if start < e.clock {
			start = e.clock
		}
		end := start + seg.ts.Remaining*seg.tpc
		e.orderCtr++
		e.events.push(event{time: end, kind: evCompletion, order: e.orderCtr, core: c.id, seq: seg.seq, task: -1})
	}
}

// Start begins executing a task on an idle core at the given level.
// If the level differs from the core's current setting, the switch
// latency stalls execution first.
func (e *Engine) Start(i int, ts *TaskState, level model.RateLevel) error {
	c := e.cores[i]
	if c.run != nil {
		return fmt.Errorf("sim: core %d busy, cannot start task %d", i, ts.Task.ID)
	}
	if ts.Done {
		return fmt.Errorf("sim: task %d already done", ts.Task.ID)
	}
	if c.rates.IndexOf(level.Rate) < 0 {
		return fmt.Errorf("sim: core %d does not support rate %v", i, level.Rate)
	}
	e.settleAll()
	stall := 0.0
	if !model.ApproxEq(c.level.Rate, level.Rate, model.DefaultEps) {
		stall = e.cfg.Platform.SwitchLatency
		c.switches++
		e.emit(obs.Event{Kind: obs.KindDVFS, Core: i, Task: -1,
			PrevRate: c.level.Rate, Rate: level.Rate, Eff: e.clock + stall})
	}
	c.level = level
	if !ts.Started {
		ts.Started = true
		ts.FirstStart = e.clock
	}
	c.seg = runSeg{
		ts:         ts,
		level:      level,
		execStart:  e.clock + stall,
		lastSettle: e.clock + stall,
	}
	c.run = &c.seg
	c.accountBusy(e.clock)
	c.isBusy = true
	e.active++
	e.emit(obs.Event{Kind: obs.KindStart, Core: i, Task: ts.Task.ID,
		Rate: level.Rate, Eff: e.clock + stall, Cycles: ts.Task.Cycles,
		Remaining: ts.Remaining, Energy: ts.Energy, Interactive: ts.Task.Interactive})
	e.emit(obs.Event{Kind: obs.KindCoreActive, Core: i, Task: ts.Task.ID})
	e.rescheduleAll()
	return nil
}

// Preempt pauses the task running on core i and returns it with its
// Remaining cycles updated. The policy is responsible for resuming it
// later via Start.
func (e *Engine) Preempt(i int) (*TaskState, error) {
	c := e.cores[i]
	if c.run == nil {
		return nil, fmt.Errorf("sim: core %d idle, nothing to preempt", i)
	}
	e.settleAll()
	ts := c.run.ts
	ts.Preemptions++
	c.run = nil
	c.accountBusy(e.clock)
	c.isBusy = false
	e.active--
	e.emit(obs.Event{Kind: obs.KindPreempt, Core: i, Task: ts.Task.ID,
		Cycles: ts.Task.Cycles, Remaining: ts.Remaining, Energy: ts.Energy})
	e.emit(obs.Event{Kind: obs.KindCoreIdle, Core: i, Task: -1})
	e.rescheduleAll()
	return ts, nil
}

// SetLevel changes core i's frequency. A running task continues at the
// new speed after the switch stall.
func (e *Engine) SetLevel(i int, level model.RateLevel) error {
	c := e.cores[i]
	if c.rates.IndexOf(level.Rate) < 0 {
		return fmt.Errorf("sim: core %d does not support rate %v", i, level.Rate)
	}
	if model.ApproxEq(c.level.Rate, level.Rate, model.DefaultEps) {
		return nil
	}
	prev := c.level.Rate
	c.switches++
	c.level = level
	if c.run == nil {
		e.emit(obs.Event{Kind: obs.KindDVFS, Core: i, Task: -1,
			PrevRate: prev, Rate: level.Rate, Eff: e.clock})
		return nil
	}
	e.settleAll()
	c.run.level = level
	c.run.execStart = e.clock + e.cfg.Platform.SwitchLatency
	if c.run.lastSettle < c.run.execStart {
		c.run.lastSettle = c.run.execStart
	}
	e.emit(obs.Event{Kind: obs.KindDVFS, Core: i, Task: c.run.ts.Task.ID,
		PrevRate: prev, Rate: level.Rate, Eff: c.run.lastSettle})
	e.rescheduleAll()
	return nil
}

// Result summarizes a run.
type Result struct {
	// Policy is the policy name.
	Policy string
	// Tasks holds final per-task states sorted by task ID.
	Tasks []*TaskState
	// ActiveEnergy is the energy consumed executing tasks, in joules.
	ActiveEnergy float64
	// IdleEnergy is IdleWatts integrated over core idle time up to
	// the makespan.
	IdleEnergy float64
	// TotalEnergy is active plus idle energy.
	TotalEnergy float64
	// Makespan is the latest completion time, in seconds.
	Makespan float64
	// TurnaroundSum is the sum of per-task turnaround times.
	TurnaroundSum float64
	// EnergyCost, TimeCost and TotalCost apply the cost model to the
	// measured energy and turnarounds, in cents.
	EnergyCost, TimeCost, TotalCost float64
	// Switches counts frequency switches across cores.
	Switches int
	// Preemptions counts task preemptions.
	Preemptions int
	// Timeline holds recorded execution segments (only when
	// Config.RecordTimeline was set), ordered by settle time.
	Timeline []TimelineSegment
	// Residency maps, per core, each rate (GHz) to the busy seconds
	// spent at it — the frequency-residency histogram cpufreq stats
	// expose on real hardware.
	Residency []map[float64]float64
}

// Run simulates the tasks under the configured policy and returns the
// outcome. It is deterministic for identical inputs. Run is the
// one-shot form of a Session: open, inject everything, drain, finish.
func Run(cfg Config, tasks model.TaskSet, params model.CostParams) (*Result, error) {
	return RunContext(context.Background(), cfg, tasks, params)
}

// RunContext is Run with cancellation: the context is polled between
// events, and a canceled run returns an error matching ErrCanceled and
// the context's own error.
func RunContext(ctx context.Context, cfg Config, tasks model.TaskSet, params model.CostParams) (*Result, error) {
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	s, err := OpenSession(cfg, params)
	if err != nil {
		return nil, err
	}
	if err := s.Inject(tasks); err != nil {
		return nil, err
	}
	return s.Finish(ctx)
}

// finalize summarizes the engine state into a Result once every task
// has completed.
func (e *Engine) finalize(params model.CostParams) (*Result, error) {
	res := &Result{Policy: e.cfg.Policy.Name(), Timeline: e.timeline}
	res.Tasks = append(res.Tasks, e.tasks...)
	sort.Slice(res.Tasks, func(i, j int) bool { return res.Tasks[i].Task.ID < res.Tasks[j].Task.ID })
	var busyTotal float64
	for _, c := range e.cores {
		c.accountBusy(e.clock)
		busyTotal += c.busyTotal
		res.Switches += c.switches
		res.Residency = append(res.Residency, c.residency)
	}
	for _, ts := range res.Tasks {
		res.ActiveEnergy += ts.Energy
		res.TurnaroundSum += ts.Turnaround()
		res.Preemptions += ts.Preemptions
		if ts.Completion > res.Makespan {
			res.Makespan = ts.Completion
		}
	}
	if e.cfg.Platform.IdleWatts > 0 {
		idleTime := float64(len(e.cores))*res.Makespan - busyTotal
		if idleTime > 0 {
			res.IdleEnergy = e.cfg.Platform.IdleWatts * idleTime
		}
	}
	res.TotalEnergy = res.ActiveEnergy + res.IdleEnergy
	res.EnergyCost = params.Re * res.TotalEnergy
	res.TimeCost = params.Rt * res.TurnaroundSum
	res.TotalCost = res.EnergyCost + res.TimeCost
	if math.IsNaN(res.TotalCost) || math.IsInf(res.TotalCost, 0) {
		return nil, fmt.Errorf("sim: non-finite cost")
	}
	return res, nil
}
