package sim

import (
	"context"
	"fmt"
	"math"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
)

// Session is an incrementally-driven simulation: tasks are injected as
// they become known instead of all up front, and virtual time advances
// only as far as the caller asks. It powers long-running online
// shards (one session per serving shard) where arrivals come from the
// network rather than from a pre-recorded trace; Run is a one-shot
// wrapper around it.
//
// A session is single-owner: all methods must be called from one
// goroutine (shards serialize access through a request channel).
type Session struct {
	e      *Engine
	params model.CostParams
	// maxTime mirrors Run's runaway guard.
	maxTime float64
	// ids tracks every task ID ever injected, for cross-batch
	// uniqueness.
	ids map[int]bool
	// tickAt is the virtual time of the pending tick event, or NaN when
	// no tick is scheduled.
	tickAt float64
	// steps counts processed events; the driving context is polled
	// every ctxPollInterval of them so cancellation latency stays
	// bounded without paying a context check per event.
	steps uint64
	// finished is set once Finish has run; further mutation is an
	// error.
	finished bool
	// inv is the fail-fast invariant checker attached under
	// testInvariants.
	inv *obs.InvariantSink
}

// ctxPollInterval is how many events a session processes between
// context checks. Events are sub-microsecond, so cancellation is still
// observed within tens of microseconds.
const ctxPollInterval = 256

// OpenSession validates the configuration and returns an empty session
// at virtual time 0. The policy's Init callback runs here, before any
// task exists.
func OpenSession(cfg Config, params model.CostParams) (*Session, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("sim: nil platform")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if cfg.TickInterval < 0 {
		return nil, fmt.Errorf("sim: negative tick interval")
	}
	maxTime := cfg.MaxTime
	if maxTime == 0 {
		maxTime = 1e9
	}

	e := &Engine{cfg: cfg, exec: cfg.Platform.ExecModel(), sink: cfg.Sink}
	s := &Session{e: e, params: params, maxTime: maxTime, ids: map[int]bool{}, tickAt: math.NaN()}
	if testInvariants {
		s.inv = obs.NewInvariantSink()
		e.sink = obs.Multi(e.sink, s.inv)
	}
	e.cores = make([]*coreState, cfg.Platform.NumCores())
	for i, rt := range cfg.Platform.Cores {
		e.cores[i] = &coreState{id: i, rates: rt, level: rt.Min(), residency: map[float64]float64{}}
	}
	cfg.Policy.Init(e)
	return s, nil
}

// Clock returns the session's current virtual time in seconds.
func (s *Session) Clock() float64 { return s.e.clock }

// Pending returns the number of injected tasks that have not completed.
func (s *Session) Pending() int { return s.e.undone }

// Inject adds tasks to the session. Every task must validate, carry an
// ID never seen by this session, and arrive at or after the current
// virtual clock (a session cannot rewrite the past). Tasks become
// visible to the policy when virtual time reaches their arrival.
func (s *Session) Inject(tasks model.TaskSet) error {
	if s.finished {
		return ErrSessionFinished
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if s.ids[t.ID] {
			return fmt.Errorf("sim: duplicate task ID %d", t.ID)
		}
		if t.Arrival < s.e.clock {
			return fmt.Errorf("sim: task %d arrives at %v, before the session clock %v", t.ID, t.Arrival, s.e.clock)
		}
	}
	e := s.e
	sorted := tasks.Clone()
	sorted.ByArrival()
	// One TaskState slab per batch: e.tasks holds pointers into it, so
	// injection costs O(1) allocations however large the batch is.
	states := make([]TaskState, len(sorted))
	for i, t := range sorted {
		s.ids[t.ID] = true
		states[i] = TaskState{Task: t, Remaining: t.Cycles}
		e.tasks = append(e.tasks, &states[i])
		e.orderCtr++
		e.events.push(event{time: t.Arrival, kind: evArrival, order: e.orderCtr, task: len(e.tasks) - 1})
	}
	e.undone += len(sorted)
	if e.cfg.TickInterval > 0 && math.IsNaN(s.tickAt) && len(sorted) > 0 {
		s.tickAt = e.clock + e.cfg.TickInterval
		e.orderCtr++
		e.events.push(event{time: s.tickAt, kind: evTick, order: e.orderCtr, task: -1})
	}
	return nil
}

// step processes the earliest queued event if its time is at most
// limit; it reports whether an event was consumed. Mirrors one
// iteration of the original Run loop, including the undone>0 guard:
// once every task has completed the session parks, leaving any future
// tick in the queue.
func (s *Session) step(ctx context.Context, limit float64) (bool, error) {
	e := s.e
	if e.events.Len() == 0 || e.undone == 0 {
		return false, nil
	}
	if next := e.events[0].time; next > limit {
		return false, nil
	}
	if s.steps%ctxPollInterval == 0 {
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
	}
	s.steps++
	ev := e.events.pop()
	if ev.time > s.maxTime {
		return false, fmt.Errorf("sim: exceeded max time %v (policy %q stuck?)", s.maxTime, e.cfg.Policy.Name())
	}
	if ev.time < e.clock {
		return false, fmt.Errorf("sim: time went backwards (%v -> %v)", e.clock, ev.time)
	}
	e.clock = ev.time
	switch ev.kind {
	case evCompletion:
		c := e.cores[ev.core]
		if c.run == nil || c.run.seq != ev.seq {
			return true, e.err // superseded by a reschedule
		}
		e.settleAll()
		ts := c.run.ts
		if ts.Remaining > 1e-6 {
			return false, fmt.Errorf("sim: task %d completed with %v Gcycles left", ts.Task.ID, ts.Remaining)
		}
		ts.Remaining = 0
		ts.Done = true
		ts.Completion = e.clock
		c.run = nil
		c.accountBusy(e.clock)
		c.isBusy = false
		e.active--
		e.undone--
		e.emit(obs.Event{Kind: obs.KindComplete, Core: ev.core, Task: ts.Task.ID,
			Cycles: ts.Task.Cycles, Energy: ts.Energy})
		e.emit(obs.Event{Kind: obs.KindCoreIdle, Core: ev.core, Task: -1})
		e.rescheduleAll()
		e.cfg.Policy.OnCompletion(e, ev.core, ts)
	case evTick:
		s.tickAt = math.NaN()
		for _, c := range e.cores {
			c.accountBusy(e.clock)
			c.lastFraction = c.busyInWindow / e.cfg.TickInterval
			c.busyInWindow = 0
		}
		e.cfg.Policy.OnTick(e)
		if e.undone > 0 {
			s.tickAt = e.clock + e.cfg.TickInterval
			e.orderCtr++
			e.events.push(event{time: s.tickAt, kind: evTick, order: e.orderCtr, task: -1})
		}
	case evArrival:
		ts := e.tasks[ev.task]
		e.emit(obs.Event{Kind: obs.KindArrival, Core: -1, Task: ts.Task.ID,
			Cycles: ts.Task.Cycles, Remaining: ts.Remaining,
			Interactive: ts.Task.Interactive})
		e.cfg.Policy.OnArrival(e, ts)
	}
	return true, e.err
}

// AdvanceTo processes every event up to and including virtual time t,
// then sets the clock to t. It models "the wall says it is now t":
// tasks arriving later stay pending, running work keeps running. The
// context is polled between events; cancellation aborts with an error
// matching ErrCanceled.
func (s *Session) AdvanceTo(ctx context.Context, t float64) error {
	if s.finished {
		return ErrSessionFinished
	}
	if t < s.e.clock {
		return fmt.Errorf("sim: cannot advance backwards (%v -> %v)", s.e.clock, t)
	}
	if t > s.maxTime {
		return fmt.Errorf("sim: advance target %v exceeds max time %v", t, s.maxTime)
	}
	for {
		ok, err := s.step(ctx, t)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	if t > s.e.clock {
		s.e.clock = t
	}
	return nil
}

// Drain runs the session until every injected task has completed or
// the context is canceled.
func (s *Session) Drain(ctx context.Context) error {
	if s.finished {
		return ErrSessionFinished
	}
	for s.e.undone > 0 {
		ok, err := s.step(ctx, math.Inf(1))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("sim: %d tasks never completed under policy %q (deadlock?)", s.e.undone, s.e.cfg.Policy.Name())
		}
	}
	return nil
}

// Finish drains the session and summarizes it. The session cannot be
// used afterwards.
func (s *Session) Finish(ctx context.Context) (*Result, error) {
	if s.finished {
		return nil, ErrSessionFinished
	}
	if err := s.Drain(ctx); err != nil {
		return nil, err
	}
	s.finished = true
	if len(s.e.tasks) == 0 {
		return nil, fmt.Errorf("sim: session finished with no tasks")
	}
	res, err := s.e.finalize(s.params)
	if err != nil {
		return nil, err
	}
	if s.inv != nil {
		if err := s.inv.Err(); err != nil {
			return nil, err
		}
	}
	return res, nil
}
