package sim

import (
	"math"
	"testing"

	"dvfsched/internal/batch"
	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/power"
)

var paperParams = model.CostParams{Re: 0.1, Rt: 0.4}

func table2() *model.RateTable { return platform.TableII() }

// fifo is a minimal test policy: FIFO queue, any idle core, fixed
// level choice.
type fifo struct {
	queue []*TaskState
	level func(rt *model.RateTable) model.RateLevel
}

func newFIFO() *fifo {
	return &fifo{level: func(rt *model.RateTable) model.RateLevel { return rt.Max() }}
}

func (f *fifo) Name() string   { return "test-fifo" }
func (f *fifo) Init(e *Engine) {}
func (f *fifo) OnArrival(e *Engine, t *TaskState) {
	f.queue = append(f.queue, t)
	f.drain(e)
}
func (f *fifo) OnCompletion(e *Engine, coreID int, _ *TaskState) { f.drain(e) }
func (f *fifo) OnTick(e *Engine)                                 {}
func (f *fifo) drain(e *Engine) {
	for i := 0; i < e.NumCores() && len(f.queue) > 0; i++ {
		if e.Idle(i) {
			t := f.queue[0]
			f.queue = f.queue[1:]
			if err := e.Start(i, t, f.level(e.RateTable(i))); err != nil {
				panic(err)
			}
		}
	}
}

func singleCorePlatform() *platform.Platform {
	return platform.Homogeneous(1, table2(), platform.Ideal{})
}

func TestSingleTaskIdealPhysics(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 10, Deadline: model.NoDeadline}}
	res, err := Run(Config{Platform: singleCorePlatform(), Policy: newFIFO()}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	// Max level: 3.0 GHz, T = 0.33 ns/cyc, E = 7.1 nJ/cyc.
	wantTime := 10 * 0.33
	wantEnergy := 10 * 7.1
	if math.Abs(res.Makespan-wantTime) > 1e-9 {
		t.Errorf("Makespan = %v, want %v", res.Makespan, wantTime)
	}
	if math.Abs(res.ActiveEnergy-wantEnergy) > 1e-9 {
		t.Errorf("ActiveEnergy = %v, want %v", res.ActiveEnergy, wantEnergy)
	}
	ts := res.Tasks[0]
	if !ts.Done || ts.Remaining != 0 || !ts.Started {
		t.Errorf("task state: %+v", ts)
	}
	if math.Abs(res.TotalCost-(0.1*wantEnergy+0.4*wantTime)) > 1e-9 {
		t.Errorf("TotalCost = %v", res.TotalCost)
	}
}

func TestFixedPlanMatchesAnalyticCost(t *testing.T) {
	// Under the Ideal execution model, simulating a WBG plan must
	// reproduce the analytic Eq. 8 cost exactly.
	tasks := make(model.TaskSet, 24)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 5 + float64(i*7%13)*20, Deadline: model.NoDeadline}
	}
	plan, err := batch.WBG(paperParams, batch.HomogeneousCores(4, table2()), tasks)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := NewFixedPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Platform: platform.Homogeneous(4, table2(), platform.Ideal{}), Policy: fp}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	_, _, want := plan.Cost()
	if math.Abs(res.TotalCost-want) > 1e-6*want {
		t.Errorf("simulated cost %v != analytic %v", res.TotalCost, want)
	}
	wantJ, _, wantTA := plan.EnergyTime()
	if math.Abs(res.ActiveEnergy-wantJ) > 1e-6*wantJ {
		t.Errorf("energy %v != %v", res.ActiveEnergy, wantJ)
	}
	if math.Abs(res.TurnaroundSum-wantTA) > 1e-6*wantTA {
		t.Errorf("turnaround %v != %v", res.TurnaroundSum, wantTA)
	}
}

func TestRealisticSlowerThanIdeal(t *testing.T) {
	tasks := make(model.TaskSet, 8)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 50, Deadline: model.NoDeadline}
	}
	ideal, err := Run(Config{Platform: platform.Homogeneous(4, table2(), platform.Ideal{}), Policy: newFIFO()}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	real, err := Run(Config{Platform: platform.Homogeneous(4, table2(), platform.DefaultRealistic()), Policy: newFIFO()}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if real.Makespan <= ideal.Makespan {
		t.Errorf("realistic makespan %v not above ideal %v", real.Makespan, ideal.Makespan)
	}
	if real.ActiveEnergy <= ideal.ActiveEnergy {
		t.Errorf("realistic energy %v not above ideal %v", real.ActiveEnergy, ideal.ActiveEnergy)
	}
}

func TestContentionDependsOnActiveCores(t *testing.T) {
	// Two equal tasks on two cores (co-run) must take longer than
	// the same task alone.
	exec := platform.Realistic{MemFraction: 0.3, MemTime: 1.0, ContentionPenalty: 0.5}
	solo, err := Run(Config{Platform: platform.Homogeneous(2, table2(), exec), Policy: newFIFO()},
		model.TaskSet{{ID: 1, Cycles: 10, Deadline: model.NoDeadline}}, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	duo, err := Run(Config{Platform: platform.Homogeneous(2, table2(), exec), Policy: newFIFO()},
		model.TaskSet{
			{ID: 1, Cycles: 10, Deadline: model.NoDeadline},
			{ID: 2, Cycles: 10, Deadline: model.NoDeadline},
		}, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if duo.Makespan <= solo.Makespan {
		t.Errorf("co-run makespan %v not above solo %v", duo.Makespan, solo.Makespan)
	}
}

// preemptor exercises Preempt: an interactive arrival preempts core 0
// and the preempted task resumes afterwards.
type preemptor struct {
	fifo
	waiting []*TaskState
}

func (p *preemptor) Name() string { return "test-preemptor" }
func (p *preemptor) OnArrival(e *Engine, t *TaskState) {
	if t.Task.Interactive && !e.Idle(0) {
		prev, err := e.Preempt(0)
		if err != nil {
			panic(err)
		}
		p.waiting = append(p.waiting, prev)
		if err := e.Start(0, t, e.RateTable(0).Max()); err != nil {
			panic(err)
		}
		return
	}
	p.fifo.OnArrival(e, t)
}
func (p *preemptor) OnCompletion(e *Engine, coreID int, done *TaskState) {
	if len(p.waiting) > 0 && e.Idle(0) {
		next := p.waiting[0]
		p.waiting = p.waiting[1:]
		if err := e.Start(0, next, e.RateTable(0).Max()); err != nil {
			panic(err)
		}
		return
	}
	p.fifo.OnCompletion(e, coreID, done)
}

func TestPreemptionConservesWork(t *testing.T) {
	p := &preemptor{fifo: *newFIFO()}
	tasks := model.TaskSet{
		{ID: 1, Cycles: 100, Deadline: model.NoDeadline},                              // long batch task
		{ID: 2, Cycles: 1, Arrival: 5, Interactive: true, Deadline: model.NoDeadline}, // preempts at t=5
	}
	res, err := Run(Config{Platform: singleCorePlatform(), Policy: p}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	batchTask, inter := res.Tasks[0], res.Tasks[1]
	if batchTask.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", batchTask.Preemptions)
	}
	// The interactive task runs immediately at t=5 for 0.33 s.
	if math.Abs(inter.Completion-(5+1*0.33)) > 1e-9 {
		t.Errorf("interactive completion = %v", inter.Completion)
	}
	// Total work is conserved: batch completion = own 33 s + 0.33 s pause.
	if math.Abs(batchTask.Completion-(100*0.33+0.33)) > 1e-9 {
		t.Errorf("batch completion = %v", batchTask.Completion)
	}
	wantEnergy := 100*7.1 + 1*7.1
	if math.Abs(res.ActiveEnergy-wantEnergy) > 1e-9 {
		t.Errorf("energy = %v, want %v", res.ActiveEnergy, wantEnergy)
	}
}

// levelChanger switches the core to min frequency at the first tick.
type levelChanger struct {
	fifo
	switched bool
}

func (l *levelChanger) Name() string { return "test-levelchanger" }
func (l *levelChanger) OnTick(e *Engine) {
	if !l.switched && !e.Idle(0) {
		l.switched = true
		if err := e.SetLevel(0, e.RateTable(0).Min()); err != nil {
			panic(err)
		}
	}
}

func TestSetLevelMidRun(t *testing.T) {
	lc := &levelChanger{fifo: *newFIFO()}
	// 100 Gcycles at 3.0 GHz would take 33 s; after 1 s (~3.03 Gcyc
	// done) we drop to 1.6 GHz (0.625 ns/cyc).
	tasks := model.TaskSet{{ID: 1, Cycles: 100, Deadline: model.NoDeadline}}
	res, err := Run(Config{Platform: singleCorePlatform(), Policy: lc, TickInterval: 1}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	doneAtSwitch := 1.0 / 0.33
	want := 1.0 + (100-doneAtSwitch)*0.625
	if math.Abs(res.Makespan-want) > 1e-6 {
		t.Errorf("Makespan = %v, want %v", res.Makespan, want)
	}
	wantEnergy := doneAtSwitch*7.1 + (100-doneAtSwitch)*3.375
	if math.Abs(res.ActiveEnergy-wantEnergy) > 1e-6 {
		t.Errorf("energy = %v, want %v", res.ActiveEnergy, wantEnergy)
	}
	if res.Switches == 0 {
		t.Error("switch not counted")
	}
}

func TestSwitchLatencyDelaysExecution(t *testing.T) {
	plat := singleCorePlatform()
	plat.SwitchLatency = 0.5
	tasks := model.TaskSet{{ID: 1, Cycles: 10, Deadline: model.NoDeadline}}
	res, err := Run(Config{Platform: plat, Policy: newFIFO()}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	// Core starts at min level; starting at max incurs the stall.
	want := 0.5 + 10*0.33
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("Makespan = %v, want %v", res.Makespan, want)
	}
}

func TestMeterAgreesWithEnergyAccounting(t *testing.T) {
	meter := power.NewMeter(0, 0)
	tasks := make(model.TaskSet, 6)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 10 + float64(i), Deadline: model.NoDeadline}
	}
	res, err := Run(Config{Platform: platform.Homogeneous(2, table2(), platform.Ideal{}), Policy: newFIFO(), Meter: meter}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(meter.Energy()-res.ActiveEnergy) > 1e-6*res.ActiveEnergy {
		t.Errorf("meter %v vs engine %v", meter.Energy(), res.ActiveEnergy)
	}
}

func TestBusyFractionReportedOnTick(t *testing.T) {
	var fracs []float64
	p := &tickRecorder{fifo: *newFIFO(), out: &fracs}
	tasks := model.TaskSet{{ID: 1, Cycles: 10, Deadline: model.NoDeadline}} // 3.3 s at max
	_, err := Run(Config{Platform: singleCorePlatform(), Policy: p, TickInterval: 1}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(fracs) < 3 {
		t.Fatalf("ticks observed: %d", len(fracs))
	}
	if math.Abs(fracs[0]-1.0) > 1e-9 || math.Abs(fracs[1]-1.0) > 1e-9 {
		t.Errorf("first window fractions = %v, want 1.0", fracs[:2])
	}
}

type tickRecorder struct {
	fifo
	out *[]float64
}

func (t *tickRecorder) Name() string { return "test-tickrecorder" }
func (t *tickRecorder) OnTick(e *Engine) {
	*t.out = append(*t.out, e.BusyFraction(0))
}

// stuck never starts anything.
type stuck struct{}

func (stuck) Name() string                          { return "test-stuck" }
func (stuck) Init(*Engine)                          {}
func (stuck) OnArrival(*Engine, *TaskState)         {}
func (stuck) OnCompletion(*Engine, int, *TaskState) {}
func (stuck) OnTick(*Engine)                        {}

func TestDeadlockDetected(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 1, Deadline: model.NoDeadline}}
	if _, err := Run(Config{Platform: singleCorePlatform(), Policy: stuck{}}, tasks, paperParams); err == nil {
		t.Error("deadlock not detected")
	}
}

func TestRunValidation(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 1, Deadline: model.NoDeadline}}
	if _, err := Run(Config{Policy: newFIFO()}, tasks, paperParams); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := Run(Config{Platform: singleCorePlatform()}, tasks, paperParams); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := Run(Config{Platform: singleCorePlatform(), Policy: newFIFO()}, nil, paperParams); err == nil {
		t.Error("empty tasks accepted")
	}
	if _, err := Run(Config{Platform: singleCorePlatform(), Policy: newFIFO()}, tasks, model.CostParams{}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Run(Config{Platform: singleCorePlatform(), Policy: newFIFO(), TickInterval: -1}, tasks, paperParams); err == nil {
		t.Error("negative tick accepted")
	}
}

func TestStartErrors(t *testing.T) {
	// Exercise engine API misuse paths through a custom policy.
	p := &apiAbuser{t: t}
	tasks := model.TaskSet{
		{ID: 1, Cycles: 1, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 1, Deadline: model.NoDeadline},
	}
	if _, err := Run(Config{Platform: singleCorePlatform(), Policy: p}, tasks, paperParams); err != nil {
		t.Fatal(err)
	}
}

type apiAbuser struct {
	t *testing.T
	q []*TaskState
}

func (a *apiAbuser) Name() string   { return "test-apiabuser" }
func (a *apiAbuser) Init(e *Engine) {}
func (a *apiAbuser) OnArrival(e *Engine, ts *TaskState) {
	if e.Idle(0) {
		if _, err := e.Preempt(0); err == nil {
			a.t.Error("Preempt on idle core succeeded")
		}
		if err := e.Start(0, ts, model.RateLevel{Rate: 99, Energy: 1, Time: 1}); err == nil {
			a.t.Error("unsupported rate accepted")
		}
		if err := e.Start(0, ts, e.RateTable(0).Max()); err != nil {
			panic(err)
		}
		// Core now busy: double-start must fail.
		if err := e.Start(0, ts, e.RateTable(0).Max()); err == nil {
			a.t.Error("double start accepted")
		}
		return
	}
	a.q = append(a.q, ts)
}
func (a *apiAbuser) OnCompletion(e *Engine, coreID int, done *TaskState) {
	if err := e.Start(coreID, done, e.RateTable(coreID).Max()); err == nil {
		a.t.Error("restarting a done task accepted")
	}
	if len(a.q) > 0 {
		ts := a.q[0]
		a.q = a.q[1:]
		if err := e.Start(coreID, ts, e.RateTable(coreID).Max()); err != nil {
			panic(err)
		}
	}
}
func (a *apiAbuser) OnTick(*Engine) {}

func TestDeterminism(t *testing.T) {
	tasks := make(model.TaskSet, 30)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 1 + float64(i%7), Arrival: float64(i) * 0.1, Deadline: model.NoDeadline}
	}
	run := func() *Result {
		res, err := Run(Config{Platform: platform.Homogeneous(3, table2(), platform.DefaultRealistic()), Policy: newFIFO(), TickInterval: 1}, tasks, paperParams)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalCost != b.TotalCost || a.Makespan != b.Makespan || a.ActiveEnergy != b.ActiveEnergy {
		t.Error("nondeterministic results")
	}
}
