package sim

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/platform"
)

var sessionParams = model.CostParams{Re: 0.1, Rt: 0.4}

func sessionTasks(n int, seed int64) model.TaskSet {
	rng := rand.New(rand.NewSource(seed))
	tasks := make(model.TaskSet, n)
	at := 0.0
	for i := range tasks {
		at += rng.Float64() * 5
		tasks[i] = model.Task{
			ID:          i,
			Cycles:      1 + rng.Float64()*50,
			Arrival:     at,
			Deadline:    model.NoDeadline,
			Interactive: rng.Intn(3) == 0,
		}
	}
	return tasks
}

// fifoSession is the engine_test fifo policy, re-declared to keep this
// file self-contained with a preemption-free placement rule.
type sessionFIFO struct{ queue []*TaskState }

func (f *sessionFIFO) Name() string   { return "session-fifo" }
func (f *sessionFIFO) Init(e *Engine) {}
func (f *sessionFIFO) OnArrival(e *Engine, t *TaskState) {
	f.queue = append(f.queue, t)
	f.drain(e)
}
func (f *sessionFIFO) OnCompletion(e *Engine, coreID int, _ *TaskState) { f.drain(e) }
func (f *sessionFIFO) OnTick(e *Engine)                                 {}
func (f *sessionFIFO) drain(e *Engine) {
	for len(f.queue) > 0 {
		placed := false
		for i := 0; i < e.NumCores(); i++ {
			if e.Idle(i) {
				t := f.queue[0]
				f.queue = f.queue[1:]
				if err := e.Start(i, t, e.RateTable(i).Max()); err != nil {
					panic(err)
				}
				placed = true
				break
			}
		}
		if !placed {
			return
		}
	}
}

// TestSessionMatchesRun injects the same trace in several batches
// (always before each batch's earliest arrival) and checks the final
// result is identical to a one-shot Run.
func TestSessionMatchesRun(t *testing.T) {
	tasks := sessionTasks(40, 7)
	plat := platform.Homogeneous(2, platform.TableII(), platform.Ideal{})

	want, err := Run(Config{Platform: plat, Policy: &sessionFIFO{}}, tasks, sessionParams)
	if err != nil {
		t.Fatal(err)
	}

	s, err := OpenSession(Config{Platform: plat, Policy: &sessionFIFO{}}, sessionParams)
	if err != nil {
		t.Fatal(err)
	}
	// Inject in three chunks, advancing only to just before the next
	// chunk's first arrival so later arrivals still interleave with
	// running work.
	chunks := []model.TaskSet{tasks[:15], tasks[15:30], tasks[30:]}
	for i, chunk := range chunks {
		if i > 0 {
			first := chunk[0].Arrival
			for _, task := range chunk {
				if task.Arrival < first {
					first = task.Arrival
				}
			}
			if err := s.AdvanceTo(context.Background(), first*0.999); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Inject(chunk); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if got.TotalCost != want.TotalCost || got.TotalEnergy != want.TotalEnergy ||
		got.Makespan != want.Makespan || got.TurnaroundSum != want.TurnaroundSum {
		t.Fatalf("session diverged from Run:\n got %+v\nwant %+v", got, want)
	}
	for i := range want.Tasks {
		if got.Tasks[i].Completion != want.Tasks[i].Completion {
			t.Fatalf("task %d completion %v != %v", i, got.Tasks[i].Completion, want.Tasks[i].Completion)
		}
	}
}

func TestSessionRejectsPastArrivalsAndDuplicates(t *testing.T) {
	plat := platform.Homogeneous(1, platform.TableII(), platform.Ideal{})
	s, err := OpenSession(Config{Platform: plat, Policy: &sessionFIFO{}}, sessionParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(model.TaskSet{{ID: 0, Cycles: 5, Deadline: model.NoDeadline}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(model.TaskSet{{ID: 0, Cycles: 5, Deadline: model.NoDeadline}}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate ID accepted: %v", err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Clock() <= 0 {
		t.Fatalf("clock did not advance: %v", s.Clock())
	}
	past := model.TaskSet{{ID: 1, Cycles: 5, Arrival: s.Clock() / 2, Deadline: model.NoDeadline}}
	if err := s.Inject(past); err == nil || !strings.Contains(err.Error(), "before the session clock") {
		t.Fatalf("past arrival accepted: %v", err)
	}
}

func TestSessionAdvanceLeavesFutureWorkPending(t *testing.T) {
	plat := platform.Homogeneous(1, platform.TableII(), platform.Ideal{})
	s, err := OpenSession(Config{Platform: plat, Policy: &sessionFIFO{}}, sessionParams)
	if err != nil {
		t.Fatal(err)
	}
	tasks := model.TaskSet{
		{ID: 0, Cycles: 1, Arrival: 0, Deadline: model.NoDeadline},
		{ID: 1, Cycles: 1, Arrival: 1000, Deadline: model.NoDeadline},
	}
	if err := s.Inject(tasks); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 1 {
		t.Fatalf("want 1 pending after partial advance, got %d", s.Pending())
	}
	if s.Clock() != 500 {
		t.Fatalf("clock %v != 500", s.Clock())
	}
	if err := s.AdvanceTo(context.Background(), 499); err == nil {
		t.Fatal("backwards advance accepted")
	}
	res, err := s.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 1000 {
		t.Fatalf("second task should complete after its arrival: makespan %v", res.Makespan)
	}
	if _, err := s.Finish(context.Background()); err == nil {
		t.Fatal("double Finish accepted")
	}
	if err := s.Inject(tasks); err == nil {
		t.Fatal("Inject after Finish accepted")
	}
}

// TestSessionEmptyFinish checks that finishing a session that never
// received tasks is an explicit error, not a zero Result.
func TestSessionEmptyFinish(t *testing.T) {
	plat := platform.Homogeneous(1, platform.TableII(), platform.Ideal{})
	s, err := OpenSession(Config{Platform: plat, Policy: &sessionFIFO{}}, sessionParams)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(context.Background()); err == nil {
		t.Fatal("empty Finish accepted")
	}
}

// TestSessionEventStream checks the event trace of an incrementally
// driven session stays well-formed (monotone Seq, balanced
// start/complete pairs).
func TestSessionEventStream(t *testing.T) {
	rec := &obs.Recorder{}
	plat := platform.Homogeneous(2, platform.TableII(), platform.Ideal{})
	s, err := OpenSession(Config{Platform: plat, Policy: &sessionFIFO{}, Sink: rec}, sessionParams)
	if err != nil {
		t.Fatal(err)
	}
	tasks := sessionTasks(20, 11)
	if err := s.Inject(tasks[:10]); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(context.Background(), tasks[10].Arrival-1e-9); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(tasks[10:]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(context.Background()); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	var lastSeq uint64
	starts, completes := 0, 0
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("non-monotone Seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case obs.KindStart:
			starts++
		case obs.KindComplete:
			completes++
		}
	}
	if completes != len(tasks) {
		t.Fatalf("want %d completes, got %d", len(tasks), completes)
	}
	if starts < completes {
		t.Fatalf("starts %d < completes %d", starts, completes)
	}
}

func TestSessionMaxTimeGuard(t *testing.T) {
	plat := platform.Homogeneous(1, platform.TableII(), platform.Ideal{})
	s, err := OpenSession(Config{Platform: plat, Policy: &sessionFIFO{}, MaxTime: 10}, sessionParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(context.Background(), 11); err == nil {
		t.Fatal("advance beyond MaxTime accepted")
	}
	if err := s.AdvanceTo(context.Background(), math.Inf(1)); err == nil {
		t.Fatal("infinite advance accepted")
	}
}
