package sim

import (
	"math"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/platform"
)

// TestSimultaneousCompletionAndArrival: a completion and an arrival at
// the same instant must process the completion first, so the arrival
// sees a free core.
func TestSimultaneousCompletionAndArrival(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Cycles: 10, Deadline: model.NoDeadline},               // ends at 3.3 s exactly
		{ID: 2, Cycles: 10, Arrival: 3.3, Deadline: model.NoDeadline}, // arrives at 3.3 s
	}
	res, err := Run(Config{Platform: singleCorePlatform(), Policy: newFIFO()}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	second := res.Tasks[1]
	// Task 2 must start immediately at its arrival, not queue.
	if math.Abs(second.FirstStart-3.3) > 1e-9 {
		t.Errorf("second task started at %v, want 3.3", second.FirstStart)
	}
}

// TestArrivalTieOrdering: two tasks arriving at the same instant are
// delivered in input (ID) order.
func TestArrivalTieOrdering(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Cycles: 5, Arrival: 1, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 5, Arrival: 1, Deadline: model.NoDeadline},
	}
	res, err := Run(Config{Platform: singleCorePlatform(), Policy: newFIFO()}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[0].Completion >= res.Tasks[1].Completion {
		t.Errorf("tie not FIFO: %v vs %v", res.Tasks[0].Completion, res.Tasks[1].Completion)
	}
}

// TestMaxTimeAborts: a run whose events exceed MaxTime errors out
// instead of spinning.
func TestMaxTimeAborts(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 1e6, Deadline: model.NoDeadline}} // 625000 s at min
	p := &fifo{level: func(rt *model.RateTable) model.RateLevel { return rt.Min() }}
	if _, err := Run(Config{Platform: singleCorePlatform(), Policy: p, MaxTime: 10}, tasks, paperParams); err == nil {
		t.Error("MaxTime not enforced")
	}
}

// preemptChurn preempts the running task on every tick and restarts
// it, hammering the settle/reschedule paths.
type preemptChurn struct {
	fifo
	stash *TaskState
}

func (p *preemptChurn) Name() string { return "test-preempt-churn" }
func (p *preemptChurn) OnTick(e *Engine) {
	if p.stash == nil && !e.Idle(0) {
		ts, err := e.Preempt(0)
		if err != nil {
			panic(err)
		}
		p.stash = ts
		return
	}
	if p.stash != nil && e.Idle(0) {
		ts := p.stash
		p.stash = nil
		if err := e.Start(0, ts, e.RateTable(0).Max()); err != nil {
			panic(err)
		}
	}
}

func TestPreemptionChurnConservesWorkAndEnergy(t *testing.T) {
	tasks := model.TaskSet{{ID: 1, Cycles: 30, Deadline: model.NoDeadline}} // ~10 s of work at max
	p := &preemptChurn{fifo: *newFIFO()}
	res, err := Run(Config{Platform: singleCorePlatform(), Policy: p, TickInterval: 0.25}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Tasks[0]
	if !ts.Done {
		t.Fatal("task unfinished")
	}
	// Energy is exactly cycles * E regardless of the churn.
	if math.Abs(res.ActiveEnergy-30*7.1) > 1e-6 {
		t.Errorf("energy %v, want %v", res.ActiveEnergy, 30*7.1)
	}
	// Runtime = work time + paused time; paused every other tick.
	if ts.Preemptions < 10 {
		t.Errorf("churn too weak: %d preemptions", ts.Preemptions)
	}
}

// TestTimelineCoversBusyTime: recorded segments must sum to each
// core's busy time.
func TestTimelineCoversBusyTime(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Cycles: 10, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 20, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 5, Arrival: 2, Deadline: model.NoDeadline},
	}
	plat := platform.Homogeneous(2, platform.TableII(), platform.Ideal{})
	res, err := Run(Config{Platform: plat, Policy: newFIFO(), RecordTimeline: true}, tasks, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	perCore := map[int]float64{}
	for _, seg := range res.Timeline {
		perCore[seg.Core] += seg.End - seg.Start
	}
	var residencyTotal float64
	for core, r := range res.Residency {
		var sum float64
		for _, v := range r {
			sum += v
		}
		residencyTotal += sum
		if math.Abs(perCore[core]-sum) > 1e-9 {
			t.Errorf("core %d: timeline %v != residency %v", core, perCore[core], sum)
		}
	}
	// And both match the executed work time.
	var workTime float64
	for _, ts := range res.Tasks {
		workTime += ts.Task.Cycles * 0.33 // all at max under test fifo
	}
	if math.Abs(residencyTotal-workTime) > 1e-6 {
		t.Errorf("residency %v != work time %v", residencyTotal, workTime)
	}
}
