package sim

import (
	"fmt"

	"dvfsched/internal/batch"
	"dvfsched/internal/model"
)

// FixedPlan is a policy that executes a precomputed batch plan
// verbatim: each core runs its planned sequence in order at the
// planned rates. It is how Workload Based Greedy plans are "executed
// on the machine" in the paper's experiments (Section V-A).
type FixedPlan struct {
	plan *batch.Plan
	// next[i] is the index into core i's sequence to dispatch next.
	next []int
	// ready maps task ID to its arrived state.
	ready map[int]*TaskState
	// slot maps task ID to its (core, position).
	slot map[int][2]int
}

// NewFixedPlan wraps a validated plan as a policy.
func NewFixedPlan(plan *batch.Plan) (*FixedPlan, error) {
	if plan == nil {
		return nil, fmt.Errorf("sim: nil plan")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	fp := &FixedPlan{
		plan:  plan,
		next:  make([]int, len(plan.Cores)),
		ready: make(map[int]*TaskState),
		slot:  make(map[int][2]int),
	}
	for _, c := range plan.Cores {
		for pos, a := range c.Sequence {
			fp.slot[a.Task.ID] = [2]int{c.Core, pos}
		}
	}
	return fp, nil
}

// Name implements Policy.
func (fp *FixedPlan) Name() string { return "fixed-plan" }

// Init implements Policy.
func (fp *FixedPlan) Init(*Engine) {}

// OnArrival implements Policy.
func (fp *FixedPlan) OnArrival(e *Engine, t *TaskState) {
	slot, ok := fp.slot[t.Task.ID]
	if !ok {
		panic(fmt.Sprintf("sim: task %d not in plan", t.Task.ID))
	}
	fp.ready[t.Task.ID] = t
	fp.dispatch(e, slot[0])
}

// OnCompletion implements Policy.
func (fp *FixedPlan) OnCompletion(e *Engine, coreID int, _ *TaskState) {
	fp.dispatch(e, coreID)
}

// OnTick implements Policy.
func (fp *FixedPlan) OnTick(*Engine) {}

// dispatch starts core's next planned task if the core is idle and the
// task has arrived.
func (fp *FixedPlan) dispatch(e *Engine, coreID int) {
	if !e.Idle(coreID) {
		return
	}
	seq := fp.plan.Cores[coreID].Sequence
	if fp.next[coreID] >= len(seq) {
		return
	}
	a := seq[fp.next[coreID]]
	ts, ok := fp.ready[a.Task.ID]
	if !ok {
		return // not arrived yet
	}
	fp.next[coreID]++
	if err := e.Start(coreID, ts, a.Level); err != nil {
		panic(err) // core verified idle; plan verified consistent
	}
}

// PlanLevels returns the planned level for a task ID, for tests.
func (fp *FixedPlan) PlanLevels(id int) (model.RateLevel, bool) {
	s, ok := fp.slot[id]
	if !ok {
		return model.RateLevel{}, false
	}
	return fp.plan.Cores[s[0]].Sequence[s[1]].Level, true
}
