package sim

import (
	"errors"
	"fmt"
	"sort"

	"dvfsched/internal/model"
)

// Session checkpointing: Snapshot captures a live session's complete
// state — clock, event heap, per-core run state, task table, policy
// state — so that recovery is "load snapshot, replay the trace suffix"
// instead of replaying from t=0 (ROADMAP items 1 and 2). The contract
// is exactness: a restored session makes bit-identical decisions and
// emits a byte-identical event stream from the snapshot point on, so
// snapshot + suffix equals the uninterrupted run. That rules out
// re-deriving any floating-point accumulation state; everything with
// rounding history is stored verbatim, and only values that are pure
// functions of stored state (effective cycle times, tree node sizes)
// are recomputed.

// ErrNotCheckpointable is returned by Snapshot when the session's
// configuration cannot be captured: a policy without checkpoint
// support, or a Meter / RecordTimeline run (their accumulated output
// lives outside the session and is not part of a checkpoint).
var ErrNotCheckpointable = errors.New("sim: session not checkpointable")

// CheckpointablePolicy is implemented by policies that can save and
// restore their internal state. Policies hold *TaskState references;
// the taskIndex / taskAt translators map those to stable indices into
// the session's task table so the references survive serialization.
type CheckpointablePolicy interface {
	Policy
	// SnapshotPolicy returns an opaque, versioned serialization of the
	// policy's state. taskIndex resolves a task reference to its index
	// in the session's task table (it panics on foreign tasks — a
	// policy bug).
	SnapshotPolicy(taskIndex func(*TaskState) int) ([]byte, error)
	// RestorePolicy rebuilds the state captured by SnapshotPolicy on a
	// policy that has been Init-ed but has seen no tasks. taskAt
	// resolves a task-table index back to the restored *TaskState.
	RestorePolicy(data []byte, taskAt func(int) *TaskState) error
}

// EventState is the persisted form of one queued simulator event.
type EventState struct {
	Time  float64
	Kind  int
	Order uint64
	Core  int
	Seq   uint64
	Task  int
}

// RateSeconds is one frequency-residency entry: busy seconds at Rate.
type RateSeconds struct {
	Rate    float64
	Seconds float64
}

// CoreCheckpoint is the persisted state of one simulated core. Rate
// levels are stored as indices into the core's rate table, which the
// restoring platform must match.
type CoreCheckpoint struct {
	LevelIdx int
	// Running run-segment state; RunTask is an index into Tasks, -1
	// when idle (the remaining Run fields are then meaningless).
	RunTask       int
	RunLevelIdx   int
	RunExecStart  float64
	RunLastSettle float64
	RunSeq        uint64
	IsBusy        bool
	BusyMark      float64
	BusyInWindow  float64
	BusyTotal     float64
	LastFraction  float64
	Switches      int
	// Residency is the busy-seconds-per-rate histogram, sorted by rate
	// for deterministic serialization.
	Residency []RateSeconds
}

// Checkpoint is a complete capture of a Session. Produce one with
// Session.Snapshot, serialize with MarshalBinary, and rebuild a live
// session with RestoreSession.
type Checkpoint struct {
	// PolicyName guards against restoring onto the wrong policy.
	PolicyName string
	Clock      float64
	// TickAt is the pending tick time, NaN when none is scheduled.
	TickAt   float64
	Steps    uint64
	OrderCtr uint64
	SeqCtr   uint64
	EvSeq    uint64
	Active   int
	Undone   int
	// IDs are all task IDs ever injected, sorted ascending.
	IDs []int
	// Tasks is the session's task table in injection order; policies
	// and events reference tasks by index into it.
	Tasks []TaskState
	// Events is the pending event heap in its exact array layout;
	// restoring it verbatim preserves pop order (the comparator is a
	// strict total order, so any valid heap layout pops identically —
	// but the layout also never needs re-heapifying this way).
	Events []EventState
	Cores  []CoreCheckpoint
	// Policy is the CheckpointablePolicy's opaque state.
	Policy []byte
}

// Snapshot captures the session's complete state. The session must be
// live (not finished, not failed), configured without Meter or
// RecordTimeline, and its policy must implement CheckpointablePolicy.
// The session remains usable afterwards.
func (s *Session) Snapshot() (*Checkpoint, error) {
	if s.finished {
		return nil, ErrSessionFinished
	}
	e := s.e
	if e.err != nil {
		return nil, fmt.Errorf("sim: cannot snapshot a failed session: %w", e.err)
	}
	if e.cfg.Meter != nil {
		return nil, fmt.Errorf("%w: Meter output is external to the session", ErrNotCheckpointable)
	}
	if e.cfg.RecordTimeline {
		return nil, fmt.Errorf("%w: RecordTimeline output is external to the session", ErrNotCheckpointable)
	}
	cpPolicy, ok := e.cfg.Policy.(CheckpointablePolicy)
	if !ok {
		return nil, fmt.Errorf("%w: policy %q does not implement CheckpointablePolicy", ErrNotCheckpointable, e.cfg.Policy.Name())
	}

	cp := &Checkpoint{
		PolicyName: e.cfg.Policy.Name(),
		Clock:      e.clock,
		TickAt:     s.tickAt,
		Steps:      s.steps,
		OrderCtr:   e.orderCtr,
		SeqCtr:     e.seqCtr,
		EvSeq:      e.evSeq,
		Active:     e.active,
		Undone:     e.undone,
	}
	cp.IDs = make([]int, 0, len(s.ids))
	for id := range s.ids {
		cp.IDs = append(cp.IDs, id)
	}
	sort.Ints(cp.IDs)

	cp.Tasks = make([]TaskState, len(e.tasks))
	taskIdx := make(map[*TaskState]int, len(e.tasks))
	for i, ts := range e.tasks {
		cp.Tasks[i] = *ts
		taskIdx[ts] = i
	}

	cp.Events = make([]EventState, len(e.events))
	for i, ev := range e.events {
		cp.Events[i] = EventState{Time: ev.time, Kind: ev.kind, Order: ev.order, Core: ev.core, Seq: ev.seq, Task: ev.task}
	}

	cp.Cores = make([]CoreCheckpoint, len(e.cores))
	for i, c := range e.cores {
		cc := CoreCheckpoint{
			LevelIdx:     c.rates.IndexOf(c.level.Rate),
			RunTask:      -1,
			IsBusy:       c.isBusy,
			BusyMark:     c.busyMark,
			BusyInWindow: c.busyInWindow,
			BusyTotal:    c.busyTotal,
			LastFraction: c.lastFraction,
			Switches:     c.switches,
		}
		if cc.LevelIdx < 0 {
			return nil, fmt.Errorf("sim: core %d level %v not in its rate table", i, c.level.Rate)
		}
		if c.run != nil {
			cc.RunTask = taskIdx[c.run.ts]
			cc.RunLevelIdx = c.rates.IndexOf(c.run.level.Rate)
			if cc.RunLevelIdx < 0 {
				return nil, fmt.Errorf("sim: core %d running level %v not in its rate table", i, c.run.level.Rate)
			}
			cc.RunExecStart = c.run.execStart
			cc.RunLastSettle = c.run.lastSettle
			cc.RunSeq = c.run.seq
		}
		cc.Residency = make([]RateSeconds, 0, len(c.residency))
		for rate, sec := range c.residency {
			cc.Residency = append(cc.Residency, RateSeconds{Rate: rate, Seconds: sec})
		}
		sort.Slice(cc.Residency, func(a, b int) bool { return cc.Residency[a].Rate < cc.Residency[b].Rate })
		cp.Cores[i] = cc
	}

	pol, err := cpPolicy.SnapshotPolicy(func(ts *TaskState) int {
		i, ok := taskIdx[ts]
		if !ok {
			panic("sim: policy referenced a task unknown to the session")
		}
		return i
	})
	if err != nil {
		return nil, fmt.Errorf("sim: policy snapshot: %w", err)
	}
	cp.Policy = pol
	return cp, nil
}

// RestoreSession rebuilds a live session from a checkpoint. The
// configuration must match the captured session's: same platform
// (core count and rate tables), same cost parameters, and a fresh
// policy of the same kind implementing CheckpointablePolicy. The
// sink may differ — a restored session typically writes a new trace
// whose events continue the original's sequence numbers, so the
// recovered stream is original-prefix + new-suffix. Invariant-checking
// test sinks are not attached: a mid-stream trace legitimately opens
// with tasks already running.
func RestoreSession(cfg Config, params model.CostParams, cp *Checkpoint) (*Session, error) {
	if cp == nil {
		return nil, fmt.Errorf("sim: nil checkpoint")
	}
	if cfg.Meter != nil || cfg.RecordTimeline {
		return nil, fmt.Errorf("%w: Meter/RecordTimeline cannot resume from a checkpoint", ErrNotCheckpointable)
	}
	cpPolicy, ok := cfg.Policy.(CheckpointablePolicy)
	if cfg.Policy != nil && !ok {
		return nil, fmt.Errorf("%w: policy %q does not implement CheckpointablePolicy", ErrNotCheckpointable, cfg.Policy.Name())
	}
	s, err := OpenSession(cfg, params)
	if err != nil {
		return nil, err
	}
	if got := cfg.Policy.Name(); got != cp.PolicyName {
		return nil, fmt.Errorf("sim: checkpoint was taken under policy %q, restoring onto %q", cp.PolicyName, got)
	}
	e := s.e
	// Drop the invariant test sink: it validates streams from t=0.
	e.sink = cfg.Sink
	s.inv = nil

	if len(cp.Cores) != len(e.cores) {
		return nil, fmt.Errorf("sim: checkpoint has %d cores, platform has %d", len(cp.Cores), len(e.cores))
	}

	s.tickAt = cp.TickAt
	s.steps = cp.Steps
	e.clock = cp.Clock
	e.orderCtr = cp.OrderCtr
	e.seqCtr = cp.SeqCtr
	e.evSeq = cp.EvSeq
	e.active = cp.Active
	e.undone = cp.Undone

	for _, id := range cp.IDs {
		s.ids[id] = true
	}

	states := make([]TaskState, len(cp.Tasks))
	copy(states, cp.Tasks)
	e.tasks = make([]*TaskState, len(states))
	for i := range states {
		e.tasks[i] = &states[i]
	}

	e.events = make(eventHeap, len(cp.Events))
	for i, es := range cp.Events {
		if es.Kind == evArrival && (es.Task < 0 || es.Task >= len(e.tasks)) {
			return nil, fmt.Errorf("sim: queued arrival references task %d of %d", es.Task, len(e.tasks))
		}
		if es.Kind == evCompletion && (es.Core < 0 || es.Core >= len(e.cores)) {
			return nil, fmt.Errorf("sim: queued completion references core %d of %d", es.Core, len(e.cores))
		}
		e.events[i] = event{time: es.Time, kind: es.Kind, order: es.Order, core: es.Core, seq: es.Seq, task: es.Task}
	}
	// The array is restored verbatim, but verify the heap invariant so
	// a corrupted checkpoint fails here instead of as a time-travel
	// error mid-replay.
	for i := 1; i < len(e.events); i++ {
		if p := (i - 1) / heapArity; eventLess(&e.events[i], &e.events[p]) {
			return nil, fmt.Errorf("sim: checkpoint event queue violates heap order at %d", i)
		}
	}

	active := 0
	for i, cc := range cp.Cores {
		c := e.cores[i]
		if cc.LevelIdx < 0 || cc.LevelIdx >= c.rates.Len() {
			return nil, fmt.Errorf("sim: core %d level index %d out of range", i, cc.LevelIdx)
		}
		c.level = c.rates.Level(cc.LevelIdx)
		c.isBusy = cc.IsBusy
		c.busyMark = cc.BusyMark
		c.busyInWindow = cc.BusyInWindow
		c.busyTotal = cc.BusyTotal
		c.lastFraction = cc.LastFraction
		c.switches = cc.Switches
		for _, rs := range cc.Residency {
			c.residency[rs.Rate] = rs.Seconds
		}
		if cc.RunTask >= 0 {
			if cc.RunTask >= len(e.tasks) {
				return nil, fmt.Errorf("sim: core %d runs task index %d of %d", i, cc.RunTask, len(e.tasks))
			}
			if cc.RunLevelIdx < 0 || cc.RunLevelIdx >= c.rates.Len() {
				return nil, fmt.Errorf("sim: core %d run level index %d out of range", i, cc.RunLevelIdx)
			}
			c.seg = runSeg{
				ts:         e.tasks[cc.RunTask],
				level:      c.rates.Level(cc.RunLevelIdx),
				execStart:  cc.RunExecStart,
				lastSettle: cc.RunLastSettle,
				seq:        cc.RunSeq,
			}
			c.run = &c.seg
			active++
		}
	}
	if active != cp.Active {
		return nil, fmt.Errorf("sim: checkpoint says %d active cores, run state has %d", cp.Active, active)
	}
	// Effective speeds are a pure function of (level, active count):
	// the live engine recomputed them via rescheduleAll after every
	// active-count change, so recomputing here reproduces the exact
	// bits without touching seqCtr or the event queue.
	for _, c := range e.cores {
		if c.run != nil {
			c.run.tpc = e.exec.TimePerCycle(c.run.level, e.active)
			c.run.epc = e.exec.EnergyPerCycle(c.run.level, e.active)
		}
	}

	if err := cpPolicy.RestorePolicy(cp.Policy, func(i int) *TaskState {
		if i < 0 || i >= len(e.tasks) {
			panic(fmt.Sprintf("sim: policy checkpoint references task index %d of %d", i, len(e.tasks)))
		}
		return e.tasks[i]
	}); err != nil {
		return nil, fmt.Errorf("sim: policy restore: %w", err)
	}
	return s, nil
}
