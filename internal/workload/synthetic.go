package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dvfsched/internal/model"
)

// Uniform generates n batch tasks with cycle counts uniform in
// [lo, hi) Gcycles.
func Uniform(rng *rand.Rand, n int, lo, hi float64) (model.TaskSet, error) {
	if n <= 0 || lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("workload: bad uniform parameters n=%d lo=%v hi=%v", n, lo, hi)
	}
	ts := make(model.TaskSet, n)
	for i := range ts {
		ts[i] = model.Task{ID: i, Cycles: lo + rng.Float64()*(hi-lo), Deadline: model.NoDeadline}
	}
	return ts, nil
}

// Exponential generates n batch tasks with exponentially distributed
// cycle counts of the given mean (Gcycles).
func Exponential(rng *rand.Rand, n int, mean float64) (model.TaskSet, error) {
	if n <= 0 || mean <= 0 {
		return nil, fmt.Errorf("workload: bad exponential parameters n=%d mean=%v", n, mean)
	}
	ts := make(model.TaskSet, n)
	for i := range ts {
		ts[i] = model.Task{ID: i, Cycles: rng.ExpFloat64()*mean + 1e-6, Deadline: model.NoDeadline}
	}
	return ts, nil
}

// Bimodal generates n batch tasks: a fracLong share of long tasks
// (mean longMean) and the rest short (mean shortMean), both
// exponential. It models the short-interactive / long-batch mixes the
// paper's introduction motivates.
func Bimodal(rng *rand.Rand, n int, shortMean, longMean, fracLong float64) (model.TaskSet, error) {
	if n <= 0 || shortMean <= 0 || longMean <= shortMean || fracLong < 0 || fracLong > 1 {
		return nil, fmt.Errorf("workload: bad bimodal parameters")
	}
	ts := make(model.TaskSet, n)
	for i := range ts {
		mean := shortMean
		if rng.Float64() < fracLong {
			mean = longMean
		}
		ts[i] = model.Task{ID: i, Cycles: rng.ExpFloat64()*mean + 1e-6, Deadline: model.NoDeadline}
	}
	return ts, nil
}

// Pareto generates n batch tasks with heavy-tailed (Pareto) cycle
// counts: minimum xm Gcycles, shape alpha (>1 for finite mean).
func Pareto(rng *rand.Rand, n int, xm, alpha float64) (model.TaskSet, error) {
	if n <= 0 || xm <= 0 || alpha <= 0 {
		return nil, fmt.Errorf("workload: bad pareto parameters")
	}
	ts := make(model.TaskSet, n)
	for i := range ts {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		ts[i] = model.Task{ID: i, Cycles: xm / math.Pow(u, 1/alpha), Deadline: model.NoDeadline}
	}
	return ts, nil
}

// lognormal draws a lognormal variate with the given median and sigma
// of the underlying normal.
func lognormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}
