package workload_test

import (
	"fmt"
	"math/rand"

	"dvfsched/internal/workload"
)

// The paper's Table I workloads convert to batch tasks at the 1.6 GHz
// characterization frequency.
func ExampleSPECTasks() {
	tasks := workload.SPECTasks()
	fmt.Printf("%d tasks, first: %s with %.3f Gcycles\n",
		len(tasks), tasks[0].Name, tasks[0].Cycles)
	// Output:
	// 24 tasks, first: perlbench/train with 69.626 Gcycles
}

// The Judgegirl synthesizer reproduces the published trace shape:
// many tiny interactive queries, few heavy submissions, arrivals
// bunching toward the exam deadline.
func ExampleJudgeConfig_Generate() {
	cfg := workload.DefaultJudgeConfig()
	cfg.Interactive, cfg.NonInteractive, cfg.Duration = 1000, 100, 300
	tasks, err := cfg.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	inter, non := tasks.Split()
	fmt.Printf("%d queries, %d submissions\n", len(inter), len(non))
	fmt.Printf("queries are lighter: %v\n",
		inter.TotalCycles()/float64(len(inter)) < non.TotalCycles()/float64(len(non)))
	// Output:
	// 1000 queries, 100 submissions
	// queries are lighter: true
}
