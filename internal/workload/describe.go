package workload

import (
	"fmt"
	"strings"

	"dvfsched/internal/model"
	"dvfsched/internal/stats"
)

// Summary describes a task trace statistically: the numbers needed to
// judge whether a trace resembles the paper's (counts, demand
// distribution, arrival span, offered load).
type Summary struct {
	// Tasks, Interactive and NonInteractive are counts.
	Tasks, Interactive, NonInteractive int
	// WithDeadline counts tasks carrying a finite deadline.
	WithDeadline int
	// TotalGcycles is the summed demand.
	TotalGcycles float64
	// CycleP50, CycleP99 and CycleMax describe the demand
	// distribution in Gcycles.
	CycleP50, CycleP99, CycleMax float64
	// SpanS is the arrival span (last minus first arrival).
	SpanS float64
	// OfferedLoad is the demand rate over the span in Gcycles per
	// second (0 when the span is 0, i.e. a batch).
	OfferedLoad float64
}

// Describe computes a trace summary.
func Describe(tasks model.TaskSet) (Summary, error) {
	if err := tasks.Validate(); err != nil {
		return Summary{}, err
	}
	s := Summary{Tasks: len(tasks)}
	cycles := make([]float64, 0, len(tasks))
	first, last := tasks[0].Arrival, tasks[0].Arrival
	for _, t := range tasks {
		if t.Interactive {
			s.Interactive++
		} else {
			s.NonInteractive++
		}
		if t.HasDeadline() {
			s.WithDeadline++
		}
		s.TotalGcycles += t.Cycles
		cycles = append(cycles, t.Cycles)
		if t.Arrival < first {
			first = t.Arrival
		}
		if t.Arrival > last {
			last = t.Arrival
		}
	}
	s.CycleP50 = stats.Percentile(cycles, 50)
	s.CycleP99 = stats.Percentile(cycles, 99)
	s.CycleMax = stats.Max(cycles)
	s.SpanS = last - first
	if s.SpanS > 0 {
		s.OfferedLoad = s.TotalGcycles / s.SpanS
	}
	return s, nil
}

// String renders the summary as an aligned block.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tasks:          %d (%d interactive, %d non-interactive, %d with deadlines)\n",
		s.Tasks, s.Interactive, s.NonInteractive, s.WithDeadline)
	fmt.Fprintf(&b, "demand:         %.1f Gcycles total; p50 %.4f, p99 %.3f, max %.3f\n",
		s.TotalGcycles, s.CycleP50, s.CycleP99, s.CycleMax)
	if s.SpanS > 0 {
		fmt.Fprintf(&b, "arrivals:       %.1f s span, offered load %.2f Gcyc/s\n", s.SpanS, s.OfferedLoad)
		fmt.Fprintf(&b, "cores needed:   %.1f at 3.0 GHz, %.1f at 1.6 GHz\n",
			s.OfferedLoad/3.0, s.OfferedLoad/1.6)
	} else {
		fmt.Fprintf(&b, "arrivals:       batch (all at t=0)\n")
	}
	return b.String()
}
