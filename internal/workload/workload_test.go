package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestSPECTableIContents(t *testing.T) {
	ws := SPEC2006Int()
	if len(ws) != 24 {
		t.Fatalf("workloads = %d, want 24", len(ws))
	}
	byName := map[string]float64{}
	for _, w := range ws {
		byName[w.Name()] = w.Seconds
	}
	// Spot-check rows of Table I.
	checks := map[string]float64{
		"perlbench/train": 43.516,
		"bzip/ref":        1297.587,
		"gcc/train":       1.63,
		"h264ref/ref":     1549.734,
		"xalancbmk/ref":   453.463,
	}
	for name, want := range checks {
		if got := byName[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	benchmarks := map[string]int{}
	for _, w := range ws {
		benchmarks[w.Benchmark]++
	}
	if len(benchmarks) != 12 {
		t.Errorf("benchmarks = %d, want 12", len(benchmarks))
	}
	for b, n := range benchmarks {
		if n != 2 {
			t.Errorf("%s has %d inputs, want train+ref", b, n)
		}
	}
}

func TestSPECTasksCycleEstimate(t *testing.T) {
	tasks := SPECTasks()
	if err := tasks.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 24 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	// Cycles = seconds * 1.6 GHz, as the paper estimates.
	for _, task := range tasks {
		if task.Name == "gcc/train" {
			if math.Abs(task.Cycles-1.63*1.6) > 1e-9 {
				t.Errorf("gcc/train cycles = %v", task.Cycles)
			}
		}
		if task.HasDeadline() {
			t.Errorf("batch task %s has a deadline", task.Name)
		}
	}
}

func TestSPECSubset(t *testing.T) {
	ts, err := SPECSubset("bzip/train", "mcf/ref")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Name != "bzip/train" || ts[1].Name != "mcf/ref" {
		t.Errorf("subset = %v", ts)
	}
	if _, err := SPECSubset("nope/zilch"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSyntheticGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u, err := Uniform(rng, 100, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range u {
		if task.Cycles < 1 || task.Cycles >= 5 {
			t.Fatalf("uniform out of range: %v", task.Cycles)
		}
	}
	e, err := Exponential(rng, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m := e.TotalCycles() / float64(len(e)); math.Abs(m-3) > 0.5 {
		t.Errorf("exponential mean = %v, want ~3", m)
	}
	b, err := Bimodal(rng, 2000, 1, 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := Pareto(rng, 500, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range p {
		if task.Cycles < 1 {
			t.Fatalf("pareto below xm: %v", task.Cycles)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := Uniform(rng, 0, 1, 2); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Uniform(rng, 5, 2, 1); err == nil {
		t.Error("hi<lo accepted")
	}
	if _, err := Exponential(rng, 5, 0); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := Bimodal(rng, 5, 2, 1, 0.5); err == nil {
		t.Error("longMean<shortMean accepted")
	}
	if _, err := Pareto(rng, 5, 0, 1); err == nil {
		t.Error("zero xm accepted")
	}
}

func TestJudgeConfigValidate(t *testing.T) {
	if err := DefaultJudgeConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultJudgeConfig()
	bad.Duration = 0
	if bad.Validate() == nil {
		t.Error("zero duration accepted")
	}
	bad = DefaultJudgeConfig()
	bad.SubmitMedianMax = bad.SubmitMedianMin - 1
	if bad.Validate() == nil {
		t.Error("inverted medians accepted")
	}
	bad = DefaultJudgeConfig()
	bad.Interactive, bad.NonInteractive = 0, 0
	if bad.Validate() == nil {
		t.Error("empty trace accepted")
	}
}

func TestJudgeGenerateCountsAndKinds(t *testing.T) {
	cfg := DefaultJudgeConfig()
	cfg.Interactive = 500
	cfg.NonInteractive = 50
	rng := rand.New(rand.NewSource(3))
	tasks, err := cfg.Generate(rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := tasks.Validate(); err != nil {
		t.Fatal(err)
	}
	inter, non := tasks.Split()
	if len(inter) != 500 || len(non) != 50 {
		t.Fatalf("split = %d/%d", len(inter), len(non))
	}
	for i := 1; i < len(tasks); i++ {
		if tasks[i].Arrival < tasks[i-1].Arrival {
			t.Fatal("not sorted by arrival")
		}
	}
	for _, task := range tasks {
		if task.Arrival < 0 || task.Arrival > cfg.Duration {
			t.Fatalf("arrival %v outside [0, %v]", task.Arrival, cfg.Duration)
		}
		if task.Interactive && !task.HasDeadline() {
			t.Error("interactive task without deadline")
		}
		if !task.Interactive && task.HasDeadline() {
			t.Error("submission with deadline")
		}
	}
	// Interactive work is much lighter than judging work.
	if inter.TotalCycles()/float64(len(inter)) >= non.TotalCycles()/float64(len(non)) {
		t.Error("interactive tasks not lighter than submissions")
	}
}

func TestJudgeEndRampSkewsArrivals(t *testing.T) {
	cfg := DefaultJudgeConfig()
	cfg.Interactive = 20000
	cfg.NonInteractive = 0
	cfg.EndRamp = 3
	rng := rand.New(rand.NewSource(4))
	tasks, err := cfg.Generate(rng)
	if err != nil {
		t.Fatal(err)
	}
	firstHalf := 0
	for _, task := range tasks {
		if task.Arrival < cfg.Duration/2 {
			firstHalf++
		}
	}
	frac := float64(firstHalf) / float64(len(tasks))
	// With density 1 + 3t/T the first half holds (0.5+3/8)/(1+1.5) = 35%.
	if frac > 0.40 || frac < 0.30 {
		t.Errorf("first-half fraction = %v, want ~0.35", frac)
	}
}

func TestJudgeDeterminism(t *testing.T) {
	cfg := DefaultJudgeConfig()
	cfg.Interactive, cfg.NonInteractive = 200, 20
	a, _ := cfg.Generate(rand.New(rand.NewSource(9)))
	b, _ := cfg.Generate(rand.New(rand.NewSource(9)))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic generation")
		}
	}
}

func TestJudgeProblemMedians(t *testing.T) {
	cfg := DefaultJudgeConfig()
	if m := cfg.problemMedian(0); m != cfg.SubmitMedianMin {
		t.Errorf("problem 0 median %v", m)
	}
	if m := cfg.problemMedian(cfg.Problems - 1); m != cfg.SubmitMedianMax {
		t.Errorf("last problem median %v", m)
	}
	one := cfg
	one.Problems = 1
	if m := one.problemMedian(0); m != cfg.SubmitMedianMin {
		t.Errorf("single problem median %v", m)
	}
}
