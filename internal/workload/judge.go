package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dvfsched/internal/model"
)

// JudgeConfig parameterizes the online-judge trace synthesizer. The
// paper's trace (Judgegirl, National Taiwan University) is private;
// its published characteristics — 50525 interactive requests and 768
// code submissions over a half-hour final exam with five problems —
// are this generator's defaults, and arrival pressure rises toward the
// end of the exam.
type JudgeConfig struct {
	// Interactive is the number of interactive tasks (score queries,
	// problem choosing). Paper: 50525.
	Interactive int
	// NonInteractive is the number of code submissions. Paper: 768.
	NonInteractive int
	// Duration is the trace length in seconds. Paper: 1800 (half an
	// hour).
	Duration float64
	// Problems is the number of exam problems; each has its own
	// judging-time scale. Paper: 5.
	Problems int
	// InteractiveMedian is the median interactive request length in
	// Gcycles (score lookups are milliseconds of work).
	InteractiveMedian float64
	// InteractiveSigma is the lognormal shape of interactive lengths.
	InteractiveSigma float64
	// SubmitMedianMin and SubmitMedianMax bound the per-problem
	// median judging lengths in Gcycles; problems are spread evenly
	// between them.
	SubmitMedianMin, SubmitMedianMax float64
	// SubmitSigma is the lognormal shape of submission lengths
	// (submissions by different students vary a lot).
	SubmitSigma float64
	// EndRamp is how much denser arrivals are at the end of the exam
	// than at the start (>= 0; 0 means uniform arrivals).
	EndRamp float64
	// InteractiveDeadline is the firm response deadline of
	// interactive tasks, in seconds after arrival.
	InteractiveDeadline float64
}

// DefaultJudgeConfig returns the published characteristics of the
// paper's trace.
func DefaultJudgeConfig() JudgeConfig {
	return JudgeConfig{
		Interactive:         50525,
		NonInteractive:      768,
		Duration:            1800,
		Problems:            5,
		InteractiveMedian:   0.002,
		InteractiveSigma:    0.5,
		SubmitMedianMin:     10,
		SubmitMedianMax:     60,
		SubmitSigma:         0.8,
		EndRamp:             8.0,
		InteractiveDeadline: 0.5,
	}
}

// Validate checks the configuration.
func (c JudgeConfig) Validate() error {
	switch {
	case c.Interactive < 0 || c.NonInteractive < 0 || c.Interactive+c.NonInteractive == 0:
		return fmt.Errorf("workload: need at least one task")
	case c.Duration <= 0:
		return fmt.Errorf("workload: duration must be positive")
	case c.Problems <= 0:
		return fmt.Errorf("workload: need at least one problem")
	case c.InteractiveMedian <= 0 || c.SubmitMedianMin <= 0 || c.SubmitMedianMax < c.SubmitMedianMin:
		return fmt.Errorf("workload: bad length medians")
	case c.InteractiveSigma < 0 || c.SubmitSigma < 0:
		return fmt.Errorf("workload: negative sigma")
	case c.EndRamp < 0:
		return fmt.Errorf("workload: negative end ramp")
	case c.InteractiveDeadline <= 0:
		return fmt.Errorf("workload: interactive deadline must be positive")
	}
	return nil
}

// arrivalTime draws an arrival from the ramped density
// f(t) ∝ 1 + EndRamp*(t/T) by inverting its CDF.
func (c JudgeConfig) arrivalTime(rng *rand.Rand) float64 {
	u := rng.Float64()
	if c.EndRamp == 0 {
		return u * c.Duration
	}
	// CDF: F(x) = (x + r*x^2/2) / (1 + r/2) with x = t/T, r = EndRamp.
	// Invert the quadratic r/2*x^2 + x - u*(1+r/2) = 0.
	r := c.EndRamp
	x := (-1 + math.Sqrt(1+2*r*u*(1+r/2))) / r
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return x * c.Duration
}

// problemMedian returns the judging-length median of problem p.
func (c JudgeConfig) problemMedian(p int) float64 {
	if c.Problems == 1 {
		return c.SubmitMedianMin
	}
	frac := float64(p) / float64(c.Problems-1)
	return c.SubmitMedianMin + frac*(c.SubmitMedianMax-c.SubmitMedianMin)
}

// Generate synthesizes the trace. Tasks are returned sorted by
// arrival time with sequential IDs; determinism follows from rng.
func (c JudgeConfig) Generate(rng *rand.Rand) (model.TaskSet, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	tasks := make(model.TaskSet, 0, c.Interactive+c.NonInteractive)
	for i := 0; i < c.Interactive; i++ {
		at := c.arrivalTime(rng)
		tasks = append(tasks, model.Task{
			Name:        "query",
			Cycles:      lognormal(rng, c.InteractiveMedian, c.InteractiveSigma),
			Arrival:     at,
			Deadline:    at + c.InteractiveDeadline,
			Interactive: true,
		})
	}
	for i := 0; i < c.NonInteractive; i++ {
		p := rng.Intn(c.Problems)
		tasks = append(tasks, model.Task{
			Name:     fmt.Sprintf("submit-p%d", p+1),
			Cycles:   lognormal(rng, c.problemMedian(p), c.SubmitSigma),
			Arrival:  c.arrivalTime(rng),
			Deadline: model.NoDeadline,
		})
	}
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Arrival < tasks[j].Arrival })
	for i := range tasks {
		tasks[i].ID = i
	}
	return tasks, nil
}
