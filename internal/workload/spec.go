// Package workload provides the workloads of the paper's evaluation:
// the SPEC CPU2006 integer benchmarks characterized in Table I, a
// synthesizer for Judgegirl-like online-judge traces (Section V-B),
// and general synthetic batch generators.
package workload

import (
	"fmt"

	"dvfsched/internal/model"
)

// SPECWorkload is one row of Table I: a benchmark/input pair with its
// average execution time measured at the lowest frequency (1.6 GHz).
type SPECWorkload struct {
	// Benchmark is the SPEC CPU2006 integer benchmark name.
	Benchmark string
	// Input is "train" or "ref".
	Input string
	// Seconds is the average execution time at 1.6 GHz.
	Seconds float64
}

// Name returns "benchmark/input".
func (w SPECWorkload) Name() string { return w.Benchmark + "/" + w.Input }

// specTable1 reproduces Table I of the paper verbatim.
var specTable1 = []SPECWorkload{
	{"perlbench", "train", 43.516}, {"perlbench", "ref", 749.624},
	{"bzip", "train", 98.683}, {"bzip", "ref", 1297.587},
	{"gcc", "train", 1.63}, {"gcc", "ref", 552.611},
	{"mcf", "train", 17.568}, {"mcf", "ref", 397.782},
	{"gobmk", "train", 189.218}, {"gobmk", "ref", 993.54},
	{"hmmer", "train", 109.44}, {"hmmer", "ref", 1106.88},
	{"sjeng", "train", 224.398}, {"sjeng", "ref", 1074.126},
	{"libquantum", "train", 5.146}, {"libquantum", "ref", 1092.185},
	{"h264ref", "train", 218.285}, {"h264ref", "ref", 1549.734},
	{"omnetpp", "train", 108.661}, {"omnetpp", "ref", 439.393},
	{"astar", "train", 191.073}, {"astar", "ref", 880.951},
	{"xalancbmk", "train", 142.344}, {"xalancbmk", "ref", 453.463},
}

// BaseFrequency is the frequency (GHz) at which Table I's times were
// measured; the paper estimates cycle counts as time times this rate.
const BaseFrequency = 1.6

// SPEC2006Int returns the 24 workloads of Table I (12 benchmarks, each
// with train and ref inputs).
func SPEC2006Int() []SPECWorkload {
	out := make([]SPECWorkload, len(specTable1))
	copy(out, specTable1)
	return out
}

// SPECTasks converts Table I into a batch task set the way the paper
// does: cycles = average execution time at the lowest frequency times
// that frequency. IDs are assigned in table order.
func SPECTasks() model.TaskSet {
	tasks := make(model.TaskSet, len(specTable1))
	for i, w := range specTable1 {
		tasks[i] = model.Task{
			ID:       i,
			Name:     w.Name(),
			Cycles:   w.Seconds * BaseFrequency, // Gcycles
			Deadline: model.NoDeadline,
		}
	}
	return tasks
}

// SPECSubset returns the tasks for the named benchmark/input pairs
// (e.g. "bzip/train"). Unknown names yield an error.
func SPECSubset(names ...string) (model.TaskSet, error) {
	byName := make(map[string]SPECWorkload, len(specTable1))
	for _, w := range specTable1 {
		byName[w.Name()] = w
	}
	tasks := make(model.TaskSet, 0, len(names))
	for i, n := range names {
		w, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("workload: unknown SPEC workload %q", n)
		}
		tasks = append(tasks, model.Task{
			ID:       i,
			Name:     w.Name(),
			Cycles:   w.Seconds * BaseFrequency,
			Deadline: model.NoDeadline,
		})
	}
	return tasks, nil
}
