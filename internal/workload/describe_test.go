package workload

import (
	"math/rand"
	"strings"
	"testing"

	"dvfsched/internal/model"
)

func TestDescribeBatch(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Cycles: 1, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 3, Deadline: model.NoDeadline},
	}
	s, err := Describe(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks != 2 || s.NonInteractive != 2 || s.TotalGcycles != 4 {
		t.Errorf("summary = %+v", s)
	}
	if s.SpanS != 0 || s.OfferedLoad != 0 {
		t.Errorf("batch should have zero span/load: %+v", s)
	}
	if !strings.Contains(s.String(), "batch (all at t=0)") {
		t.Errorf("String:\n%s", s)
	}
}

func TestDescribeOnline(t *testing.T) {
	cfg := DefaultJudgeConfig()
	cfg.Interactive, cfg.NonInteractive, cfg.Duration = 50, 10, 30
	tasks, err := cfg.Generate(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Describe(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if s.Interactive != 50 || s.NonInteractive != 10 {
		t.Errorf("counts: %+v", s)
	}
	if s.WithDeadline != 50 {
		t.Errorf("deadlines: %d, want the interactive count", s.WithDeadline)
	}
	if s.SpanS <= 0 || s.OfferedLoad <= 0 {
		t.Errorf("span/load: %+v", s)
	}
	if s.CycleP50 > s.CycleP99 || s.CycleP99 > s.CycleMax {
		t.Errorf("percentiles out of order: %+v", s)
	}
	if !strings.Contains(s.String(), "offered load") {
		t.Errorf("String:\n%s", s)
	}
}

func TestDescribeInvalid(t *testing.T) {
	if _, err := Describe(nil); err == nil {
		t.Error("empty trace accepted")
	}
}
