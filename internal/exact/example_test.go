package exact_test

import (
	"fmt"

	"dvfsched/internal/exact"
)

// Theorem 1's reduction: a Partition instance becomes a
// Deadline-SingleCore instance that is feasible exactly when the
// integers split into two equal halves.
func ExamplePartitionToDeadlineSingleCore() {
	yes := []int{3, 1, 1, 2, 2, 1} // splits into 5 + 5
	no := []int{3, 1, 1}           // sum 5 is odd

	for _, a := range [][]int{yes, no} {
		inst, err := exact.PartitionToDeadlineSingleCore(a)
		if err != nil {
			panic(err)
		}
		feasible, err := exact.SolveDeadlineSingleCore(inst)
		if err != nil {
			panic(err)
		}
		partitionable, err := exact.SolvePartition(a)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v: partitionable=%v, schedule feasible=%v\n", a, partitionable, feasible)
	}
	// Output:
	// [3 1 1 2 2 1]: partitionable=true, schedule feasible=true
	// [3 1 1]: partitionable=false, schedule feasible=false
}
