// Package exact provides exponential-time exact solvers used as test
// oracles for the polynomial algorithms in package batch, plus the
// Partition reduction underlying the paper's NP-completeness results
// (Theorems 1 and 2).
package exact

import (
	"fmt"
	"math"

	"dvfsched/internal/model"
)

// bestPositionCosts precomputes C^B(k) = min_p C^B(k, p) for k = 1..n
// by the naive scan. By Eq. 11 the total cost of an order decomposes
// into independent per-position terms, so the optimal rate for a
// position never depends on which task sits there; brute-force search
// therefore only needs to enumerate orders.
func bestPositionCosts(params model.CostParams, rates *model.RateTable, n int) []float64 {
	costs := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		_, costs[k] = params.BestBackwardLevel(k, rates)
	}
	return costs
}

// sequenceCostBackward returns the cost of executing tasks in the given
// forward order using the optimal per-position rates.
func sequenceCostBackward(costs []float64, order model.TaskSet) float64 {
	n := len(order)
	var c float64
	for i, t := range order {
		c += costs[n-i] * t.Cycles // backward position of forward index i is n-i
	}
	return c
}

// permute calls fn with every permutation of tasks (Heap's algorithm);
// fn must not retain the slice.
func permute(tasks model.TaskSet, fn func(model.TaskSet)) {
	n := len(tasks)
	c := make([]int, n)
	fn(tasks)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				tasks[0], tasks[i] = tasks[i], tasks[0]
			} else {
				tasks[c[i]], tasks[i] = tasks[i], tasks[c[i]]
			}
			fn(tasks)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// MaxBruteTasks bounds the instance sizes the exhaustive solvers
// accept (n! and R^n growth).
const MaxBruteTasks = 10

// OptimalSingleCoreCost exhaustively searches all n! execution orders
// (with per-position-optimal rates, exact by Eq. 11) and returns the
// minimum total cost. It is the oracle for Algorithm 2 / Theorem 3.
func OptimalSingleCoreCost(params model.CostParams, rates *model.RateTable, tasks model.TaskSet) (float64, error) {
	if len(tasks) == 0 || len(tasks) > MaxBruteTasks {
		return 0, fmt.Errorf("exact: need 1..%d tasks, got %d", MaxBruteTasks, len(tasks))
	}
	if err := params.Validate(); err != nil {
		return 0, err
	}
	if err := rates.Validate(); err != nil {
		return 0, err
	}
	costs := bestPositionCosts(params, rates, len(tasks))
	best := math.Inf(1)
	work := tasks.Clone()
	permute(work, func(order model.TaskSet) {
		if c := sequenceCostBackward(costs, order); c < best {
			best = c
		}
	})
	return best, nil
}

// OptimalMultiCoreCost exhaustively searches all R^n task-to-core
// assignments and, within each core, all execution orders, returning
// the minimum total cost. It is the oracle for Workload Based Greedy /
// Theorems 4 and 5. Cores may be heterogeneous.
func OptimalMultiCoreCost(params model.CostParams, rateTables []*model.RateTable, tasks model.TaskSet) (float64, error) {
	r := len(rateTables)
	if r == 0 {
		return 0, fmt.Errorf("exact: no cores")
	}
	if len(tasks) == 0 || len(tasks) > MaxBruteTasks {
		return 0, fmt.Errorf("exact: need 1..%d tasks, got %d", MaxBruteTasks, len(tasks))
	}
	costsPerCore := make([][]float64, r)
	for j, rt := range rateTables {
		if err := rt.Validate(); err != nil {
			return 0, fmt.Errorf("exact: core %d: %w", j, err)
		}
		costsPerCore[j] = bestPositionCosts(params, rt, len(tasks))
	}
	n := len(tasks)
	assign := make([]int, n)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			var total float64
			for j := 0; j < r; j++ {
				var sub model.TaskSet
				for t := 0; t < n; t++ {
					if assign[t] == j {
						sub = append(sub, tasks[t])
					}
				}
				if len(sub) == 0 {
					continue
				}
				coreBest := math.Inf(1)
				permute(sub, func(order model.TaskSet) {
					if c := sequenceCostBackward(costsPerCore[j], order); c < coreBest {
						coreBest = c
					}
				})
				total += coreBest
				if total >= best {
					return
				}
			}
			if total < best {
				best = total
			}
			return
		}
		for j := 0; j < r; j++ {
			assign[i] = j
			rec(i + 1)
		}
	}
	rec(0)
	return best, nil
}
