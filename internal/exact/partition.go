package exact

import (
	"fmt"
	"sort"

	"dvfsched/internal/model"
)

// DeadlineInstance is an instance of the Deadline-SingleCore decision
// problem of Theorem 1: can every task meet its deadline while total
// energy stays within the budget?
type DeadlineInstance struct {
	// Tasks to run on the single core; all arrive at time 0.
	Tasks model.TaskSet
	// Rates is the core's discrete rate set.
	Rates *model.RateTable
	// EnergyBudget is the bound E in joules.
	EnergyBudget float64
}

// PartitionToDeadlineSingleCore performs the reduction in the proof of
// Theorem 1. Given positive integers a, it builds a Deadline-SingleCore
// instance with one task per integer (L_i = a_i), two rates with
// T(pl) = 2, T(ph) = 1, E(pl) = 1, E(ph) = 4 (dynamic energy
// proportional to frequency squared), a common deadline of 1.5*S and an
// energy budget of 2.5*S, where S = sum(a). The instance is feasible
// iff a can be partitioned into two halves of equal sum.
func PartitionToDeadlineSingleCore(a []int) (DeadlineInstance, error) {
	if len(a) == 0 {
		return DeadlineInstance{}, fmt.Errorf("exact: empty partition instance")
	}
	var s int
	tasks := make(model.TaskSet, len(a))
	for i, v := range a {
		if v <= 0 {
			return DeadlineInstance{}, fmt.Errorf("exact: partition element %d is %d, must be positive", i, v)
		}
		s += v
		tasks[i] = model.Task{ID: i, Cycles: float64(v)}
	}
	deadline := 1.5 * float64(s)
	for i := range tasks {
		tasks[i].Deadline = deadline
	}
	rates := model.MustRateTable([]model.RateLevel{
		{Rate: 0.5, Energy: 1, Time: 2}, // pl
		{Rate: 1.0, Energy: 4, Time: 1}, // ph: twice as fast, 4x energy
	})
	return DeadlineInstance{
		Tasks:        tasks,
		Rates:        rates,
		EnergyBudget: 2.5 * float64(s),
	}, nil
}

// MaxDeadlineTasks bounds the exhaustive deadline solver (|P|^n rate
// assignments).
const MaxDeadlineTasks = 16

// SolveDeadlineSingleCore decides a Deadline-SingleCore instance by
// enumerating all |P|^n rate assignments. For each assignment,
// earliest-deadline-first ordering is optimal on a single core with
// common release times, so feasibility of the assignment reduces to an
// EDF completion-time check plus the energy budget.
func SolveDeadlineSingleCore(inst DeadlineInstance) (bool, error) {
	n := len(inst.Tasks)
	if n == 0 || n > MaxDeadlineTasks {
		return false, fmt.Errorf("exact: need 1..%d tasks, got %d", MaxDeadlineTasks, n)
	}
	if err := inst.Rates.Validate(); err != nil {
		return false, err
	}
	for _, t := range inst.Tasks {
		if t.Arrival != 0 {
			return false, fmt.Errorf("exact: task %d has non-zero arrival; batch-mode instances only", t.ID)
		}
	}
	// EDF order is independent of the rate assignment.
	order := inst.Tasks.Clone()
	sort.SliceStable(order, func(i, j int) bool { return order[i].Deadline < order[j].Deadline })

	p := inst.Rates.Len()
	choice := make([]int, n)
	var feasible func(i int) bool
	feasible = func(i int) bool {
		if i == n {
			var elapsed, energy float64
			for idx, t := range order {
				l := inst.Rates.Level(choice[idx])
				elapsed += model.TaskTime(t.Cycles, l)
				if t.HasDeadline() && elapsed > t.Deadline+1e-9 {
					return false
				}
				energy += model.TaskEnergy(t.Cycles, l)
			}
			return energy <= inst.EnergyBudget+1e-9
		}
		for c := 0; c < p; c++ {
			choice[i] = c
			if feasible(i + 1) {
				return true
			}
		}
		return false
	}
	return feasible(0), nil
}

// SolvePartition decides the Partition problem exactly with a
// subset-sum dynamic program in O(n*S) time.
func SolvePartition(a []int) (bool, error) {
	if len(a) == 0 {
		return false, fmt.Errorf("exact: empty partition instance")
	}
	var s int
	for i, v := range a {
		if v <= 0 {
			return false, fmt.Errorf("exact: partition element %d is %d, must be positive", i, v)
		}
		s += v
	}
	if s%2 != 0 {
		return false, nil
	}
	half := s / 2
	reach := make([]bool, half+1)
	reach[0] = true
	for _, v := range a {
		for t := half; t >= v; t-- {
			if reach[t-v] {
				reach[t] = true
			}
		}
	}
	return reach[half], nil
}
