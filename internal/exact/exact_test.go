package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvfsched/internal/batch"
	"dvfsched/internal/model"
)

func table2() *model.RateTable {
	return model.MustRateTable([]model.RateLevel{
		{Rate: 1.6, Energy: 3.375, Time: 0.625},
		{Rate: 2.0, Energy: 4.22, Time: 0.5},
		{Rate: 2.4, Energy: 5.0, Time: 0.42},
		{Rate: 2.8, Energy: 6.0, Time: 0.36},
		{Rate: 3.0, Energy: 7.1, Time: 0.33},
	})
}

var paperParams = model.CostParams{Re: 0.1, Rt: 0.4}

func randomTasks(rng *rand.Rand, n int) model.TaskSet {
	ts := make(model.TaskSet, n)
	for i := range ts {
		ts[i] = model.Task{ID: i, Cycles: 0.1 + rng.Float64()*20, Deadline: model.NoDeadline}
	}
	return ts
}

func TestOptimalSingleCoreCostBounds(t *testing.T) {
	if _, err := OptimalSingleCoreCost(paperParams, table2(), nil); err == nil {
		t.Error("empty set accepted")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := OptimalSingleCoreCost(paperParams, table2(), randomTasks(rng, MaxBruteTasks+1)); err == nil {
		t.Error("oversized set accepted")
	}
}

// Theorem 3 / Algorithm 2: the polynomial SingleCore schedule is
// exhaustively optimal.
func TestSingleCoreAlgorithmIsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tasks := randomTasks(rng, 1+rng.Intn(7))
		plan, err := batch.SingleCore(paperParams, table2(), tasks)
		if err != nil {
			return false
		}
		_, _, algo := plan.Cost()
		opt, err := OptimalSingleCoreCost(paperParams, table2(), tasks)
		if err != nil {
			return false
		}
		if algo > opt+1e-9*math.Max(1, opt) {
			t.Logf("seed %d: algorithm %v > optimal %v", seed, algo, opt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Theorems 4 & 5: WBG is exhaustively optimal on homogeneous and
// heterogeneous multi-cores.
func TestWBGIsOptimalHomogeneous(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		r := 1 + rng.Intn(3)
		tasks := randomTasks(rng, n)
		plan, err := batch.WBG(paperParams, batch.HomogeneousCores(r, table2()), tasks)
		if err != nil {
			return false
		}
		_, _, algo := plan.Cost()
		tables := make([]*model.RateTable, r)
		for j := range tables {
			tables[j] = table2()
		}
		opt, err := OptimalMultiCoreCost(paperParams, tables, tasks)
		if err != nil {
			return false
		}
		if algo > opt+1e-9*math.Max(1, opt) {
			t.Logf("seed %d: WBG %v > optimal %v (n=%d r=%d)", seed, algo, opt, n, r)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWBGIsOptimalHeterogeneous(t *testing.T) {
	slow := model.MustRateTable([]model.RateLevel{
		{Rate: 0.8, Energy: 2, Time: 1.25},
		{Rate: 1.6, Energy: 5, Time: 0.625},
	})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		tasks := randomTasks(rng, n)
		cores := []batch.CoreSpec{{Rates: table2()}, {Rates: slow}}
		plan, err := batch.WBG(paperParams, cores, tasks)
		if err != nil {
			return false
		}
		_, _, algo := plan.Cost()
		opt, err := OptimalMultiCoreCost(paperParams, []*model.RateTable{table2(), slow}, tasks)
		if err != nil {
			return false
		}
		if algo > opt+1e-9*math.Max(1, opt) {
			t.Logf("seed %d: WBG %v > optimal %v (n=%d)", seed, algo, opt, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSolvePartitionKnownInstances(t *testing.T) {
	cases := []struct {
		a    []int
		want bool
	}{
		{[]int{1, 1}, true},
		{[]int{1, 2}, false},
		{[]int{3, 1, 1, 2, 2, 1}, true},
		{[]int{2, 2, 2, 1}, false}, // odd sum
		{[]int{5}, false},
		{[]int{4, 4}, true},
		{[]int{7, 3, 2, 1, 1}, true}, // 7 vs 3+2+1+1
	}
	for _, c := range cases {
		got, err := SolvePartition(c.a)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("SolvePartition(%v) = %v, want %v", c.a, got, c.want)
		}
	}
	if _, err := SolvePartition(nil); err == nil {
		t.Error("empty instance accepted")
	}
	if _, err := SolvePartition([]int{0}); err == nil {
		t.Error("non-positive element accepted")
	}
}

// Theorem 1: the reduction maps yes-instances of Partition to feasible
// Deadline-SingleCore instances and no-instances to infeasible ones.
func TestPartitionReductionEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		a := make([]int, n)
		for i := range a {
			a[i] = 1 + rng.Intn(9)
		}
		wantFeasible, err := SolvePartition(a)
		if err != nil {
			return false
		}
		inst, err := PartitionToDeadlineSingleCore(a)
		if err != nil {
			return false
		}
		got, err := SolveDeadlineSingleCore(inst)
		if err != nil {
			return false
		}
		if got != wantFeasible {
			t.Logf("seed %d a=%v: partition=%v deadline=%v", seed, a, wantFeasible, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPartitionReductionRejectsBadInput(t *testing.T) {
	if _, err := PartitionToDeadlineSingleCore(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := PartitionToDeadlineSingleCore([]int{-1}); err == nil {
		t.Error("negative input accepted")
	}
}

func TestSolveDeadlineRespectsTightDeadlines(t *testing.T) {
	// One task of 10 Gcycles, fastest rate T = 1 ns/cyc -> 10 s
	// minimum. Deadline 5 s must be infeasible, 20 s feasible.
	rates := model.MustRateTable([]model.RateLevel{
		{Rate: 0.5, Energy: 1, Time: 2},
		{Rate: 1.0, Energy: 4, Time: 1},
	})
	mk := func(deadline, budget float64) DeadlineInstance {
		return DeadlineInstance{
			Tasks:        model.TaskSet{{ID: 0, Cycles: 10, Deadline: deadline}},
			Rates:        rates,
			EnergyBudget: budget,
		}
	}
	if ok, _ := SolveDeadlineSingleCore(mk(5, 1e9)); ok {
		t.Error("impossible deadline reported feasible")
	}
	if ok, _ := SolveDeadlineSingleCore(mk(20, 1e9)); !ok {
		t.Error("easy deadline reported infeasible")
	}
	// Energy budget binding: running at pl uses 10 J, at ph 40 J.
	if ok, _ := SolveDeadlineSingleCore(mk(20, 5)); ok {
		t.Error("energy budget violated")
	}
	if ok, _ := SolveDeadlineSingleCore(mk(20, 10)); !ok {
		t.Error("slow-rate solution not found")
	}
}

func TestSolveDeadlineEDFOrdering(t *testing.T) {
	// Two tasks; only the EDF order (task 2 first) is feasible.
	rates := model.MustRateTable([]model.RateLevel{{Rate: 1, Energy: 1, Time: 1}})
	inst := DeadlineInstance{
		Tasks: model.TaskSet{
			{ID: 0, Cycles: 5, Deadline: 8},
			{ID: 1, Cycles: 2, Deadline: 2},
		},
		Rates:        rates,
		EnergyBudget: 100,
	}
	ok, err := SolveDeadlineSingleCore(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("EDF-feasible instance reported infeasible")
	}
}

func TestSolveDeadlineBounds(t *testing.T) {
	rates := model.MustRateTable([]model.RateLevel{{Rate: 1, Energy: 1, Time: 1}})
	if _, err := SolveDeadlineSingleCore(DeadlineInstance{Rates: rates}); err == nil {
		t.Error("empty instance accepted")
	}
	tasks := make(model.TaskSet, MaxDeadlineTasks+1)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 1, Deadline: 100}
	}
	if _, err := SolveDeadlineSingleCore(DeadlineInstance{Tasks: tasks, Rates: rates, EnergyBudget: 1e9}); err == nil {
		t.Error("oversized instance accepted")
	}
	bad := DeadlineInstance{
		Tasks:        model.TaskSet{{ID: 0, Cycles: 1, Arrival: 5, Deadline: 10}},
		Rates:        rates,
		EnergyBudget: 1e9,
	}
	if _, err := SolveDeadlineSingleCore(bad); err == nil {
		t.Error("non-zero arrival accepted")
	}
}
