package power_test

import (
	"fmt"

	"dvfsched/internal/power"
)

// The meter integrates piecewise-constant power exactly and as a
// sampled instrument with idle-baseline subtraction, the paper's
// measurement procedure.
func ExampleMeter() {
	m := power.NewMeter(0.5, 120) // 2 Hz sampling, 120 W idle machine
	m.Record(0, 10, 21.3)         // core 0 at 3.0 GHz
	m.Record(0, 5, 5.4)           // core 1 at 1.6 GHz, shorter task
	fmt.Printf("exact:   %.1f J\n", m.Energy())
	fmt.Printf("sampled: %.1f J\n", m.SampledEnergy())
	fmt.Printf("busy:    %.1f s\n", m.BusyDuration())
	// Output:
	// exact:   240.0 J
	// sampled: 240.0 J
	// busy:    10.0 s
}
