// Package power simulates the external power meter (a DW-6091 in the
// paper's testbed) used to measure energy. The simulator reports each
// core's active power draw as piecewise-constant segments; the meter
// integrates them exactly (ground truth) and also the way the physical
// instrument does — sampling total machine power (idle baseline plus
// activity) at a fixed period and subtracting the idle reading, as
// Section V of the paper describes.
package power

import (
	"fmt"
	"math"
	"sort"
)

// segment is a half-open interval of constant active power from one
// source (e.g. one core).
type segment struct {
	start, end float64
	watts      float64
}

// Meter accumulates power segments reported by the simulator.
type Meter struct {
	// SampleInterval is the meter's sampling period in seconds; 0
	// makes SampledEnergy fall back to the exact integral.
	SampleInterval float64
	// IdleWatts is the idle machine's draw, added to every
	// instantaneous reading and subtracted over the measurement
	// window, mirroring the paper's idle-power correction.
	IdleWatts float64

	segments []segment
}

// NewMeter returns a meter with the given sampling period and idle
// baseline.
func NewMeter(sampleInterval, idleWatts float64) *Meter {
	return &Meter{SampleInterval: sampleInterval, IdleWatts: idleWatts}
}

// Record adds a constant-power interval [start, end) of the given
// active watts. Segments from different cores may overlap; they sum.
func (m *Meter) Record(start, end, watts float64) error {
	if end < start || watts < 0 || math.IsNaN(start) || math.IsNaN(end) || math.IsNaN(watts) {
		return fmt.Errorf("power: bad segment [%v, %v) @ %v W", start, end, watts)
	}
	//dvfslint:allow floatcmp zero-width segment guard; any non-zero width, however tiny, must still integrate
	if end == start || watts == 0 {
		return nil
	}
	m.segments = append(m.segments, segment{start: start, end: end, watts: watts})
	return nil
}

// Span returns the earliest start and latest end recorded; zeros if
// nothing was recorded.
func (m *Meter) Span() (start, end float64) {
	if len(m.segments) == 0 {
		return 0, 0
	}
	start, end = math.Inf(1), math.Inf(-1)
	for _, s := range m.segments {
		if s.start < start {
			start = s.start
		}
		if s.end > end {
			end = s.end
		}
	}
	return start, end
}

// Energy returns the exact integral of active power over all recorded
// segments, in joules: the ground truth the sampled reading
// approximates.
func (m *Meter) Energy() float64 {
	var j float64
	for _, s := range m.segments {
		j += s.watts * (s.end - s.start)
	}
	return j
}

// SampledEnergy integrates power the way the physical meter does: it
// reads total machine power (idle + activity) every SampleInterval
// seconds, multiplies by the interval (rectangle rule), and subtracts
// the idle baseline over the measurement window.
func (m *Meter) SampledEnergy() float64 {
	if m.SampleInterval <= 0 || len(m.segments) == 0 {
		return m.Energy()
	}
	start, end := m.Span()
	var j float64
	for t := start; t < end; t += m.SampleInterval {
		j += (m.IdleWatts + m.ActivePowerAt(t)) * m.SampleInterval
	}
	return j - m.IdleWatts*(end-start)
}

// ActivePowerAt returns the instantaneous active power at time t (sum
// of all segments covering t), excluding the idle baseline.
func (m *Meter) ActivePowerAt(t float64) float64 {
	var w float64
	for _, s := range m.segments {
		if t >= s.start && t < s.end {
			w += s.watts
		}
	}
	return w
}

// BusyDuration returns the length of the union of all segments: the
// wall-clock time during which anything drew active power.
func (m *Meter) BusyDuration() float64 {
	if len(m.segments) == 0 {
		return 0
	}
	ivs := make([][2]float64, len(m.segments))
	for i, s := range m.segments {
		ivs[i] = [2]float64{s.start, s.end}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	var total float64
	curStart, curEnd := ivs[0][0], ivs[0][1]
	for _, iv := range ivs[1:] {
		if iv[0] > curEnd {
			total += curEnd - curStart
			curStart, curEnd = iv[0], iv[1]
		} else if iv[1] > curEnd {
			curEnd = iv[1]
		}
	}
	total += curEnd - curStart
	return total
}

// Reset clears all recorded segments.
func (m *Meter) Reset() { m.segments = m.segments[:0] }
