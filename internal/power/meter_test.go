package power

import (
	"math"
	"testing"
)

func TestRecordValidation(t *testing.T) {
	m := NewMeter(1, 0)
	if err := m.Record(5, 4, 1); err == nil {
		t.Error("end < start accepted")
	}
	if err := m.Record(0, 1, -2); err == nil {
		t.Error("negative watts accepted")
	}
	if err := m.Record(math.NaN(), 1, 1); err == nil {
		t.Error("NaN accepted")
	}
	if err := m.Record(1, 1, 5); err != nil {
		t.Error("zero-length segment should be a no-op, not an error")
	}
	if m.Energy() != 0 {
		t.Error("no-op segments changed energy")
	}
}

func TestExactEnergy(t *testing.T) {
	m := NewMeter(0, 0)
	m.Record(0, 2, 10)  // 20 J
	m.Record(1, 3, 5)   // 10 J, overlapping
	m.Record(10, 11, 1) // 1 J, disjoint
	if got := m.Energy(); math.Abs(got-31) > 1e-12 {
		t.Errorf("Energy = %v, want 31", got)
	}
}

func TestActivePowerAt(t *testing.T) {
	m := NewMeter(0, 0)
	m.Record(0, 2, 10)
	m.Record(1, 3, 5)
	cases := map[float64]float64{0.5: 10, 1.5: 15, 2.5: 5, 3.5: 0}
	for at, want := range cases {
		if got := m.ActivePowerAt(at); got != want {
			t.Errorf("ActivePowerAt(%v) = %v, want %v", at, got, want)
		}
	}
}

func TestSampledEnergyApproximatesExact(t *testing.T) {
	m := NewMeter(0.1, 50) // 10 Hz sampling, 50 W idle baseline
	// A workload-like pattern: two cores with staggered activity.
	m.Record(0, 10, 20)
	m.Record(2, 7, 15)
	m.Record(12, 20, 8)
	exact := m.Energy()
	sampled := m.SampledEnergy()
	if rel := math.Abs(sampled-exact) / exact; rel > 0.02 {
		t.Errorf("sampled %v vs exact %v (rel err %.3f)", sampled, exact, rel)
	}
}

func TestSampledFallsBackWithoutInterval(t *testing.T) {
	m := NewMeter(0, 10)
	m.Record(0, 1, 5)
	if m.SampledEnergy() != m.Energy() {
		t.Error("zero interval should fall back to exact")
	}
}

func TestSpanAndBusyDuration(t *testing.T) {
	m := NewMeter(0, 0)
	if s, e := m.Span(); s != 0 || e != 0 {
		t.Error("empty span non-zero")
	}
	if m.BusyDuration() != 0 {
		t.Error("empty busy duration non-zero")
	}
	m.Record(1, 3, 1)
	m.Record(2, 5, 1) // overlaps -> union [1,5]
	m.Record(8, 9, 1) // disjoint -> +1
	s, e := m.Span()
	if s != 1 || e != 9 {
		t.Errorf("span = [%v, %v]", s, e)
	}
	if got := m.BusyDuration(); math.Abs(got-5) > 1e-12 {
		t.Errorf("BusyDuration = %v, want 5", got)
	}
}

func TestReset(t *testing.T) {
	m := NewMeter(0, 0)
	m.Record(0, 1, 5)
	m.Reset()
	if m.Energy() != 0 {
		t.Error("Reset did not clear segments")
	}
}

func TestIdleSubtractionCancels(t *testing.T) {
	// With sampling aligned to segment boundaries, the idle add and
	// subtract must cancel exactly.
	m := NewMeter(0.5, 100)
	m.Record(0, 4, 10)
	if got := m.SampledEnergy(); math.Abs(got-40) > 1e-9 {
		t.Errorf("SampledEnergy = %v, want 40", got)
	}
}
