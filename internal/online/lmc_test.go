package online

import (
	"math"
	"math/rand"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/platform"
	"dvfsched/internal/sched"
	"dvfsched/internal/sim"
)

var onlineParams = model.CostParams{Re: 0.4, Rt: 0.1} // the paper's online settings

func plat(n int) *platform.Platform {
	return platform.Homogeneous(n, platform.TableII(), platform.Ideal{})
}

func mustLMC(t *testing.T) *LMC {
	t.Helper()
	l, err := NewLMC(onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLMCValidates(t *testing.T) {
	if _, err := NewLMC(model.CostParams{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestLMCCompletesBatchOnly(t *testing.T) {
	tasks := make(model.TaskSet, 16)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 1 + float64(i%5)*10, Arrival: float64(i) * 0.05, Deadline: model.NoDeadline}
	}
	res, err := sim.Run(sim.Config{Platform: plat(4), Policy: mustLMC(t)}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range res.Tasks {
		if !ts.Done {
			t.Errorf("task %d unfinished", ts.Task.ID)
		}
	}
}

func TestLMCInteractiveLatency(t *testing.T) {
	// A long batch task occupies the single core; an interactive task
	// arriving later must preempt and finish immediately at max rate.
	tasks := model.TaskSet{
		{ID: 1, Cycles: 500, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 2, Arrival: 3, Interactive: true, Deadline: model.NoDeadline},
	}
	res, err := sim.Run(sim.Config{Platform: plat(1), Policy: mustLMC(t)}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	inter := res.Tasks[1]
	if math.Abs(inter.Completion-(3+2*0.33)) > 1e-9 {
		t.Errorf("interactive completion %v, want %v", inter.Completion, 3+2*0.33)
	}
	if res.Preemptions != 1 {
		t.Errorf("preemptions = %d", res.Preemptions)
	}
	if !res.Tasks[0].Done {
		t.Error("preempted batch task never resumed")
	}
}

func TestLMCInteractivePrefersIdleOrShortQueueCore(t *testing.T) {
	// Core 0 busy with a batch task and one queued; core 1 idle. The
	// interactive task must go to core 1 (lower N_j), no preemption.
	tasks := model.TaskSet{
		{ID: 1, Cycles: 100, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 100, Arrival: 0.01, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 100, Arrival: 0.02, Deadline: model.NoDeadline},
		{ID: 4, Cycles: 1, Arrival: 1, Interactive: true, Deadline: model.NoDeadline},
	}
	res, err := sim.Run(sim.Config{Platform: plat(2), Policy: mustLMC(t)}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	// Tasks 1 and 2 start on separate cores; task 3 queues behind
	// one of them. The interactive arrival must preempt the core
	// with the SHORTER queue (Eq. 27 minimizes N_j).
	if res.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", res.Preemptions)
	}
	inter := res.Tasks[3]
	if math.Abs(inter.Completion-(1+0.33)) > 1e-9 {
		t.Errorf("interactive completion %v", inter.Completion)
	}
}

func TestLMCQueueOrderShortestFirst(t *testing.T) {
	// Single core; first arrival occupies it, then three more with
	// descending lengths queue up. Dispatch must be shortest-first.
	tasks := model.TaskSet{
		{ID: 0, Cycles: 50, Deadline: model.NoDeadline},
		{ID: 1, Cycles: 40, Arrival: 0.1, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 10, Arrival: 0.2, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 20, Arrival: 0.3, Deadline: model.NoDeadline},
	}
	res, err := sim.Run(sim.Config{Platform: plat(1), Policy: mustLMC(t)}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	c := func(id int) float64 { return res.Tasks[id].Completion }
	if !(c(2) < c(3) && c(3) < c(1)) {
		t.Errorf("queued completion order wrong: t1=%v t2=%v t3=%v", c(1), c(2), c(3))
	}
}

func TestLMCQueuedCostConsistency(t *testing.T) {
	l := mustLMC(t)
	tasks := make(model.TaskSet, 30)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 1 + float64((i*7)%23), Arrival: float64(i) * 0.01, Deadline: model.NoDeadline}
	}
	if _, err := sim.Run(sim.Config{Platform: plat(2), Policy: l}, tasks, onlineParams); err != nil {
		t.Fatal(err)
	}
	// All queues drained at the end.
	for j := 0; j < 2; j++ {
		if c := l.QueuedCost(j); math.Abs(c) > 1e-6 {
			t.Errorf("core %d residual queue cost %v", j, c)
		}
	}
}

// onlineTrace builds a small judge-like workload: many short
// interactive tasks, few long non-interactive ones.
func onlineTrace(rng *rand.Rand, nInter, nBatch int, horizon float64) model.TaskSet {
	ts := make(model.TaskSet, 0, nInter+nBatch)
	id := 0
	for i := 0; i < nInter; i++ {
		ts = append(ts, model.Task{
			ID: id, Cycles: 0.001 + rng.Float64()*0.01,
			Arrival: rng.Float64() * horizon, Interactive: true, Deadline: model.NoDeadline,
		})
		id++
	}
	for i := 0; i < nBatch; i++ {
		ts = append(ts, model.Task{
			ID: id, Cycles: 1 + rng.Float64()*15,
			Arrival: rng.Float64() * horizon, Deadline: model.NoDeadline,
		})
		id++
	}
	return ts
}

func TestLMCBeatsBaselinesOnJudgeWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tasks := onlineTrace(rng, 400, 24, 60)
	run := func(p sim.Policy, tick float64) *sim.Result {
		res, err := sim.Run(sim.Config{Platform: plat(4), Policy: p, TickInterval: tick}, tasks, onlineParams)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lmc := run(mustLMC(t), 0)
	olb := run(&sched.OLB{MaxFrequency: true}, 0)
	od := run(&sched.OnDemandRR{}, 1)
	if lmc.TotalCost >= olb.TotalCost {
		t.Errorf("LMC cost %v not below OLB %v", lmc.TotalCost, olb.TotalCost)
	}
	if lmc.TotalCost >= od.TotalCost {
		t.Errorf("LMC cost %v not below On-demand %v", lmc.TotalCost, od.TotalCost)
	}
	// LMC must also use less energy than always-max OLB.
	if lmc.TotalEnergy >= olb.TotalEnergy {
		t.Errorf("LMC energy %v not below OLB %v", lmc.TotalEnergy, olb.TotalEnergy)
	}
}

func TestLMCDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tasks := onlineTrace(rng, 100, 10, 20)
	run := func() *sim.Result {
		res, err := sim.Run(sim.Config{Platform: plat(3), Policy: mustLMC(t)}, tasks, onlineParams)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalCost != b.TotalCost || a.Makespan != b.Makespan {
		t.Error("nondeterministic LMC run")
	}
}

func TestLMCHeterogeneousCores(t *testing.T) {
	p := &platform.Platform{Cores: []*model.RateTable{platform.TableII(), platform.ExynosT4412()}}
	tasks := make(model.TaskSet, 10)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 1 + float64(i), Arrival: float64(i) * 0.01, Deadline: model.NoDeadline}
	}
	res, err := sim.Run(sim.Config{Platform: p, Policy: mustLMC(t)}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range res.Tasks {
		if !ts.Done {
			t.Errorf("task %d unfinished", ts.Task.ID)
		}
	}
}
