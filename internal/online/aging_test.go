package online

import (
	"math/rand"
	"testing"

	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

func TestAgingBoundsStarvation(t *testing.T) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 500, 250, 200
	judge.SubmitMedianMin, judge.SubmitMedianMax = 10, 60
	tasks, err := judge.Generate(rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(aging float64) (maxWait, totalCost float64) {
		l, err := NewLMC(onlineParams)
		if err != nil {
			t.Fatal(err)
		}
		l.AgingThreshold = aging
		res, err := sim.Run(sim.Config{Platform: plat(4), Policy: l}, tasks, onlineParams)
		if err != nil {
			t.Fatal(err)
		}
		for _, ts := range res.Tasks {
			if ts.Task.Interactive {
				continue
			}
			if w := ts.Turnaround(); w > maxWait {
				maxWait = w
			}
		}
		return maxWait, res.TotalCost
	}
	plainMax, plainCost := run(0)
	agedMax, agedCost := run(60)
	if agedMax >= plainMax {
		t.Errorf("aging did not reduce the worst wait: %v vs %v", agedMax, plainMax)
	}
	// Bounding starvation costs something, but not catastrophically.
	if agedCost > plainCost*1.5 {
		t.Errorf("aging cost blew up: %v vs %v", agedCost, plainCost)
	}
}
