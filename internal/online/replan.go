package online

import (
	"math"
	"sort"

	"dvfsched/internal/batch"
	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/sim"
)

// Replan is the strawman Section IV argues against: on every
// non-interactive arrival it redistributes ALL waiting tasks across
// cores with Workload Based Greedy (Theorem 5 says the rearrangement
// is cost-optimal), migrating queued tasks between cores as needed.
// Each migration charges MigrationCycles of extra work, modeling the
// cache/queue movement overhead that motivates the migration-free
// Least Marginal Cost heuristic.
type Replan struct {
	// Params are the cost constants.
	Params model.CostParams
	// MigrationCycles is the Gcycle penalty a task pays whenever a
	// replan moves it to a different core.
	MigrationCycles float64

	envs    []*envelope.Envelope
	specs   []batch.CoreSpec
	queues  [][]*sim.TaskState // waiting non-interactive, execution order
	paused  [][]*sim.TaskState
	inter   [][]*sim.TaskState
	homeOf  map[*sim.TaskState]int
	replans int
}

// Name implements sim.Policy.
func (r *Replan) Name() string { return "wbg-replan" }

// Replans reports how many full redistributions ran.
func (r *Replan) Replans() int { return r.replans }

// Init implements sim.Policy.
func (r *Replan) Init(e *sim.Engine) {
	n := e.NumCores()
	r.envs = make([]*envelope.Envelope, n)
	r.specs = make([]batch.CoreSpec, n)
	r.queues = make([][]*sim.TaskState, n)
	r.paused = make([][]*sim.TaskState, n)
	r.inter = make([][]*sim.TaskState, n)
	r.homeOf = make(map[*sim.TaskState]int)
	cache := map[*model.RateTable]*envelope.Envelope{}
	for i := 0; i < n; i++ {
		rt := e.RateTable(i)
		env, ok := cache[rt]
		if !ok {
			env = envelope.MustCompute(r.Params, rt)
			cache[rt] = env
		}
		r.envs[i] = env
		r.specs[i] = batch.CoreSpec{Rates: rt}
	}
}

// OnArrival implements sim.Policy.
func (r *Replan) OnArrival(e *sim.Engine, t *sim.TaskState) {
	if t.Task.Interactive {
		r.placeInteractive(e, t)
		return
	}
	// Gather every waiting non-interactive task plus the newcomer and
	// redistribute with WBG.
	pool := []*sim.TaskState{t}
	for _, q := range r.queues {
		pool = append(pool, q...)
	}
	r.replans++
	byID := make(map[int]*sim.TaskState, len(pool))
	tasks := make(model.TaskSet, len(pool))
	for i, ts := range pool {
		byID[ts.Task.ID] = ts
		tasks[i] = model.Task{ID: ts.Task.ID, Cycles: ts.Remaining, Deadline: model.NoDeadline}
	}
	plan, err := batch.WBG(r.Params, r.specs, tasks)
	if err != nil {
		panic(err)
	}
	for j := range r.queues {
		r.queues[j] = r.queues[j][:0]
	}
	for _, cp := range plan.Cores {
		for _, a := range cp.Sequence {
			ts := byID[a.Task.ID]
			if home, ok := r.homeOf[ts]; ok && home != cp.Core {
				ts.Remaining += r.MigrationCycles // pay to move
			}
			r.homeOf[ts] = cp.Core
			r.queues[cp.Core] = append(r.queues[cp.Core], ts)
		}
	}
	// Queues may have reshuffled; keep each in execution order
	// (WBG already emits shortest-first) and refresh running rates.
	for j := 0; j < e.NumCores(); j++ {
		if e.Idle(j) {
			r.dispatch(e, j)
		} else {
			r.adjustRunning(e, j)
		}
	}
}

func (r *Replan) placeInteractive(e *sim.Engine, t *sim.TaskState) {
	best, bestCost := -1, math.Inf(1)
	for j := 0; j < e.NumCores(); j++ {
		run := e.Running(j)
		if run != nil && run.Task.Interactive {
			continue
		}
		pm := e.RateTable(j).Max()
		nj := float64(len(r.queues[j]) + len(r.paused[j]))
		c := r.Params.Re*t.Task.Cycles*pm.Energy + r.Params.Rt*t.Task.Cycles*pm.Time*(1+nj)
		if c < bestCost {
			best, bestCost = j, c
		}
	}
	if best < 0 {
		best = 0
		for j := 1; j < e.NumCores(); j++ {
			if len(r.inter[j]) < len(r.inter[best]) {
				best = j
			}
		}
		r.inter[best] = append(r.inter[best], t)
		return
	}
	if !e.Idle(best) {
		prev, err := e.Preempt(best)
		if err != nil {
			panic(err)
		}
		r.paused[best] = append(r.paused[best], prev)
	}
	if err := e.Start(best, t, e.RateTable(best).Max()); err != nil {
		panic(err)
	}
}

func (r *Replan) adjustRunning(e *sim.Engine, j int) {
	run := e.Running(j)
	if run == nil || run.Task.Interactive {
		return
	}
	level := r.envs[j].LevelFor(1 + len(r.queues[j]) + len(r.paused[j]))
	if !model.ApproxEq(e.CurrentLevel(j).Rate, level.Rate, model.DefaultEps) {
		if err := e.SetLevel(j, level); err != nil {
			panic(err)
		}
	}
}

func (r *Replan) dispatch(e *sim.Engine, j int) {
	if !e.Idle(j) {
		return
	}
	switch {
	case len(r.inter[j]) > 0:
		t := r.inter[j][0]
		r.inter[j] = r.inter[j][1:]
		if err := e.Start(j, t, e.RateTable(j).Max()); err != nil {
			panic(err)
		}
	case len(r.paused[j]) > 0:
		t := r.paused[j][len(r.paused[j])-1]
		r.paused[j] = r.paused[j][:len(r.paused[j])-1]
		level := r.envs[j].LevelFor(1 + len(r.queues[j]) + len(r.paused[j]))
		if err := e.Start(j, t, level); err != nil {
			panic(err)
		}
	case len(r.queues[j]) > 0:
		// Shortest (front) first; re-sort defensively in case
		// remaining-cycle updates changed relative order.
		sort.SliceStable(r.queues[j], func(a, b int) bool {
			return r.queues[j][a].Remaining < r.queues[j][b].Remaining
		})
		t := r.queues[j][0]
		r.queues[j] = r.queues[j][1:]
		delete(r.homeOf, t)
		level := r.envs[j].LevelFor(1 + len(r.queues[j]) + len(r.paused[j]))
		if err := e.Start(j, t, level); err != nil {
			panic(err)
		}
	}
}

// OnCompletion implements sim.Policy.
func (r *Replan) OnCompletion(e *sim.Engine, coreID int, _ *sim.TaskState) {
	r.dispatch(e, coreID)
}

// OnTick implements sim.Policy.
func (r *Replan) OnTick(*sim.Engine) {}
