package online

import (
	"testing"
	"time"

	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/sim"
)

func TestLMCMetrics(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Cycles: 500, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 400, Arrival: 0.5, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 2, Arrival: 3, Interactive: true, Deadline: model.NoDeadline},
	}
	l := mustLMC(t)
	l.Metrics = obs.NewRegistry()
	l.Clock = time.Now
	res, err := sim.Run(sim.Config{Platform: plat(2), Policy: l}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	s := l.Metrics.Snapshot()
	// Two non-interactive arrivals on 2 cores evaluate Eq. 26 twice
	// each; the interactive arrival evaluates Eq. 27 on eligible cores.
	if got := s.Counters["lmc.marginal_evals"]; got < 4 {
		t.Errorf("marginal_evals = %v, want >= 4", got)
	}
	if got := s.Counters["lmc.preempts_issued"]; got != float64(res.Preemptions) {
		t.Errorf("preempts_issued = %v, result says %d", got, res.Preemptions)
	}
	if got := s.Counters["dynsched.inserts"]; got != 2 {
		t.Errorf("dynsched.inserts = %v, want 2", got)
	}
	if got := s.Counters["dynsched.deletes"]; got != 2 {
		t.Errorf("dynsched.deletes = %v, want 2", got)
	}
	h, ok := s.Histograms["rangetree.update_ns"]
	if !ok || h.Count != 4 {
		t.Errorf("rangetree.update_ns count = %+v, want 4 observations", h)
	}
	// Both queues drained by the end of the run.
	for _, name := range []string{"lmc.core0.queue_depth", "lmc.core1.queue_depth"} {
		if g, ok := s.Gauges[name]; ok && g != 0 {
			t.Errorf("%s = %v at end of run", name, g)
		}
	}
}

func TestLMCWithoutMetrics(t *testing.T) {
	// The nil-registry path must stay allocation-light and safe.
	tasks := model.TaskSet{
		{ID: 1, Cycles: 10, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 5, Arrival: 0.1, Interactive: true, Deadline: model.NoDeadline},
	}
	if _, err := sim.Run(sim.Config{Platform: plat(1), Policy: mustLMC(t)}, tasks, onlineParams); err != nil {
		t.Fatal(err)
	}
}
