package online

import (
	"encoding/json"
	"fmt"
	"math"

	"dvfsched/internal/dynsched"
	"dvfsched/internal/sim"
)

// LMC implements sim.CheckpointablePolicy so online sessions can be
// snapshotted and recovered (snapshot + trace-suffix replay instead of
// replay from t=0). The policy's state is each core's dynamic cost
// structure plus its waiting sets; everything else on LMC — envelopes,
// metrics handles, probe scratch — is wiring that Init rebuilds.
//
// The blob is JSON: unlike the engine checkpoint, LMC state contains
// no non-finite floats (lengths and cost aggregates are finite by
// construction), JSON's shortest-round-trip float encoding restores
// the exact bits, and Go decodes the uint64 treap priorities from the
// integer literal, not through a float64.

// lmcCheckpointVersion is bumped whenever the blob layout changes.
const lmcCheckpointVersion = 1

// lmcQueueState is one waiting non-interactive submission: the task
// (as a session task-table index), its rank in the core's dynamic
// structure, and the length estimate it was placed with.
type lmcQueueState struct {
	Task int     `json:"task"`
	Rank int     `json:"rank"`
	Est  float64 `json:"est"`
}

// lmcCoreState is one core's policy state.
type lmcCoreState struct {
	Sched dynsched.Checkpoint `json:"sched"`
	Queue []lmcQueueState     `json:"queue,omitempty"`
	// Paused holds preempted tasks in stack order (resumed LIFO).
	Paused []int `json:"paused,omitempty"`
	// Interactive holds interactive tasks waiting for a core, FIFO.
	Interactive []int `json:"interactive,omitempty"`
}

// lmcCheckpoint is the serialized policy state.
type lmcCheckpoint struct {
	Version int            `json:"version"`
	CompSum float64        `json:"compSum"`
	CompN   int            `json:"compN"`
	Cores   []lmcCoreState `json:"cores"`
}

// SnapshotPolicy implements sim.CheckpointablePolicy.
func (l *LMC) SnapshotPolicy(taskIndex func(*sim.TaskState) int) ([]byte, error) {
	cp := lmcCheckpoint{
		Version: lmcCheckpointVersion,
		CompSum: l.compSum,
		CompN:   l.compN,
		Cores:   make([]lmcCoreState, len(l.cores)),
	}
	for j, c := range l.cores {
		cs := lmcCoreState{Sched: c.sched.Checkpoint()}
		for _, entry := range c.queue {
			cs.Queue = append(cs.Queue, lmcQueueState{
				Task: taskIndex(entry.ts),
				Rank: c.sched.Rank(entry.h),
				Est:  entry.est,
			})
		}
		for _, ts := range c.paused {
			cs.Paused = append(cs.Paused, taskIndex(ts))
		}
		for _, ts := range c.interactive {
			cs.Interactive = append(cs.Interactive, taskIndex(ts))
		}
		cp.Cores[j] = cs
	}
	return json.Marshal(cp)
}

// RestorePolicy implements sim.CheckpointablePolicy. It runs on a
// fresh policy whose Init has already built empty per-core state; the
// dynamic structures are rebuilt exactly (bit-identical aggregates and
// generator state, see dynsched.RestoreFromEnvelope) and the queue
// handles re-derived by rank.
func (l *LMC) RestorePolicy(data []byte, taskAt func(int) *sim.TaskState) error {
	var cp lmcCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("online: lmc checkpoint: %w", err)
	}
	if cp.Version != lmcCheckpointVersion {
		return fmt.Errorf("online: lmc checkpoint version %d (decoder knows %d)", cp.Version, lmcCheckpointVersion)
	}
	if len(cp.Cores) != len(l.cores) {
		return fmt.Errorf("online: lmc checkpoint has %d cores, policy has %d", len(cp.Cores), len(l.cores))
	}
	l.compSum = cp.CompSum
	l.compN = cp.CompN
	for j := range cp.Cores {
		cs := &cp.Cores[j]
		c := l.cores[j]
		sched, err := dynsched.RestoreFromEnvelope(c.env, cs.Sched)
		if err != nil {
			return fmt.Errorf("online: core %d: %w", j, err)
		}
		if sched.Len() != len(cs.Queue) {
			return fmt.Errorf("online: core %d: structure holds %d tasks, queue lists %d", j, sched.Len(), len(cs.Queue))
		}
		if l.Metrics != nil {
			sched.Instrument(l.Metrics)
			sched.SetClock(l.Clock)
		}
		c.sched = sched
		c.queue = make([]queueEntry, 0, len(cs.Queue))
		for _, qs := range cs.Queue {
			h, err := sched.HandleAtRank(qs.Rank)
			if err != nil {
				return fmt.Errorf("online: core %d: %w", j, err)
			}
			// The estimate placed the entry in the structure; a mismatch
			// means ranks and queue drifted apart.
			if math.Float64bits(h.Cycles()) != math.Float64bits(qs.Est) {
				return fmt.Errorf("online: core %d: rank %d holds %v cycles, queue entry says %v", j, qs.Rank, h.Cycles(), qs.Est)
			}
			c.queue = append(c.queue, queueEntry{ts: taskAt(qs.Task), h: h, est: qs.Est})
		}
		c.paused = c.paused[:0]
		for _, i := range cs.Paused {
			c.paused = append(c.paused, taskAt(i))
		}
		c.interactive = c.interactive[:0]
		for _, i := range cs.Interactive {
			c.interactive = append(c.interactive, taskAt(i))
		}
		l.noteQueueDepth(j)
	}
	return nil
}
