package online

import (
	"math/rand"
	"testing"

	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

func TestEstimatedLMCName(t *testing.T) {
	l, err := NewLMCEstimated(onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "lmc-estimated" {
		t.Errorf("name = %q", l.Name())
	}
	base, _ := NewLMC(onlineParams)
	if base.Name() != "lmc" {
		t.Errorf("base name = %q", base.Name())
	}
}

func TestEstimatedLMCCompletesTrace(t *testing.T) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 600, 120, 150
	tasks, err := judge.Generate(rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLMCEstimated(onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Platform: plat(4), Policy: l}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range res.Tasks {
		if !ts.Done {
			t.Errorf("task %d unfinished", ts.Task.ID)
		}
	}
}

func TestEstimatedLMCDegradesGracefully(t *testing.T) {
	// The estimated variant cannot order submissions shortest-first
	// (all estimates converge to the mean), so it should cost at
	// least as much as the oracle version — but still complete and
	// stay within a sane factor.
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 1000, 200, 250
	tasks, err := judge.Generate(rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(p sim.Policy) float64 {
		res, err := sim.Run(sim.Config{Platform: plat(4), Policy: p}, tasks, onlineParams)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCost
	}
	oracle, _ := NewLMC(onlineParams)
	estimated, _ := NewLMCEstimated(onlineParams)
	oc := run(oracle)
	ec := run(estimated)
	if ec < oc*0.99 {
		t.Errorf("estimated LMC (%v) beat the oracle (%v) by more than noise", ec, oc)
	}
	if ec > oc*3 {
		t.Errorf("estimated LMC degraded too much: %v vs %v", ec, oc)
	}
}

func TestEstimateForFallsBackWithoutHistory(t *testing.T) {
	l, _ := NewLMCEstimated(onlineParams)
	ts := &sim.TaskState{}
	ts.Task.Cycles = 7
	if got := l.estimateFor(ts); got != 7 {
		t.Errorf("no-history estimate = %v, want the true value", got)
	}
	l.compSum, l.compN = 20, 4
	if got := l.estimateFor(ts); got != 5 {
		t.Errorf("estimate = %v, want mean 5", got)
	}
	// Oracle mode ignores history.
	base, _ := NewLMC(onlineParams)
	base.compSum, base.compN = 20, 4
	if got := base.estimateFor(ts); got != 7 {
		t.Errorf("oracle estimate = %v, want 7", got)
	}
}
