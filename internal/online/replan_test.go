package online

import (
	"math/rand"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

func TestReplanCompletesMixedTrace(t *testing.T) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 400, 60, 120
	tasks, err := judge.Generate(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	p := &Replan{Params: onlineParams}
	res, err := sim.Run(sim.Config{Platform: plat(4), Policy: p}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range res.Tasks {
		if !ts.Done {
			t.Errorf("task %d unfinished", ts.Task.ID)
		}
	}
	if p.Replans() != 60 {
		t.Errorf("replans = %d, want one per submission", p.Replans())
	}
}

func TestReplanMigrationPenaltyHurts(t *testing.T) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 200, 120, 120
	tasks, err := judge.Generate(rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(penalty float64) float64 {
		res, err := sim.Run(sim.Config{
			Platform: plat(4),
			Policy:   &Replan{Params: onlineParams, MigrationCycles: penalty},
		}, tasks, onlineParams)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCost
	}
	free := run(0)
	costly := run(2.0)
	if costly <= free {
		t.Errorf("migration penalty did not raise cost: %v <= %v", costly, free)
	}
}

func TestReplanFreeBeatsOrMatchesLMC(t *testing.T) {
	// With zero migration overhead, redistributing everything with
	// WBG on each arrival is at least as good as migration-free LMC
	// (Theorem 5) — that is the paper's argument for why LMC is a
	// heuristic trade-off, not an optimum.
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 500, 150, 150
	tasks, err := judge.Generate(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	lmc, err := NewLMC(onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	lmcRes, err := sim.Run(sim.Config{Platform: plat(4), Policy: lmc}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	repRes, err := sim.Run(sim.Config{
		Platform: plat(4),
		Policy:   &Replan{Params: onlineParams},
	}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	// Allow a small slack: the online setting violates the batch
	// theorems' assumptions (running tasks cannot move), so strict
	// dominance is not guaranteed on every trace.
	if repRes.TotalCost > lmcRes.TotalCost*1.05 {
		t.Errorf("free replanning much worse than LMC: %v vs %v", repRes.TotalCost, lmcRes.TotalCost)
	}
}

func TestReplanHandlesInteractiveOnly(t *testing.T) {
	tasks := make(model.TaskSet, 30)
	for i := range tasks {
		tasks[i] = model.Task{ID: i, Cycles: 0.01, Arrival: float64(i) * 0.001, Interactive: true, Deadline: model.NoDeadline}
	}
	res, err := sim.Run(sim.Config{Platform: plat(2), Policy: &Replan{Params: onlineParams}}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("no progress")
	}
}
