package online_test

import (
	"math/rand"
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
	"dvfsched/internal/workload"
)

// BenchmarkLMCJudgeTrace measures a full online run of the Least
// Marginal Cost policy over a scaled-down judge trace on four cores —
// the session plane's hot loop end to end.
func BenchmarkLMCJudgeTrace(b *testing.B) {
	judge := workload.DefaultJudgeConfig()
	judge.Interactive, judge.NonInteractive, judge.Duration = 600, 90, 150
	tasks, err := judge.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lmc, err := online.NewLMC(params)
		if err != nil {
			b.Fatal(err)
		}
		plat := platform.Homogeneous(4, platform.TableII(), platform.Ideal{})
		if _, err := sim.Run(sim.Config{Platform: plat, Policy: lmc}, tasks, params); err != nil {
			b.Fatal(err)
		}
	}
}
