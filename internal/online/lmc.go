// Package online implements the paper's Least Marginal Cost (LMC)
// heuristic for online-mode scheduling (Section IV): each arriving
// task is assigned to the core where it increases the total cost the
// least, without migrating already-queued tasks.
//
//   - An interactive task must finish as soon as possible: it runs at
//     the core's maximum frequency, preempting a non-interactive task
//     if no core is free. Its marginal cost on core j is Eq. 27:
//     C_j^M = Re·L·E_j(pm) + Rt·L·T_j(pm) + Rt·L·T_j(pm)·N_j,
//     where N_j counts the tasks waiting on core j.
//   - A non-interactive task is inserted into the core's queue at the
//     position that keeps the queue in non-decreasing cycle order
//     (Theorem 3); the marginal cost is computed exactly by the
//     dynamic structure of Section IV-A (package dynsched), and every
//     queued task's frequency follows its position's dominating rate.
package online

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dvfsched/internal/dynsched"
	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/obs"
	"dvfsched/internal/sim"
)

// queueEntry pairs a waiting non-interactive task with its handle in
// the dynamic cost structure and the length estimate used to place it.
type queueEntry struct {
	ts  *sim.TaskState
	h   *dynsched.Handle
	est float64
}

// lmcCore is the per-core state.
type lmcCore struct {
	env   *envelope.Envelope
	sched *dynsched.Scheduler
	// queue holds waiting non-interactive tasks in non-decreasing
	// cycle order (execution order).
	queue []queueEntry
	// paused holds preempted tasks; they resume (LIFO) before any
	// queued task.
	paused []*sim.TaskState
	// interactive holds interactive tasks waiting because every core
	// was running interactive work.
	interactive []*sim.TaskState
}

// waiting returns N_j, the number of tasks waiting behind the running
// one.
func (c *lmcCore) waiting() int { return len(c.queue) + len(c.paused) }

// LMC is the Least Marginal Cost policy. Construct with NewLMC or
// NewLMCEstimated.
type LMC struct {
	params   model.CostParams
	cores    []*lmcCore
	estimate bool
	compSum  float64
	compN    int

	// AgingThreshold, when positive, bounds starvation: a queued
	// submission that has waited longer than this many seconds is
	// dispatched ahead of shorter work. Zero (the default, and the
	// paper's behavior) never reorders — under sustained load the
	// longest submissions can wait indefinitely behind shorter ones.
	AgingThreshold float64

	// Metrics, if set before the run, collects scheduler-side
	// observability: "lmc.marginal_evals" counts Eq. 26/27 marginal-
	// cost evaluations, "lmc.preempts_issued" counts interactive
	// preemptions, per-core "lmc.core<j>.queue_depth" gauges track
	// waiting work, and the shared dynsched/rangetree metrics record
	// dynamic-structure updates and their latencies.
	Metrics *obs.Registry

	// Clock, if set alongside Metrics, supplies the wall clock that
	// times dynsched updates into "rangetree.update_ns". The policy
	// never reads real time itself — callers that want latency
	// observations pass time.Now (internal/core does); a nil Clock
	// keeps the run fully deterministic and skips the histogram.
	Clock func() time.Time

	// Cache, if set before the run, resolves per-core envelopes through
	// the memoized cache instead of recomputing them in Init.
	Cache *envelope.Cache

	// Pool, if set before the run, evaluates candidate-core probes in
	// parallel whenever the platform has at least minParallelCores
	// cores. The pool is owned by the caller (internal/core closes the
	// pools it opens); placements are identical with or without it.
	Pool *ProbePool

	marginalEvals *obs.Counter
	preemptsCtr   *obs.Counter
	queueDepth    []*obs.Gauge

	// Per-arrival probe scratch, sized to the core count in Init and
	// reused for every placement so the arrival path stays
	// allocation-free. probeInt/probeNonInt are prebuilt closures (one
	// allocation each, in Init) reading their per-arrival inputs from
	// probeCycles/probeEst; when the pool is active, entry j is written
	// only by the worker owning stripe j.
	probeCosts  []float64
	probeErrs   []error
	probeEng    *sim.Engine
	probeCycles float64
	probeEst    float64
	probeInt    func(j int)
	probeNonInt func(j int)
}

// NewLMC returns an LMC policy for the given cost constants. Task
// lengths are taken from the trace (the paper's trace-based
// simulation setting).
func NewLMC(params model.CostParams) (*LMC, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &LMC{params: params}, nil
}

// NewLMCEstimated returns an LMC variant that, as the paper suggests
// for deployment, predicts each arriving submission's length as the
// average of previously completed submissions instead of reading it
// from the trace. Execution still consumes the true cycles; only the
// placement and rate decisions use the estimate.
func NewLMCEstimated(params model.CostParams) (*LMC, error) {
	l, err := NewLMC(params)
	if err != nil {
		return nil, err
	}
	l.estimate = true
	return l, nil
}

// Name implements sim.Policy.
func (l *LMC) Name() string {
	if l.estimate {
		return "lmc-estimated"
	}
	return "lmc"
}

// estimateFor returns the length used for placement decisions: the
// true cycles, or in estimated mode the running mean of completed
// submissions (falling back to the true value while no history
// exists).
func (l *LMC) estimateFor(t *sim.TaskState) float64 {
	if !l.estimate || l.compN == 0 {
		return t.Task.Cycles
	}
	return l.compSum / float64(l.compN)
}

// Init implements sim.Policy.
func (l *LMC) Init(e *sim.Engine) {
	l.cores = make([]*lmcCore, e.NumCores())
	envs := map[*model.RateTable]*envelope.Envelope{}
	for i := 0; i < e.NumCores(); i++ {
		rt := e.RateTable(i)
		env, ok := envs[rt]
		if !ok {
			if l.Cache != nil {
				cached, err := l.Cache.Get(l.params, rt)
				if err != nil {
					panic(err)
				}
				env = cached
			} else {
				env = envelope.MustCompute(l.params, rt)
			}
			envs[rt] = env
		}
		l.cores[i] = &lmcCore{env: env, sched: dynsched.NewFromEnvelope(env)}
	}
	l.probeEng = e
	l.probeCosts = make([]float64, e.NumCores())
	l.probeErrs = make([]error, e.NumCores())
	l.probeInt = func(j int) {
		r := l.probeEng.Running(j)
		if r != nil && r.Task.Interactive {
			l.probeCosts[j] = math.Inf(1)
			return
		}
		if l.marginalEvals != nil {
			l.marginalEvals.Inc()
		}
		l.probeCosts[j] = l.interactiveMarginalCost(l.probeEng, j, l.probeCycles)
	}
	l.probeNonInt = func(j int) {
		if l.marginalEvals != nil {
			l.marginalEvals.Inc()
		}
		l.probeCosts[j], l.probeErrs[j] = l.cores[j].sched.MarginalInsertCost(l.probeEst)
	}
	l.marginalEvals, l.preemptsCtr, l.queueDepth = nil, nil, nil
	if l.Metrics != nil {
		l.marginalEvals = l.Metrics.Counter("lmc.marginal_evals")
		l.preemptsCtr = l.Metrics.Counter("lmc.preempts_issued")
		l.queueDepth = make([]*obs.Gauge, e.NumCores())
		for i := range l.cores {
			l.cores[i].sched.Instrument(l.Metrics)
			l.cores[i].sched.SetClock(l.Clock)
			l.queueDepth[i] = l.Metrics.Gauge(fmt.Sprintf("lmc.core%d.queue_depth", i))
		}
	}
}

// noteQueueDepth refreshes core j's waiting-work gauge.
func (l *LMC) noteQueueDepth(j int) {
	if l.queueDepth != nil {
		l.queueDepth[j].Set(float64(l.cores[j].waiting() + len(l.cores[j].interactive)))
	}
}

// interactiveMarginalCost evaluates Eq. 27 for core j.
func (l *LMC) interactiveMarginalCost(e *sim.Engine, j int, cycles float64) float64 {
	pm := e.RateTable(j).Max()
	nj := float64(l.cores[j].waiting())
	return l.params.Re*cycles*pm.Energy + l.params.Rt*cycles*pm.Time + l.params.Rt*cycles*pm.Time*nj
}

// OnArrival implements sim.Policy.
func (l *LMC) OnArrival(e *sim.Engine, t *sim.TaskState) {
	if t.Task.Interactive {
		l.placeInteractive(e, t)
		return
	}
	l.placeNonInteractive(e, t)
}

// evalProbes fills l.probeCosts[0..n) through fn — on the pool when
// one is attached and the platform is wide enough to amortize the
// handoffs, inline otherwise. Both paths write the same values.
func (l *LMC) evalProbes(n int, fn func(j int)) {
	if l.Pool != nil && n >= minParallelCores {
		l.Pool.Eval(n, fn)
		return
	}
	for j := 0; j < n; j++ {
		fn(j)
	}
}

func (l *LMC) placeInteractive(e *sim.Engine, t *sim.TaskState) {
	// Eligible cores are idle or running preemptible (non-interactive)
	// work; among them pick the least marginal cost (Eq. 27).
	// Ineligible cores probe to +Inf, which never wins the argmin.
	l.probeCycles = t.Task.Cycles
	l.evalProbes(e.NumCores(), l.probeInt)
	best, bestCost := -1, math.Inf(1)
	for j := 0; j < e.NumCores(); j++ {
		if l.probeCosts[j] < bestCost {
			best, bestCost = j, l.probeCosts[j]
		}
	}
	if best < 0 {
		// Every core runs interactive work: wait on the core with
		// the shortest interactive backlog.
		best = 0
		for j := 1; j < e.NumCores(); j++ {
			if len(l.cores[j].interactive) < len(l.cores[best].interactive) {
				best = j
			}
		}
		l.cores[best].interactive = append(l.cores[best].interactive, t)
		l.noteQueueDepth(best)
		return
	}
	c := l.cores[best]
	if !e.Idle(best) {
		prev, err := e.Preempt(best)
		if err != nil {
			panic(err)
		}
		c.paused = append(c.paused, prev)
		if l.preemptsCtr != nil {
			l.preemptsCtr.Inc()
		}
		l.noteQueueDepth(best)
	}
	if err := e.Start(best, t, e.RateTable(best).Max()); err != nil {
		panic(err)
	}
}

func (l *LMC) placeNonInteractive(e *sim.Engine, t *sim.TaskState) {
	est := l.estimateFor(t)
	l.probeEst = est
	l.evalProbes(e.NumCores(), l.probeNonInt)
	best, bestCost := -1, math.Inf(1)
	for j := 0; j < e.NumCores(); j++ {
		if l.probeErrs[j] != nil {
			panic(l.probeErrs[j])
		}
		if l.probeCosts[j] < bestCost {
			best, bestCost = j, l.probeCosts[j]
		}
	}
	c := l.cores[best]
	h, err := c.sched.Insert(est)
	if err != nil {
		panic(err)
	}
	// Keep the dispatch queue in non-decreasing (estimated) cycle
	// order; binary search for the insertion point (ties keep arrival
	// order).
	pos := sort.Search(len(c.queue), func(i int) bool {
		return c.queue[i].est > est
	})
	c.queue = append(c.queue, queueEntry{})
	copy(c.queue[pos+1:], c.queue[pos:])
	c.queue[pos] = queueEntry{ts: t, h: h, est: est}
	l.noteQueueDepth(best)

	if e.Idle(best) {
		l.dispatch(e, best)
	} else {
		l.adjustRunning(e, best)
	}
}

// adjustRunning re-derives the running non-interactive task's
// frequency from its backward position 1 + N_j, per C(k, p_k).
func (l *LMC) adjustRunning(e *sim.Engine, j int) {
	r := e.Running(j)
	if r == nil || r.Task.Interactive {
		return
	}
	c := l.cores[j]
	level := c.env.LevelFor(1 + c.waiting())
	if !model.ApproxEq(e.CurrentLevel(j).Rate, level.Rate, model.DefaultEps) {
		if err := e.SetLevel(j, level); err != nil {
			panic(err)
		}
	}
}

// dispatch starts the highest-priority waiting work on an idle core:
// waiting interactive tasks, then preempted tasks, then the shortest
// queued non-interactive task at its position's dominating rate.
func (l *LMC) dispatch(e *sim.Engine, j int) {
	if !e.Idle(j) {
		return
	}
	c := l.cores[j]
	switch {
	case len(c.interactive) > 0:
		t := c.interactive[0]
		c.interactive = c.interactive[1:]
		if err := e.Start(j, t, e.RateTable(j).Max()); err != nil {
			panic(err)
		}
	case len(c.paused) > 0:
		t := c.paused[len(c.paused)-1]
		c.paused = c.paused[:len(c.paused)-1] // it leaves the waiting set
		level := c.env.LevelFor(1 + c.waiting())
		if err := e.Start(j, t, level); err != nil {
			panic(err)
		}
	case len(c.queue) > 0:
		idx := 0
		if l.AgingThreshold > 0 {
			// Promote the longest-waiting overdue submission, if any.
			overdue, oldest := -1, math.Inf(1)
			for i, entry := range c.queue {
				wait := e.Clock() - entry.ts.Task.Arrival
				if wait > l.AgingThreshold && entry.ts.Task.Arrival < oldest {
					overdue, oldest = i, entry.ts.Task.Arrival
				}
			}
			if overdue >= 0 {
				idx = overdue
			}
		}
		entry := c.queue[idx]
		c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
		// Backward position counts itself plus everything still
		// waiting behind it.
		level := c.env.LevelFor(1 + c.waiting())
		if err := c.sched.Delete(entry.h); err != nil {
			panic(err)
		}
		if err := e.Start(j, entry.ts, level); err != nil {
			panic(err)
		}
	}
	l.noteQueueDepth(j)
}

// OnCompletion implements sim.Policy.
func (l *LMC) OnCompletion(e *sim.Engine, coreID int, done *sim.TaskState) {
	if !done.Task.Interactive {
		l.compSum += done.Task.Cycles
		l.compN++
	}
	l.dispatch(e, coreID)
}

// OnTick implements sim.Policy.
func (l *LMC) OnTick(*sim.Engine) {}

// QueuedCost returns the maintained queue cost of core j, for tests.
func (l *LMC) QueuedCost(j int) float64 {
	if j < 0 || j >= len(l.cores) {
		panic(fmt.Sprintf("online: core %d out of range", j))
	}
	return l.cores[j].sched.Cost()
}
