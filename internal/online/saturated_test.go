package online

import (
	"testing"

	"dvfsched/internal/model"
	"dvfsched/internal/sim"
)

// TestInteractiveSaturation: when every core is already running
// interactive work, further interactive arrivals must queue (no
// same-priority preemption) and drain in order afterwards.
func TestInteractiveSaturation(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Cycles: 3, Interactive: true, Deadline: model.NoDeadline},
		{ID: 2, Cycles: 3, Arrival: 0.01, Interactive: true, Deadline: model.NoDeadline},
		{ID: 3, Cycles: 3, Arrival: 0.02, Interactive: true, Deadline: model.NoDeadline},
		{ID: 4, Cycles: 3, Arrival: 0.03, Interactive: true, Deadline: model.NoDeadline},
	}
	l := mustLMC(t)
	res, err := sim.Run(sim.Config{Platform: plat(2), Policy: l}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 0 {
		t.Errorf("interactive preempted interactive: %d", res.Preemptions)
	}
	for _, ts := range res.Tasks {
		if !ts.Done {
			t.Errorf("task %d unfinished", ts.Task.ID)
		}
	}
	// Later arrivals complete later (FIFO within the waiting list).
	if !(res.Tasks[0].Completion < res.Tasks[2].Completion && res.Tasks[1].Completion < res.Tasks[3].Completion) {
		t.Error("interactive backlog not drained in order")
	}
}

// TestInteractiveThenBatchDrain: after an interactive burst on a busy
// core, the paused batch task resumes before queued batch work.
func TestInteractiveThenBatchDrain(t *testing.T) {
	tasks := model.TaskSet{
		{ID: 1, Cycles: 100, Deadline: model.NoDeadline},               // running
		{ID: 2, Cycles: 10, Arrival: 0.01, Deadline: model.NoDeadline}, // queued
		{ID: 3, Cycles: 1, Arrival: 1, Interactive: true, Deadline: model.NoDeadline},
	}
	l := mustLMC(t)
	res, err := sim.Run(sim.Config{Platform: plat(1), Policy: l}, tasks, onlineParams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 1 {
		t.Fatalf("preemptions = %d", res.Preemptions)
	}
	// Task 1 was preempted and resumed; both batch tasks finish,
	// and the shorter queued task 2 still finishes before the long
	// task 1 completes? No: resumed tasks take precedence, so task 1
	// continues first and, being the running task, completes after
	// having started first. The key property: the interactive task
	// finished immediately, and nothing deadlocked.
	if res.Tasks[2].Completion > 1.5 {
		t.Errorf("interactive served late: %v", res.Tasks[2].Completion)
	}
	if !res.Tasks[0].Done || !res.Tasks[1].Done {
		t.Error("batch tasks unfinished")
	}
}

// TestQueuedCostPanicsOutOfRange covers the accessor guard.
func TestQueuedCostPanicsOutOfRange(t *testing.T) {
	l := mustLMC(t)
	tasks := model.TaskSet{{ID: 1, Cycles: 1, Deadline: model.NoDeadline}}
	if _, err := sim.Run(sim.Config{Platform: plat(1), Policy: l}, tasks, onlineParams); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l.QueuedCost(99)
}
