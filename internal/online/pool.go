package online

// minParallelCores is the smallest core count for which fanning probe
// evaluation out to the pool beats running it inline: below it the
// channel handoffs cost more than the probes.
const minParallelCores = 4

// ProbePool is a bounded worker pool for evaluating per-core candidate
// probes (Eq. 27 preemption costs, Eq. 26 marginal insertion costs)
// concurrently. Core j is always evaluated by the same worker (stripe
// j mod width, with stripe 0 run by the calling goroutine), so each
// core's dynamic structure is only ever touched by one goroutine per
// evaluation, and the request/ack channel pair orders those touches
// against the owner goroutine's own mutations.
//
// A pool is owned by whoever constructs it and must be Closed to
// release its worker goroutines. Eval and Close must be called from a
// single goroutine.
type ProbePool struct {
	width  int
	reqs   []chan evalReq
	acks   chan struct{}
	closed bool
}

type evalReq struct {
	n  int
	fn func(j int)
}

// NewProbePool returns a pool of the given width (clamped to a minimum
// of 2: width 1 would be the sequential path). The pool starts width-1
// worker goroutines.
func NewProbePool(width int) *ProbePool {
	if width < 2 {
		width = 2
	}
	p := &ProbePool{
		width: width,
		reqs:  make([]chan evalReq, width),
		acks:  make(chan struct{}, width),
	}
	for w := 1; w < width; w++ {
		p.reqs[w] = make(chan evalReq, 1)
		go p.run(w)
	}
	return p
}

func (p *ProbePool) run(w int) {
	for req := range p.reqs[w] {
		for j := w; j < req.n; j += p.width {
			req.fn(j)
		}
		p.acks <- struct{}{}
	}
}

// Eval invokes fn(j) exactly once for every j in [0, n), striping the
// indices across the pool, and returns once every invocation has
// finished. fn must not call back into the pool.
func (p *ProbePool) Eval(n int, fn func(j int)) {
	active := 0
	for w := 1; w < p.width && w < n; w++ {
		p.reqs[w] <- evalReq{n: n, fn: fn}
		active++
	}
	for j := 0; j < n; j += p.width {
		fn(j)
	}
	for i := 0; i < active; i++ {
		<-p.acks
	}
}

// Width returns the pool's total evaluation width, including the
// calling goroutine's stripe.
func (p *ProbePool) Width() int { return p.width }

// Close releases the worker goroutines. Idempotent; Eval must not be
// called after Close.
func (p *ProbePool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for w := 1; w < p.width; w++ {
		close(p.reqs[w])
	}
}
