package online_test

import (
	"context"
	"testing"

	"dvfsched/internal/envelope"
	"dvfsched/internal/model"
	"dvfsched/internal/online"
	"dvfsched/internal/platform"
	"dvfsched/internal/sim"
)

// TestLMCSingleArrivalAllocs is the PR's allocation guard for the
// arrival hot path: with the envelope cache warm and the simulator's
// event heap, run segments and dynamic-structure freelists in steady
// state, placing one more non-interactive task — probe every core's
// marginal cost, insert, dispatch — must stay within a small constant
// allocation budget dominated by the injection bookkeeping (task
// clone, state slab, map entry), with nothing per-core or per-probe.
func TestLMCSingleArrivalAllocs(t *testing.T) {
	params := model.CostParams{Re: 0.1, Rt: 0.4}
	lmc, err := online.NewLMC(params)
	if err != nil {
		t.Fatal(err)
	}
	lmc.Cache = envelope.NewCache(8)
	plat := platform.Homogeneous(4, platform.TableII(), platform.Ideal{})
	sess, err := sim.OpenSession(sim.Config{Platform: plat, Policy: lmc}, params)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Steady state: enough arrivals to size the heap, queues and
	// freelists past their growth phase.
	clock := 0.0
	id := 0
	inject := func(cycles float64) {
		id++
		clock += 0.25
		task := model.TaskSet{{ID: id, Cycles: cycles, Arrival: clock, Deadline: model.NoDeadline}}
		if err := sess.Inject(task); err != nil {
			t.Fatal(err)
		}
		if err := sess.AdvanceTo(ctx, clock); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		inject(40)
	}

	allocs := testing.AllocsPerRun(200, func() { inject(40) })
	// The observed steady state is ~5 objects per arrival (task clone,
	// state slab, two queue/ID bookkeeping entries, timeline append);
	// the bound leaves no room for the ~1 probe + 2 insert allocations
	// per core the old path paid.
	const budget = 8
	if allocs > budget {
		t.Fatalf("single arrival allocated %.1f objects, budget %d", allocs, budget)
	}
}
