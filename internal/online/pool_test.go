package online

import (
	"sync/atomic"
	"testing"
)

// TestProbePoolCoversEveryIndex checks Eval's contract — fn(j) exactly
// once for every j in [0, n) — across pool widths and fan-out sizes,
// including n smaller than the width and n of zero. Run under -race
// (make check does) this is also the striping-safety proof: the slots
// are plain writes, so overlapping stripes would be detected.
func TestProbePoolCoversEveryIndex(t *testing.T) {
	for _, width := range []int{2, 3, 8} {
		p := NewProbePool(width)
		for _, n := range []int{0, 1, 3, 4, 7, 16, 33} {
			hits := make([]int32, n)
			for round := 0; round < 3; round++ {
				for i := range hits {
					hits[i] = 0
				}
				p.Eval(n, func(j int) { atomic.AddInt32(&hits[j], 1) })
				for j, h := range hits {
					if h != 1 {
						t.Fatalf("width %d n %d: index %d evaluated %d times", width, n, j, h)
					}
				}
			}
		}
		p.Close()
	}
}

// TestProbePoolFixedStriping checks that core j is always handled by
// the same stripe: each index must see a single consistent worker
// across evaluations, which is what lets per-core state be touched
// without locks.
func TestProbePoolFixedStriping(t *testing.T) {
	const width, n = 3, 10
	p := NewProbePool(width)
	defer p.Close()
	if p.Width() != width {
		t.Fatalf("Width = %d, want %d", p.Width(), width)
	}
	// Record which stripe evaluated each index by exploiting the
	// striping rule: stripe identity is j mod width by construction,
	// so consecutive Evals must agree on the grouping. Track it by
	// having each invocation stamp a per-index slot with j%width and
	// verifying stability across rounds.
	var stamps [n]int32
	for round := 0; round < 5; round++ {
		p.Eval(n, func(j int) { atomic.StoreInt32(&stamps[j], int32(j%width)) })
		for j := 0; j < n; j++ {
			if got := atomic.LoadInt32(&stamps[j]); got != int32(j%width) {
				t.Fatalf("index %d stamped stripe %d, want %d", j, got, j%width)
			}
		}
	}
}

func TestProbePoolMinimumWidth(t *testing.T) {
	p := NewProbePool(0)
	defer p.Close()
	if p.Width() != 2 {
		t.Fatalf("Width = %d, want clamp to 2", p.Width())
	}
}

func TestProbePoolCloseIdempotent(t *testing.T) {
	p := NewProbePool(4)
	p.Close()
	p.Close() // must not panic or double-close channels
}
