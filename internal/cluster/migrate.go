package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"dvfsched/internal/obs"
	"dvfsched/internal/server"
)

// Planned migration: drain-and-handoff. The state machine, per session:
//
//	serving --freeze--> frozen --ship--> shipped --flip--> moved
//	              \                 \
//	               \                 `--ship failed--> unfreeze --> serving
//	                `--(drained/gone)--> error, nothing changed
//
// freeze happens on the shard goroutine at a group-commit boundary
// (server opHandoff): the checkpoint observes whole batches only, and
// every later mutation is fenced with 503 session_migrating. ship sends
// the "DVSC" checkpoint plus the full "DVFB" event log to the target,
// which adopts it exactly like the failover path — same replay code,
// same byte-identical trace guarantee — but with zero replay suffix,
// because the checkpoint was taken at the freeze point. flip installs
// the placement record (locally, on the target at adopt, and broadcast
// to the rest), retires the local shard behind a moved marker, and
// drops the old replica. The fencing rule that makes admission
// exactly-once: a submit either lands before the freeze (it is then in
// the shipped checkpoint), or it is fenced with a retryable 503 and its
// retry routes to the new owner. No interleaving admits twice, because
// the old engine never runs again after the snapshot.

// migrateHeader is the first line of a handoff body: the metadata the
// receiver needs before the binary sections.
type migrateHeader struct {
	Spec          server.PlatformSpec `json:"spec"`
	Submitted     int                 `json:"submitted"`
	CheckpointLen int                 `json:"checkpoint_len"`
	Pinned        bool                `json:"pinned"`
}

// migrateRequest is the body of POST /v1/cluster/sessions/{id}/migrate.
type migrateRequest struct {
	// Target is the destination node ID; empty means the session's ring
	// owner under the current view (useful to un-pin a session).
	Target string `json:"target,omitempty"`
}

// MigrateInfo is the migrate endpoint's reply.
type MigrateInfo struct {
	Session string `json:"session"`
	From    string `json:"from"`
	To      string `json:"to"`
	Epoch   uint64 `json:"epoch"`
	Pinned  bool   `json:"pinned"`
}

// handleMigrate is POST /v1/cluster/sessions/{id}/migrate: the operator
// entry point. Any node accepts the call; a node that isn't the
// session's current home proxies it to the first routed candidate, so
// the handoff itself always runs owner-side.
func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req migrateRequest
	if err := decodeClusterJSON(r.Body, &req); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, "decode migrate request: %v", err)
		return
	}
	v := n.view()
	target := req.Target
	if target == "" {
		target = v.ring.Owner(id)
	}
	if _, ok := v.peers[target]; !ok {
		httpError(w, http.StatusBadRequest, "unknown target node %q", target)
		return
	}
	if !n.alive(target) {
		httpError(w, http.StatusServiceUnavailable, "target node %q is down", target)
		return
	}

	if !n.srv.HasSession(id) {
		// Not ours: proxy to the session's current home so the freeze
		// runs where the shard lives.
		cands := n.Route(id)
		if len(cands) == 0 {
			httpError(w, http.StatusServiceUnavailable, "no live node for session %q", id)
			return
		}
		if cands[0] != n.cfg.ID {
			n.proxyMigrate(w, r.Context(), cands[0], id, req)
			return
		}
	}

	// Operator migrations to an off-ring target are pinned: later
	// rebalances leave the session where the operator put it. A migrate
	// to the ring owner (explicit or defaulted) just realigns with the
	// ring and needs no pin.
	pinned := target != v.ring.Owner(id)
	if target == n.cfg.ID {
		if n.srv.HasSession(id) {
			// Already home; record the pin if the operator asked for an
			// off-ring placement (e.g. re-pinning after an epoch bump).
			if pinned {
				p := Placement{Session: id, Owner: n.cfg.ID, Pinned: true}
				n.setPlacement(p)
				n.broadcastPlacement(r.Context(), p, false)
			}
			writeClusterJSON(w, MigrateInfo{Session: id, From: n.cfg.ID, To: target, Epoch: v.epoch, Pinned: pinned})
			return
		}
		httpError(w, http.StatusNotFound, "no session %q on this node", id)
		return
	}
	if err := n.migrateSession(r.Context(), id, target, pinned); err != nil {
		n.writeMigrateError(w, id, err)
		return
	}
	writeClusterJSON(w, MigrateInfo{Session: id, From: n.cfg.ID, To: target, Epoch: v.epoch, Pinned: pinned})
}

// writeMigrateError maps migration failures onto the envelope.
func (n *Node) writeMigrateError(w http.ResponseWriter, id string, err error) {
	switch {
	case errors.Is(err, server.ErrSessionGone), errors.Is(err, server.ErrSessionMoved):
		httpError(w, http.StatusNotFound, "migrate %s: %v", id, err)
	case errors.Is(err, server.ErrSessionDrained):
		httpError(w, http.StatusConflict, "migrate %s: drained sessions cannot move: %v", id, err)
	case errors.Is(err, server.ErrSessionMigrating):
		httpError(w, http.StatusConflict, "migrate %s: already migrating", id)
	default:
		httpError(w, http.StatusBadGateway, "migrate %s: %v", id, err)
	}
}

// proxyMigrate relays the operator call to the session's current home
// and forwards the reply verbatim (same envelope either way).
func (n *Node) proxyMigrate(w http.ResponseWriter, ctx context.Context, home, id string, req migrateRequest) {
	v := n.view()
	status, body, err := n.roundTrip(ctx, http.MethodPost, v.peers[home], "/v1/cluster/sessions/"+id+"/migrate", "application/json", mustClusterJSON(req), n.adminTimeout())
	if err != nil {
		n.Observe(home, err)
		httpError(w, http.StatusBadGateway, "proxy migrate to %s: %v", home, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Status already written; nothing useful to do on a failed relay
	// write.
	_, _ = w.Write(body)
}

// migrateSession performs the owner-side drain-and-handoff of one live
// local session to target. On any failure after the freeze, the shard
// is unfrozen and keeps serving here — the flip is the last step, so
// there is never a moment with zero or two authoritative owners.
func (n *Node) migrateSession(ctx context.Context, id, target string, pinned bool) error {
	addr, ok := n.view().peers[target]
	if !ok {
		return fmt.Errorf("unknown target node %q", target)
	}
	return n.migrateSessionTo(ctx, id, target, addr, pinned)
}

// migrateSessionTo is migrateSession with the target's address resolved
// by the caller: a join rebalance migrates sessions to the joiner
// before the epoch flips, so the target's address exists only in the
// proposed view, not this node's current one.
func (n *Node) migrateSessionTo(ctx context.Context, id, target, addr string, pinned bool) error {
	if target == n.cfg.ID {
		return fmt.Errorf("session %s already on %s", id, target)
	}
	if !n.migrating.begin(id) {
		return fmt.Errorf("%w: %s", server.ErrSessionMigrating, id)
	}
	defer n.migrating.end(id)

	// Freeze: group-commit-boundary snapshot + mutation fence.
	hs, err := n.srv.HandoffSession(ctx, id)
	if err != nil {
		return err
	}
	// Ship: checkpoint + full log in one request. The full log (not
	// just the post-checkpoint suffix) rides along so the target's
	// recorder holds the complete history — the byte-identical-trace
	// guarantee covers the whole stream, not just the tail.
	body := mustClusterJSON(migrateHeader{Spec: hs.Spec, Submitted: hs.Submitted, CheckpointLen: len(hs.Checkpoint), Pinned: pinned})
	body = append(body, '\n')
	body = append(body, hs.Checkpoint...)
	body = obs.AppendBinary(body, hs.Events)
	if err := n.doAddr(ctx, http.MethodPost, addr, "/v1/cluster/handoff/"+id, "application/octet-stream", body, n.adminTimeout()); err != nil {
		if !isStatusError(err) {
			n.Observe(target, err)
		}
		if aerr := n.srv.AbortHandoff(ctx, id); aerr != nil {
			return fmt.Errorf("handoff to %s failed (%v) and unfreeze failed: %w", target, err, aerr)
		}
		return fmt.Errorf("handoff session %s to %s: %w", id, target, err)
	}

	// Flip: from here on the target is authoritative. Install the
	// placement locally first — it fences this node's own routing and
	// EnsureLocal — then tell the rest; the target installed its own
	// placement when it adopted.
	p := Placement{Session: id, Owner: target, Pinned: pinned}
	n.setPlacement(p)
	n.srv.FinishHandoff(id, target)
	n.broadcastPlacement(ctx, p, false)
	// Retire the old replica and ship cursor: the target now replicates
	// the session along its own chain, and a stale cold copy here (or on
	// our old replica target) must never outlive us to promote ancient
	// state.
	// Purge-style cleanup is best effort; a leaked replica tombstone is
	// dropped on ID reuse or restart.
	_ = n.Replicate(ctx, id, server.MutationPurge)
	n.replicas.drop(id)
	n.migrations.Inc()
	return nil
}

// handleHandoff is POST /v1/cluster/handoff/{id} (internal): the
// receiving half of a migration. The body is a JSON header line, the
// checkpoint bytes, then the full binary event log. Adoption reuses the
// failover replay path, so the rebuilt trace is byte-identical to the
// sender's by the same proof.
func (n *Node) handleHandoff(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxReplicaBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		httpError(w, http.StatusBadRequest, "handoff %s: missing header line", id)
		return
	}
	var hdr migrateHeader
	if err := json.Unmarshal(raw[:nl], &hdr); err != nil {
		httpError(w, http.StatusBadRequest, "handoff %s: decode header: %v", id, err)
		return
	}
	rest := raw[nl+1:]
	if hdr.CheckpointLen < 0 || hdr.CheckpointLen > len(rest) {
		httpError(w, http.StatusBadRequest, "handoff %s: checkpoint length %d out of range", id, hdr.CheckpointLen)
		return
	}
	checkpoint := rest[:hdr.CheckpointLen]
	var events []obs.Event
	if logBytes := rest[hdr.CheckpointLen:]; len(logBytes) > 0 {
		events, err = obs.ReadBinary(bytes.NewReader(logBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, "handoff %s: decode log: %v", id, err)
			return
		}
	}

	// Any cold replica we held for this session is strictly older than
	// the handoff state; drop it before adopting so EnsureLocal cannot
	// race a promotion against the adopt.
	n.replicas.drop(id)
	info, err := n.srv.AdoptSession(r.Context(), id, hdr.Spec, checkpoint, events)
	if err != nil {
		if errors.Is(err, server.ErrSessionExists) {
			httpError(w, http.StatusConflict, "handoff %s: %v", id, err)
			return
		}
		httpError(w, http.StatusInternalServerError, "handoff %s: adopt: %v", id, err)
		return
	}
	if info.Submitted != hdr.Submitted {
		// The rebuilt engine disagrees with the sender about how many
		// tasks it holds: refuse the handoff and discard the partial
		// adoption so the sender unfreezes and stays authoritative.
		n.srv.DropSession(id)
		httpError(w, http.StatusConflict, "handoff %s: rebuilt %d submitted tasks, sender had %d", id, info.Submitted, hdr.Submitted)
		return
	}
	n.setPlacement(Placement{Session: id, Owner: n.cfg.ID, Pinned: hdr.Pinned})
	// Re-protect immediately: ship the adopted session to this node's
	// own replica target before acking, so a post-migration owner kill
	// is survivable from the first moment. Best effort — with no other
	// live candidate the session runs unreplicated, as any solo session
	// does.
	// Replication degrades gracefully; the next acked submit re-ships
	// before acking.
	_ = n.Replicate(r.Context(), id, server.MutationCreate)
	writeClusterJSON(w, info)
}

// sessionGuard serializes migrations per session ID.
type sessionGuard struct {
	mu sync.Mutex
	m  map[string]bool
}

func (g *sessionGuard) begin(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m[id] {
		return false
	}
	g.m[id] = true
	return true
}

func (g *sessionGuard) end(id string) {
	g.mu.Lock()
	delete(g.m, id)
	g.mu.Unlock()
}
