// Package cluster is the distributed control plane for dvfschedd: a
// consistent-hash ring places each session on an owner node (plus a
// failover chain), any node fronts any session by forwarding to the
// owner (internal/server.Router), and the owner replicates each
// session by shipping its binary obs event log plus periodic
// checkpoints to the next live node on the ring. When the owner dies,
// the replica promotes lazily on the first routed operation: it
// restores the last shipped checkpoint, replays the log's arrival
// suffix, and resumes admission — no accepted task is lost, because a
// submit is only acknowledged after its events reached the replica.
//
// Membership is dynamic: the -peers flag only seeds epoch 1, and the
// versioned admin API (POST/DELETE /v1/cluster/nodes/{id}) grows or
// shrinks the ring at runtime. Each change installs a whole new
// immutable view at epoch+1, rebalancing only the bounded fraction of
// sessions whose owner changes — by planned drain-and-handoff
// migration (POST /v1/cluster/sessions/{id}/migrate), not by killing
// anything. The failure model is fail-stop with one replica per
// session: the cluster serves through any single node death; losing a
// session's owner and replica together loses that session's
// unreplicated tail.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the ring's virtual-node count per peer: enough that
// a 3-node ring stays within a few percent of even, cheap enough that
// building the ring is instant.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring with virtual nodes. Keys
// and nodes hash onto a 64-bit circle (FNV-1a); a key's owner is the
// first virtual point at or after it, and its failover candidates are
// the following distinct nodes in ring order. Adding or removing one
// node moves only the keys adjacent to that node's points — the
// bounded-movement property the rebalance tests pin down.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted membership
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given node IDs with vnodes virtual
// points per node (<= 0 means DefaultVNodes). Node IDs must be unique
// and non-empty; order does not matter.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	r := &Ring{
		points: make([]ringPoint, 0, len(sorted)*vnodes),
		nodes:  sorted,
	}
	seen := make(map[string]bool, len(sorted))
	for _, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n)
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashPoint(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions across nodes are astronomically unlikely but
		// must still order deterministically on every node.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

func hashPoint(node string, v int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(node)) // hash.Hash writes never fail
	_, _ = h.Write([]byte("#"))
	_, _ = h.Write([]byte(strconv.Itoa(v)))
	return mix64(h.Sum64())
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // hash.Hash writes never fail
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: FNV-1a of short, similar strings
// (sequential session IDs, "node#vnode" labels) leaves enough
// structure in the raw sum to skew arc lengths badly; a full-avalanche
// finalizer restores the uniformity consistent hashing assumes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes returns the ring's membership, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Owner returns the node owning key, ignoring liveness.
func (r *Ring) Owner(key string) string {
	return r.Candidates(key, 1, nil)[0]
}

// Candidates returns up to n distinct nodes for key in ring order
// starting at the owner, skipping nodes alive reports false for (nil
// alive means all nodes are alive). The result is the key's failover
// chain: index 0 owns the key, index 1 replicates it, and so on.
func (r *Ring) Candidates(key string, n int, alive func(string) bool) []string {
	if n <= 0 {
		return nil
	}
	kh := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if alive != nil && !alive(p.node) {
			continue
		}
		out = append(out, p.node)
	}
	return out
}
