package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvfsched/internal/obs"
)

// TestClusterStreamFailoverReplicaDeath kills a session's replica
// holder while frames are in flight to it: the per-peer stream must
// fail over to the next ring candidate, carry the blocked waiters
// across, and keep acking — then the owner dies too and the session
// must still drain losslessly from the failover target's replica.
// This is the pipelined analogue of TestClusterFailover: the failure
// lands on the stream's far end instead of the submit's near end.
func TestClusterStreamFailoverReplicaDeath(t *testing.T) {
	tc := startCluster(t, 3, func(c *Config) { c.CheckpointEvery = 5 })
	front := tc.ids[0]
	info := tc.createSession(front, `{"cores":2}`)
	path := "/v1/sessions/" + info.ID
	cands := tc.byID[front].node.Route(info.ID)
	owner, repl, third := cands[0], cands[1], cands[2]
	fronts := []string{owner, third} // repl is the one that dies

	if code, b := tc.do(owner, http.MethodPost, path+"/tasks", taskBatch([]int{1, 2, 3, 4}, true)); code != http.StatusOK {
		t.Fatalf("warm-up submit: %d %s", code, b)
	}
	if _, ok := tc.byID[repl].node.replicas.get(info.ID); !ok {
		t.Fatalf("replica %s holds no state after an acked submit", repl)
	}

	const clients, batches, perBatch = 3, 8, 2
	var killOnce sync.Once
	kill := func() { killOnce.Do(func() { tc.kill(repl) }) }
	var mu sync.Mutex
	acked := map[int]bool{1: true, 2: true, 3: true, 4: true}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			myFronts := append([]string{fronts[c%len(fronts)]}, fronts...)
			for b := 0; b < batches; b++ {
				if c == 0 && b == batches/2 {
					kill() // replica holder dies with frames in flight
				}
				base := 1000*(c+1) + perBatch*b
				ids := make([]int, perBatch)
				for i := range ids {
					ids[i] = base + i + 1
				}
				if tc.submitRetry(myFronts, path, taskBatch(ids, true)) {
					mu.Lock()
					for _, id := range ids {
						acked[id] = true
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	kill()
	if t.Failed() {
		t.FailNow()
	}

	// Acks issued after the kill imply the stream re-homed: the only
	// live candidate left is the third node, so it must hold replica
	// state before the owner is allowed to die.
	if _, ok := tc.byID[third].node.replicas.get(info.ID); !ok {
		t.Fatalf("stream never failed over: %s holds no replica of %s", third, info.ID)
	}
	tc.kill(owner)

	dr := tc.drainRetry([]string{third}, path)
	mu.Lock()
	wantTasks := len(acked)
	mu.Unlock()
	if dr.Tasks != wantTasks {
		t.Errorf("drained %d tasks, acked %d", dr.Tasks, wantTasks)
	}
	if v := tc.byID[third].srv.Registry().Counter(obs.ClusterPromotions).Value(); v < 1 {
		t.Errorf("failover target %s promotions counter %v, want >= 1", third, v)
	}
	events := tc.fetchEvents([]string{third}, path)
	auditTrace(t, info.PlatformSpec, events, acked)
}

// TestClusterStreamHealsAckGap truncates the replica's log behind the
// owner's ack cursor — the stream analogue of the per-request 409 —
// and requires the very next submit to heal in-stream: the frame's
// gap result resets the cursor, the re-ship replays the full log, the
// waiter rides the heal to a normal ack, and the replica ends
// byte-identical to the owner's trace.
func TestClusterStreamHealsAckGap(t *testing.T) {
	tc := startCluster(t, 3, nil)
	front := tc.ids[0]
	info := tc.createSession(front, `{"cores":2}`)
	path := "/v1/sessions/" + info.ID
	owner := tc.byID[front].node.Route(info.ID)[0]

	if code, b := tc.do(owner, http.MethodPost, path+"/tasks", taskBatch([]int{1, 2, 3}, true)); code != http.StatusOK {
		t.Fatalf("seed submit: %d %s", code, b)
	}

	var rep *replica
	for _, id := range tc.ids {
		if r, ok := tc.byID[id].node.replicas.get(info.ID); ok {
			rep = r
		}
	}
	if rep == nil {
		t.Fatalf("no node holds a replica of %s after an acked submit", info.ID)
	}
	// Truncate to a NONZERO tail: a replica emptied to zero would accept
	// any re-ship as a fresh log, never reporting the gap this test is
	// about. Keeping event 1 forces the next frame (which starts past
	// the owner's ack cursor) to collide with lastSeq=1.
	rep.mu.Lock()
	if rep.log.len() < 2 {
		rep.mu.Unlock()
		t.Fatalf("replica holds %d events, need >= 2 to truncate", rep.log.len())
	}
	first := rep.log.chunks[0][0]
	rep.log = replicaLog{}
	rep.log.append(first)
	rep.lastSeq = first.Seq
	rep.mu.Unlock()

	// One submit, one request: the gap must be detected and healed
	// before this ack is released.
	if code, b := tc.do(owner, http.MethodPost, path+"/tasks", taskBatch([]int{4, 5}, true)); code != http.StatusOK {
		t.Fatalf("submit after replica truncation: %d %s", code, b)
	}
	if v := tc.byID[owner].srv.Registry().Counter(obs.ClusterShipHeals).Value(); v < 1 {
		t.Errorf("owner heal counter %v after a forced gap, want >= 1", v)
	}

	ownerEvents, err := tc.byID[owner].srv.SessionEventsSince(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep.mu.Lock()
	repLog := rep.log.snapshot()
	rep.mu.Unlock()
	if !bytes.Equal(obs.AppendBinary(nil, repLog), obs.AppendBinary(nil, ownerEvents)) {
		t.Fatalf("healed replica log diverges from owner trace: %d vs %d events", len(repLog), len(ownerEvents))
	}

	dr := tc.drainRetry([]string{owner}, path)
	if dr.Tasks != 5 {
		t.Errorf("drained %d tasks, want 5", dr.Tasks)
	}
	events := tc.fetchEvents([]string{owner}, path)
	auditTrace(t, info.PlatformSpec, events, map[int]bool{1: true, 2: true, 3: true, 4: true, 5: true})
}

// TestClusterStreamMigrateRace races migrations and a drain against
// submits while the stream keeps a coalescing window open
// (ShipFlushInterval > 0, so frames are reliably in flight when the
// migration freezes the shard). Any individual migrate may win or
// lose; what must hold is the usual oracle — every acked task drains
// exactly once and the trace rebuilds byte-identically.
func TestClusterStreamMigrateRace(t *testing.T) {
	tc := startCluster(t, 3, func(c *Config) {
		c.CheckpointEvery = 4
		c.ShipFlushInterval = 2 * time.Millisecond
	})
	front := tc.ids[0]
	info := tc.createSession(front, `{"cores":2}`)
	path := "/v1/sessions/" + info.ID
	owner := tc.byID[front].node.Route(info.ID)[0]
	targets := make([]string, 0, 2)
	for _, id := range tc.ids {
		if id != owner {
			targets = append(targets, id)
		}
	}
	fronts := []string{"n1", "n2", "n3"}

	if code, b := tc.do(front, http.MethodPost, path+"/tasks", taskBatch([]int{1, 2}, true)); code != http.StatusOK {
		t.Fatalf("seed submit: %d %s", code, b)
	}
	var mu sync.Mutex
	acked := map[int]bool{1: true, 2: true}

	migrate := func(via, target string) {
		body := []byte(fmt.Sprintf(`{"target":%q}`, target))
		code, b, err := tc.try(via, http.MethodPost, "/v1/cluster/sessions/"+info.ID+"/migrate", body)
		if err != nil {
			t.Errorf("migrate to %s transport: %v", target, err)
			return
		}
		// 200: won. 409: lost to the other migration's freeze or the
		// drain. 404: the session already moved on or drained away.
		// 503/502: fences and mid-handoff refusals, which unfreeze and
		// keep the shard serving. All fail cleanly; the audit below is
		// the real assertion.
		switch code {
		case http.StatusOK, http.StatusConflict, http.StatusNotFound,
			http.StatusServiceUnavailable, http.StatusBadGateway:
		default:
			t.Errorf("migrate to %s: unexpected status %d %s", target, code, b)
		}
	}

	const clients, batches, perBatch = 3, 6, 2
	var wg sync.WaitGroup
	defer wg.Wait() // a Fatal below must not leave goroutines failing a done test
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			myFronts := append([]string{fronts[c%len(fronts)]}, fronts...)
			for b := 0; b < batches; b++ {
				base := 1000*(c+1) + perBatch*b
				ids := make([]int, perBatch)
				for i := range ids {
					ids[i] = base + i + 1
				}
				if tc.submitRetry(myFronts, path, taskBatch(ids, true)) {
					mu.Lock()
					for _, id := range ids {
						acked[id] = true
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond) // land inside the submit storm
		migrate(targets[0], targets[0])
		time.Sleep(15 * time.Millisecond)
		migrate(owner, targets[1])
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	dr := tc.drainRetry(fronts, path)
	mu.Lock()
	wantTasks := len(acked)
	mu.Unlock()
	if dr.Tasks != wantTasks {
		t.Errorf("drained %d tasks, acked %d", dr.Tasks, wantTasks)
	}
	events := tc.fetchEvents(fronts, path)
	auditTrace(t, info.PlatformSpec, events, acked)
}

// countingListener counts raw TCP accepts, which is how many
// connections the peer actually opened to this node.
type countingListener struct {
	net.Listener
	accepted atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepted.Add(1)
	}
	return c, err
}

// TestClusterStreamReusesConnections pins the shared tuned transport:
// many sequential replicated submits (each forcing its own frame —
// sequential clients never overlap a window) must ride a handful of
// TCP connections to the replica, not one per frame.
func TestClusterStreamReusesConnections(t *testing.T) {
	counters := map[string]*countingListener{}
	tc := startClusterWrapped(t, 2, nil, func(id string, ln net.Listener) net.Listener {
		cl := &countingListener{Listener: ln}
		counters[id] = cl
		return cl
	})

	// Pin the session to n1 so every frame flows n1 -> n2 and n2's
	// accept count sees only the replication plane.
	id := sessionsOwnedBy(t, tc, "n1", 1)[0]
	req, err := http.NewRequest(http.MethodPost, tc.byID["n1"].addr+"/v1/sessions", strings.NewReader(`{"cores":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Dvfs-Session-Id", id)
	resp, err := tc.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: %d %s", id, resp.StatusCode, body)
	}
	path := "/v1/sessions/" + id

	const ships = 50
	for i := 1; i <= ships; i++ {
		if code, b := tc.do("n1", http.MethodPost, path+"/tasks", taskBatch([]int{i}, true)); code != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, code, b)
		}
	}

	frames := tc.byID["n1"].srv.Registry().Counter(obs.ClusterShipFrames).Value()
	if frames < ships {
		t.Fatalf("owner sent %v frames over %d sequential submits, want >= %d", frames, ships, ships)
	}
	if got := counters["n2"].accepted.Load(); got > 6 {
		t.Errorf("replica accepted %d connections for %v frames; the transport is not reusing connections", got, frames)
	}
}

// TestClusterStreamCoalesces pins the group commit: with a flush
// interval holding each window open briefly, a storm of concurrent
// single-task submits to one session must collapse into far fewer
// frames than submits — each frame's ack releasing every waiter it
// covers — and still drain to a clean audited trace.
func TestClusterStreamCoalesces(t *testing.T) {
	tc := startCluster(t, 3, func(c *Config) { c.ShipFlushInterval = 2 * time.Millisecond })
	front := tc.ids[0]
	info := tc.createSession(front, `{"cores":2}`)
	path := "/v1/sessions/" + info.ID
	owner := tc.byID[front].node.Route(info.ID)[0]

	const clients, batches = 16, 4
	var mu sync.Mutex
	acked := map[int]bool{}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				id := 100*(c+1) + b + 1
				if tc.submitRetry([]string{owner}, path, taskBatch([]int{id}, true)) {
					mu.Lock()
					acked[id] = true
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	const submits = clients * batches
	frames := tc.byID[owner].srv.Registry().Counter(obs.ClusterShipFrames).Value()
	if frames > submits/2 {
		t.Errorf("%v frames for %d concurrent submits — the stream is not coalescing", frames, submits)
	}
	ships := tc.byID[owner].srv.Registry().Counter(obs.ClusterShips).Value()
	if ships < 1 {
		t.Errorf("ships counter %v, want >= 1", ships)
	}

	dr := tc.drainRetry([]string{owner}, path)
	mu.Lock()
	wantTasks := len(acked)
	mu.Unlock()
	if dr.Tasks != wantTasks {
		t.Errorf("drained %d tasks, acked %d", dr.Tasks, wantTasks)
	}
	events := tc.fetchEvents([]string{owner}, path)
	auditTrace(t, info.PlatformSpec, events, acked)
}
