package cluster

import (
	"testing"
	"time"

	"dvfsched/internal/server"
)

// TestReplicaOpenDoesNotHoldStoreLock pins the lock order fix in
// replicaStore.open: it must release the store lock before taking the
// replica's lock. EnsureLocal nests the other way — it holds rep.mu
// and calls replicas.drop, which takes rs.mu — so an open that waits
// for rep.mu while holding rs.mu deadlocks a re-open of a session
// racing its own promotion. The test holds a replica's lock the way a
// promotion does, lets a re-open block on it, and requires the store
// itself to stay usable.
func TestReplicaOpenDoesNotHoldStoreLock(t *testing.T) {
	rs := &replicaStore{m: map[string]*replica{}}
	rep := rs.open("s1", server.PlatformSpec{Cores: 1})

	rep.mu.Lock() // the promotion side holds the replica lock...
	reopened := make(chan struct{})
	go func() {
		rs.open("s1", server.PlatformSpec{Cores: 2}) // ...while the owner re-opens
		close(reopened)
	}()
	// Give the re-open time to park on rep.mu. With the store lock
	// still held there (the old nesting), the drop below can never run.
	time.Sleep(50 * time.Millisecond)

	dropped := make(chan struct{})
	go func() {
		rs.drop("s1")
		close(dropped)
	}()
	select {
	case <-dropped:
	case <-time.After(2 * time.Second):
		t.Fatal("replicaStore is locked while open waits on the replica: a promotion would deadlock here")
	}

	rep.mu.Unlock()
	select {
	case <-reopened:
	case <-time.After(2 * time.Second):
		t.Fatal("re-open never completed after the replica lock was released")
	}
	if rep.spec.Cores != 2 {
		t.Fatalf("re-open did not refresh the spec: cores = %d, want 2", rep.spec.Cores)
	}
}
