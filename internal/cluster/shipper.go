package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"dvfsched/internal/obs"
	"dvfsched/internal/server"
	"dvfsched/internal/sim"
)

// This file is the streamed replication plane: one long-lived shipper
// goroutine per peer multiplexes every owned session's log tail into
// coalesced frames (one request carries many sessions' event deltas,
// opens and due checkpoints), pipelined up to a bounded in-flight
// window. A mutation's response is released only when the frame ack
// covering its event sequence number returns, so "acked implies
// replicated" holds exactly as it did on the per-request path — the
// ship cost just amortizes across every session that committed while
// the previous frame was on the wire, the same group-commit idiom the
// local intake ring applies to submits. DESIGN §14 documents the
// protocol and the window/ack state machine.

// DefaultShipWindow is the per-peer bound on in-flight replication
// frames when Config.ShipWindow is zero.
const DefaultShipWindow = 4

// maxShipHeals bounds consecutive heal rounds (replica reported a gap
// or vanished) before the waiting mutations are failed instead of
// retried — a persistently gappy replica must not hold acks forever.
const maxShipHeals = 3

// shipCursor is one owned session's position in its replica stream.
// Every field is guarded by Node.shipsMu; the cursor migrates between
// per-peer shippers when the session's replica target changes.
type shipCursor struct {
	id     string
	target string // replica node ID; "" when degraded (no live candidate)
	opened bool   // replica acked an open (has the spec)
	acked  uint64 // last event Seq the replica's log is known to cover
	// sinceCP counts acked events since the last applied checkpoint;
	// at CheckpointEvery the next frame carries a fresh snapshot.
	sinceCP int
	// inflightOn names the peer whose in-flight frame carries this
	// cursor ("" = none): a session is never in two frames to the same
	// peer, which is what makes `from = acked` the only send cursor
	// needed.
	inflightOn string
	queued     bool // already in its shipper's queue
	purged     bool // session purged; drop silently wherever it surfaces
	heals      int  // consecutive heal rounds without a clean ack
	// wantSeq is the highest event Seq any waiter asked to be covered;
	// acked < wantSeq means the cursor still has unshipped tail.
	wantSeq uint64
	waiters []*shipWaiter
}

// shipWaiter is one mutation blocked on the ack covering seq.
type shipWaiter struct {
	seq      uint64
	retried  bool       // survived one target failover already
	deadline time.Time  // past it, the sweep fails the waiter: stuck stream
	ch       chan error // capacity 1; receives exactly one result
}

// shipRelease is a resolved waiter, completed outside shipsMu.
type shipRelease struct {
	ch  chan error
	err error
}

func sendReleases(rels []shipRelease) {
	for _, r := range rels {
		r.ch <- r.err
	}
}

// drainWaiters detaches every waiter with one shared result. Caller
// holds shipsMu; the sends happen later, unlocked.
func drainWaiters(cur *shipCursor, err error) []shipRelease {
	if len(cur.waiters) == 0 {
		return nil
	}
	rels := make([]shipRelease, 0, len(cur.waiters))
	for _, w := range cur.waiters {
		rels = append(rels, shipRelease{ch: w.ch, err: err})
	}
	cur.waiters = nil
	return rels
}

// ackWaitersLocked releases every waiter the current ack covers.
// Caller holds shipsMu.
func ackWaitersLocked(cur *shipCursor, rels []shipRelease) []shipRelease {
	keep := cur.waiters[:0]
	for _, w := range cur.waiters {
		if w.seq <= cur.acked {
			rels = append(rels, shipRelease{ch: w.ch})
		} else {
			keep = append(keep, w)
		}
	}
	cur.waiters = keep
	return rels
}

// shipper is one peer's replication stream: a dispatcher goroutine
// draining a queue of dirty cursors into coalesced frames, at most
// `window` frames in flight. queue and inflight are guarded by
// Node.shipsMu like the cursors they reference.
type shipper struct {
	n      *Node
	peer   string
	window int
	wake   chan struct{} // capacity 1: coalesces kicks
	stop   chan struct{}
	done   chan struct{}

	queue    []*shipCursor
	inflight int
}

// shipperForLocked returns the peer's shipper, starting one on first
// use. Caller holds shipsMu. Returns nil after Close.
func (n *Node) shipperForLocked(peer string) *shipper {
	if n.shipsClosed {
		return nil
	}
	s, ok := n.shippers[peer]
	if !ok {
		s = &shipper{
			n:      n,
			peer:   peer,
			window: n.cfg.ShipWindow,
			wake:   make(chan struct{}, 1),
			stop:   make(chan struct{}),
			done:   make(chan struct{}),
		}
		n.shippers[peer] = s
		go s.run()
	}
	return s
}

// enqueueCursorLocked queues the cursor on its shipper unless it is
// already queued or riding an in-flight frame (finish re-queues it
// then). Caller holds shipsMu; reports whether a kick is warranted.
func enqueueCursorLocked(s *shipper, cur *shipCursor) bool {
	if s == nil || cur.queued || cur.inflightOn != "" {
		return false
	}
	cur.queued = true
	s.queue = append(s.queue, cur)
	return true
}

// kick wakes the dispatcher; a pending wake already covers this one.
func (s *shipper) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// run is the dispatcher loop: wait for work, optionally linger one
// flush interval to let concurrent mutations pile into the same frame,
// then dispatch frames until the queue drains or the window fills.
// A coarse ticker sweeps expired waiters — one timer per peer instead
// of one per mutation on the ack hot path.
func (s *shipper) run() {
	defer close(s.done)
	sweep := time.NewTicker(s.n.cfg.ShipTimeout)
	defer sweep.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-sweep.C:
			s.sweepStale()
			continue
		case <-s.wake:
		}
		if d := s.n.cfg.ShipFlushInterval; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-s.stop:
				t.Stop()
				return
			case <-t.C:
			}
		}
		for s.dispatchOne() {
		}
	}
}

// sweepStale fails waiters whose deadline passed on cursors this
// shipper owns. The deadline is the stuck-stream backstop (the honest
// paths — ack, heal failure, failover, degrade, close — all release
// waiters directly), so tick-granularity firing is plenty.
func (s *shipper) sweepStale() {
	now := time.Now()
	var rels []shipRelease
	s.n.shipsMu.Lock()
	for _, cur := range s.n.ships {
		if cur.target != s.peer {
			continue
		}
		kept := cur.waiters[:0]
		for _, w := range cur.waiters {
			if now.After(w.deadline) {
				rels = append(rels, shipRelease{ch: w.ch, err: errors.New("replication ack timed out")})
			} else {
				kept = append(kept, w)
			}
		}
		cur.waiters = kept
	}
	s.n.shipsMu.Unlock()
	sendReleases(rels)
}

// entryPlan is one session's slot in a frame under construction.
type entryPlan struct {
	cur    *shipCursor
	id     string
	from   uint64 // ship events with Seq > from
	open   bool   // include the spec (replica may not know the session)
	wantCP bool   // a checkpoint is due

	// Filled by the frame build:
	toSeq   uint64 // last event Seq the frame carries (== from if none)
	nEvents int
	cpSent  bool
	gone    bool // session vanished locally; forget the cursor
	skip    bool // nothing to ship; acked state already covers waiters
}

// dispatchOne builds one frame from the queued cursors and hands it to
// a sender goroutine. Reports whether it dispatched (callers loop).
func (s *shipper) dispatchOne() bool {
	n := s.n
	n.shipsMu.Lock()
	if n.shipsClosed || s.inflight >= s.window || len(s.queue) == 0 {
		n.shipsMu.Unlock()
		return false
	}
	batch := s.queue
	s.queue = nil
	plans := make([]*entryPlan, 0, len(batch))
	for _, cur := range batch {
		cur.queued = false
		if cur.purged || cur.target != s.peer || cur.inflightOn != "" {
			continue
		}
		plans = append(plans, &entryPlan{
			cur:    cur,
			id:     cur.id,
			from:   cur.acked,
			open:   !cur.opened,
			wantCP: cur.sinceCP >= n.cfg.CheckpointEvery,
		})
		cur.inflightOn = s.peer
	}
	if len(plans) == 0 {
		n.shipsMu.Unlock()
		return false
	}
	s.inflight++
	n.shipsMu.Unlock()
	n.shipInflight.Add(1)
	n.shipWG.Add(1)
	go s.send(plans)
	return true
}

// shipBuf is the reusable scratch of one frame round trip: the event
// read buffer, the concatenated blob area, the final wire body, the
// request body reader, the reply read buffer and the decoded result
// (whose Sessions backing array json.Unmarshal reuses). Pooled; Get
// and Put happen in the same sender frame, so no ownership leaves the
// function — finish copies what it keeps before the Put.
type shipBuf struct {
	evs  []obs.Event
	blob []byte
	body []byte
	hdr  []frameEntry
	rd   bytes.Reader
	resp []byte
	res  frameResult
}

var shipBufPool = sync.Pool{New: func() any { return &shipBuf{} }}

// send builds, posts and resolves one frame. Runs in its own
// goroutine, tracked by Node.shipWG.
func (s *shipper) send(plans []*entryPlan) {
	defer s.n.shipWG.Done()
	buf := shipBufPool.Get().(*shipBuf)
	// Zero the whole reused result array, not just its length: CPOK and
	// Error are omitempty, so a decode that omits them must not inherit
	// a previous frame's values.
	buf.res.Sessions = buf.res.Sessions[:cap(buf.res.Sessions)]
	clear(buf.res.Sessions)
	buf.res.Sessions = buf.res.Sessions[:0]
	sessions, events := s.build(buf, plans)
	var sendErr error
	if sessions > 0 {
		s.n.shipFrames.Inc()
		s.n.frameSessions.Observe(float64(sessions))
		s.n.frameEvents.Observe(float64(events))
		sendErr = s.postFrame(buf)
	}
	s.finish(plans, buf.res, sendErr)
	buf.evs = buf.evs[:0]
	buf.blob = buf.blob[:0]
	buf.body = buf.body[:0]
	buf.resp = buf.resp[:0]
	shipBufPool.Put(buf)
	s.n.shipInflight.Add(-1)
}

// build assembles the wire frame into buf and returns how many session
// entries and events it carries. Per entry the order is spec, then
// snapshot, then the event tail read AFTER the snapshot — so the
// events shipped alongside a checkpoint always cover its sequence
// number, the invariant the replica's setCheckpoint enforces.
func (s *shipper) build(buf *shipBuf, plans []*entryPlan) (sessions, events int) {
	n := s.n
	// The context (and its timer) only exists for snapshot calls, which
	// most frames don't make.
	var ctx context.Context
	for _, p := range plans {
		if p.wantCP {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(context.Background(), n.cfg.ShipTimeout)
			defer cancel()
			break
		}
	}
	entries := buf.hdr[:0]
	buf.evs = buf.evs[:0]
	blob := buf.blob[:0]
	for _, p := range plans {
		e := frameEntry{ID: p.id}
		if p.open {
			spec, ok := n.srv.SessionSpec(p.id)
			if !ok {
				p.gone = true
				continue
			}
			e.Spec = &spec
		}
		var cp []byte
		if p.wantCP {
			// A failed snapshot (busy shard, drained session) skips this
			// round's checkpoint; the log alone keeps the replica
			// complete, just slower to promote.
			if snap, err := n.srv.SnapshotSession(ctx, p.id); err == nil {
				cp = snap
			}
		}
		start := len(buf.evs)
		evs, err := n.srv.AppendSessionEventsSince(p.id, p.from, buf.evs)
		if err != nil {
			p.gone = true
			continue
		}
		buf.evs = evs
		tail := evs[start:]
		p.toSeq = p.from
		p.nEvents = len(tail)
		if len(tail) > 0 {
			p.toSeq = tail[len(tail)-1].Seq
		} else if !p.open && cp == nil {
			p.skip = true // nothing new: the ack is already covered
			continue
		}
		before := len(blob)
		blob = obs.AppendBinary(blob, tail)
		e.EventsLen = len(blob) - before
		if cp != nil {
			blob = append(blob, cp...)
			e.CheckpointLen = len(cp)
			p.cpSent = true
		}
		entries = append(entries, e)
		events += p.nEvents
	}
	buf.blob = blob
	buf.hdr = entries
	if len(entries) == 0 {
		return 0, 0
	}
	body := append(buf.body[:0], 0, 0, 0, 0)
	hdrBody, ok := appendFrameHeader(body, entries)
	if !ok {
		// An entry carries a spec or an ID the fast encoder won't vouch
		// for: let encoding/json handle the whole header.
		hdrJSON, err := json.Marshal(frameHeader{Sessions: entries})
		if err != nil {
			// PlatformSpec and frameEntry marshal unconditionally; this is
			// unreachable, but an empty frame degrades safely if it happens.
			return 0, 0
		}
		hdrBody = append(body[:4], hdrJSON...)
	}
	body = hdrBody
	binary.BigEndian.PutUint32(body[:4], uint32(len(body)-4))
	body = append(body, blob...)
	buf.body = body
	return len(entries), events
}

// appendFrameHeader writes the frame header JSON for the common case
// — no specs, IDs that need no escaping — directly into b (which
// already holds the 4-byte length prefix). It reports false, leaving
// b's length untouched, when an entry needs the real encoder.
func appendFrameHeader(b []byte, entries []frameEntry) ([]byte, bool) {
	start := len(b)
	b = append(b, `{"sessions":[`...)
	for i, e := range entries {
		if e.Spec != nil || !plainJSONString(e.ID) {
			return b[:start], false
		}
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"id":"`...)
		b = append(b, e.ID...)
		b = append(b, `","events_len":`...)
		b = strconv.AppendInt(b, int64(e.EventsLen), 10)
		if e.CheckpointLen > 0 {
			b = append(b, `,"checkpoint_len":`...)
			b = strconv.AppendInt(b, int64(e.CheckpointLen), 10)
		}
		b = append(b, '}')
	}
	b = append(b, `]}`...)
	return b, true
}

// plainJSONString reports whether s encodes as itself inside JSON
// quotes: printable ASCII with no escapes. Session IDs are minted (or
// header-validated) from [A-Za-z0-9._-], so this holds on every real
// path.
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			return false
		}
	}
	return true
}

// frameReqHeader is the fixed header set of every frame POST. The
// transport only reads request headers, so one shared map serves all
// concurrent sends.
var frameReqHeader = http.Header{"Content-Type": {"application/json"}}

// postFrame posts the frame and decodes the per-session results into
// buf.res. It is a hand-built, scratch-reusing variant of doAddrJSON:
// frames are the replication hot path, so the request, its body
// reader and the reply buffer all come from the pooled shipBuf
// instead of being allocated per ship.
func (s *shipper) postFrame(buf *shipBuf) error {
	n := s.n
	addr := n.Addr(s.peer)
	if addr == "" {
		return &statusError{code: http.StatusGone, body: fmt.Sprintf("node %s is not in the current view", s.peer)}
	}
	u, err := url.Parse(addr + "/v1/cluster/replica/frame")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ShipTimeout)
	defer cancel()
	body := buf.body
	buf.rd.Reset(body)
	req := (&http.Request{
		Method:        http.MethodPost,
		URL:           u,
		Host:          u.Host,
		Header:        frameReqHeader,
		Body:          io.NopCloser(&buf.rd),
		ContentLength: int64(len(body)),
		// GetBody keeps the transport's stale-idle-connection retry,
		// which NewRequest would have derived from the bytes.Reader.
		GetBody: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(body)), nil
		},
	}).WithContext(ctx)
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	buf.resp, err = appendLimitedRead(buf.resp[:0], resp.Body, maxReplicaBody)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg := buf.resp
		if len(msg) > 1024 {
			msg = msg[:1024]
		}
		n.Observe(s.peer, nil)
		return &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	if err := json.Unmarshal(buf.resp, &buf.res); err != nil {
		return fmt.Errorf("decode reply from %s: %w", addr, err)
	}
	n.Observe(s.peer, nil)
	return nil
}

// appendLimitedRead reads r to EOF into dst (reusing its capacity),
// refusing to grow past max.
func appendLimitedRead(dst []byte, r io.Reader, max int64) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			if int64(len(dst)) >= max {
				return dst, nil
			}
			grow := cap(dst)
			if grow < 512 {
				grow = 512
			}
			dst = append(dst, make([]byte, grow)...)[:len(dst)]
		}
		m, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+m]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// finish applies one frame's outcome to its cursors: advance ack
// cursors and release covered waiters on success, reset for a full
// re-ship on a reported gap, or fail the stream over to the next ring
// candidate on a transport error — carrying unacked waiters to the new
// target once, exactly the retry budget the per-request path had.
func (s *shipper) finish(plans []*entryPlan, res frameResult, sendErr error) {
	n := s.n
	transportFail := sendErr != nil && !isStatusError(sendErr)
	if transportFail {
		n.Observe(s.peer, sendErr)
	}
	// Typical frames carry a handful of sessions: a linear scan beats
	// allocating a lookup map per frame. Fall back to a map only for
	// wide frames.
	var byID map[string]frameEntryResult
	if len(res.Sessions) > 16 {
		byID = make(map[string]frameEntryResult, len(res.Sessions))
		for _, er := range res.Sessions {
			byID[er.ID] = er
		}
	}
	resultFor := func(id string) (frameEntryResult, bool) {
		if byID != nil {
			er, ok := byID[id]
			return er, ok
		}
		for _, er := range res.Sessions {
			if er.ID == id {
				return er, true
			}
		}
		return frameEntryResult{}, false
	}

	var rels []shipRelease
	var retarget []*entryPlan
	var kicks []*shipper

	n.shipsMu.Lock()
	s.inflight--
	for _, p := range plans {
		cur := p.cur
		if cur.inflightOn == s.peer {
			cur.inflightOn = ""
		}
		if cur.purged {
			rels = append(rels, drainWaiters(cur, nil)...)
			continue
		}
		if cur.target != s.peer {
			// Retargeted while this frame flew; the new stream owns the
			// cursor — just make sure it is queued there.
			if cur.target != "" {
				sh := n.shipperForLocked(cur.target)
				if enqueueCursorLocked(sh, cur) {
					kicks = append(kicks, sh)
				}
			}
			continue
		}
		switch {
		case p.gone:
			rels = append(rels, drainWaiters(cur, nil)...)
			delete(n.ships, cur.id)
			continue
		case p.skip:
			rels = ackWaitersLocked(cur, rels)
		case transportFail:
			retarget = append(retarget, p)
			continue
		case sendErr != nil:
			// Whole-frame refusal from a live peer (malformed frame, body
			// cap): fail the waiters and reset the stream; the next
			// mutation re-ships from zero.
			cur.opened, cur.acked, cur.sinceCP = false, 0, 0
			n.shipHeals.Inc()
			rels = append(rels, drainWaiters(cur, fmt.Errorf("replica %s refused frame: %w", s.peer, sendErr))...)
		default:
			er, ok := resultFor(p.id)
			if ok && er.Status == frameStatusOK {
				cur.opened = true
				cur.heals = 0
				if p.toSeq > cur.acked {
					cur.acked = p.toSeq
				}
				cur.sinceCP += p.nEvents
				if p.cpSent && er.CPOK {
					cur.sinceCP = 0
				}
				n.shipsTotal.Inc()
				rels = ackWaitersLocked(cur, rels)
			} else {
				// Gap, vanished replica, or a result the peer did not
				// report: the replica lost state we thought it had. Heal
				// by resetting to a full re-ship; waiters ride along,
				// bounded by maxShipHeals.
				cur.opened, cur.acked, cur.sinceCP = false, 0, 0
				cur.heals++
				n.shipHeals.Inc()
				if cur.heals > maxShipHeals {
					cur.heals = 0
					rels = append(rels, drainWaiters(cur, fmt.Errorf("replica %s rejected %d consecutive re-ships (%s)", s.peer, maxShipHeals, er.Status))...)
				}
			}
		}
		// Re-queue when unshipped tail or blocked waiters remain; a
		// failed cursor with no waiters stays dormant until the next
		// mutation retries it, so a broken replica cannot hot-loop.
		if len(cur.waiters) > 0 || (cur.wantSeq > cur.acked && cur.heals == 0 && cur.opened) {
			if enqueueCursorLocked(s, cur) {
				kicks = append(kicks, s)
			}
		}
	}
	if len(s.queue) > 0 && s.inflight < s.window {
		kicks = append(kicks, s)
	}
	n.shipsMu.Unlock()
	sendReleases(rels)

	if len(retarget) > 0 {
		kicks = append(kicks, s.failover(retarget, sendErr)...)
	}
	for _, sh := range kicks {
		sh.kick()
	}
}

// failover reroutes cursors whose frame hit a transport error: the
// peer is marked down (Observe above), so the ring yields the next
// live candidate; the stream re-opens there from zero. Waiters are
// carried across exactly one failover — a second transport failure
// fails them, mirroring the per-request path's single retry. No
// remaining candidate degrades to unreplicated, releasing the waiters
// cleanly (the last other node just died; nothing to wait for).
func (s *shipper) failover(plans []*entryPlan, sendErr error) []*shipper {
	n := s.n
	nexts := make([]string, len(plans))
	for i, p := range plans {
		nexts[i] = n.replicaTarget(p.id)
	}
	var rels []shipRelease
	var kicks []*shipper
	n.shipsMu.Lock()
	for i, p := range plans {
		cur := p.cur
		if cur.purged || cur.target != s.peer || cur.inflightOn != "" {
			continue
		}
		next := nexts[i]
		if next == "" {
			cur.target, cur.opened, cur.acked, cur.sinceCP = "", false, 0, 0
			rels = append(rels, drainWaiters(cur, nil)...)
			continue
		}
		cur.target, cur.opened, cur.acked, cur.sinceCP = next, false, 0, 0
		keep := cur.waiters[:0]
		for _, w := range cur.waiters {
			if w.retried {
				rels = append(rels, shipRelease{ch: w.ch, err: fmt.Errorf("ship to %s failed after failover: %w", s.peer, sendErr)})
			} else {
				w.retried = true
				keep = append(keep, w)
			}
		}
		cur.waiters = keep
		sh := n.shipperForLocked(next)
		if enqueueCursorLocked(sh, cur) {
			kicks = append(kicks, sh)
		}
	}
	n.shipsMu.Unlock()
	sendReleases(rels)
	return kicks
}

// --- Replicate's stream front half -----------------------------------

// replicateStream is Replicate on the streamed plane: register a
// waiter for the session's current log tail with the target's shipper
// and block until the covering ack (or a failure) releases it.
func (n *Node) replicateStream(ctx context.Context, id string, m server.Mutation) error {
	if m == server.MutationPurge {
		return n.purgeStream(ctx, id)
	}
	seq, err := n.srv.SessionLastSeq(id)
	if err != nil {
		return nil // session vanished locally: nothing left to protect
	}
	target := n.replicaTarget(id)
	if target == "" {
		return nil // degrade: no live replica candidate
	}
	start := time.Now()
	ch, sh := n.enqueueWaiter(id, target, seq)
	if ch == nil {
		return nil // ack already covers seq (or the node is closing)
	}
	if sh != nil {
		sh.kick()
	}
	select {
	case werr := <-ch:
		n.shipAckWait.Observe(time.Since(start).Seconds())
		if werr != nil {
			return fmt.Errorf("cluster: replicate session %s: %w", id, werr)
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: replicate session %s: %w", id, ctx.Err())
	}
}

// enqueueWaiter registers a waiter for seq on the session's stream,
// retargeting the cursor if the ring moved its replica. A nil channel
// means no wait is needed.
func (n *Node) enqueueWaiter(id, target string, seq uint64) (chan error, *shipper) {
	n.shipsMu.Lock()
	if n.shipsClosed {
		n.shipsMu.Unlock()
		return nil, nil
	}
	cur, ok := n.ships[id]
	if !ok {
		cur = &shipCursor{id: id}
		n.ships[id] = cur
	}
	if cur.target == target && cur.opened && cur.acked >= seq {
		n.shipsMu.Unlock()
		return nil, nil
	}
	if cur.target != target {
		cur.target, cur.opened, cur.acked, cur.sinceCP = target, false, 0, 0
	}
	if seq > cur.wantSeq {
		cur.wantSeq = seq
	}
	ch := make(chan error, 1)
	// Four frame budgets bound the honest path (a waiter survives at
	// most one failover re-ship); past that the stream is stuck and the
	// shipper's sweep fails the waiter.
	cur.waiters = append(cur.waiters, &shipWaiter{
		seq:      seq,
		deadline: time.Now().Add(4 * n.cfg.ShipTimeout),
		ch:       ch,
	})
	sh := n.shipperForLocked(target)
	enqueueCursorLocked(sh, cur)
	n.shipsMu.Unlock()
	return ch, sh
}

// purgeStream retires a purged session's stream state and best-effort
// drops the remote replica, like the per-request path did.
func (n *Node) purgeStream(ctx context.Context, id string) error {
	n.shipsMu.Lock()
	var rels []shipRelease
	var target string
	if cur, ok := n.ships[id]; ok {
		cur.purged = true
		target = cur.target
		rels = drainWaiters(cur, nil)
		delete(n.ships, id)
	}
	n.shipsMu.Unlock()
	sendReleases(rels)
	if target != "" {
		// Best effort: a leaked tombstone on the replica is dropped the
		// next time the session ID is reused or the node restarts.
		_ = n.post(ctx, target, "/v1/cluster/replica/"+id+"/drop", "", nil)
	}
	return nil
}

// Close stops the replication streams: blocked acks are failed, every
// shipper exits, and in-flight frame senders are awaited. Idempotent.
// Call after the HTTP server stopped serving mutations.
func (n *Node) Close() {
	n.shipsMu.Lock()
	if n.shipsClosed {
		n.shipsMu.Unlock()
		return
	}
	n.shipsClosed = true
	shippers := make([]*shipper, 0, len(n.shippers))
	for _, s := range n.shippers {
		shippers = append(shippers, s)
	}
	var rels []shipRelease
	for _, cur := range n.ships {
		rels = append(rels, drainWaiters(cur, errors.New("cluster node closed"))...)
	}
	n.shipsMu.Unlock()
	sendReleases(rels)
	for _, s := range shippers {
		close(s.stop)
	}
	for _, s := range shippers {
		<-s.done
	}
	n.shipWG.Wait()
}

// --- wire format ------------------------------------------------------

// A frame is `uint32 big-endian header length | JSON frameHeader |
// concatenated blobs`: per session entry, in header order, the DVFB
// event blob then the checkpoint blob, each of the length the header
// declares. JSON keeps the header debuggable; the payloads stay in the
// binary trace codec the per-request path already shipped.
type frameHeader struct {
	Sessions []frameEntry `json:"sessions"`
}

type frameEntry struct {
	ID string `json:"id"`
	// Spec present means "open": create the replica (idempotently) with
	// this platform spec before applying the blobs.
	Spec          *server.PlatformSpec `json:"spec,omitempty"`
	EventsLen     int                  `json:"events_len"`
	CheckpointLen int                  `json:"checkpoint_len,omitempty"`
}

// frameResult is the 200 response: one outcome per session entry, so a
// gap in one session never fails the whole frame.
type frameResult struct {
	Sessions []frameEntryResult `json:"sessions"`
}

type frameEntryResult struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// CPOK acknowledges the entry's checkpoint was applied; false keeps
	// the owner's checkpoint debt counting.
	CPOK  bool   `json:"cp_ok,omitempty"`
	Error string `json:"error,omitempty"`
}

const (
	frameStatusOK = "ok"
	// frameStatusGap: the log blob does not continue the replica's log;
	// the owner heals with a full re-ship (the stream analogue of the
	// per-request 409).
	frameStatusGap = "gap"
	// frameStatusNoReplica: no replica and no spec in the entry (the
	// stream analogue of the per-request 404); the owner re-opens.
	frameStatusNoReplica = "no_replica"
)

func decodeFrame(body []byte) (frameHeader, []byte, error) {
	var hdr frameHeader
	if len(body) < 4 {
		return hdr, nil, errors.New("frame shorter than its length prefix")
	}
	hlen := int(binary.BigEndian.Uint32(body[:4]))
	if hlen < 0 || hlen > len(body)-4 {
		return hdr, nil, fmt.Errorf("frame header length %d exceeds body", hlen)
	}
	if err := json.Unmarshal(body[4:4+hlen], &hdr); err != nil {
		return hdr, nil, fmt.Errorf("decode frame header: %w", err)
	}
	blobs := body[4+hlen:]
	need := 0
	for _, e := range hdr.Sessions {
		if e.EventsLen < 0 || e.CheckpointLen < 0 {
			return hdr, nil, fmt.Errorf("session %s: negative blob length", e.ID)
		}
		need += e.EventsLen + e.CheckpointLen
	}
	if need != len(blobs) {
		return hdr, nil, fmt.Errorf("frame declares %d blob bytes, carries %d", need, len(blobs))
	}
	return hdr, blobs, nil
}

// frameBodyBuf pools the replica-side raw frame buffer. Everything
// the frame applies is copied out (appendLog copies events,
// setCheckpoint copies the blob) before the handler returns, so the
// buffer never outlives the request.
type frameBodyBuf struct{ b []byte }

var frameBodyPool = sync.Pool{New: func() any { return new(frameBodyBuf) }}

// readFrameBody reads the request body into the pooled buffer when
// the declared length allows it, falling back to a bounded ReadAll
// for chunked or oversized requests (the latter then fail frame
// validation exactly as before).
func readFrameBody(r *http.Request, fb *frameBodyBuf) ([]byte, error) {
	if n := r.ContentLength; n >= 0 && n <= maxReplicaBody {
		if cap(fb.b) < int(n) {
			fb.b = make([]byte, n)
		}
		fb.b = fb.b[:n]
		if _, err := io.ReadFull(r.Body, fb.b); err != nil {
			return nil, err
		}
		return fb.b, nil
	}
	return io.ReadAll(io.LimitReader(r.Body, maxReplicaBody))
}

// handleReplicaFrame is POST /v1/cluster/replica/frame: apply one
// coalesced stream frame. Only a malformed frame is an HTTP error;
// per-session failures travel in the result body so one gappy session
// cannot veto its neighbors' acks.
func (n *Node) handleReplicaFrame(w http.ResponseWriter, r *http.Request) {
	fb := frameBodyPool.Get().(*frameBodyBuf)
	defer frameBodyPool.Put(fb)
	body, err := readFrameBody(r, fb)
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	hdr, blobs, err := decodeFrame(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res := frameResult{Sessions: make([]frameEntryResult, 0, len(hdr.Sessions))}
	off := 0
	for _, e := range hdr.Sessions {
		evBlob := blobs[off : off+e.EventsLen]
		cpBlob := blobs[off+e.EventsLen : off+e.EventsLen+e.CheckpointLen]
		off += e.EventsLen + e.CheckpointLen
		res.Sessions = append(res.Sessions, n.applyFrameEntry(e, evBlob, cpBlob))
	}
	writeClusterJSON(w, res)
}

// frameDecode is the replica-side scratch for one frame entry's event
// blob: the buffered layer, the trace reader, and the intermediate
// event slice all die with the request, so they are pooled. appendLog
// copies events (and dictionary strings are freshly allocated per
// trace), so nothing applied to the replica aliases the scratch.
type frameDecode struct {
	src bytes.Reader
	buf *bufio.Reader
	br  *obs.BinaryReader
	evs []obs.Event
}

var frameDecodePool = sync.Pool{New: func() any {
	d := &frameDecode{}
	d.buf = bufio.NewReaderSize(&d.src, 32<<10)
	d.br = obs.NewBinaryReader(d.buf)
	return d
}}

// decodeEvents strictly decodes a complete binary trace into the
// scratch slice, failing on any damaged frame like obs.ReadBinary.
func (d *frameDecode) decodeEvents(blob []byte) ([]obs.Event, error) {
	d.src.Reset(blob)
	d.buf.Reset(&d.src)
	d.br.Reset(d.buf)
	d.evs = d.evs[:0]
	for {
		ev, err := d.br.Next()
		if errors.Is(err, io.EOF) {
			return d.evs, nil
		}
		if err != nil {
			return nil, err
		}
		d.evs = append(d.evs, ev)
	}
}

// applyFrameEntry is the per-session half of a frame: open (when the
// spec rides along), append the log blob, then apply the checkpoint —
// the same order, with the same gap rules, as the per-request
// endpoints.
func (n *Node) applyFrameEntry(e frameEntry, evBlob, cpBlob []byte) frameEntryResult {
	er := frameEntryResult{ID: e.ID, Status: frameStatusOK}
	var rep *replica
	if e.Spec != nil {
		rep = n.replicas.open(e.ID, *e.Spec)
	} else {
		var ok bool
		if rep, ok = n.replicas.get(e.ID); !ok {
			er.Status = frameStatusNoReplica
			return er
		}
	}
	if len(evBlob) > 0 {
		d := frameDecodePool.Get().(*frameDecode)
		// Only the plain-string gap message survives past the Put: the
		// error values (and the event slice) may alias pooled memory.
		var gapMsg string
		if events, err := d.decodeEvents(evBlob); err != nil {
			gapMsg = "decode log: " + err.Error()
		} else if err := rep.appendLog(events); err != nil {
			gapMsg = err.Error()
		}
		frameDecodePool.Put(d)
		if gapMsg != "" {
			er.Status, er.Error = frameStatusGap, gapMsg
			return er
		}
	}
	if len(cpBlob) > 0 {
		// A checkpoint failure is not a stream failure: the log alone
		// keeps the replica promotable, and CPOK=false keeps the owner's
		// checkpoint debt counting so another one ships soon.
		if cp, err := sim.UnmarshalCheckpoint(cpBlob); err == nil {
			blob := append([]byte(nil), cpBlob...)
			if rep.setCheckpoint(blob, cp.EvSeq) == nil {
				er.CPOK = true
			}
		}
	}
	return er
}
