package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"dvfsched/internal/obs"
	"dvfsched/internal/server"
)

// Dynamic-membership and migration tests. All of them interleave
// cluster admin operations with live client traffic and are meaningful
// under -race (the checker runs them so): the properties pinned down —
// exactly-once admission across an ownership flip, byte-identical
// post-migration traces, bounded movement on join — are exactly the
// ones data races would silently break.

// addNode boots one extra node as a solo cluster (its seed view
// contains only itself), ready to be admitted via the join API. The
// startCluster cleanup shuts it down with the rest.
func (tc *testCluster) addNode(id string, tweak func(*Config)) *testNode {
	tc.t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tc.t.Fatal(err)
	}
	addr := "http://" + ln.Addr().String()
	srv := server.New(server.Config{})
	cfg := Config{ID: id, Peers: map[string]string{id: addr}}
	if tweak != nil {
		tweak(&cfg)
	}
	node, err := NewNode(cfg, srv)
	if err != nil {
		tc.t.Fatal(err)
	}
	hs := &http.Server{Handler: node.Handler()}
	tn := &testNode{id: id, srv: srv, node: node, http: hs, addr: addr}
	tc.byID[id] = tn
	go func() { _ = hs.Serve(ln) }()
	return tn
}

// join admits node id (already listening at its advertised address)
// through the given front and returns the membership change.
func (tc *testCluster) join(front, id string) MembershipChange {
	tc.t.Helper()
	body := []byte(fmt.Sprintf(`{"addr":%q}`, tc.byID[id].addr))
	code, b := tc.do(front, http.MethodPost, "/v1/cluster/nodes/"+id, body)
	if code != http.StatusOK {
		tc.t.Fatalf("join %s: %d %s", id, code, b)
	}
	var change MembershipChange
	if err := json.Unmarshal(b, &change); err != nil {
		tc.t.Fatal(err)
	}
	return change
}

// leave drains node id out of the ring through the given front.
func (tc *testCluster) leave(front, id string) MembershipChange {
	tc.t.Helper()
	code, b := tc.do(front, http.MethodDelete, "/v1/cluster/nodes/"+id, nil)
	if code != http.StatusOK {
		tc.t.Fatalf("leave %s: %d %s", id, code, b)
	}
	var change MembershipChange
	if err := json.Unmarshal(b, &change); err != nil {
		tc.t.Fatal(err)
	}
	return change
}

// nodeInfo fetches /v1/cluster/info from one node directly.
func (tc *testCluster) nodeInfo(id string) NodeInfo {
	tc.t.Helper()
	code, b := tc.do(id, http.MethodGet, "/v1/cluster/info", nil)
	if code != http.StatusOK {
		tc.t.Fatalf("info %s: %d %s", id, code, b)
	}
	var info NodeInfo
	if err := json.Unmarshal(b, &info); err != nil {
		tc.t.Fatal(err)
	}
	return info
}

// drainRetry drains a session through rotating fronts, riding out the
// transient 503s of migration fences, moved markers and converging
// views, and returns the drain result.
func (tc *testCluster) drainRetry(fronts []string, path string) *server.DrainResponse {
	tc.t.Helper()
	for attempt := 0; attempt < 80; attempt++ {
		code, b, err := tc.try(fronts[attempt%len(fronts)], http.MethodDelete, path, nil)
		switch {
		case err != nil, code >= 500, code == http.StatusTooManyRequests:
			time.Sleep(25 * time.Millisecond)
		case code == http.StatusOK:
			var dr server.DrainResponse
			if jerr := json.Unmarshal(b, &dr); jerr != nil {
				tc.t.Fatal(jerr)
			}
			return &dr
		default:
			tc.t.Fatalf("drain %s: %d %s", path, code, b)
		}
	}
	tc.t.Fatalf("drain %s: retries exhausted", path)
	return nil
}

// fetchEvents reads a session's full trace through rotating fronts.
func (tc *testCluster) fetchEvents(fronts []string, path string) []obs.Event {
	tc.t.Helper()
	for attempt := 0; attempt < 80; attempt++ {
		code, b, err := tc.try(fronts[attempt%len(fronts)], http.MethodGet, path+"/events", nil)
		switch {
		case err != nil, code >= 500:
			time.Sleep(25 * time.Millisecond)
		case code == http.StatusOK:
			return parseJSONL(tc.t, b)
		default:
			tc.t.Fatalf("events %s: %d %s", path, code, b)
		}
	}
	tc.t.Fatalf("events %s: retries exhausted", path)
	return nil
}

// auditTrace is the lossless-and-deterministic check shared by the
// churn tests: the trace is gapless, every acknowledged task arrives
// and completes exactly once, no task arrives twice (exactly-once
// across ownership flips), and a serial rebuild of the session from
// the trace alone regenerates it byte-identically.
func auditTrace(t *testing.T, spec server.PlatformSpec, events []obs.Event, acked map[int]bool) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	arrivals := map[int]int{}
	completes := map[int]int{}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d: seq %d — trace has a gap or reorder", i, ev.Seq)
		}
		switch ev.Kind {
		case obs.KindArrival:
			arrivals[ev.Task]++
		case obs.KindComplete:
			completes[ev.Task]++
		}
	}
	for id := range acked {
		if arrivals[id] != 1 {
			t.Errorf("acked task %d has %d arrivals, want 1", id, arrivals[id])
		}
		if completes[id] != 1 {
			t.Errorf("acked task %d has %d completions, want 1", id, completes[id])
		}
	}
	for id, c := range arrivals {
		if c != 1 {
			t.Errorf("task %d has %d arrivals", id, c)
		}
	}
	rb, err := server.ReplaySession(context.Background(), spec, 0, nil, events)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Sess.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, want := obs.AppendBinary(nil, rb.Rec.Events()), obs.AppendBinary(nil, events)
	if !bytes.Equal(got, want) {
		t.Fatalf("oracle rebuild diverges from trace: %d vs %d encoded bytes", len(got), len(want))
	}
}

// TestClusterJoinDuringTraffic grows a 3-node ring to 4 while clients
// submit: the join must move exactly the sessions whose ring owner
// changes (bounded movement, computed here from the rings themselves),
// land those sessions live on their new owner, converge every node on
// the epoch-2 view, and lose nothing — each session drains to a
// gapless exactly-once trace that rebuilds byte-identically.
func TestClusterJoinDuringTraffic(t *testing.T) {
	tc := startCluster(t, 3, func(c *Config) { c.CheckpointEvery = 4 })
	const nSessions = 12

	type sess struct {
		info server.SessionInfo
		path string
	}
	sessions := make([]sess, nSessions)
	ids := make([]string, nSessions)
	for i := range sessions {
		info := tc.createSession("n1", `{"cores":2}`)
		sessions[i] = sess{info: info, path: "/v1/sessions/" + info.ID}
		ids[i] = info.ID
	}

	// Session IDs are deterministic (s-<node>-<seq>), so the bounded
	// movement expectation is computable up front: only the sessions
	// whose owner differs between the 3- and 4-node rings may migrate.
	oldRing, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	newRing, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantMoved := 0
	for _, id := range ids {
		if oldRing.Owner(id) != newRing.Owner(id) {
			wantMoved++
		}
	}
	if wantMoved == 0 || wantMoved == nSessions {
		t.Fatalf("degenerate ring diff: %d of %d sessions move", wantMoved, nSessions)
	}

	fronts := []string{"n1", "n2", "n3"}
	var mu sync.Mutex
	acked := make([]map[int]bool, nSessions)
	for i := range acked {
		acked[i] = map[int]bool{}
	}
	// Boot the joiner before traffic starts (concurrent goroutines read
	// tc.byID, so the map must not grow mid-test); the join itself —
	// the interesting part — happens mid-traffic below.
	tc.addNode("n4", func(c *Config) { c.CheckpointEvery = 4 })

	const batches, perBatch = 6, 2
	var wg sync.WaitGroup
	defer wg.Wait() // a Fatal below must not leave goroutines failing a done test
	for si := range sessions {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			myFronts := append([]string{fronts[si%len(fronts)]}, fronts...)
			for b := 0; b < batches; b++ {
				base := perBatch * b
				batch := make([]int, perBatch)
				for i := range batch {
					batch[i] = base + i + 1
				}
				if tc.submitRetry(myFronts, sessions[si].path, taskBatch(batch, true)) {
					mu.Lock()
					for _, id := range batch {
						acked[si][id] = true
					}
					mu.Unlock()
				}
				time.Sleep(3 * time.Millisecond)
			}
		}(si)
	}

	// Let traffic start, then grow the ring mid-flight.
	time.Sleep(10 * time.Millisecond)
	change := tc.join("n1", "n4")
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if change.Epoch != 2 || len(change.Nodes) != 4 {
		t.Fatalf("join change: %+v", change)
	}
	if change.Failed != 0 {
		t.Fatalf("join rebalance failed %d migrations: %+v", change.Failed, change)
	}
	if change.Moved != wantMoved {
		t.Errorf("join moved %d sessions, ring diff says %d", change.Moved, wantMoved)
	}
	// Every node, including the joiner, holds the epoch-2 view.
	for _, id := range []string{"n1", "n2", "n3", "n4"} {
		info := tc.nodeInfo(id)
		if info.Epoch != 2 || len(info.Peers) != 4 || !info.Member {
			t.Errorf("node %s view after join: %+v", id, info)
		}
	}
	// Moved sessions live on their new ring owner.
	for _, id := range ids {
		if !tc.byID[newRing.Owner(id)].srv.HasSession(id) {
			t.Errorf("session %s: new owner %s has no shard", id, newRing.Owner(id))
		}
	}

	allFronts := []string{"n1", "n2", "n3", "n4"}
	for si, s := range sessions {
		mu.Lock()
		want := len(acked[si])
		mu.Unlock()
		dr := tc.drainRetry(allFronts, s.path)
		if dr.Tasks != want {
			t.Errorf("session %s drained %d tasks, acked %d", s.info.ID, dr.Tasks, want)
		}
		events := tc.fetchEvents(allFronts, s.path)
		auditTrace(t, s.info.PlatformSpec, events, acked[si])
	}
}

// TestClusterMigrateVsSubmit races a planned migration against live
// submitters: the operator moves the session to an explicit (pinned)
// off-ring target via a non-owner front mid-traffic. The freeze fence
// must keep every admission exactly-once — a submit either lands before
// the freeze and rides the shipped checkpoint, or retries onto the new
// owner — and the post-migration trace must rebuild byte-identically.
func TestClusterMigrateVsSubmit(t *testing.T) {
	tc := startCluster(t, 3, func(c *Config) { c.CheckpointEvery = 4 })
	info := tc.createSession("n1", `{"cores":2}`)
	path := "/v1/sessions/" + info.ID
	fronts := []string{"n1", "n2", "n3"}

	owner := tc.byID["n1"].node.Route(info.ID)[0]
	target := ""
	for _, id := range tc.ids {
		if id != owner {
			target = id // explicitly not the ring owner: a pinned migration
			break
		}
	}

	var mu sync.Mutex
	acked := map[int]bool{}
	const clients, batches, perBatch = 3, 8, 2
	var wg sync.WaitGroup
	defer wg.Wait() // a Fatal below must not leave goroutines failing a done test
	migrated := make(chan MigrateInfo, 1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			myFronts := append([]string{fronts[c%len(fronts)]}, fronts...)
			for b := 0; b < batches; b++ {
				base := 1000*(c+1) + perBatch*b
				batch := make([]int, perBatch)
				for i := range batch {
					batch[i] = base + i + 1
				}
				if tc.submitRetry(myFronts, path, taskBatch(batch, true)) {
					mu.Lock()
					for _, id := range batch {
						acked[id] = true
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(15 * time.Millisecond) // let submits overlap the freeze
		body := []byte(fmt.Sprintf(`{"target":%q}`, target))
		// Call through the target front, which is not the session's home:
		// this exercises the proxy-to-home path of the migrate API too.
		code, b, err := tc.try(target, http.MethodPost, "/v1/cluster/sessions/"+info.ID+"/migrate", body)
		if err != nil {
			t.Errorf("migrate transport: %v", err)
			return
		}
		if code != http.StatusOK {
			t.Errorf("migrate: %d %s", code, b)
			return
		}
		var mi MigrateInfo
		if jerr := json.Unmarshal(b, &mi); jerr != nil {
			t.Error(jerr)
			return
		}
		migrated <- mi
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	mi := <-migrated
	if mi.To != target || !mi.Pinned {
		t.Fatalf("migrate info: %+v (want pinned move to %s)", mi, target)
	}
	if !tc.byID[target].srv.HasSession(info.ID) {
		t.Fatalf("target %s has no live shard for %s after migration", target, info.ID)
	}
	if tc.byID[owner].srv.HasSession(info.ID) {
		t.Fatalf("old owner %s still has a live shard for %s", owner, info.ID)
	}
	if to, ok := tc.byID[owner].srv.SessionMovedTo(info.ID); !ok || to != target {
		t.Errorf("old owner's moved marker: %q, %v (want %s)", to, ok, target)
	}
	if v := tc.byID[owner].srv.Registry().Counter(obs.ClusterMigrations).Value(); v < 1 {
		t.Errorf("owner migrations counter %v, want >= 1", v)
	}

	dr := tc.drainRetry(fronts, path)
	mu.Lock()
	wantTasks := len(acked)
	mu.Unlock()
	if dr.Tasks != wantTasks {
		t.Errorf("drained %d tasks, acked %d", dr.Tasks, wantTasks)
	}
	events := tc.fetchEvents(fronts, path)
	auditTrace(t, info.PlatformSpec, events, acked)
}

// TestClusterMigrateVsDelete races a migration against the session's
// drain: whichever wins, the drain must report every accepted task
// exactly once and the surviving trace must audit clean. The loser
// fails cleanly — a drain hitting the freeze window retries through
// the moved marker; a migrate hitting a drained session is refused.
func TestClusterMigrateVsDelete(t *testing.T) {
	tc := startCluster(t, 3, func(c *Config) { c.CheckpointEvery = 4 })
	info := tc.createSession("n1", `{"cores":2}`)
	path := "/v1/sessions/" + info.ID
	fronts := []string{"n1", "n2", "n3"}

	owner := tc.byID["n1"].node.Route(info.ID)[0]
	target := ""
	for _, id := range tc.ids {
		if id != owner {
			target = id
			break
		}
	}
	if code, b := tc.do(fronts[0], http.MethodPost, path+"/tasks", taskBatch([]int{1, 2, 3, 4, 5, 6}, true)); code != http.StatusOK {
		t.Fatalf("seed submit: %d %s", code, b)
	}
	acked := map[int]bool{1: true, 2: true, 3: true, 4: true, 5: true, 6: true}

	var wg sync.WaitGroup
	defer wg.Wait() // a Fatal below must not leave goroutines failing a done test
	wg.Add(1)
	go func() {
		defer wg.Done()
		body := []byte(fmt.Sprintf(`{"target":%q}`, target))
		code, b, err := tc.try(owner, http.MethodPost, "/v1/cluster/sessions/"+info.ID+"/migrate", body)
		if err != nil {
			t.Errorf("migrate transport: %v", err)
			return
		}
		// 200: the migrate won. 409: the drain won (drained sessions do
		// not migrate) or the shard was mid-drain. 404: the drain finished
		// and the tombstone was already purged. All are clean outcomes;
		// what is never acceptable is a dropped or doubled task, which the
		// audit below would catch.
		if code != http.StatusOK && code != http.StatusConflict && code != http.StatusNotFound {
			t.Errorf("migrate: unexpected status %d %s", code, b)
		}
	}()
	dr := tc.drainRetry(fronts, path)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if dr.Tasks != len(acked) {
		t.Errorf("drained %d tasks, want %d", dr.Tasks, len(acked))
	}
	events := tc.fetchEvents(fronts, path)
	auditTrace(t, info.PlatformSpec, events, acked)
}

// TestClusterLeaveWhileOwner drains a node that owns sessions out of
// the ring: the leave must evacuate every live session it owns to that
// session's post-leave ring owner, flip the survivors to the epoch-2
// view, and keep the departed node usable as a forwarding front. All
// sessions then drain losslessly through the survivors.
func TestClusterLeaveWhileOwner(t *testing.T) {
	tc := startCluster(t, 3, func(c *Config) { c.CheckpointEvery = 4 })
	const nSessions = 9

	type sess struct {
		info server.SessionInfo
		path string
	}
	sessions := make([]sess, nSessions)
	for i := range sessions {
		info := tc.createSession("n1", `{"cores":2}`)
		sessions[i] = sess{info: info, path: "/v1/sessions/" + info.ID}
		if code, b := tc.do(tc.ids[i%3], http.MethodPost, sessions[i].path+"/tasks", taskBatch([]int{1, 2, 3}, true)); code != http.StatusOK {
			t.Fatalf("seed submit: %d %s", code, b)
		}
	}
	acked := map[int]bool{1: true, 2: true, 3: true}

	// Pick the member owning the most sessions as the victim, so the
	// evacuation genuinely moves state.
	ownedBy := map[string][]string{}
	for _, s := range sessions {
		owner := tc.byID["n1"].node.Route(s.info.ID)[0]
		ownedBy[owner] = append(ownedBy[owner], s.info.ID)
	}
	victim := tc.ids[0]
	for _, id := range tc.ids {
		if len(ownedBy[id]) > len(ownedBy[victim]) {
			victim = id
		}
	}
	if len(ownedBy[victim]) == 0 {
		t.Fatalf("degenerate placement: no owned sessions (%v)", ownedBy)
	}
	coordinator := ""
	for _, id := range tc.ids {
		if id != victim {
			coordinator = id
			break
		}
	}

	change := tc.leave(coordinator, victim)
	if change.Epoch != 2 || len(change.Nodes) != 2 || change.Failed != 0 {
		t.Fatalf("leave change: %+v", change)
	}
	if change.Moved != len(ownedBy[victim]) {
		t.Errorf("leave moved %d sessions, victim owned %d", change.Moved, len(ownedBy[victim]))
	}

	survivors := make([]string, 0, 2)
	for _, id := range tc.ids {
		if id != victim {
			survivors = append(survivors, id)
		}
	}
	newRing, err := NewRing(survivors, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ownedBy[victim] {
		if tc.byID[victim].srv.HasSession(id) {
			t.Errorf("victim %s still has a live shard for %s after leaving", victim, id)
		}
		if !tc.byID[newRing.Owner(id)].srv.HasSession(id) {
			t.Errorf("session %s: post-leave owner %s has no shard", id, newRing.Owner(id))
		}
	}
	// The survivors hold the epoch-2 view; the departed node is no
	// longer a member of its own view but still fronts the cluster.
	for _, id := range survivors {
		info := tc.nodeInfo(id)
		if info.Epoch != 2 || len(info.Peers) != 2 || !info.Member {
			t.Errorf("survivor %s view: %+v", id, info)
		}
	}
	if info := tc.nodeInfo(victim); info.Member {
		t.Errorf("departed node %s still lists itself as a member: %+v", victim, info)
	}
	victimSession := ownedBy[victim][0]
	if code, b := tc.do(victim, http.MethodGet, "/v1/sessions/"+victimSession, nil); code != http.StatusOK {
		t.Errorf("departed node no longer forwards: %d %s", code, b)
	}

	// Everything drains losslessly through the survivors.
	for _, s := range sessions {
		dr := tc.drainRetry(survivors, s.path)
		if dr.Tasks != len(acked) {
			t.Errorf("session %s drained %d tasks, want %d", s.info.ID, dr.Tasks, len(acked))
		}
		events := tc.fetchEvents(survivors, s.path)
		auditTrace(t, s.info.PlatformSpec, events, acked)
	}
}

// TestClusterShipHealsDroppedReplica pins the replication cursor's
// self-healing: if a session's replica is dropped out from under an
// open ship cursor — which the old owner's post-migration cleanup can
// do when it races the new owner's first ship after a handoff — the
// next submit must re-open the replica and re-ship the full log within
// the same request. Without the heal, every subsequent submit 502s
// forever and the session quietly runs unreplicated.
func TestClusterShipHealsDroppedReplica(t *testing.T) {
	tc := startCluster(t, 3, nil)
	info := tc.createSession("n1", `{"cores":2}`)
	path := "/v1/sessions/" + info.ID

	if code, b := tc.do("n1", http.MethodPost, path+"/tasks", taskBatch([]int{1, 2, 3}, true)); code != http.StatusOK {
		t.Fatalf("seed submit: %d %s", code, b)
	}

	// Find the replica holder and drop the replica behind the owner's
	// back, through the replica plane itself.
	holder := ""
	for _, id := range tc.ids {
		for _, rid := range tc.nodeInfo(id).Replicas {
			if rid == info.ID {
				holder = id
			}
		}
	}
	if holder == "" {
		t.Fatalf("no node holds a replica of %s after an acked submit", info.ID)
	}
	if code, b := tc.do(holder, http.MethodPost, "/v1/cluster/replica/"+info.ID+"/drop", nil); code != http.StatusNoContent {
		t.Fatalf("drop replica on %s: %d %s", holder, code, b)
	}

	// The very next submit must ack — healed in-request, no retry.
	if code, b := tc.do("n2", http.MethodPost, path+"/tasks", taskBatch([]int{4, 5}, true)); code != http.StatusOK {
		t.Fatalf("submit after replica drop: %d %s", code, b)
	}
	rebuilt := false
	for _, rid := range tc.nodeInfo(holder).Replicas {
		if rid == info.ID {
			rebuilt = true
		}
	}
	if !rebuilt {
		t.Fatalf("replica of %s on %s was not rebuilt by the healing ship", info.ID, holder)
	}

	dr := tc.drainRetry([]string{"n1"}, path)
	if dr.Tasks != 5 {
		t.Errorf("drained %d tasks, want 5", dr.Tasks)
	}
	events := tc.fetchEvents([]string{"n1"}, path)
	auditTrace(t, info.PlatformSpec, events, map[int]bool{1: true, 2: true, 3: true, 4: true, 5: true})
}
