package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"dvfsched/internal/obs"
	"dvfsched/internal/server"
	"dvfsched/internal/sim"
)

// replica is the cold standby state of one session owned elsewhere:
// the platform spec, the shipped event log, and the latest checkpoint.
// Nothing here is a live scheduler — promotion (Node.EnsureLocal)
// turns it into one only when the owner dies.
type replica struct {
	mu         sync.Mutex
	spec       server.PlatformSpec
	log        replicaLog
	lastSeq    uint64 // Seq of the last appended event
	checkpoint []byte
	cpSeq      uint64 // EvSeq of the stored checkpoint
}

// replicaLogChunk is the event count per replica log chunk.
const replicaLogChunk = 1024

// replicaLog is the shipped event log, stored as fixed-size chunks.
// One flat slice would re-copy — and the allocator re-zero — the
// entire history on every doubling step, a pause that grows with
// session length and briefly doubles the log's memory; appends land on
// the replication ack path, so they must stay O(1) with no spikes.
// Reads that want one contiguous slice (promotion, test oracles) are
// rare and pay the copy instead.
type replicaLog struct {
	chunks [][]obs.Event
	n      int
}

func (l *replicaLog) len() int { return l.n }

func (l *replicaLog) append(ev obs.Event) {
	if len(l.chunks) == 0 || len(l.chunks[len(l.chunks)-1]) == replicaLogChunk {
		l.chunks = append(l.chunks, make([]obs.Event, 0, replicaLogChunk))
	}
	last := len(l.chunks) - 1
	l.chunks[last] = append(l.chunks[last], ev)
	l.n++
}

// snapshot materializes the log as one freshly allocated contiguous
// slice, in append order.
func (l *replicaLog) snapshot() []obs.Event {
	out := make([]obs.Event, 0, l.n)
	for _, c := range l.chunks {
		out = append(out, c...)
	}
	return out
}

// replicaStore holds the node's replicas, keyed by session ID.
type replicaStore struct {
	mu sync.Mutex
	m  map[string]*replica
}

func (rs *replicaStore) get(id string) (*replica, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rep, ok := rs.m[id]
	return rep, ok
}

// open returns the session's replica, creating it if absent. A
// re-open (owner reconnecting, or re-shipping after a gap) keeps the
// existing log and refreshes the spec.
//
// The store lock is released before the replica lock is taken: holding
// both nests store->replica, the reverse of EnsureLocal's
// replica->store (it drops the entry while holding rep.mu), and a
// re-open racing a promotion of the same session would deadlock.
func (rs *replicaStore) open(id string, spec server.PlatformSpec) *replica {
	rs.mu.Lock()
	rep, ok := rs.m[id]
	if !ok {
		rep = &replica{}
		rs.m[id] = rep
	}
	rs.mu.Unlock()
	rep.mu.Lock()
	rep.spec = spec
	rep.mu.Unlock()
	return rep
}

func (rs *replicaStore) drop(id string) {
	rs.mu.Lock()
	delete(rs.m, id)
	rs.mu.Unlock()
}

func (rs *replicaStore) ids() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]string, 0, len(rs.m))
	for id := range rs.m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// appendLog applies a shipped event batch. Events at or below lastSeq
// are duplicates of state already held (a full re-ship after target
// reselection) and are skipped; past that, the batch must continue the
// log exactly — a gap means the owner and replica disagree about what
// was shipped, and accepting it would leave a hole the promotion
// replay cannot cross. The owner heals a reported gap by re-shipping
// from zero.
func (rep *replica) appendLog(events []obs.Event) error {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	for _, ev := range events {
		if ev.Seq <= rep.lastSeq {
			continue
		}
		if rep.lastSeq != 0 || rep.log.len() > 0 {
			if ev.Seq != rep.lastSeq+1 {
				return fmt.Errorf("log gap: have seq %d, got %d", rep.lastSeq, ev.Seq)
			}
		}
		rep.log.append(ev)
		rep.lastSeq = ev.Seq
	}
	return nil
}

// setCheckpoint installs a shipped checkpoint. The log must already
// cover the checkpoint's sequence number: promotion replays the log
// suffix after cp.EvSeq, so a checkpoint ahead of the log would drop
// the events in between from the reconstructed trace.
func (rep *replica) setCheckpoint(blob []byte, evSeq uint64) error {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if evSeq > rep.lastSeq {
		return fmt.Errorf("checkpoint at seq %d ahead of log tail %d", evSeq, rep.lastSeq)
	}
	rep.checkpoint = blob
	rep.cpSeq = evSeq
	return nil
}

// --- internal HTTP endpoints (owner -> replica) ---

func (n *Node) handleReplicaOpen(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var spec server.PlatformSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, maxReplicaBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if err := json.Unmarshal(body, &spec); err != nil {
		httpError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	n.replicas.open(id, spec)
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleReplicaLog(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep, ok := n.replicas.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no replica for session %q", id)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxReplicaBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	events, err := obs.ReadBinary(bytes.NewReader(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "decode log: %v", err)
		return
	}
	if err := rep.appendLog(events); err != nil {
		// 409 tells the owner to re-ship the full log.
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleReplicaCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep, ok := n.replicas.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no replica for session %q", id)
		return
	}
	blob, err := io.ReadAll(io.LimitReader(r.Body, maxReplicaBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	// Decode to learn the checkpoint's event sequence number — and to
	// refuse storing bytes a promotion could not restore from.
	cp, err := sim.UnmarshalCheckpoint(blob)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decode checkpoint: %v", err)
		return
	}
	if err := rep.setCheckpoint(blob, cp.EvSeq); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleReplicaDrop(w http.ResponseWriter, r *http.Request) {
	n.replicas.drop(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

// --- introspection endpoints ---

// RouteInfo is the reply of GET /v1/cluster/route?session=ID.
type RouteInfo struct {
	Session    string   `json:"session"`
	Owner      string   `json:"owner"`
	Candidates []string `json:"candidates"`
}

func (n *Node) handleRoute(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing session query parameter")
		return
	}
	cands := n.Route(id)
	info := RouteInfo{Session: id, Candidates: cands}
	if len(cands) > 0 {
		info.Owner = cands[0]
	}
	writeClusterJSON(w, info)
}

// NodeInfo is the reply of GET /v1/cluster/info.
type NodeInfo struct {
	ID    string `json:"id"`
	Epoch uint64 `json:"epoch"`
	// Member reports whether this node is part of its own view; a
	// drained-out node keeps serving as a forwarding front with
	// Member=false.
	Member     bool     `json:"member"`
	Peers      []string `json:"peers"`
	Down       []string `json:"down"`
	Replicas   []string `json:"replicas"`
	Placements []string `json:"placements,omitempty"`
}

func (n *Node) handleInfo(w http.ResponseWriter, r *http.Request) {
	v := n.view()
	_, member := v.peers[n.cfg.ID]
	info := NodeInfo{
		ID:         n.cfg.ID,
		Epoch:      v.epoch,
		Member:     member,
		Peers:      v.nodeIDs(),
		Replicas:   n.replicas.ids(),
		Placements: n.placementIDs(),
	}
	n.mu.Lock()
	for id := range n.down {
		info.Down = append(info.Down, id)
	}
	n.mu.Unlock()
	sort.Strings(info.Down)
	writeClusterJSON(w, info)
}

// httpError emits the unified error envelope on the cluster planes:
// the same `{"error":{"code":"...","message":"..."}}` shape the
// session and plan planes produce, so a client (or the router's
// verbatim forward) sees one error format everywhere.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	server.WriteErrorEnvelope(w, code, "", format, args...)
}

func writeClusterJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}
